use std::ops::Add;

/// Hardware work one checker prediction performs.
///
/// The accelerator model turns this into cycles (Figure 17) and the energy
/// model into joules (Figure 14), using per-operation constants of the
/// Table-2 technology node.
///
/// # Examples
///
/// ```
/// use rumba_predict::CheckerCost;
///
/// let linear = CheckerCost { macs: 4, comparisons: 1, table_reads: 5 };
/// let combined = linear + CheckerCost { macs: 0, comparisons: 7, table_reads: 15 };
/// assert_eq!(combined.comparisons, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CheckerCost {
    /// Multiply-accumulate operations.
    pub macs: usize,
    /// Comparison operations.
    pub comparisons: usize,
    /// Coefficient-buffer reads.
    pub table_reads: usize,
}

impl CheckerCost {
    /// A zero-cost checker (the Ideal oracle, Random/Uniform selectors).
    #[must_use]
    pub fn free() -> Self {
        Self::default()
    }

    /// Total primitive operations — a quick magnitude proxy used in tests
    /// and reports.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.macs + self.comparisons + self.table_reads
    }
}

impl Add for CheckerCost {
    type Output = CheckerCost;

    fn add(self, rhs: CheckerCost) -> CheckerCost {
        CheckerCost {
            macs: self.macs + rhs.macs,
            comparisons: self.comparisons + rhs.comparisons,
            table_reads: self.table_reads + rhs.table_reads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_is_zero() {
        assert_eq!(CheckerCost::free().total_ops(), 0);
    }

    #[test]
    fn add_is_componentwise() {
        let a = CheckerCost { macs: 1, comparisons: 2, table_reads: 3 };
        let b = CheckerCost { macs: 10, comparisons: 20, table_reads: 30 };
        let c = a + b;
        assert_eq!(c, CheckerCost { macs: 11, comparisons: 22, table_reads: 33 });
    }
}
