//! Light-weight approximation-error predictors — Rumba's "checkers" (§3.2).
//!
//! A dynamic checker never sees the exact result; it must predict, for every
//! accelerator invocation, how large the approximation error will be, using
//! either the accelerator's *inputs* (input-based methods) or its
//! approximate *outputs* (output-based methods):
//!
//! - [`LinearErrors`] — §3.2.1's linear model over the inputs (EEP),
//! - [`TreeErrors`] — §3.2.2's decision tree of depth ≤ 7 (EEP),
//! - [`EmaDetector`] — §3.2.3's exponential moving average (output-based),
//! - [`EvpErrors`] — the Errors-by-Value-Prediction alternative (predict the
//!   output, then difference it against the accelerator output) the paper
//!   evaluates against EEP and rejects.
//!
//! All checkers expose a [`CheckerCost`] describing the hardware work one
//! prediction costs (multiply-accumulates, comparisons, table reads), which
//! the accelerator and energy models consume.
//!
//! # Examples
//!
//! Train a decision-tree checker on observed errors and query it:
//!
//! ```
//! use rumba_predict::{ErrorEstimator, TreeErrors, TreeParams};
//!
//! // Error is high exactly when the (single) input is negative.
//! let inputs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 100.0 - 1.0]).collect();
//! let errors: Vec<f64> = inputs.iter().map(|x| if x[0] < 0.0 { 0.8 } else { 0.05 }).collect();
//! let rows: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
//! let mut tree = TreeErrors::train(&rows, &errors, &TreeParams::default()).unwrap();
//! assert!(tree.estimate(&[-0.5], &[]) > 0.5);
//! assert!(tree.estimate(&[0.5], &[]) < 0.2);
//! ```

mod config_words;
mod cost;
mod ema;
mod ensemble;
mod evp;
pub mod linalg;
mod linear;
mod table;
mod tree;

use std::error::Error;
use std::fmt;

pub use config_words::{
    decode_evp, decode_linear, decode_tree, encode_evp, encode_linear, encode_tree, EVP_MAGIC,
    LINEAR_MAGIC, TREE_MAGIC,
};
pub use cost::CheckerCost;
pub use ema::EmaDetector;
pub use ensemble::MaxEnsemble;
pub use evp::EvpErrors;
pub use linear::{LinearErrors, LinearModel};
pub use table::{TableErrors, TableParams};
pub use tree::{DecisionTree, TreeErrors, TreeNodeWord, TreeParams};

/// Errors produced while training predictors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PredictError {
    /// No training rows were supplied.
    EmptyTrainingSet,
    /// Training rows disagree on feature width, or targets have a different
    /// length than the inputs.
    ShapeMismatch {
        /// Description of the disagreement.
        detail: String,
    },
    /// The normal-equations system was singular even after ridge damping.
    SingularSystem,
    /// A hyper-parameter was out of range.
    InvalidParam {
        /// Name of the offending parameter.
        name: &'static str,
        /// Offending value rendered as text.
        value: String,
    },
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::EmptyTrainingSet => write!(f, "training set contains no rows"),
            PredictError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            PredictError::SingularSystem => {
                write!(f, "normal equations are singular; increase the ridge term")
            }
            PredictError::InvalidParam { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
        }
    }
}

impl Error for PredictError {}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, PredictError>;

/// A dynamic checker: predicts the approximation error of one invocation.
///
/// Input-based estimators (linear, tree, EVP) look only at `input`;
/// output-based estimators (EMA) look only at `approx_output`. The estimate
/// is on the same scale as the application's invocation error metric, so
/// the detection module can compare it directly against the tuning
/// threshold.
///
/// Estimators take `&mut self` because output-based methods carry online
/// state (the moving average); [`ErrorEstimator::reset`] clears that state
/// between runs.
pub trait ErrorEstimator: fmt::Debug + Send {
    /// Short scheme name as used in the paper's figures, e.g.
    /// `"linearErrors"`.
    fn name(&self) -> &'static str;

    /// Predicts the invocation's approximation error.
    fn estimate(&mut self, input: &[f64], approx_output: &[f64]) -> f64;

    /// Predicts the invocation's *signed* output-space error — the mean of
    /// `approx[j] − exact[j]` over the output elements — so the runtime can
    /// compensate by subtracting it from the approximate output in place.
    ///
    /// `magnitude` is the value [`ErrorEstimator::estimate`] returned for
    /// this same invocation; the default implementation echoes it back
    /// (magnitude-only checkers compensate as if the error were positive).
    /// Implementations must be pure (`&self`): the runtime calls this only
    /// *after* `estimate` for the row, and it must not advance any online
    /// state — compensated rows follow the same quarantine discipline as
    /// forced-exact ones.
    fn estimate_signed(&self, input: &[f64], approx_output: &[f64], magnitude: f64) -> f64 {
        let _ = (input, approx_output);
        magnitude
    }

    /// Scores `n` invocations from flat row-major buffers, appending one
    /// estimate per row to `scores` (cleared first). `inputs` is
    /// `n × input_dim` and `approx_outputs` is `n × output_dim`; a width of
    /// zero means "no data on that port" and hands every row an empty
    /// slice. Rows are scored in ascending order, so stateful estimators
    /// see the same sequence as a per-row loop — the default implementation
    /// *is* that loop, and implementors must preserve its bit-exact
    /// behaviour.
    fn estimate_batch(
        &mut self,
        n: usize,
        inputs: &[f64],
        input_dim: usize,
        approx_outputs: &[f64],
        output_dim: usize,
        scores: &mut Vec<f64>,
    ) {
        debug_assert_eq!(inputs.len(), n * input_dim);
        debug_assert_eq!(approx_outputs.len(), n * output_dim);
        scores.clear();
        scores.reserve(n);
        for i in 0..n {
            let x =
                if input_dim == 0 { &[][..] } else { &inputs[i * input_dim..(i + 1) * input_dim] };
            let a = if output_dim == 0 {
                &[][..]
            } else {
                &approx_outputs[i * output_dim..(i + 1) * output_dim]
            };
            scores.push(self.estimate(x, a));
        }
    }

    /// Hardware work one prediction costs.
    fn cost(&self) -> CheckerCost;

    /// Clears any online state. Stateless estimators need not override.
    fn reset(&mut self) {}

    /// Serializes the estimator's *online* state (not its trained
    /// coefficients) as plain `u64` config-words — the currency of the
    /// serving layer's session snapshots. Stateless estimators (linear,
    /// tree, EVP: everything they know is in the trained model) return an
    /// empty word list; only online detectors like the EMA override.
    fn export_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state previously produced by
    /// [`ErrorEstimator::export_state`] on an identically configured
    /// estimator, bit for bit.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when `words` does not decode
    /// for this estimator's configuration. Stateless estimators accept
    /// only an empty word list.
    fn import_state(&mut self, words: &[u64]) -> std::result::Result<(), String> {
        if words.is_empty() {
            Ok(())
        } else {
            Err(format!("{} carries no online state, got {} words", self.name(), words.len()))
        }
    }

    /// Re-fits the estimator's *trained* model — and its signed companion —
    /// from ground truth collected online: `rows` are accelerator input
    /// rows, `targets` the observed invocation-error magnitudes, and
    /// `signed_targets` the per-row mean signed output errors
    /// (`mean_j(approx[j] − exact[j])`). The runtime's watchdog calls this
    /// at the `Recalibrated` rung with the rows its recovery reservoir
    /// accumulated, so a checker trained before an input-distribution
    /// shift can re-learn the drifted regime without an offline pass.
    ///
    /// The default declines: output-based detectors (EMA) and composite
    /// estimators carry no refittable model, and the runtime falls back to
    /// its reset-only recalibration when refit is unsupported.
    ///
    /// # Errors
    ///
    /// Returns a description of why the refit was refused or failed; on
    /// error the estimator's trained model is unchanged.
    fn refit(
        &mut self,
        rows: &[&[f64]],
        targets: &[f64],
        signed_targets: &[f64],
    ) -> std::result::Result<(), String> {
        let _ = (rows, targets, signed_targets);
        Err(format!("{} does not support online refit", self.name()))
    }

    /// Serializes the estimator's *trained* model (coefficients or tree
    /// nodes, plus the signed companion) as `u64` config-words, so a
    /// session snapshot can migrate a checker that was re-fitted online —
    /// [`ErrorEstimator::export_state`] deliberately covers only online
    /// state and assumes the trained model is reproducible from the
    /// offline pipeline, which stops being true after the first
    /// [`ErrorEstimator::refit`]. Returns `None` for estimators without
    /// refit support (their trained state never diverges from offline
    /// training).
    fn export_model_words(&self) -> Option<Vec<u64>> {
        None
    }

    /// Restores a trained model previously produced by
    /// [`ErrorEstimator::export_model_words`], bit for bit.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when `words` does not decode
    /// for this estimator kind, or when the estimator does not support
    /// trained-model transport at all.
    fn import_model_words(&mut self, words: &[u64]) -> std::result::Result<(), String> {
        let _ = words;
        Err(format!("{} does not support trained-model import", self.name()))
    }

    /// A deterministic fingerprint of the estimator's *configuration* —
    /// kind plus the shape parameters that govern how
    /// [`ErrorEstimator::export_state`] words decode (EMA alpha window and
    /// slot count, model widths, tree size). Two estimators whose state
    /// words are interchangeable bit-for-bit must agree on this word; two
    /// whose word counts merely coincide (an EMA under a different alpha, a
    /// linear snapshot restored as tree) must not. The serving layer stores
    /// it alongside the state words and rejects restores onto a
    /// differently-configured checker.
    fn state_config_word(&self) -> u64 {
        config_fingerprint(self.name(), &[])
    }

    /// Whether the estimator reads accelerator inputs (true) or approximate
    /// outputs (false) — §3.5's placement constraint: only input-based
    /// detectors can run before/parallel to the accelerator.
    fn is_input_based(&self) -> bool;
}

/// Ridge damping used by [`ErrorEstimator::refit`] implementations.
/// Stiffer than the offline trainer's default because refit reservoirs
/// are small and biased toward fired rows, which leaves the normal
/// equations ill-conditioned under the offline damping.
pub const REFIT_RIDGE: f64 = 1e-4;

/// FNV-1a over the estimator name and its shape parameters — the default
/// currency of [`ErrorEstimator::state_config_word`].
#[must_use]
pub fn config_fingerprint(name: &str, params: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &p in params {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase() {
        for e in [
            PredictError::EmptyTrainingSet,
            PredictError::ShapeMismatch { detail: "x".into() },
            PredictError::SingularSystem,
            PredictError::InvalidParam { name: "depth", value: "0".into() },
        ] {
            let s = e.to_string();
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<PredictError>();
    }
}
