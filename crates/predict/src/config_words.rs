//! Config-stream serialization of the trained checkers.
//!
//! The paper transfers checker coefficients to the accelerator's
//! coefficient buffers "via a config queue (the same queue used to transfer
//! accelerator configuration)" (§3.2). This module defines that wire format
//! for the two trainable checkers:
//!
//! - linear: `[LINEAR_MAGIC, n_weights, weights..., bias]`
//! - tree: `[TREE_MAGIC, n_nodes, nodes...]` with each node either
//!   `[0, value]` (leaf) or `[1, feature, threshold]` (decision), in
//!   preorder.
//! - EVP: `[EVP_MAGIC, n_models, eps, models...]` with each value model as
//!   `[n_weights, weights..., bias]`.

use crate::tree::{DecisionTree, TreeNodeWord};
use crate::{EvpErrors, LinearErrors, LinearModel, PredictError, Result, TreeErrors};

/// Magic word marking a linear-checker stream.
pub const LINEAR_MAGIC: f64 = 0x4C_49_4E as f64; // "LIN"
/// Magic word marking a tree-checker stream.
pub const TREE_MAGIC: f64 = 0x54_52_45 as f64; // "TRE"
/// Magic word marking an EVP-checker stream.
pub const EVP_MAGIC: f64 = 0x45_56_50 as f64; // "EVP"

/// Serializes a linear checker.
///
/// # Examples
///
/// ```
/// use rumba_predict::{decode_linear, encode_linear, ErrorEstimator, LinearErrors};
///
/// let rows = [vec![0.0], vec![1.0]];
/// let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
/// let le = LinearErrors::train(&refs, &[0.0, 0.5], 1e-9).unwrap();
/// let mut restored = decode_linear(&encode_linear(&le)).unwrap();
/// assert!((restored.estimate(&[0.5], &[]) - 0.25).abs() < 1e-6);
/// ```
#[must_use]
pub fn encode_linear(checker: &LinearErrors) -> Vec<f64> {
    let model = checker.model();
    let mut words = vec![LINEAR_MAGIC, model.weights().len() as f64];
    words.extend_from_slice(model.weights());
    words.push(model.bias());
    words
}

/// Reconstructs a linear checker from [`encode_linear`] output.
///
/// # Errors
///
/// Returns [`PredictError::ShapeMismatch`] for a truncated or oversized
/// stream and [`PredictError::InvalidParam`] for a bad magic word.
pub fn decode_linear(words: &[f64]) -> Result<LinearErrors> {
    if words.first() != Some(&LINEAR_MAGIC) {
        return Err(PredictError::InvalidParam {
            name: "linear magic",
            value: words.first().map_or("<empty>".into(), |w| w.to_string()),
        });
    }
    let n = count(words.get(1))?;
    if words.len() != 2 + n + 1 {
        return Err(PredictError::ShapeMismatch {
            detail: format!("linear stream length {} for {n} weights", words.len()),
        });
    }
    let weights = words[2..2 + n].to_vec();
    let bias = words[2 + n];
    Ok(LinearErrors::from_model(LinearModel::from_parts(weights, bias)))
}

/// Serializes a tree checker: preorder node stream.
#[must_use]
pub fn encode_tree(checker: &TreeErrors) -> Vec<f64> {
    let node_words = checker.tree().to_node_words();
    let mut words = vec![TREE_MAGIC, node_words.len() as f64];
    for node in node_words {
        match node {
            TreeNodeWord::Leaf { value } => {
                words.push(0.0);
                words.push(value);
            }
            TreeNodeWord::Split { feature, threshold } => {
                words.push(1.0);
                words.push(feature as f64);
                words.push(threshold);
            }
        }
    }
    words
}

/// Reconstructs a tree checker from [`encode_tree`] output.
///
/// # Errors
///
/// Returns [`PredictError::InvalidParam`] for bad magic/tags and
/// [`PredictError::ShapeMismatch`] for malformed streams.
pub fn decode_tree(words: &[f64]) -> Result<TreeErrors> {
    if words.first() != Some(&TREE_MAGIC) {
        return Err(PredictError::InvalidParam {
            name: "tree magic",
            value: words.first().map_or("<empty>".into(), |w| w.to_string()),
        });
    }
    let n_nodes = count(words.get(1))?;
    let mut nodes = Vec::with_capacity(n_nodes);
    let mut pos = 2usize;
    for _ in 0..n_nodes {
        let tag = *words.get(pos).ok_or_else(|| truncated(words.len()))?;
        pos += 1;
        match tag as i64 {
            0 => {
                let value = *words.get(pos).ok_or_else(|| truncated(words.len()))?;
                pos += 1;
                nodes.push(TreeNodeWord::Leaf { value });
            }
            1 => {
                let feature = count(words.get(pos))?;
                let threshold = *words.get(pos + 1).ok_or_else(|| truncated(words.len()))?;
                pos += 2;
                nodes.push(TreeNodeWord::Split { feature, threshold });
            }
            _ => {
                return Err(PredictError::InvalidParam {
                    name: "tree node tag",
                    value: tag.to_string(),
                })
            }
        }
    }
    if pos != words.len() {
        return Err(PredictError::ShapeMismatch {
            detail: format!("tree stream has {} trailing words", words.len() - pos),
        });
    }
    Ok(TreeErrors::from_tree(DecisionTree::from_node_words(&nodes)?))
}

/// Serializes an EVP checker: one value model per output element plus the
/// relative-error denominator guard.
#[must_use]
pub fn encode_evp(checker: &EvpErrors) -> Vec<f64> {
    let mut words = vec![EVP_MAGIC, checker.models().len() as f64, checker.eps()];
    for model in checker.models() {
        words.push(model.weights().len() as f64);
        words.extend_from_slice(model.weights());
        words.push(model.bias());
    }
    words
}

/// Reconstructs an EVP checker from [`encode_evp`] output.
///
/// # Errors
///
/// Returns [`PredictError::InvalidParam`] for a bad magic word and
/// [`PredictError::ShapeMismatch`] for truncated or oversized streams.
pub fn decode_evp(words: &[f64]) -> Result<EvpErrors> {
    if words.first() != Some(&EVP_MAGIC) {
        return Err(PredictError::InvalidParam {
            name: "evp magic",
            value: words.first().map_or("<empty>".into(), |w| w.to_string()),
        });
    }
    let n_models = count(words.get(1))?;
    let eps = *words.get(2).ok_or_else(|| truncated(words.len()))?;
    let mut models = Vec::with_capacity(n_models);
    let mut pos = 3usize;
    for _ in 0..n_models {
        let n = count(words.get(pos))?;
        pos += 1;
        let end = pos + n + 1;
        if words.len() < end {
            return Err(truncated(words.len()));
        }
        let weights = words[pos..pos + n].to_vec();
        let bias = words[pos + n];
        models.push(LinearModel::from_parts(weights, bias));
        pos = end;
    }
    if pos != words.len() {
        return Err(PredictError::ShapeMismatch {
            detail: format!("evp stream has {} trailing words", words.len() - pos),
        });
    }
    Ok(EvpErrors::from_parts(models, eps))
}

fn count(word: Option<&f64>) -> Result<usize> {
    match word {
        Some(&w) if w >= 0.0 && w.fract() == 0.0 && w < 1e9 => Ok(w as usize),
        Some(&w) => Err(PredictError::InvalidParam { name: "config count", value: w.to_string() }),
        None => Err(PredictError::ShapeMismatch { detail: "missing count word".into() }),
    }
}

fn truncated(len: usize) -> PredictError {
    PredictError::ShapeMismatch { detail: format!("config stream truncated at {len} words") }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErrorEstimator, TreeParams};

    fn trained_pair() -> (LinearErrors, TreeErrors) {
        let rows: Vec<Vec<f64>> =
            (0..200).map(|i| vec![i as f64 / 200.0, (i % 13) as f64 / 13.0]).collect();
        let errors: Vec<f64> =
            rows.iter().map(|r| if r[0] > 0.6 { 0.4 + r[1] * 0.1 } else { 0.02 }).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        (
            LinearErrors::train(&refs, &errors, 1e-6).unwrap(),
            TreeErrors::train(&refs, &errors, &TreeParams::default()).unwrap(),
        )
    }

    #[test]
    fn linear_round_trip_is_exact() {
        let (linear, _) = trained_pair();
        let mut restored = decode_linear(&encode_linear(&linear)).unwrap();
        let mut original = linear;
        for i in 0..20 {
            let x = [i as f64 / 20.0, (i % 3) as f64 / 3.0];
            assert_eq!(original.estimate(&x, &[]), restored.estimate(&x, &[]));
        }
    }

    #[test]
    fn tree_round_trip_is_exact() {
        let (_, tree) = trained_pair();
        let mut restored = decode_tree(&encode_tree(&tree)).unwrap();
        let mut original = tree;
        for i in 0..50 {
            let x = [i as f64 / 50.0, (i % 7) as f64 / 7.0];
            assert_eq!(original.estimate(&x, &[]), restored.estimate(&x, &[]));
        }
        assert_eq!(original.tree().depth(), restored.tree().depth());
        assert_eq!(original.tree().node_count(), restored.tree().node_count());
    }

    fn trained_evp() -> EvpErrors {
        let rows: Vec<Vec<f64>> =
            (0..120).map(|i| vec![i as f64 / 120.0, (i % 5) as f64 / 5.0]).collect();
        let outs: Vec<Vec<f64>> =
            rows.iter().map(|r| vec![2.0 * r[0] + r[1], 1.0 - r[0], r[1] * 0.5]).collect();
        let r: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let o: Vec<&[f64]> = outs.iter().map(Vec::as_slice).collect();
        EvpErrors::train(&r, &o, 1e-9).unwrap()
    }

    #[test]
    fn evp_round_trip_is_exact() {
        let evp = trained_evp();
        let mut restored = decode_evp(&encode_evp(&evp)).unwrap();
        let mut original = evp;
        assert_eq!(restored.models().len(), original.models().len());
        assert_eq!(restored.eps().to_bits(), original.eps().to_bits());
        for i in 0..30 {
            let x = [i as f64 / 30.0, (i % 4) as f64 / 4.0];
            let a = [x[0] * 1.9, 1.0 - x[0] * 1.1, x[1] * 0.4];
            assert_eq!(
                original.estimate(&x, &a).to_bits(),
                restored.estimate(&x, &a).to_bits(),
                "row {i}"
            );
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let (linear, tree) = trained_pair();
        let evp = trained_evp();
        // Each decoder must reject the others' streams.
        assert!(decode_linear(&encode_tree(&tree)).is_err());
        assert!(decode_tree(&encode_linear(&linear)).is_err());
        assert!(decode_evp(&encode_linear(&linear)).is_err());
        assert!(decode_linear(&encode_evp(&evp)).is_err());
        assert!(decode_tree(&encode_evp(&evp)).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let (linear, tree) = trained_pair();
        let lw = encode_linear(&linear);
        let tw = encode_tree(&tree);
        assert!(decode_linear(&lw[..lw.len() - 1]).is_err());
        assert!(decode_tree(&tw[..tw.len() - 1]).is_err());
        let ew = encode_evp(&trained_evp());
        for cut in [ew.len() - 1, 2, 3] {
            assert!(decode_evp(&ew[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = ew;
        trailing.push(0.25);
        assert!(decode_evp(&trailing).is_err());
    }

    #[test]
    fn trailing_words_rejected() {
        let (_, tree) = trained_pair();
        let mut tw = encode_tree(&tree);
        tw.push(0.5);
        assert!(decode_tree(&tw).is_err());
    }
}
