//! Extension checker: ensemble of detector families.
//!
//! The fault-injection ablation shows the two checker families are
//! complementary — input-based models predict the *systematic*
//! approximation error, the output-based EMA catches *transient* output
//! anomalies the inputs cannot reveal. [`MaxEnsemble`] runs both and fires
//! on the worse verdict, covering both failure classes for the summed
//! hardware cost.

use crate::{CheckerCost, ErrorEstimator};

/// Fires on the maximum of two estimators' scores.
///
/// # Examples
///
/// ```
/// use rumba_predict::{EmaDetector, ErrorEstimator, LinearErrors, MaxEnsemble};
///
/// let rows = [vec![0.0], vec![1.0]];
/// let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
/// let linear = LinearErrors::train(&refs, &[0.0, 0.4], 1e-9).unwrap();
/// let ema = EmaDetector::new(8, 1).unwrap();
/// let mut both = MaxEnsemble::new(Box::new(linear), Box::new(ema));
/// // Scores at least as high as either member would alone.
/// assert!(both.estimate(&[1.0], &[0.5]) >= 0.39);
/// ```
#[derive(Debug)]
pub struct MaxEnsemble {
    first: Box<dyn ErrorEstimator>,
    second: Box<dyn ErrorEstimator>,
}

impl MaxEnsemble {
    /// Combines two estimators (typically one input-based, one
    /// output-based).
    #[must_use]
    pub fn new(first: Box<dyn ErrorEstimator>, second: Box<dyn ErrorEstimator>) -> Self {
        Self { first, second }
    }

    /// The first member.
    #[must_use]
    pub fn first(&self) -> &dyn ErrorEstimator {
        self.first.as_ref()
    }

    /// The second member.
    #[must_use]
    pub fn second(&self) -> &dyn ErrorEstimator {
        self.second.as_ref()
    }
}

impl ErrorEstimator for MaxEnsemble {
    fn name(&self) -> &'static str {
        "maxEnsemble"
    }

    fn estimate(&mut self, input: &[f64], approx_output: &[f64]) -> f64 {
        self.first.estimate(input, approx_output).max(self.second.estimate(input, approx_output))
    }

    fn cost(&self) -> CheckerCost {
        // Both datapaths run every prediction, plus the final max compare.
        self.first.cost()
            + self.second.cost()
            + CheckerCost { macs: 0, comparisons: 1, table_reads: 0 }
    }

    fn reset(&mut self) {
        self.first.reset();
        self.second.reset();
    }

    fn is_input_based(&self) -> bool {
        // Conservative: the ensemble needs the output if either member does,
        // so it can only run input-side when both members can.
        self.first.is_input_based() && self.second.is_input_based()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmaDetector, LinearErrors, TreeErrors, TreeParams};

    fn members() -> (LinearErrors, EmaDetector) {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 64.0]).collect();
        let errors: Vec<f64> = rows.iter().map(|r| r[0] * 0.2).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        (LinearErrors::train(&refs, &errors, 1e-9).unwrap(), EmaDetector::new(4, 1).unwrap())
    }

    #[test]
    fn score_is_elementwise_max() {
        let (linear, ema) = members();
        let mut l_alone = linear.clone();
        let mut both = MaxEnsemble::new(Box::new(linear), Box::new(ema));
        // Stable output: EMA stays near zero, so the ensemble tracks the
        // linear member.
        let _ = both.estimate(&[0.5], &[1.0]);
        let a = both.estimate(&[0.5], &[1.0]);
        let b = l_alone.estimate(&[0.5], &[]);
        assert!((a - b).abs() < 1e-12);
        // An output spike: EMA dominates.
        let spike = both.estimate(&[0.5], &[50.0]);
        assert!(spike > b * 10.0);
    }

    #[test]
    fn cost_sums_members_plus_compare() {
        let (linear, ema) = members();
        let lc = linear.cost();
        let ec = ema.cost();
        let both = MaxEnsemble::new(Box::new(linear), Box::new(ema));
        let bc = both.cost();
        assert_eq!(bc.macs, lc.macs + ec.macs);
        assert_eq!(bc.comparisons, lc.comparisons + ec.comparisons + 1);
    }

    #[test]
    fn placement_is_conservative() {
        let (linear, ema) = members();
        let mixed = MaxEnsemble::new(Box::new(linear.clone()), Box::new(ema));
        assert!(!mixed.is_input_based(), "EMA member forces output-side placement");

        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 64.0]).collect();
        let errors: Vec<f64> = rows.iter().map(|r| r[0] * 0.2).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let tree = TreeErrors::train(&refs, &errors, &TreeParams::default()).unwrap();
        let pure_input = MaxEnsemble::new(Box::new(linear), Box::new(tree));
        assert!(pure_input.is_input_based());
    }

    #[test]
    fn reset_propagates_to_members() {
        let (linear, ema) = members();
        let mut both = MaxEnsemble::new(Box::new(linear), Box::new(ema));
        let _ = both.estimate(&[0.1], &[5.0]);
        both.reset();
        // After reset the EMA member has no history: a fresh sample scores
        // only the linear part.
        let fresh = both.estimate(&[0.0], &[100.0]);
        assert!(fresh < 0.05, "fresh {fresh}");
    }
}
