//! Minimal dense linear algebra for the offline predictor trainers: a
//! column-major-free, `Vec<f64>`-backed square solver and the ridge
//! least-squares normal equations.
//!
//! Dimensions here are tiny (at most the 64 JPEG features plus a bias), so
//! straightforward Gaussian elimination with partial pivoting is both
//! adequate and dependency-free.

use crate::{PredictError, Result};

/// Solves the square system `A x = b` in place via Gaussian elimination with
/// partial pivoting. `a` is row-major `n × n`.
///
/// # Errors
///
/// Returns [`PredictError::SingularSystem`] if a pivot collapses below
/// `1e-12`.
///
/// # Panics
///
/// Panics if `a.len() != n * n` or `b.len() != n`.
///
/// # Examples
///
/// ```
/// use rumba_predict::linalg::solve;
///
/// // 2x + y = 5, x - y = 1  =>  x = 2, y = 1
/// let x = solve(vec![2.0, 1.0, 1.0, -1.0], vec![5.0, 1.0]).unwrap();
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
pub fn solve(mut a: Vec<f64>, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n * n, "matrix must be n x n");

    for col in 0..n {
        // Partial pivot: move the largest |entry| in this column up.
        let mut pivot_row = col;
        for row in col + 1..n {
            if a[row * n + col].abs() > a[pivot_row * n + col].abs() {
                pivot_row = row;
            }
        }
        if a[pivot_row * n + col].abs() < 1e-12 {
            return Err(PredictError::SingularSystem);
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }

        let pivot = a[col * n + col];
        for row in col + 1..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Ok(x)
}

/// Ridge least squares: finds `w` (length `dim + 1`, bias last) minimizing
/// `Σ (w·[x,1] - y)² + ridge ‖w‖²` over the training rows.
///
/// # Errors
///
/// Returns [`PredictError::EmptyTrainingSet`] for no rows,
/// [`PredictError::ShapeMismatch`] for inconsistent widths, and
/// [`PredictError::SingularSystem`] if the damped system still degenerates.
pub fn ridge_fit(rows: &[&[f64]], targets: &[f64], ridge: f64) -> Result<Vec<f64>> {
    if rows.is_empty() {
        return Err(PredictError::EmptyTrainingSet);
    }
    if rows.len() != targets.len() {
        return Err(PredictError::ShapeMismatch {
            detail: format!("{} rows vs {} targets", rows.len(), targets.len()),
        });
    }
    let dim = rows[0].len();
    if rows.iter().any(|r| r.len() != dim) {
        return Err(PredictError::ShapeMismatch { detail: "ragged feature rows".to_owned() });
    }

    // Augmented width: features plus a constant-1 bias column.
    let d = dim + 1;
    let mut xtx = vec![0.0; d * d];
    let mut xty = vec![0.0; d];
    let mut aug = vec![0.0; d];
    for (row, &y) in rows.iter().zip(targets) {
        aug[..dim].copy_from_slice(row);
        aug[dim] = 1.0;
        for i in 0..d {
            xty[i] += aug[i] * y;
            for j in i..d {
                xtx[i * d + j] += aug[i] * aug[j];
            }
        }
    }
    // Mirror the upper triangle and damp the diagonal.
    for i in 0..d {
        for j in 0..i {
            xtx[i * d + j] = xtx[j * d + i];
        }
        xtx[i * d + i] += ridge.max(0.0);
    }
    solve(xtx, xty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solve_identity() {
        let x = solve(vec![1.0, 0.0, 0.0, 1.0], vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let x = solve(vec![0.0, 1.0, 1.0, 0.0], vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let r = solve(vec![1.0, 2.0, 2.0, 4.0], vec![1.0, 2.0]);
        assert_eq!(r.unwrap_err(), PredictError::SingularSystem);
    }

    #[test]
    fn ridge_fit_recovers_exact_line() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 7.0).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let w = ridge_fit(&refs, &targets, 1e-9).unwrap();
        assert!((w[0] - 3.0).abs() < 1e-6);
        assert!((w[1] + 7.0).abs() < 1e-4);
    }

    #[test]
    fn ridge_fit_validates_shapes() {
        assert!(matches!(ridge_fit(&[], &[], 0.1), Err(PredictError::EmptyTrainingSet)));
        let row: &[f64] = &[1.0];
        assert!(matches!(
            ridge_fit(&[row], &[1.0, 2.0], 0.1),
            Err(PredictError::ShapeMismatch { .. })
        ));
        let ragged: Vec<&[f64]> = vec![&[1.0], &[1.0, 2.0]];
        assert!(matches!(
            ridge_fit(&ragged, &[1.0, 2.0], 0.1),
            Err(PredictError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn ridge_fit_handles_constant_feature() {
        // A constant column is collinear with the bias; ridge keeps it
        // solvable.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 1.0]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 5.0).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let w = ridge_fit(&refs, &targets, 1e-6).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn solve_random_spd_systems(seed in 0u64..500) {
            // Build A = M Mᵀ + I (symmetric positive definite) from a seeded
            // pseudo-random M, pick x, verify solve(A, A x) ≈ x.
            let n = 4;
            let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 500.0 - 1.0
            };
            let m: Vec<f64> = (0..n * n).map(|_| next()).collect();
            let mut a = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = if i == j { 1.0 } else { 0.0 };
                    for k in 0..n {
                        acc += m[i * n + k] * m[j * n + k];
                    }
                    a[i * n + j] = acc;
                }
            }
            let x_true: Vec<f64> = (0..n).map(|_| next()).collect();
            let mut b = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    b[i] += a[i * n + j] * x_true[j];
                }
            }
            let x = solve(a, b).unwrap();
            for (xs, xt) in x.iter().zip(&x_true) {
                prop_assert!((xs - xt).abs() < 1e-6);
            }
        }
    }
}
