//! Errors by Value Prediction (EVP) — the alternative §3.2 evaluates and
//! rejects in favor of direct error prediction (EEP).
//!
//! EVP predicts the *output* with a model, then derives the error estimate
//! by differencing the prediction against the accelerator's approximate
//! output. The paper measures EVP's estimates to be ~2.5× farther from the
//! true errors than EEP's on the Gaussian example; the `evp_eep` harness
//! binary reproduces that comparison.

use crate::{CheckerCost, ErrorEstimator, LinearModel, PredictError, Result};

/// An input-based estimator that predicts each output element with a linear
/// model and scores an invocation by the mean relative distance between the
/// predicted and the approximate outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct EvpErrors {
    models: Vec<LinearModel>,
    eps: f64,
}

impl EvpErrors {
    /// Trains one value model per output element from `(input row, exact
    /// output row)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::EmptyTrainingSet`] / shape errors from the
    /// underlying solver, and [`PredictError::ShapeMismatch`] if output rows
    /// are ragged.
    pub fn train(rows: &[&[f64]], exact_outputs: &[&[f64]], ridge: f64) -> Result<Self> {
        if rows.is_empty() {
            return Err(PredictError::EmptyTrainingSet);
        }
        if rows.len() != exact_outputs.len() {
            return Err(PredictError::ShapeMismatch {
                detail: format!("{} rows vs {} output rows", rows.len(), exact_outputs.len()),
            });
        }
        let out_dim = exact_outputs[0].len();
        if out_dim == 0 || exact_outputs.iter().any(|r| r.len() != out_dim) {
            return Err(PredictError::ShapeMismatch { detail: "ragged output rows".into() });
        }
        let mut models = Vec::with_capacity(out_dim);
        for j in 0..out_dim {
            let targets: Vec<f64> = exact_outputs.iter().map(|r| r[j]).collect();
            models.push(LinearModel::fit(rows, &targets, ridge)?);
        }
        Ok(Self { models, eps: 0.05 })
    }

    /// The per-output value models.
    #[must_use]
    pub fn models(&self) -> &[LinearModel] {
        &self.models
    }

    /// Rebuilds a checker from its components (the config-stream decoder's
    /// constructor).
    #[must_use]
    pub fn from_parts(models: Vec<LinearModel>, eps: f64) -> Self {
        Self { models, eps }
    }

    /// The relative-error denominator guard.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }
}

impl ErrorEstimator for EvpErrors {
    fn name(&self) -> &'static str {
        "EVP"
    }

    fn estimate(&mut self, input: &[f64], approx_output: &[f64]) -> f64 {
        let mut total = 0.0;
        let mut counted = 0usize;
        for (model, &a) in self.models.iter().zip(approx_output) {
            let predicted = model.predict(input);
            total += (a - predicted).abs() / predicted.abs().max(self.eps);
            counted += 1;
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }

    fn estimate_signed(&self, input: &[f64], approx_output: &[f64], magnitude: f64) -> f64 {
        // EVP's output-difference is already signed: the mean of
        // `approx[j] − predicted[j]` over the output elements.
        let mut total = 0.0;
        let mut counted = 0usize;
        for (model, &a) in self.models.iter().zip(approx_output) {
            total += a - model.predict(input);
            counted += 1;
        }
        if counted == 0 {
            magnitude
        } else {
            total / counted as f64
        }
    }

    fn state_config_word(&self) -> u64 {
        let mut params = vec![self.models.len() as u64, self.eps.to_bits()];
        params.extend(self.models.iter().map(|m| m.weights().len() as u64));
        crate::config_fingerprint(self.name(), &params)
    }

    fn cost(&self) -> CheckerCost {
        let per_model = self.models.first().map_or(0, |m| m.weights().len() + 1);
        CheckerCost {
            // Value MACs plus the differencing subtract per output.
            macs: self.models.len() * (per_model + 1),
            comparisons: 1,
            table_reads: self.models.len() * per_model,
        }
    }

    fn is_input_based(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_world() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 80.0]).collect();
        let outs: Vec<Vec<f64>> = rows.iter().map(|r| vec![2.0 * r[0], 1.0 - r[0]]).collect();
        (rows, outs)
    }

    #[test]
    fn perfect_value_model_scores_exact_output_as_zero() {
        let (rows, outs) = linear_world();
        let r: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let o: Vec<&[f64]> = outs.iter().map(Vec::as_slice).collect();
        let mut evp = EvpErrors::train(&r, &o, 1e-9).unwrap();
        // The accelerator output equals the true (linear) output: EVP sees
        // almost no deviation.
        let score = evp.estimate(&[0.5], &[1.0, 0.5]);
        assert!(score < 1e-6, "score {score}");
    }

    #[test]
    fn deviating_output_scores_high() {
        let (rows, outs) = linear_world();
        let r: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let o: Vec<&[f64]> = outs.iter().map(Vec::as_slice).collect();
        let mut evp = EvpErrors::train(&r, &o, 1e-9).unwrap();
        let good = evp.estimate(&[0.5], &[1.0, 0.5]);
        let bad = evp.estimate(&[0.5], &[2.0, 0.5]);
        assert!(bad > good + 0.3);
    }

    #[test]
    fn validates_shapes() {
        let rows: Vec<&[f64]> = vec![&[1.0]];
        let outs: Vec<&[f64]> = vec![&[1.0], &[2.0]];
        assert!(matches!(
            EvpErrors::train(&rows, &outs, 1e-6),
            Err(PredictError::ShapeMismatch { .. })
        ));
        assert!(matches!(EvpErrors::train(&[], &[], 1e-6), Err(PredictError::EmptyTrainingSet)));
    }

    #[test]
    fn cost_exceeds_plain_linear_checker() {
        let (rows, outs) = linear_world();
        let r: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let o: Vec<&[f64]> = outs.iter().map(Vec::as_slice).collect();
        let evp = EvpErrors::train(&r, &o, 1e-9).unwrap();
        // Two output models of width 1: EVP costs more MACs than one EEP
        // linear model would (2 weights + bias = 3 MACs there).
        assert!(evp.cost().macs > 3);
        assert!(evp.is_input_based());
        assert_eq!(evp.name(), "EVP");
    }
}
