//! Extension checker (not in the paper): error prediction by hashed lookup
//! table.
//!
//! §3.2 notes that "a variety of prediction techniques can be used to
//! predict these errors". This module adds the cheapest hardware shape of
//! all — a direct-mapped table indexed by the quantized, hash-folded inputs
//! (the same structure as a branch predictor's pattern table): zero MACs,
//! one table read, one comparison per prediction. Training is a single
//! averaging pass. Accuracy sits between the linear model and the decision
//! tree on low-dimensional kernels and degrades through aliasing as the
//! input width grows; the `ablate_checkers` harness quantifies the
//! trade-off.

use crate::{CheckerCost, ErrorEstimator, PredictError, Result};

/// Hyper-parameters for [`TableErrors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableParams {
    /// Quantization resolution per input dimension, in bits.
    pub bits_per_dim: u32,
    /// log2 of the table size (e.g. 12 → 4096 entries).
    pub table_bits: u32,
}

impl Default for TableParams {
    fn default() -> Self {
        Self { bits_per_dim: 4, table_bits: 12 }
    }
}

impl TableParams {
    fn validate(&self) -> Result<()> {
        if self.bits_per_dim == 0 || self.bits_per_dim > 16 {
            return Err(PredictError::InvalidParam {
                name: "bits_per_dim",
                value: self.bits_per_dim.to_string(),
            });
        }
        if self.table_bits == 0 || self.table_bits > 24 {
            return Err(PredictError::InvalidParam {
                name: "table_bits",
                value: self.table_bits.to_string(),
            });
        }
        Ok(())
    }
}

/// The `tableErrors` checker: input-based EEP by hashed-table lookup.
///
/// # Examples
///
/// ```
/// use rumba_predict::{ErrorEstimator, TableErrors, TableParams};
///
/// let rows: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 / 400.0]).collect();
/// let errors: Vec<f64> = rows.iter().map(|r| if r[0] > 0.75 { 0.6 } else { 0.05 }).collect();
/// let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
/// let mut table = TableErrors::train(&refs, &errors, &TableParams::default()).unwrap();
/// assert!(table.estimate(&[0.9], &[]) > 0.4);
/// assert!(table.estimate(&[0.2], &[]) < 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TableErrors {
    params: TableParams,
    mins: Vec<f64>,
    maxs: Vec<f64>,
    table: Vec<f64>,
    default_value: f64,
}

impl TableErrors {
    /// Trains the table on `(input row, observed invocation error)` pairs:
    /// one averaging pass per occupied cell; unoccupied cells fall back to
    /// the global mean error.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::EmptyTrainingSet`] / shape errors, and
    /// parameter errors from [`TableParams`].
    pub fn train(rows: &[&[f64]], errors: &[f64], params: &TableParams) -> Result<Self> {
        params.validate()?;
        if rows.is_empty() {
            return Err(PredictError::EmptyTrainingSet);
        }
        if rows.len() != errors.len() {
            return Err(PredictError::ShapeMismatch {
                detail: format!("{} rows vs {} errors", rows.len(), errors.len()),
            });
        }
        let dim = rows[0].len();
        if dim == 0 || rows.iter().any(|r| r.len() != dim) {
            return Err(PredictError::ShapeMismatch { detail: "ragged feature rows".into() });
        }

        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in rows {
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }

        let size = 1usize << params.table_bits;
        let mut sums = vec![0.0; size];
        let mut counts = vec![0u64; size];
        let mut this = Self {
            params: *params,
            mins,
            maxs,
            // Placeholder of the final size so index_of masks correctly
            // during the accumulation pass.
            table: vec![0.0; size],
            default_value: 0.0,
        };
        for (row, &e) in rows.iter().zip(errors) {
            let idx = this.index_of(row);
            sums[idx] += e;
            counts[idx] += 1;
        }
        let global_mean = errors.iter().sum::<f64>() / errors.len() as f64;
        this.default_value = global_mean;
        this.table = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| if c == 0 { global_mean } else { s / c as f64 })
            .collect();
        Ok(this)
    }

    /// Number of table entries.
    #[must_use]
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Quantizes and hash-folds an input row into a table index.
    fn index_of(&self, input: &[f64]) -> usize {
        let levels = (1u64 << self.params.bits_per_dim) - 1;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for (j, &v) in input.iter().enumerate().take(self.mins.len()) {
            let span = self.maxs[j] - self.mins[j];
            let unit = if span.abs() < f64::EPSILON {
                0.0
            } else {
                ((v - self.mins[j]) / span).clamp(0.0, 1.0)
            };
            let q = (unit * levels as f64).round() as u64;
            hash ^= q.wrapping_add(0x9e37_79b9_7f4a_7c15).rotate_left((j as u32 * 7) % 61);
            hash = hash.wrapping_mul(0x100_0000_01b3); // FNV prime
        }
        (hash as usize) & (self.table.len().max(1) - 1)
    }
}

impl ErrorEstimator for TableErrors {
    fn name(&self) -> &'static str {
        "tableErrors"
    }

    fn estimate(&mut self, input: &[f64], _approx_output: &[f64]) -> f64 {
        if self.table.is_empty() {
            return self.default_value;
        }
        let idx = self.index_of(input);
        self.table[idx].max(0.0)
    }

    fn cost(&self) -> CheckerCost {
        // Quantization is wiring, hashing a XOR tree: one table read and
        // the fire comparison dominate.
        CheckerCost { macs: 0, comparisons: 1, table_reads: 1 }
    }

    fn is_input_based(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn step_world(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let errors = rows.iter().map(|r| if r[0] > 0.5 { 0.8 } else { 0.1 }).collect();
        (rows, errors)
    }

    #[test]
    fn learns_a_step_in_one_dimension() {
        let (rows, errors) = step_world(512);
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let mut t = TableErrors::train(&refs, &errors, &TableParams::default()).unwrap();
        assert!(t.estimate(&[0.9], &[]) > 0.6);
        assert!(t.estimate(&[0.1], &[]) < 0.3);
    }

    #[test]
    fn unseen_inputs_fall_back_to_global_mean() {
        let (rows, errors) = step_world(8); // sparse: most cells empty
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let params = TableParams { bits_per_dim: 8, table_bits: 16 };
        let mut t = TableErrors::train(&refs, &errors, &params).unwrap();
        let global = errors.iter().sum::<f64>() / errors.len() as f64;
        // An input far from every training cell reads the fallback.
        let probe = t.estimate(&[0.123_456_7], &[]);
        assert!((0.1..=0.8).contains(&probe));
        let _ = global;
    }

    #[test]
    fn validates_parameters_and_shapes() {
        let (rows, errors) = step_world(16);
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        assert!(TableErrors::train(&[], &[], &TableParams::default()).is_err());
        assert!(TableErrors::train(&refs, &errors[..8], &TableParams::default()).is_err());
        assert!(TableErrors::train(
            &refs,
            &errors,
            &TableParams { bits_per_dim: 0, ..TableParams::default() }
        )
        .is_err());
        assert!(TableErrors::train(
            &refs,
            &errors,
            &TableParams { table_bits: 30, ..TableParams::default() }
        )
        .is_err());
    }

    #[test]
    fn cheapest_checker_of_all() {
        let (rows, errors) = step_world(64);
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let t = TableErrors::train(&refs, &errors, &TableParams::default()).unwrap();
        assert_eq!(t.cost().total_ops(), 2);
        assert!(t.is_input_based());
        assert_eq!(t.name(), "tableErrors");
    }

    proptest! {
        #[test]
        fn estimates_bounded_by_training_errors(seed in 0u64..100) {
            let mut state = seed.wrapping_mul(0x9e37_79b9).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 1000.0
            };
            let rows: Vec<Vec<f64>> = (0..200).map(|_| vec![next(), next()]).collect();
            let errors: Vec<f64> = (0..200).map(|_| next()).collect();
            let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
            let mut t = TableErrors::train(&refs, &errors, &TableParams::default()).unwrap();
            let lo = errors.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = errors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for _ in 0..20 {
                let e = t.estimate(&[next(), next()], &[]);
                // Cell averages and the global mean both live inside the
                // training error range.
                prop_assert!(e >= lo - 1e-12 && e <= hi + 1e-12);
            }
        }

        #[test]
        fn deterministic_lookup(seed in 0u64..50) {
            let (rows, errors) = step_world(128);
            let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
            let mut t = TableErrors::train(&refs, &errors, &TableParams::default()).unwrap();
            let x = [seed as f64 / 50.0];
            prop_assert_eq!(t.estimate(&x, &[]), t.estimate(&x, &[]));
        }
    }
}
