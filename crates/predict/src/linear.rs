//! §3.2.1 — error prediction using a linear model.
//!
//! `err = w0*x0 + w1*x1 + ... + w(N-1)*x(N-1) + c` (Equation 1), with the
//! weights and constant determined by offline ridge least squares on
//! training errors. One online prediction costs `N` multiply-adds plus one
//! threshold comparison.

use crate::linalg::ridge_fit;
use crate::{CheckerCost, ErrorEstimator, Result, REFIT_RIDGE};

/// A plain affine function `w · x + c`, reusable for value prediction (EVP)
/// as well as error prediction (EEP).
///
/// # Examples
///
/// ```
/// use rumba_predict::LinearModel;
///
/// let rows: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 1.0).collect();
/// let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
/// let m = LinearModel::fit(&refs, &ys, 1e-9).unwrap();
/// assert!((m.predict(&[10.0]) - 21.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearModel {
    /// Fits the model by ridge least squares.
    ///
    /// # Errors
    ///
    /// Propagates shape and singularity errors from the solver.
    pub fn fit(rows: &[&[f64]], targets: &[f64], ridge: f64) -> Result<Self> {
        let w = ridge_fit(rows, targets, ridge)?;
        let (bias, weights) = w.split_last().expect("solver output is dim+1 wide");
        Ok(Self { weights: weights.to_vec(), bias: *bias })
    }

    /// Evaluates `w · x + c`. Extra trailing features are ignored; missing
    /// ones are treated as zero, mirroring a fixed-width hardware MAC chain.
    #[must_use]
    pub fn predict(&self, input: &[f64]) -> f64 {
        let mut acc = self.bias;
        for (w, x) in self.weights.iter().zip(input) {
            acc += w * x;
        }
        acc
    }

    /// Rebuilds a model from raw coefficients (the config-stream decoder's
    /// constructor).
    #[must_use]
    pub fn from_parts(weights: Vec<f64>, bias: f64) -> Self {
        Self { weights, bias }
    }

    /// Fitted feature weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted constant term.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

/// The `linearErrors` checker: an input-based EEP estimator backed by one
/// [`LinearModel`] trained directly on observed invocation errors, plus an
/// optional second model fit on *signed* output-space errors for the
/// compensation path.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearErrors {
    model: LinearModel,
    signed: Option<LinearModel>,
}

impl LinearErrors {
    /// Trains on `(input row, observed invocation error)` pairs gathered by
    /// the offline trainer.
    ///
    /// # Errors
    ///
    /// Propagates shape and singularity errors from the solver.
    pub fn train(rows: &[&[f64]], errors: &[f64], ridge: f64) -> Result<Self> {
        Ok(Self { model: LinearModel::fit(rows, errors, ridge)?, signed: None })
    }

    /// Wraps an already-built model (the config-stream decoder's
    /// constructor).
    #[must_use]
    pub fn from_model(model: LinearModel) -> Self {
        Self { model, signed: None }
    }

    /// Attaches a model fit on signed output-space errors (mean of
    /// `approx[j] − exact[j]` per row); [`ErrorEstimator::estimate_signed`]
    /// evaluates it unclamped.
    #[must_use]
    pub fn with_signed_model(mut self, signed: LinearModel) -> Self {
        self.signed = Some(signed);
        self
    }

    /// The underlying affine model (weights feed the coefficient buffer).
    #[must_use]
    pub fn model(&self) -> &LinearModel {
        &self.model
    }

    /// The signed-error model, when one was attached.
    #[must_use]
    pub fn signed_model(&self) -> Option<&LinearModel> {
        self.signed.as_ref()
    }
}

/// Appends one affine model as `[width, weight bits..., bias bits]`.
fn push_model_words(out: &mut Vec<u64>, model: &LinearModel) {
    out.push(model.weights().len() as u64);
    out.extend(model.weights().iter().map(|w| w.to_bits()));
    out.push(model.bias().to_bits());
}

/// Parses one affine model written by [`push_model_words`], advancing
/// `pos` past it.
fn parse_model_words(words: &[u64], pos: &mut usize) -> std::result::Result<LinearModel, String> {
    let width = *words.get(*pos).ok_or("linear model words ended before the width")? as usize;
    if width >= words.len() {
        return Err(format!("linear model claims {width} weights, only {} words", words.len()));
    }
    let end = *pos + 1 + width + 1;
    if words.len() < end {
        return Err(format!("linear model wants {width} weights + bias, words ran out"));
    }
    let weights: Vec<f64> =
        words[*pos + 1..*pos + 1 + width].iter().map(|&w| f64::from_bits(w)).collect();
    let bias = f64::from_bits(words[end - 1]);
    if weights.iter().chain([&bias]).any(|v| !v.is_finite()) {
        return Err("linear model words decode to non-finite coefficients".to_owned());
    }
    *pos = end;
    Ok(LinearModel { weights, bias })
}

impl ErrorEstimator for LinearErrors {
    fn name(&self) -> &'static str {
        "linearErrors"
    }

    fn estimate(&mut self, input: &[f64], _approx_output: &[f64]) -> f64 {
        // Magnitude estimates stay nonnegative; clamp the affine output.
        // The signed path below is deliberately unclamped.
        self.model.predict(input).max(0.0)
    }

    fn estimate_signed(&self, input: &[f64], _approx_output: &[f64], magnitude: f64) -> f64 {
        match &self.signed {
            Some(m) => m.predict(input),
            None => magnitude,
        }
    }

    fn state_config_word(&self) -> u64 {
        crate::config_fingerprint(
            self.name(),
            &[self.model.weights().len() as u64, u64::from(self.signed.is_some())],
        )
    }

    fn cost(&self) -> CheckerCost {
        CheckerCost {
            macs: self.model.weights().len() + 1,
            comparisons: 1,
            table_reads: self.model.weights().len() + 1,
        }
    }

    fn refit(
        &mut self,
        rows: &[&[f64]],
        targets: &[f64],
        signed_targets: &[f64],
    ) -> std::result::Result<(), String> {
        // Fit both models before swapping either, so a failed signed fit
        // cannot leave a half-replaced checker behind.
        let model = LinearModel::fit(rows, targets, REFIT_RIDGE).map_err(|e| e.to_string())?;
        let signed =
            LinearModel::fit(rows, signed_targets, REFIT_RIDGE).map_err(|e| e.to_string())?;
        self.model = model;
        self.signed = Some(signed);
        Ok(())
    }

    fn export_model_words(&self) -> Option<Vec<u64>> {
        let mut out = Vec::new();
        push_model_words(&mut out, &self.model);
        match &self.signed {
            Some(signed) => {
                out.push(1);
                push_model_words(&mut out, signed);
            }
            None => out.push(0),
        }
        Some(out)
    }

    fn import_model_words(&mut self, words: &[u64]) -> std::result::Result<(), String> {
        let mut pos = 0usize;
        let model = parse_model_words(words, &mut pos)?;
        let signed = match words.get(pos).copied() {
            Some(0) => {
                pos += 1;
                None
            }
            Some(1) => {
                pos += 1;
                Some(parse_model_words(words, &mut pos)?)
            }
            other => return Err(format!("linear signed flag must be 0|1, got {other:?}")),
        };
        if pos != words.len() {
            return Err(format!("{} unused linear model words", words.len() - pos));
        }
        self.model = model;
        self.signed = signed;
        Ok(())
    }

    fn is_input_based(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn affine_rows(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![i as f64 / n as f64, ((i * 37) % n) as f64 / n as f64]).collect();
        let ys = rows.iter().map(|r| 0.3 * r[0] - 0.1 * r[1] + 0.5).collect();
        (rows, ys)
    }

    #[test]
    fn recovers_affine_coefficients() {
        let (rows, ys) = affine_rows(64);
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let m = LinearModel::fit(&refs, &ys, 1e-9).unwrap();
        assert!((m.weights()[0] - 0.3).abs() < 1e-6);
        assert!((m.weights()[1] + 0.1).abs() < 1e-6);
        assert!((m.bias() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn estimate_is_clamped_nonnegative() {
        let rows = [vec![0.0], vec![1.0]];
        let errors = [0.0, -0.0];
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let mut le = LinearErrors::train(&refs, &errors, 1e-6).unwrap();
        assert!(le.estimate(&[-100.0], &[]) >= 0.0);
    }

    #[test]
    fn cost_scales_with_input_width() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64; 5]).collect();
        let errors: Vec<f64> = (0..10).map(|i| i as f64 * 0.01).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let le = LinearErrors::train(&refs, &errors, 1e-3).unwrap();
        assert_eq!(le.cost().macs, 6);
        assert!(le.is_input_based());
    }

    #[test]
    fn name_matches_paper_label() {
        let rows = [vec![0.0], vec![1.0]];
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let le = LinearErrors::train(&refs, &[0.1, 0.2], 1e-6).unwrap();
        assert_eq!(le.name(), "linearErrors");
    }

    #[test]
    fn refit_replaces_both_models_deterministically() {
        let (rows, ys) = affine_rows(64);
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let mut le = LinearErrors::train(&refs, &ys, 1e-6).unwrap();
        assert!(le.signed_model().is_none());
        let new_targets: Vec<f64> = rows.iter().map(|r| 0.9 * r[0] + 0.2).collect();
        let signed: Vec<f64> = rows.iter().map(|r| 0.5 * r[1] - 0.1).collect();
        le.refit(&refs, &new_targets, &signed).unwrap();
        assert!((le.model().predict(&[1.0, 0.0]) - 1.1).abs() < 1e-3);
        assert!(le.signed_model().is_some());
        let mut again = LinearErrors::train(&refs, &ys, 1e-6).unwrap();
        again.refit(&refs, &new_targets, &signed).unwrap();
        assert_eq!(le.model().weights(), again.model().weights());
    }

    #[test]
    fn model_words_round_trip_bit_for_bit() {
        let (rows, ys) = affine_rows(32);
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let signed: Vec<f64> = rows.iter().map(|r| r[0] - r[1]).collect();
        let mut le = LinearErrors::train(&refs, &ys, 1e-6).unwrap();
        le.refit(&refs, &ys, &signed).unwrap();
        let words = le.export_model_words().unwrap();
        let mut other = LinearErrors::train(&refs, &signed, 1e-6).unwrap();
        other.import_model_words(&words).unwrap();
        assert_eq!(other.export_model_words().unwrap(), words);
        assert_eq!(
            le.model().predict(&[0.3, 0.7]).to_bits(),
            other.model().predict(&[0.3, 0.7]).to_bits()
        );
        // Truncated and garbage streams are rejected.
        assert!(other.import_model_words(&words[..words.len() - 1]).is_err());
        assert!(other.import_model_words(&[u64::MAX]).is_err());
    }

    #[test]
    fn predict_tolerates_width_mismatch() {
        let m = LinearModel { weights: vec![1.0, 2.0], bias: 0.0 };
        assert_eq!(m.predict(&[1.0]), 1.0);
        assert_eq!(m.predict(&[1.0, 1.0, 9.0]), 3.0);
    }
}
