//! §3.2.3 — error prediction using an exponential moving average.
//!
//! The only *output-based* method: it watches the stream of approximate
//! outputs and flags elements that deviate sharply from the recent trend,
//! `EMA = e·α + EMA·(1-α)` with `α = 2/(1+N)` (Equation 2). It needs no
//! offline training, but it can only run after the accelerator produces its
//! output (§3.5).

use crate::{CheckerCost, ErrorEstimator, PredictError, Result};

/// The `EMA` checker.
///
/// One average is tracked per output element position so multi-output
/// kernels (e.g. `fft`'s cos/sin pair) don't smear unrelated channels
/// together. The estimate for an invocation is the mean relative deviation
/// of its outputs from their averages.
///
/// # Examples
///
/// ```
/// use rumba_predict::{EmaDetector, ErrorEstimator};
///
/// let mut ema = EmaDetector::new(8, 1).unwrap();
/// // Warm up on a steady stream...
/// for _ in 0..20 {
///     let _ = ema.estimate(&[], &[1.0]);
/// }
/// // ...then an outlier scores far higher than the steady state.
/// let steady = ema.estimate(&[], &[1.0]);
/// let outlier = ema.estimate(&[], &[3.0]);
/// assert!(outlier > 10.0 * steady.max(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmaDetector {
    alpha: f64,
    history_len: usize,
    state: Vec<Option<f64>>,
    eps: f64,
    skipped_non_finite: u64,
}

impl EmaDetector {
    /// Creates a detector with an `N`-element history window
    /// (`α = 2 / (1 + N)`) tracking `output_dim` element positions.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParam`] if `history_len` or
    /// `output_dim` is zero.
    pub fn new(history_len: usize, output_dim: usize) -> Result<Self> {
        if history_len == 0 {
            return Err(PredictError::InvalidParam { name: "history_len", value: "0".into() });
        }
        if output_dim == 0 {
            return Err(PredictError::InvalidParam { name: "output_dim", value: "0".into() });
        }
        Ok(Self {
            alpha: 2.0 / (1.0 + history_len as f64),
            history_len,
            state: vec![None; output_dim],
            eps: 0.05,
            skipped_non_finite: 0,
        })
    }

    /// Non-finite output samples skipped (never folded into the moving
    /// average) since construction or the last [`ErrorEstimator::reset`].
    #[must_use]
    pub fn skipped_non_finite(&self) -> u64 {
        self.skipped_non_finite
    }

    /// The smoothing factor `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The history window length `N` this detector was built with.
    #[must_use]
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// Current moving average for output position `i`, if one element has
    /// been seen.
    #[must_use]
    pub fn current(&self, i: usize) -> Option<f64> {
        self.state.get(i).copied().flatten()
    }
}

impl ErrorEstimator for EmaDetector {
    fn name(&self) -> &'static str {
        "EMA"
    }

    fn estimate(&mut self, _input: &[f64], approx_output: &[f64]) -> f64 {
        let mut total = 0.0;
        let mut counted = 0usize;
        let mut poisoned = false;
        for (slot, &e) in self.state.iter_mut().zip(approx_output) {
            if !e.is_finite() {
                // A NaN/Inf sample must never reach the recurrence: folding
                // it in makes the average NaN forever, and every later
                // estimate for this element silently stops firing.
                self.skipped_non_finite += 1;
                poisoned = true;
                continue;
            }
            match slot {
                Some(ema) => {
                    total += (e - *ema).abs() / ema.abs().max(self.eps);
                    counted += 1;
                    *ema = e * self.alpha + *ema * (1.0 - self.alpha);
                }
                None => {
                    // First sample: no history yet, deviation defined as 0.
                    *slot = Some(e);
                    counted += 1;
                }
            }
        }
        if poisoned {
            // A non-finite output is the largest possible deviation: fire
            // unconditionally (matches the calibrator's sanitization rule).
            f64::INFINITY
        } else if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }

    fn estimate_signed(&self, _input: &[f64], approx_output: &[f64], magnitude: f64) -> f64 {
        // Signed deviation from the moving trend, in output space. Pure:
        // the averages were already advanced by the paired `estimate` call
        // and must not move again. Unseeded or non-finite slots contribute
        // nothing; with no usable slot, fall back to the magnitude.
        let mut total = 0.0;
        let mut counted = 0usize;
        for (slot, &e) in self.state.iter().zip(approx_output) {
            if let Some(ema) = slot {
                if e.is_finite() {
                    total += e - *ema;
                    counted += 1;
                }
            }
        }
        if counted == 0 {
            magnitude
        } else {
            total / counted as f64
        }
    }

    fn state_config_word(&self) -> u64 {
        crate::config_fingerprint(
            self.name(),
            &[self.history_len as u64, self.state.len() as u64, self.eps.to_bits()],
        )
    }

    fn cost(&self) -> CheckerCost {
        // Per element: one multiply-add to update the average, one
        // subtract/compare against the threshold.
        CheckerCost { macs: 2 * self.state.len(), comparisons: self.state.len(), table_reads: 1 }
    }

    fn reset(&mut self) {
        for slot in &mut self.state {
            *slot = None;
        }
        self.skipped_non_finite = 0;
    }

    fn export_state(&self) -> Vec<u64> {
        // (flag, bits) per slot: a NaN sentinel could not distinguish
        // "never seen" from a genuinely poisoned average, so seededness is
        // its own word. The skip counter rides along at the end.
        let mut words = Vec::with_capacity(2 * self.state.len() + 1);
        for slot in &self.state {
            match slot {
                Some(ema) => {
                    words.push(1);
                    words.push(ema.to_bits());
                }
                None => {
                    words.push(0);
                    words.push(0);
                }
            }
        }
        words.push(self.skipped_non_finite);
        words
    }

    fn import_state(&mut self, words: &[u64]) -> std::result::Result<(), String> {
        let expect = 2 * self.state.len() + 1;
        if words.len() != expect {
            return Err(format!(
                "EMA state wants {expect} words for {} slots, got {}",
                self.state.len(),
                words.len()
            ));
        }
        for (i, slot) in self.state.iter_mut().enumerate() {
            *slot = match words[2 * i] {
                0 => None,
                1 => Some(f64::from_bits(words[2 * i + 1])),
                flag => return Err(format!("EMA slot {i} flag must be 0|1, got {flag}")),
            };
        }
        self.skipped_non_finite = words[expect - 1];
        Ok(())
    }

    fn is_input_based(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_follows_equation_2() {
        let ema = EmaDetector::new(9, 1).unwrap();
        assert!((ema.alpha() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_parameters() {
        assert!(EmaDetector::new(0, 1).is_err());
        assert!(EmaDetector::new(4, 0).is_err());
    }

    #[test]
    fn first_sample_scores_zero() {
        let mut ema = EmaDetector::new(4, 2).unwrap();
        assert_eq!(ema.estimate(&[], &[0.7, -0.3]), 0.0);
    }

    #[test]
    fn constant_stream_scores_zero() {
        let mut ema = EmaDetector::new(4, 1).unwrap();
        for _ in 0..10 {
            assert!(ema.estimate(&[], &[2.5]) < 1e-12);
        }
    }

    #[test]
    fn update_follows_the_recurrence() {
        let mut ema = EmaDetector::new(3, 1).unwrap(); // α = 0.5
        let _ = ema.estimate(&[], &[1.0]);
        let _ = ema.estimate(&[], &[3.0]);
        // EMA = 3*0.5 + 1*0.5 = 2.0
        assert!((ema.current(0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn state_round_trips_bit_for_bit() {
        let mut ema = EmaDetector::new(5, 3).unwrap();
        let _ = ema.estimate(&[], &[0.3, f64::NAN, 0.9]);
        let _ = ema.estimate(&[], &[0.7, 0.1, 1.1]);
        let words = ema.export_state();
        let mut fresh = EmaDetector::new(5, 3).unwrap();
        fresh.import_state(&words).unwrap();
        assert_eq!(fresh, ema);
        // The restored detector scores the next sample identically.
        let next = [0.4, 0.2, 0.8];
        assert_eq!(ema.estimate(&[], &next).to_bits(), fresh.estimate(&[], &next).to_bits());
    }

    #[test]
    fn import_rejects_malformed_words() {
        let mut ema = EmaDetector::new(4, 2).unwrap();
        assert!(ema.import_state(&[1, 0, 0]).is_err()); // wrong length
        assert!(ema.import_state(&[2, 0, 0, 0, 0]).is_err()); // bad flag
    }

    #[test]
    fn reset_clears_history() {
        let mut ema = EmaDetector::new(4, 1).unwrap();
        let _ = ema.estimate(&[], &[5.0]);
        ema.reset();
        assert_eq!(ema.current(0), None);
        assert_eq!(ema.estimate(&[], &[100.0]), 0.0);
    }

    #[test]
    fn per_channel_averages_are_independent() {
        let mut ema = EmaDetector::new(8, 2).unwrap();
        for _ in 0..20 {
            let _ = ema.estimate(&[], &[1.0, -1.0]);
        }
        // Channel 0 jumps, channel 1 steady: score reflects only the jump.
        let score = ema.estimate(&[], &[2.0, -1.0]);
        assert!(score > 0.4 && score < 0.6, "score {score}");
    }

    #[test]
    fn non_finite_sample_never_poisons_the_state() {
        // Regression: before the fix, one NaN made `state[0]` NaN forever —
        // every later estimate was NaN, so the element never fired again.
        let mut ema = EmaDetector::new(4, 1).unwrap();
        for _ in 0..10 {
            let _ = ema.estimate(&[], &[1.0]);
        }
        let steady_state = ema.current(0).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let score = ema.estimate(&[], &[bad]);
            assert_eq!(score, f64::INFINITY, "non-finite sample must fire unconditionally");
        }
        assert_eq!(ema.skipped_non_finite(), 3);
        assert_eq!(ema.current(0), Some(steady_state), "state untouched by bad samples");
        // The detector still works: a steady sample scores near zero, an
        // outlier still scores high and finite.
        assert!(ema.estimate(&[], &[1.0]) < 1e-9);
        let outlier = ema.estimate(&[], &[5.0]);
        assert!(outlier.is_finite() && outlier > 1.0, "outlier {outlier}");
    }

    #[test]
    fn non_finite_first_sample_leaves_slot_unseeded() {
        let mut ema = EmaDetector::new(4, 2).unwrap();
        let score = ema.estimate(&[], &[f64::NAN, 2.0]);
        assert_eq!(score, f64::INFINITY);
        assert_eq!(ema.current(0), None, "NaN must not seed the average");
        assert_eq!(ema.current(1), Some(2.0));
    }

    #[test]
    fn reset_clears_the_skip_counter() {
        let mut ema = EmaDetector::new(4, 1).unwrap();
        let _ = ema.estimate(&[], &[f64::NAN]);
        assert_eq!(ema.skipped_non_finite(), 1);
        ema.reset();
        assert_eq!(ema.skipped_non_finite(), 0);
    }

    #[test]
    fn is_output_based() {
        let ema = EmaDetector::new(4, 1).unwrap();
        assert!(!ema.is_input_based());
        assert_eq!(ema.name(), "EMA");
    }
}
