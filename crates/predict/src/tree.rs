//! §3.2.2 — error prediction using a decision tree.
//!
//! A CART-style regression tree over the accelerator inputs: decision nodes
//! compare one input against a trained constant, leaf nodes store the
//! predicted error. Only comparisons are needed online, so the checker is
//! cheap; the paper caps the depth at 7 and so does [`TreeParams::default`].

use std::sync::Arc;

use crate::{CheckerCost, ErrorEstimator, PredictError, Result};

/// Appends one tree as `[node_count, then per node: tag, feature, bits]`
/// in preorder (`tag` 0 = leaf with `bits` = value, 1 = split on
/// `feature` at threshold `bits`).
fn push_tree_words(out: &mut Vec<u64>, tree: &DecisionTree) {
    let nodes = tree.to_node_words();
    out.push(nodes.len() as u64);
    for node in nodes {
        match node {
            TreeNodeWord::Leaf { value } => {
                out.push(0);
                out.push(0);
                out.push(value.to_bits());
            }
            TreeNodeWord::Split { feature, threshold } => {
                out.push(1);
                out.push(feature as u64);
                out.push(threshold.to_bits());
            }
        }
    }
}

/// Parses one tree written by [`push_tree_words`], advancing `pos`.
fn parse_tree_words(words: &[u64], pos: &mut usize) -> std::result::Result<DecisionTree, String> {
    let count = *words.get(*pos).ok_or("tree model words ended before the node count")? as usize;
    if count >= words.len() {
        return Err(format!("tree model claims {count} nodes, only {} words", words.len()));
    }
    let end = *pos + 1 + 3 * count;
    if words.len() < end {
        return Err(format!("tree model wants {count} nodes, words ran out"));
    }
    let mut nodes = Vec::with_capacity(count);
    for i in 0..count {
        let base = *pos + 1 + 3 * i;
        let value = f64::from_bits(words[base + 2]);
        nodes.push(match words[base] {
            0 => TreeNodeWord::Leaf { value },
            1 => TreeNodeWord::Split { feature: words[base + 1] as usize, threshold: value },
            tag => return Err(format!("tree node tag must be 0|1, got {tag}")),
        });
    }
    *pos = end;
    DecisionTree::from_node_words(&nodes).map_err(|e| e.to_string())
}

/// Training hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0). The paper limits this to 7.
    pub max_depth: usize,
    /// Minimum training rows a leaf may hold.
    pub min_samples_leaf: usize,
    /// Candidate split thresholds evaluated per feature (quantile grid).
    pub candidate_splits: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { max_depth: 7, min_samples_leaf: 8, candidate_splits: 16 }
    }
}

impl TreeParams {
    fn validate(&self) -> Result<()> {
        if self.max_depth == 0 {
            return Err(PredictError::InvalidParam { name: "max_depth", value: "0".into() });
        }
        if self.min_samples_leaf == 0 {
            return Err(PredictError::InvalidParam { name: "min_samples_leaf", value: "0".into() });
        }
        if self.candidate_splits < 2 {
            return Err(PredictError::InvalidParam {
                name: "candidate_splits",
                value: self.candidate_splits.to_string(),
            });
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// A regression tree trained by variance-reduction CART.
///
/// # Examples
///
/// ```
/// use rumba_predict::{DecisionTree, TreeParams};
///
/// let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
/// let ys: Vec<f64> = rows.iter().map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 }).collect();
/// let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
/// let tree = DecisionTree::fit(&refs, &ys, &TreeParams::default()).unwrap();
/// assert!(tree.predict(&[0.9]) > 0.9);
/// assert!(tree.predict(&[0.1]) < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    depth: usize,
    node_count: usize,
}

impl DecisionTree {
    /// Trains a tree on `(input row, target)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::EmptyTrainingSet`] for no rows,
    /// [`PredictError::ShapeMismatch`] for ragged rows or target-length
    /// disagreement, and [`PredictError::InvalidParam`] for bad parameters.
    pub fn fit(rows: &[&[f64]], targets: &[f64], params: &TreeParams) -> Result<Self> {
        params.validate()?;
        if rows.is_empty() {
            return Err(PredictError::EmptyTrainingSet);
        }
        if rows.len() != targets.len() {
            return Err(PredictError::ShapeMismatch {
                detail: format!("{} rows vs {} targets", rows.len(), targets.len()),
            });
        }
        let dim = rows[0].len();
        if rows.iter().any(|r| r.len() != dim) {
            return Err(PredictError::ShapeMismatch { detail: "ragged feature rows".into() });
        }

        let indices: Vec<usize> = (0..rows.len()).collect();
        let root = build(rows, targets, &indices, params, 0);
        let (depth, node_count) = measure(&root);
        Ok(Self { root, depth, node_count })
    }

    /// Evaluates the tree on one input row.
    ///
    /// # Panics
    ///
    /// Panics if `input` is narrower than a feature index the tree tests.
    #[must_use]
    pub fn predict(&self, input: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if input[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Actual depth of the trained tree (a root-only tree has depth 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Flattens the tree into preorder node words (the coefficient-buffer
    /// image the config queue ships, see [`crate::encode_tree`]).
    #[must_use]
    pub fn to_node_words(&self) -> Vec<TreeNodeWord> {
        let mut out = Vec::with_capacity(self.node_count);
        flatten(&self.root, &mut out);
        out
    }

    /// Rebuilds a tree from preorder node words.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::ShapeMismatch`] if the stream does not
    /// describe exactly one complete tree.
    pub fn from_node_words(words: &[TreeNodeWord]) -> Result<Self> {
        let mut pos = 0usize;
        let root = unflatten(words, &mut pos)?;
        if pos != words.len() {
            return Err(PredictError::ShapeMismatch {
                detail: format!("{} unused node words", words.len() - pos),
            });
        }
        let (depth, node_count) = measure(&root);
        Ok(Self { root, depth, node_count })
    }

    /// Total number of nodes, decision and leaf.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

fn mean(targets: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len() as f64
}

fn sse(targets: &[f64], idx: &[usize]) -> f64 {
    let m = mean(targets, idx);
    idx.iter().map(|&i| (targets[i] - m) * (targets[i] - m)).sum()
}

fn build(
    rows: &[&[f64]],
    targets: &[f64],
    idx: &[usize],
    params: &TreeParams,
    depth: usize,
) -> Node {
    let leaf = Node::Leaf { value: mean(targets, idx) };
    if depth >= params.max_depth || idx.len() < 2 * params.min_samples_leaf {
        return leaf;
    }
    let parent_sse = sse(targets, idx);
    if parent_sse < 1e-12 {
        return leaf;
    }

    let dim = rows[0].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    let mut values: Vec<f64> = Vec::with_capacity(idx.len());
    #[allow(clippy::needless_range_loop)] // `feature` is semantically an index into every row
    for feature in 0..dim {
        values.clear();
        values.extend(idx.iter().map(|&i| rows[i][feature]));
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        for k in 1..params.candidate_splits {
            let q = k * (values.len() - 1) / params.candidate_splits;
            let threshold = values[q];
            if threshold >= *values.last().expect("nonempty") {
                continue; // everything would go left
            }
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in idx {
                if rows[i][feature] <= threshold {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            if left.len() < params.min_samples_leaf || right.len() < params.min_samples_leaf {
                continue;
            }
            let split_sse = sse(targets, &left) + sse(targets, &right);
            if best.is_none_or(|(_, _, b)| split_sse < b) {
                best = Some((feature, threshold, split_sse));
            }
        }
    }

    match best {
        Some((feature, threshold, split_sse)) if split_sse < parent_sse - 1e-12 => {
            let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
            for &i in idx {
                if rows[i][feature] <= threshold {
                    left_idx.push(i);
                } else {
                    right_idx.push(i);
                }
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(rows, targets, &left_idx, params, depth + 1)),
                right: Box::new(build(rows, targets, &right_idx, params, depth + 1)),
            }
        }
        _ => leaf,
    }
}

/// One node of a flattened tree, as shipped through the config queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeNodeWord {
    /// A leaf carrying the predicted error.
    Leaf {
        /// Predicted error stored at the leaf.
        value: f64,
    },
    /// A decision node comparing one input against a trained constant.
    Split {
        /// Input index the node tests.
        feature: usize,
        /// Trained comparison constant.
        threshold: f64,
    },
}

fn flatten(node: &Node, out: &mut Vec<TreeNodeWord>) {
    match node {
        Node::Leaf { value } => out.push(TreeNodeWord::Leaf { value: *value }),
        Node::Split { feature, threshold, left, right } => {
            out.push(TreeNodeWord::Split { feature: *feature, threshold: *threshold });
            flatten(left, out);
            flatten(right, out);
        }
    }
}

fn unflatten(words: &[TreeNodeWord], pos: &mut usize) -> Result<Node> {
    let word = words.get(*pos).ok_or_else(|| PredictError::ShapeMismatch {
        detail: "node stream ended mid-tree".to_owned(),
    })?;
    *pos += 1;
    match *word {
        TreeNodeWord::Leaf { value } => Ok(Node::Leaf { value }),
        TreeNodeWord::Split { feature, threshold } => {
            let left = Box::new(unflatten(words, pos)?);
            let right = Box::new(unflatten(words, pos)?);
            Ok(Node::Split { feature, threshold, left, right })
        }
    }
}

fn measure(node: &Node) -> (usize, usize) {
    match node {
        Node::Leaf { .. } => (0, 1),
        Node::Split { left, right, .. } => {
            let (dl, nl) = measure(left);
            let (dr, nr) = measure(right);
            (dl.max(dr) + 1, nl + nr + 1)
        }
    }
}

/// The `treeErrors` checker: an input-based EEP estimator backed by a
/// [`DecisionTree`] trained directly on observed invocation errors.
///
/// The tree lives behind an [`Arc`], so cloning a trained checker — which
/// the runtime does whenever it stamps out per-scheme probes — shares the
/// node structure instead of deep-copying it.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeErrors {
    tree: Arc<DecisionTree>,
    signed: Option<Arc<DecisionTree>>,
}

impl TreeErrors {
    /// Trains on `(input row, observed invocation error)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates [`DecisionTree::fit`] errors.
    pub fn train(rows: &[&[f64]], errors: &[f64], params: &TreeParams) -> Result<Self> {
        Ok(Self::from_tree(DecisionTree::fit(rows, errors, params)?))
    }

    /// Wraps an already-built tree (the config-stream decoder's
    /// constructor).
    #[must_use]
    pub fn from_tree(tree: DecisionTree) -> Self {
        Self { tree: Arc::new(tree), signed: None }
    }

    /// Attaches a tree fit on signed output-space errors (mean of
    /// `approx[j] − exact[j]` per row); [`ErrorEstimator::estimate_signed`]
    /// evaluates it unclamped.
    #[must_use]
    pub fn with_signed_tree(mut self, signed: DecisionTree) -> Self {
        self.signed = Some(Arc::new(signed));
        self
    }

    /// The trained tree (structure feeds the coefficient buffer).
    #[must_use]
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// The signed-error tree, when one was attached.
    #[must_use]
    pub fn signed_tree(&self) -> Option<&DecisionTree> {
        self.signed.as_deref()
    }
}

impl ErrorEstimator for TreeErrors {
    fn name(&self) -> &'static str {
        "treeErrors"
    }

    fn estimate(&mut self, input: &[f64], _approx_output: &[f64]) -> f64 {
        self.tree.predict(input).max(0.0)
    }

    fn estimate_signed(&self, input: &[f64], _approx_output: &[f64], magnitude: f64) -> f64 {
        match &self.signed {
            Some(t) => t.predict(input),
            None => magnitude,
        }
    }

    fn state_config_word(&self) -> u64 {
        crate::config_fingerprint(
            self.name(),
            &[self.tree.node_count() as u64, u64::from(self.signed.is_some())],
        )
    }

    fn cost(&self) -> CheckerCost {
        // One comparison per level walked plus the firing comparison;
        // coefficient reads fetch the node constants.
        CheckerCost {
            macs: 0,
            comparisons: self.tree.depth() + 1,
            table_reads: self.tree.depth() + 1,
        }
    }

    fn refit(
        &mut self,
        rows: &[&[f64]],
        targets: &[f64],
        signed_targets: &[f64],
    ) -> std::result::Result<(), String> {
        let params = TreeParams::default();
        // Fit both trees before swapping either, so a failed signed fit
        // cannot leave a half-replaced checker behind.
        let tree = DecisionTree::fit(rows, targets, &params).map_err(|e| e.to_string())?;
        let signed = DecisionTree::fit(rows, signed_targets, &params).map_err(|e| e.to_string())?;
        self.tree = Arc::new(tree);
        self.signed = Some(Arc::new(signed));
        Ok(())
    }

    fn export_model_words(&self) -> Option<Vec<u64>> {
        let mut out = Vec::new();
        push_tree_words(&mut out, &self.tree);
        match &self.signed {
            Some(signed) => {
                out.push(1);
                push_tree_words(&mut out, signed);
            }
            None => out.push(0),
        }
        Some(out)
    }

    fn import_model_words(&mut self, words: &[u64]) -> std::result::Result<(), String> {
        let mut pos = 0usize;
        let tree = parse_tree_words(words, &mut pos)?;
        let signed = match words.get(pos).copied() {
            Some(0) => {
                pos += 1;
                None
            }
            Some(1) => {
                pos += 1;
                Some(Arc::new(parse_tree_words(words, &mut pos)?))
            }
            other => return Err(format!("tree signed flag must be 0|1, got {other:?}")),
        };
        if pos != words.len() {
            return Err(format!("{} unused tree model words", words.len() - pos));
        }
        self.tree = Arc::new(tree);
        self.signed = signed;
        Ok(())
    }

    fn is_input_based(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0, 0.5]).collect();
        let ys = rows.iter().map(|r| if r[0] > 0.6 { 0.9 } else { 0.1 }).collect();
        (rows, ys)
    }

    #[test]
    fn learns_a_step_function() {
        let (rows, ys) = step_data();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let tree = DecisionTree::fit(&refs, &ys, &TreeParams::default()).unwrap();
        assert!((tree.predict(&[0.9, 0.5]) - 0.9).abs() < 1e-9);
        assert!((tree.predict(&[0.1, 0.5]) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn depth_respects_cap() {
        let (rows, ys) = step_data();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        for cap in [1, 3, 7] {
            let params = TreeParams { max_depth: cap, ..TreeParams::default() };
            let tree = DecisionTree::fit(&refs, &ys, &params).unwrap();
            assert!(tree.depth() <= cap, "depth {} > cap {cap}", tree.depth());
        }
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys = vec![0.25; 50];
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let tree = DecisionTree::fit(&refs, &ys, &TreeParams::default()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[1000.0]), 0.25);
    }

    #[test]
    fn validates_inputs() {
        let row: &[f64] = &[1.0];
        assert!(matches!(
            DecisionTree::fit(&[], &[], &TreeParams::default()),
            Err(PredictError::EmptyTrainingSet)
        ));
        assert!(matches!(
            DecisionTree::fit(&[row], &[1.0, 2.0], &TreeParams::default()),
            Err(PredictError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            DecisionTree::fit(
                &[row],
                &[1.0],
                &TreeParams { max_depth: 0, ..TreeParams::default() }
            ),
            Err(PredictError::InvalidParam { .. })
        ));
    }

    #[test]
    fn tree_errors_cost_counts_comparisons_only() {
        let (rows, ys) = step_data();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let te = TreeErrors::train(&refs, &ys, &TreeParams::default()).unwrap();
        let cost = te.cost();
        assert_eq!(cost.macs, 0);
        assert!(cost.comparisons >= 2);
        assert!(te.is_input_based());
        assert_eq!(te.name(), "treeErrors");
    }

    #[test]
    fn refit_replaces_the_tree_and_model_words_round_trip() {
        let (rows, ys) = step_data();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let mut te = TreeErrors::train(&refs, &ys, &TreeParams::default()).unwrap();
        assert!(te.signed_tree().is_none());
        // New regime: the step flips sides; the refit tree must track it.
        let flipped: Vec<f64> = rows.iter().map(|r| if r[0] > 0.5 { 0.1 } else { 0.9 }).collect();
        let signed: Vec<f64> = rows.iter().map(|r| r[0] - 0.5).collect();
        te.refit(&refs, &flipped, &signed).unwrap();
        assert!(te.tree().predict(&[0.1, 0.5]) > 0.5);
        assert!(te.signed_tree().is_some());

        let words = te.export_model_words().unwrap();
        let mut other = TreeErrors::train(&refs, &ys, &TreeParams::default()).unwrap();
        other.import_model_words(&words).unwrap();
        assert_eq!(other.export_model_words().unwrap(), words);
        assert_eq!(
            other.tree().predict(&[0.3, 0.9]).to_bits(),
            te.tree().predict(&[0.3, 0.9]).to_bits()
        );
        assert!(other.import_model_words(&words[..words.len() - 2]).is_err());
        assert!(other.import_model_words(&[7]).is_err());
    }

    proptest! {
        #[test]
        fn predictions_bounded_by_target_range(seed in 0u64..200) {
            // Leaf values are means, so predictions can never leave the
            // convex hull of the training targets.
            let mut state = seed.wrapping_mul(0x9e37_79b9).wrapping_add(17);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1_000) as f64 / 1_000.0
            };
            let rows: Vec<Vec<f64>> = (0..100).map(|_| vec![next(), next()]).collect();
            let ys: Vec<f64> = (0..100).map(|_| next()).collect();
            let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
            let tree = DecisionTree::fit(&refs, &ys, &TreeParams::default()).unwrap();
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for _ in 0..20 {
                let p = tree.predict(&[next() * 2.0 - 0.5, next() * 2.0 - 0.5]);
                prop_assert!(p >= lo - 1e-12 && p <= hi + 1e-12);
            }
        }

        #[test]
        fn deeper_trees_never_fit_worse(seed in 0u64..50) {
            let mut state = seed.wrapping_add(3).wrapping_mul(0x45d9_f3b3);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1_000) as f64 / 1_000.0
            };
            let rows: Vec<Vec<f64>> = (0..150).map(|_| vec![next()]).collect();
            let ys: Vec<f64> = rows.iter().map(|r| (r[0] * 10.0).sin().abs()).collect();
            let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
            let sse_of = |depth: usize| {
                let params = TreeParams { max_depth: depth, ..TreeParams::default() };
                let tree = DecisionTree::fit(&refs, &ys, &params).unwrap();
                refs.iter().zip(&ys).map(|(r, y)| {
                    let p = tree.predict(r);
                    (p - y) * (p - y)
                }).sum::<f64>()
            };
            prop_assert!(sse_of(7) <= sse_of(2) + 1e-9);
            prop_assert!(sse_of(2) <= sse_of(1) + 1e-9);
        }
    }
}
