//! The `rumba report` summarizer: folds a JSONL event stream back into a
//! human-readable picture of the control loop — per-window quality trace,
//! threshold trajectory, fire/suppression rates, cache and pool stats.

use std::fmt;

use crate::event::Event;

/// Everything a JSONL metrics file folds down to.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Parsed events, in file order.
    pub events: Vec<Event>,
    /// Lines that failed to parse, with their 1-based line number and
    /// error.
    pub malformed: Vec<(usize, String)>,
}

impl Report {
    /// Parses every non-empty line of a JSONL stream.
    #[must_use]
    pub fn from_lines(text: &str) -> Self {
        let mut report = Report::default();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Event::parse(line) {
                Ok(event) => report.events.push(event),
                Err(e) => report.malformed.push((idx + 1, e)),
            }
        }
        report
    }

    /// The `window_end` events, in stream order.
    #[must_use]
    pub fn windows(&self) -> Vec<&Event> {
        self.events.iter().filter(|e| matches!(e, Event::WindowEnd { .. })).collect()
    }

    fn count_tag(&self, tag: &str) -> usize {
        self.events.iter().filter(|e| e.tag() == tag).count()
    }
}

/// Maps a series onto the eight unicode block characters (the classic
/// terminal sparkline). Empty input gives an empty string; a flat series
/// renders as the lowest block.
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '·';
            }
            if hi <= lo {
                return BLOCKS[0];
            }
            let t = (v - lo) / (hi - lo);
            BLOCKS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

impl fmt::Display for Report {
    #[allow(clippy::too_many_lines)]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "events: {} total ({} window_end, {} calibration, {} cache, {} pool, {} run_summary, {} fault, {} degrade, {} session, {} admission), {} malformed",
            self.events.len(),
            self.count_tag("window_end"),
            self.count_tag("calibration"),
            self.count_tag("cache"),
            self.count_tag("pool"),
            self.count_tag("run_summary"),
            self.count_tag("fault"),
            self.count_tag("degrade"),
            self.count_tag("session"),
            self.count_tag("admission"),
            self.malformed.len(),
        )?;
        for (line, err) in self.malformed.iter().take(5) {
            writeln!(f, "  malformed line {line}: {err}")?;
        }

        for event in &self.events {
            if let Event::Calibration { samples, sanitized, threshold } = event {
                writeln!(
                    f,
                    "calibration: threshold {threshold:.6} over {samples} samples ({sanitized} non-finite sanitized)"
                )?;
            }
        }

        let mut thresholds = Vec::new();
        let mut quality = Vec::new();
        let mut fired_total = 0u64;
        let mut suppressed_total = 0u64;
        let mut queue_max = 0u64;
        let mut quarantined_total = 0u64;
        let mut clamped_windows = 0usize;
        let mut compensated_total = 0u64;
        for event in &self.events {
            if let Event::WindowEnd {
                threshold,
                fired,
                suppressed_by_budget,
                mean_unfixed_pred,
                queue_depth_max,
                quarantined,
                capacity_clamped,
                compensated,
                ..
            } = event
            {
                thresholds.push(*threshold);
                quality.push(*mean_unfixed_pred);
                fired_total += fired;
                suppressed_total += suppressed_by_budget;
                queue_max = queue_max.max(*queue_depth_max);
                quarantined_total += quarantined;
                clamped_windows += usize::from(*capacity_clamped);
                compensated_total += compensated;
            }
        }
        if !thresholds.is_empty() {
            let n = thresholds.len();
            let (lo, hi) = thresholds
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            writeln!(f, "windows: {n}")?;
            writeln!(
                f,
                "  threshold:  {:.6} -> {:.6}  (min {lo:.6}, max {hi:.6})",
                thresholds[0],
                thresholds[n - 1],
            )?;
            writeln!(f, "  trajectory: {}", sparkline(&thresholds))?;
            let finite_quality: Vec<f64> =
                quality.iter().copied().filter(|v| v.is_finite()).collect();
            if !finite_quality.is_empty() {
                let mean = finite_quality.iter().sum::<f64>() / finite_quality.len() as f64;
                writeln!(
                    f,
                    "  quality est (mean unfixed pred): mean {mean:.6}, last {:.6}",
                    quality[n - 1],
                )?;
                writeln!(f, "  quality:    {}", sparkline(&quality))?;
            }
            writeln!(
                f,
                "  fired: {fired_total} total ({:.1}/window), suppressed by budget: {suppressed_total}",
                fired_total as f64 / n as f64,
            )?;
            writeln!(f, "  recovery queue depth max: {queue_max}")?;
            if compensated_total > 0 {
                writeln!(f, "  compensated in place (no CPU re-execution): {compensated_total}")?;
            }
            if quarantined_total > 0 {
                writeln!(f, "  quarantined (non-finite NPU output): {quarantined_total}")?;
            }
            if clamped_windows > 0 {
                writeln!(f, "  cpu capacity clamped to 1 in {clamped_windows} window(s)")?;
            }
        }

        let mut fault_outcomes: Vec<(String, u64)> = Vec::new();
        for event in &self.events {
            if let Event::Fault { kind, outcome, .. } = event {
                let label = format!("{kind}/{outcome}");
                match fault_outcomes.iter_mut().find(|(k, _)| *k == label) {
                    Some((_, n)) => *n += 1,
                    None => fault_outcomes.push((label, 1)),
                }
            }
        }
        if !fault_outcomes.is_empty() {
            let total: u64 = fault_outcomes.iter().map(|(_, n)| n).sum();
            writeln!(f, "faults: {total} events")?;
            for (label, n) in &fault_outcomes {
                writeln!(f, "  {label}: {n}")?;
            }
        }

        for event in &self.events {
            if let Event::Degrade { window, action, detail, session } = event {
                let scope =
                    if session.is_empty() { String::new() } else { format!("[{session}] ") };
                writeln!(f, "degrade: {scope}window {window} -> {action} ({detail})")?;
            }
        }

        let hits =
            self.events.iter().filter(|e| matches!(e, Event::Cache { hit: true, .. })).count();
        let misses = self.count_tag("cache") - hits;
        if hits + misses > 0 {
            writeln!(f, "cache: {hits} hits, {misses} misses")?;
        }

        for event in &self.events {
            if let Event::Pool { maps, chunks, threads, isa, simd } = event {
                let simd = if *simd { "on" } else { "off" };
                writeln!(
                    f,
                    "pool: {maps} parallel maps, {chunks} chunks, {threads} threads, \
                     isa {isa} (simd {simd})"
                )?;
            }
        }

        for event in &self.events {
            if let Event::RunSummary {
                kernel,
                invocations,
                fixes,
                compensated,
                output_error,
                windows,
                cpu_utilization,
                final_threshold,
                tiers,
                session,
            } = event
            {
                let scope =
                    if session.is_empty() { String::new() } else { format!("[{session}] ") };
                let comp = if *compensated > 0 {
                    format!(", {compensated} compensated")
                } else {
                    String::new()
                };
                writeln!(
                    f,
                    "run: {scope}{kernel} — {invocations} invocations, {fixes} fixes ({}){comp}, output error {}, {windows} windows, cpu utilization {}, final threshold {final_threshold:.6}",
                    pct(*fixes as f64 / (*invocations).max(1) as f64),
                    pct(*output_error),
                    pct(*cpu_utilization),
                )?;
                if !tiers.is_empty() {
                    // Last slot is exact-CPU routing; the rest are the zoo
                    // tiers, cheapest first.
                    let (cpu, models) = tiers.split_last().expect("non-empty");
                    let mix: Vec<String> =
                        models.iter().enumerate().map(|(t, n)| format!("t{t}:{n}")).collect();
                    writeln!(f, "  tier mix: {} cpu:{cpu}", mix.join(" "))?;
                }
            }
        }

        let opened = self
            .events
            .iter()
            .filter(|e| matches!(e, Event::Session { action, .. } if action == "open"))
            .count();
        if opened > 0 {
            writeln!(f, "sessions: {opened} opened")?;
            for event in &self.events {
                if let Event::Session {
                    session,
                    action,
                    kernel,
                    invocations,
                    fixes,
                    shed,
                    threshold,
                } = event
                {
                    if action == "close" {
                        writeln!(
                            f,
                            "  {session}: {kernel} — {invocations} requests, {fixes} fixes, {shed} shed, final threshold {threshold:.6}"
                        )?;
                    }
                }
            }
        }
        let shed_events = self
            .events
            .iter()
            .filter(|e| matches!(e, Event::Admission { policy, .. } if policy == "shed"))
            .count();
        let blocked_events = self.count_tag("admission") - shed_events;
        if shed_events + blocked_events > 0 {
            writeln!(f, "admission: {shed_events} shed, {blocked_events} blocked")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(i: u64, threshold: f64, fired: u64) -> String {
        Event::WindowEnd {
            window: i,
            threshold,
            fired,
            suppressed_by_budget: i,
            mean_unfixed_pred: 0.01 * i as f64,
            cpu_capacity: 9,
            queue_depth_max: i,
            quarantined: i,
            capacity_clamped: i == 0,
            compensated: 2 * i,
            tiers: Vec::new(),
            session: String::new(),
        }
        .to_jsonl()
    }

    #[test]
    fn summarizes_a_full_stream() {
        let mut text = String::new();
        text.push_str(
            &(Event::Calibration { samples: 100, sanitized: 2, threshold: 0.05 }.to_jsonl() + "\n"),
        );
        for i in 0..4 {
            text.push_str(&(window(i, 0.05 + 0.01 * i as f64, 10 + i) + "\n"));
        }
        text.push_str(&(Event::Cache { hit: true, key: "a".into() }.to_jsonl() + "\n"));
        text.push_str(&(Event::Cache { hit: false, key: "b".into() }.to_jsonl() + "\n"));
        text.push_str(
            &(Event::Pool { maps: 7, chunks: 11, threads: 2, isa: "avx2".into(), simd: true }
                .to_jsonl()
                + "\n"),
        );
        text.push_str(
            &(Event::RunSummary {
                kernel: "gaussian".into(),
                invocations: 1024,
                fixes: 46,
                compensated: 12,
                output_error: 0.021,
                windows: 4,
                cpu_utilization: 0.5,
                final_threshold: 0.08,
                tiers: Vec::new(),
                session: String::new(),
            }
            .to_jsonl()
                + "\n"),
        );
        text.push_str(
            &(Event::Fault {
                invocation: 31,
                kind: "non_finite".into(),
                element: 0,
                outcome: "quarantined".into(),
                session: String::new(),
            }
            .to_jsonl()
                + "\n"),
        );
        text.push_str(
            &(Event::Degrade {
                window: 2,
                action: "recalibrate".into(),
                detail: "2 dirty windows".into(),
                session: String::new(),
            }
            .to_jsonl()
                + "\n"),
        );
        for action in ["open", "close"] {
            text.push_str(
                &(Event::Session {
                    session: "tenant-1".into(),
                    action: action.into(),
                    kernel: "sobel".into(),
                    invocations: if action == "open" { 0 } else { 64 },
                    fixes: if action == "open" { 0 } else { 5 },
                    shed: if action == "open" { 0 } else { 2 },
                    threshold: 0.03,
                }
                .to_jsonl()
                    + "\n"),
            );
        }
        text.push_str(
            &(Event::Admission {
                session: "tenant-1".into(),
                policy: "shed".into(),
                queue_depth: 8,
                capacity: 8,
                shed_total: 2,
            }
            .to_jsonl()
                + "\n"),
        );
        text.push_str("this line is garbage\n\n");

        let report = Report::from_lines(&text);
        assert_eq!(report.events.len(), 14);
        assert_eq!(report.windows().len(), 4);
        assert_eq!(report.malformed.len(), 1);

        let rendered = report.to_string();
        assert!(rendered.contains("windows: 4"), "{rendered}");
        assert!(rendered.contains("fired: 46 total"), "{rendered}");
        assert!(rendered.contains("suppressed by budget: 6"), "{rendered}");
        assert!(rendered.contains("quarantined (non-finite NPU output): 6"), "{rendered}");
        assert!(rendered.contains("compensated in place (no CPU re-execution): 12"), "{rendered}");
        assert!(rendered.contains("46 fixes (4.49%), 12 compensated"), "{rendered}");
        assert!(rendered.contains("cpu capacity clamped to 1 in 1 window(s)"), "{rendered}");
        assert!(rendered.contains("non_finite/quarantined: 1"), "{rendered}");
        assert!(rendered.contains("degrade: window 2 -> recalibrate"), "{rendered}");
        assert!(rendered.contains("cache: 1 hits, 1 misses"), "{rendered}");
        assert!(rendered.contains("pool: 7 parallel maps"), "{rendered}");
        assert!(rendered.contains("run: gaussian"), "{rendered}");
        assert!(rendered.contains("2 non-finite sanitized"), "{rendered}");
        assert!(rendered.contains("1 malformed"), "{rendered}");
        assert!(rendered.contains("sessions: 1 opened"), "{rendered}");
        assert!(rendered.contains("tenant-1: sobel — 64 requests, 5 fixes, 2 shed"), "{rendered}");
        assert!(rendered.contains("admission: 1 shed, 0 blocked"), "{rendered}");
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▁▁▁");
        let line = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁') && line.ends_with('█'), "{line}");
        assert_eq!(sparkline(&[0.0, f64::NAN, 1.0]).chars().nth(1), Some('·'));
    }

    #[test]
    fn empty_input_is_an_empty_report() {
        let report = Report::from_lines("");
        assert!(report.events.is_empty() && report.malformed.is_empty());
        assert!(report.to_string().contains("events: 0 total"));
    }
}
