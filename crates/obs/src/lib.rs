//! `rumba-obs` — deterministic control-loop telemetry for the Rumba
//! workspace.
//!
//! Rumba's contribution is an *online* loop (threshold tuner, recovery
//! queue, per-window quality estimate); this crate is how you watch it
//! run. It is std-only and strictly observational:
//!
//! - **Typed events** ([`Event`]): `window_end`, `cache`, `pool`,
//!   `calibration`, `run_summary` — one JSON object per line, with a
//!   bit-exact float codec ([`Event::parse`] inverts [`Event::to_jsonl`]).
//! - **Sinks** ([`EventSink`]): the control path holds a `dyn` sink and
//!   gates event construction on [`EventSink::enabled`], so the default
//!   [`NullSink`] path costs one constant-returning virtual call and the
//!   numeric results are byte-identical with telemetry on or off (the
//!   sink only observes — enforced by the `ci/fig10.golden` gate).
//! - **Metrics** ([`MetricsRegistry`]): cumulative counters, gauges, and
//!   histograms ([`metrics`] is the process-wide registry).
//! - **Spans** ([`span`]): scoped wall-clock timers feeding registry
//!   histograms only — never the event stream, which stays a pure
//!   function of the computation.
//! - **Report** ([`Report`]): folds a JSONL stream back into the
//!   per-window quality trace, threshold trajectory, fire rate, and
//!   cache/pool stats (`rumba report`).
//!
//! # The global sink
//!
//! Library code emits through [`global_sink`], which initializes lazily:
//! if `RUMBA_METRICS_OUT=<path.jsonl>` is set in the environment the
//! global sink is a [`JsonlSink`] on that path, otherwise a [`NullSink`].
//! The CLI's `--metrics-out` flag installs the same thing explicitly via
//! [`set_global_sink`]. Call [`finish_run`] (or hold a [`guard`]) to emit
//! the pool summary and flush before exit.
//!
//! # Examples
//!
//! ```
//! use rumba_obs::{Event, MemorySink, EventSink};
//!
//! let sink = MemorySink::new();
//! sink.emit(&Event::Cache { hit: true, key: "gaussian-s42".into() });
//! let line = sink.events()[0].to_jsonl();
//! assert_eq!(Event::parse(&line).unwrap(), sink.events()[0]);
//! ```

pub mod event;
pub mod json;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

pub use event::Event;
pub use metrics::{HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use report::{sparkline, Report};
pub use sink::{EventSink, JsonlSink, MemorySink, NullSink};
pub use span::{span, Span};

/// Environment variable that points the global sink at a JSONL file.
pub const METRICS_OUT_ENV: &str = "RUMBA_METRICS_OUT";

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: OnceLock<RwLock<Arc<dyn EventSink>>> = OnceLock::new();
static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// Whether the global sink wants events. Instrumented code checks this
/// (one relaxed atomic load) before gathering event fields or touching
/// the registry, so disabled telemetry costs effectively nothing.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn sink_from_env() -> Arc<dyn EventSink> {
    match std::env::var(METRICS_OUT_ENV) {
        Ok(path) if !path.trim().is_empty() => match JsonlSink::create(path.trim()) {
            Ok(sink) => Arc::new(sink),
            Err(e) => {
                eprintln!("[obs] cannot open {METRICS_OUT_ENV}={path}: {e}; telemetry disabled");
                Arc::new(NullSink)
            }
        },
        _ => Arc::new(NullSink),
    }
}

fn sink_cell() -> &'static RwLock<Arc<dyn EventSink>> {
    SINK.get_or_init(|| {
        let sink = sink_from_env();
        ENABLED.store(sink.enabled(), Ordering::Relaxed);
        RwLock::new(sink)
    })
}

/// The process-wide event sink (shared handle). First use initializes
/// from `RUMBA_METRICS_OUT`; see the crate docs.
#[must_use]
pub fn global_sink() -> Arc<dyn EventSink> {
    sink_cell().read().expect("sink lock poisoned").clone()
}

/// Replaces the process-wide sink (the CLI's `--metrics-out`, tests).
pub fn set_global_sink(sink: Arc<dyn EventSink>) {
    let cell = sink_cell();
    ENABLED.store(sink.enabled(), Ordering::Relaxed);
    *cell.write().expect("sink lock poisoned") = sink;
}

/// Forces environment-based initialization of the global sink without
/// emitting anything. Binaries that never construct a `RumbaSystem` (the
/// figure harness) call this — or hold a [`guard`] — so
/// `RUMBA_METRICS_OUT` works for them too.
pub fn init_from_env() {
    let _ = sink_cell();
}

/// Emits the pool-usage summary event (from the metrics registry) and
/// flushes the global sink. Call once at the end of an instrumented
/// process; a no-op when telemetry is disabled.
pub fn finish_run() {
    let sink = global_sink();
    if !sink.enabled() {
        return;
    }
    let snap = metrics().snapshot();
    // The batched kernels record the dispatched ISA as a numeric gauge
    // (0 scalar / 1 avx2 / 2 neon — `rumba_nn::Isa::code`); a process that
    // never dispatched a batched kernel reports the scalar default.
    let isa = match snap.gauge("pool.simd_isa").unwrap_or(0.0) as u8 {
        1 => "avx2",
        2 => "neon",
        _ => "scalar",
    };
    sink.emit(&Event::Pool {
        maps: snap.counter("pool.maps"),
        chunks: snap.counter("pool.chunks"),
        threads: snap.gauge("pool.threads").unwrap_or(0.0) as u64,
        isa: isa.to_owned(),
        simd: isa != "scalar",
    });
    sink.flush();
}

/// RAII handle around [`init_from_env`] / [`finish_run`]: construct one
/// at the top of `main` and telemetry is initialized now and finalized
/// when it drops.
#[derive(Debug)]
#[must_use = "bind the guard to a variable so finish_run fires at scope end"]
pub struct ObsGuard(());

impl Drop for ObsGuard {
    fn drop(&mut self) {
        finish_run();
    }
}

/// Initializes telemetry from the environment and returns the guard that
/// finalizes it.
pub fn guard() -> ObsGuard {
    init_from_env();
    ObsGuard(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All global-state assertions live in this one test: parallel test
    /// threads would race on the process-wide enabled flag otherwise.
    #[test]
    fn global_sink_spans_and_finish_run() {
        // Default (no RUMBA_METRICS_OUT in the test environment): Null,
        // disabled, spans inert.
        init_from_env();
        assert!(!enabled());
        {
            let s = span("lib.test");
            assert_eq!(s.elapsed_ms(), None);
        }
        assert!(!metrics().snapshot().histograms.contains_key("span.lib.test.ms"));
        finish_run(); // no-op while disabled
                      // Install a memory sink: enabled flips, spans measure, finish_run
                      // emits the pool summary.
        let memory = Arc::new(MemorySink::new());
        set_global_sink(memory.clone());
        assert!(enabled());
        {
            let s = span("lib.test");
            assert!(s.elapsed_ms().is_some());
        }
        assert!(metrics().snapshot().histograms["span.lib.test.ms"].count >= 1);
        metrics().add("pool.maps", 3);
        metrics().add("pool.chunks", 12);
        metrics().set_gauge("pool.threads", 2.0);
        finish_run();
        let pools = memory.events_where(|e| matches!(e, Event::Pool { .. }));
        assert!(!pools.is_empty());
        if let Event::Pool { maps, chunks, threads, ref isa, simd } = pools[pools.len() - 1] {
            assert!(maps >= 3 && chunks >= 12);
            assert_eq!(threads, 2);
            // No batched kernel ran in this test, so the gauge is unset
            // and the summary reports the scalar default.
            assert_eq!(isa, "scalar");
            assert!(!simd);
        }
        // Restore the disabled default for any test scheduled after.
        set_global_sink(Arc::new(NullSink));
        assert!(!enabled());
    }
}
