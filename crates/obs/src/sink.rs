//! Event sinks: where telemetry goes.
//!
//! The control path holds a `dyn EventSink` and checks
//! [`EventSink::enabled`] before building an event, so the disabled
//! ([`NullSink`]) path costs one virtual call returning a constant —
//! instrumentation never perturbs results either way, because sinks only
//! observe.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::event::Event;

/// A destination for telemetry events.
///
/// Implementations must be cheap to call and must never influence the
/// computation they observe. `emit` takes `&self`: sinks use interior
/// mutability so one sink can be shared across the runtime, the cache,
/// and the pool.
pub trait EventSink: Send + Sync + std::fmt::Debug {
    /// Records one event.
    fn emit(&self, event: &Event);

    /// Whether emitting is worthwhile at all. Instrumented code gates
    /// event *construction* on this, so a disabled sink skips even the
    /// field gathering.
    fn enabled(&self) -> bool {
        true
    }

    /// Forces buffered events out (a no-op for unbuffered sinks).
    fn flush(&self) {}
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// An in-memory sink for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything emitted so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous emitter panicked while holding the lock.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock poisoned").clone()
    }

    /// The emitted events matching `keep`.
    #[must_use]
    pub fn events_where(&self, keep: impl Fn(&Event) -> bool) -> Vec<Event> {
        self.events().into_iter().filter(keep).collect()
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events.lock().expect("sink lock poisoned").push(event.clone());
    }
}

/// A buffered JSONL file sink: one event per line, flushed after every
/// emit so a crash (or the global sink never being dropped at process
/// exit) cannot truncate mid-line or lose the tail. Event rate on the
/// instrumented path is per-window, not per-iteration, so the flush cost
/// is irrelevant.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        Ok(Self { path, writer: Mutex::new(BufWriter::new(file)) })
    }

    /// Where this sink writes.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut w = self.writer.lock().expect("sink lock poisoned");
        // Failures (disk full, closed fd) must never fail the observed
        // computation; telemetry is best-effort by contract.
        let _ = writeln!(w, "{}", event.to_jsonl());
        let _ = w.flush();
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("sink lock poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.emit(&Event::Cache { hit: true, key: "k".into() });
        sink.flush();
    }

    fn pool_sample() -> Event {
        Event::Pool { maps: 1, chunks: 2, threads: 3, isa: "scalar".into(), simd: false }
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = MemorySink::new();
        assert!(sink.enabled());
        sink.emit(&pool_sample());
        sink.emit(&Event::Cache { hit: false, key: "x".into() });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], pool_sample());
        assert_eq!(sink.events_where(|e| matches!(e, Event::Cache { .. })).len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("rumba-obs-sink-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        let events = [
            Event::Cache { hit: true, key: "a".into() },
            Event::Calibration { samples: 10, sanitized: 1, threshold: 0.25 },
        ];
        for e in &events {
            sink.emit(e);
        }
        sink.flush();
        let text = std::fs::read_to_string(sink.path()).unwrap();
        let parsed: Vec<Event> =
            text.lines().map(|l| Event::parse(l).expect("valid line")).collect();
        assert_eq!(parsed, events);
        let _ = std::fs::remove_file(&path);
    }
}
