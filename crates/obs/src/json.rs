//! The minimal flat-JSON dialect the event codec speaks: one object per
//! line, values limited to strings, finite numbers, booleans, `null`, and
//! flat arrays of those scalars (the serving protocol's `"input":[...]`
//! payloads; arrays never nest). Hand-rolled so the workspace stays
//! std-only; the writer and parser are exact inverses for everything
//! [`crate::Event`] emits (`f64` fields use Rust's shortest round-trip
//! formatting, so `write → parse` is bit-exact).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed flat JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string.
    Str(String),
    /// A number (JSON has one numeric type; `null` also parses here as NaN
    /// when read through [`JsonObject::number`]).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// A flat array of scalars (no nesting — the serving protocol only
    /// ever ships number vectors).
    Arr(Vec<JsonValue>),
}

/// A parsed single-level JSON object, field order normalized.
pub type JsonObject = BTreeMap<String, JsonValue>;

/// Field accessors used by the event decoder.
pub trait ObjectExt {
    /// The string field `key`, if present and a string.
    fn string(&self, key: &str) -> Option<&str>;
    /// The numeric field `key`; `null` reads as NaN (the writer encodes
    /// non-finite floats as `null`).
    fn number(&self, key: &str) -> Option<f64>;
    /// The numeric field `key`, truncated to an integer count.
    fn count(&self, key: &str) -> Option<u64>;
    /// The boolean field `key`, if present and a boolean.
    fn boolean(&self, key: &str) -> Option<bool>;
    /// The array field `key` decoded as an `f64` vector; `null` elements
    /// read as NaN (the writer encodes non-finite floats as `null`).
    fn numbers(&self, key: &str) -> Option<Vec<f64>>;
    /// The array field `key` decoded as integer counts; any negative or
    /// fractional element poisons the read.
    fn counts_array(&self, key: &str) -> Option<Vec<u64>>;
}

impl ObjectExt for JsonObject {
    fn string(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn number(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    fn count(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    fn boolean(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn numbers(&self, key: &str) -> Option<Vec<f64>> {
        match self.get(key)? {
            JsonValue::Arr(items) => items
                .iter()
                .map(|v| match v {
                    JsonValue::Num(x) => Some(*x),
                    JsonValue::Null => Some(f64::NAN),
                    _ => None,
                })
                .collect(),
            _ => None,
        }
    }

    fn counts_array(&self, key: &str) -> Option<Vec<u64>> {
        match self.get(key)? {
            JsonValue::Arr(items) => items
                .iter()
                .map(|v| match v {
                    JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
                    _ => None,
                })
                .collect(),
            _ => None,
        }
    }
}

/// Incremental writer for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
}

impl JsonWriter {
    /// Starts an object with its `type` tag as the first field.
    #[must_use]
    pub fn object(tag: &str) -> Self {
        let mut w = Self { out: String::with_capacity(128) };
        w.out.push('{');
        w.raw_key("type");
        w.raw_string(tag);
        w
    }

    fn raw_key(&mut self, key: &str) {
        if !self.out.ends_with('{') {
            self.out.push(',');
        }
        self.raw_string(key);
        self.out.push(':');
    }

    fn raw_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Appends a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw_key(key);
        self.raw_string(value);
        self
    }

    /// Appends a float field. Finite values use Rust's shortest
    /// round-trip formatting (bit-exact through the parser); non-finite
    /// values become `null` (JSON has no NaN/inf).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw_key(key);
        if value.is_finite() {
            let _ = write!(self.out, "{value:?}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Appends an integer count field.
    pub fn count(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw_key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Appends a boolean field.
    pub fn boolean(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw_key(key);
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a flat number-array field. Elements follow the same
    /// formatting contract as [`JsonWriter::float`]: shortest round-trip
    /// for finite values, `null` for non-finite ones.
    pub fn floats(&mut self, key: &str, values: &[f64]) -> &mut Self {
        self.raw_key(key);
        self.out.push('[');
        for (i, value) in values.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            if value.is_finite() {
                let _ = write!(self.out, "{value:?}");
            } else {
                self.out.push_str("null");
            }
        }
        self.out.push(']');
        self
    }

    /// Appends a flat integer-count array field.
    pub fn counts(&mut self, key: &str, values: &[u64]) -> &mut Self {
        self.raw_key(key);
        self.out.push('[');
        for (i, value) in values.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{value}");
        }
        self.out.push(']');
        self
    }

    /// Closes the object and returns the JSON text (no trailing newline).
    #[must_use]
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Parses one flat JSON object (as written by [`JsonWriter`], but accepts
/// arbitrary whitespace and field order). Nested objects/arrays are not in
/// the event dialect and are rejected.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax problem.
pub fn parse_object(text: &str) -> Result<JsonObject, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut obj = JsonObject::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            obj.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => {}
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(obj)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected '{}', got {other:?}", want as char)),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b'[') => self.parse_array(),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    /// A flat array of scalar values; nested arrays/objects stay outside
    /// the dialect and are rejected.
    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            if self.peek() == Some(b'[') {
                return Err("nested arrays are not in the event dialect".into());
            }
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.next() {
                Some(b',') => {}
                Some(b']') => break,
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
        Ok(JsonValue::Arr(items))
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(JsonValue::Num).map_err(|e| format!("bad number '{text}': {e}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Collect raw bytes, decoding escapes; the input is valid UTF-8
        // (it came from &str), so multi-byte sequences pass through.
        let mut buf: Vec<u8> = Vec::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => break,
                Some(b'\\') => match self.next() {
                    Some(b'"') => buf.push(b'"'),
                    Some(b'\\') => buf.push(b'\\'),
                    Some(b'/') => buf.push(b'/'),
                    Some(b'n') => buf.push(b'\n'),
                    Some(b'r') => buf.push(b'\r'),
                    Some(b't') => buf.push(b'\t'),
                    Some(b'u') => {
                        let hex =
                            self.bytes.get(self.pos..self.pos + 4).ok_or("truncated \\u escape")?;
                        self.pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        let c = char::from_u32(code).ok_or("invalid \\u code point")?;
                        out.push_str(std::str::from_utf8(&buf).map_err(|e| e.to_string())?);
                        buf.clear();
                        out.push(c);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) => buf.push(b),
            }
        }
        out.push_str(std::str::from_utf8(&buf).map_err(|e| e.to_string())?);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_every_value_kind() {
        let mut w = JsonWriter::object("demo");
        w.string("s", "a \"quoted\"\nline")
            .float("x", 0.1)
            .float("nan", f64::NAN)
            .count("n", 42)
            .boolean("b", true);
        let line = w.finish();
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj.string("type"), Some("demo"));
        assert_eq!(obj.string("s"), Some("a \"quoted\"\nline"));
        assert_eq!(obj.number("x"), Some(0.1));
        assert!(obj.number("nan").unwrap().is_nan());
        assert_eq!(obj.count("n"), Some(42));
        assert_eq!(obj.boolean("b"), Some(true));
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for v in [0.1, 1.0 / 3.0, 1e-6, 123456.789, f64::MIN_POSITIVE, -0.0] {
            let mut w = JsonWriter::object("t");
            w.float("v", v);
            let obj = parse_object(&w.finish()).unwrap();
            assert_eq!(obj.number("v").unwrap().to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["", "{", "{\"a\":}", "{\"a\":1,}", "{\"a\":1}x", "[1,2]", "{\"a\":{}}"] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn number_arrays_round_trip_bit_exactly() {
        let values = [0.1, -2.5e3, 1.0 / 3.0, f64::NAN, 0.0];
        let mut w = JsonWriter::object("t");
        w.floats("input", &values).floats("empty", &[]);
        let line = w.finish();
        assert!(line.contains("\"empty\":[]"), "{line}");
        let obj = parse_object(&line).unwrap();
        let parsed = obj.numbers("input").unwrap();
        assert_eq!(parsed.len(), values.len());
        for (a, b) in parsed.iter().zip(&values) {
            assert!(a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()), "{a} vs {b}");
        }
        assert_eq!(obj.numbers("empty"), Some(Vec::new()));
        assert_eq!(obj.numbers("type"), None, "scalars are not arrays");
    }

    #[test]
    fn count_arrays_round_trip_and_reject_non_integers() {
        let mut w = JsonWriter::object("t");
        w.counts("tiers", &[3, 0, u64::from(u32::MAX) + 7]).counts("none", &[]);
        let line = w.finish();
        assert!(line.contains("\"tiers\":[3,0,4294967302]"), "{line}");
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj.counts_array("tiers"), Some(vec![3, 0, 4_294_967_302]));
        assert_eq!(obj.counts_array("none"), Some(Vec::new()));
        let mixed = parse_object("{\"a\":[1,2.5],\"b\":[-1],\"c\":1}").unwrap();
        assert_eq!(mixed.counts_array("a"), None, "fractional element poisons the read");
        assert_eq!(mixed.counts_array("b"), None, "negative element poisons the read");
        assert_eq!(mixed.counts_array("c"), None, "scalars are not arrays");
    }

    #[test]
    fn rejects_nested_containers_inside_arrays() {
        for bad in ["{\"a\":[[1]]}", "{\"a\":[{\"b\":1}]}", "{\"a\":[1,]}", "{\"a\":[1"] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
        let obj = parse_object("{\"a\":[ 1 , null , \"s\" , true ]}").unwrap();
        match obj.get("a") {
            Some(JsonValue::Arr(items)) => assert_eq!(items.len(), 4),
            other => panic!("{other:?}"),
        }
        assert_eq!(obj.numbers("a"), None, "strings/bools poison a numbers() read");
    }

    #[test]
    fn accepts_whitespace_and_unicode_escapes() {
        let obj = parse_object("  { \"k\" : \"\\u00e9\\u0001\" , \"n\" : -2.5e3 }  ").unwrap();
        assert_eq!(obj.string("k"), Some("é\u{1}"));
        assert_eq!(obj.number("n"), Some(-2500.0));
    }
}
