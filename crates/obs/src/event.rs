//! Typed telemetry events and their JSONL codec.
//!
//! Every event serializes to exactly one JSON object per line with a
//! `type` tag; [`Event::parse`] is the exact inverse of [`Event::to_jsonl`]
//! (float fields round-trip bit-for-bit). The schema is the contract the
//! `rumba report` summarizer and the CI validation step rely on — extend
//! it by adding variants, never by changing the meaning of shipped fields.

use crate::json::{parse_object, JsonWriter, ObjectExt};

/// One telemetry event on the control path.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One tuning window completed ([`flush_window`] in the runtime).
    ///
    /// `threshold` is the value the tuner chose *for the next window*
    /// (i.e. after the window's feedback was observed), so the sequence of
    /// `window_end` events is the threshold trajectory.
    WindowEnd {
        /// Zero-based window index within the stream.
        window: u64,
        /// Firing threshold after this window's tuner update.
        threshold: f64,
        /// Iterations whose check fired and were re-executed.
        fired: u64,
        /// Iterations predicted above threshold but not re-executed
        /// because the window's re-execution budget was exhausted.
        suppressed_by_budget: u64,
        /// Mean predicted error over the iterations left approximate —
        /// the tuner's online quality estimate for the window.
        mean_unfixed_pred: f64,
        /// Re-executions the CPU could overlap with the accelerator.
        cpu_capacity: u64,
        /// Deepest the recovery queue got during the window.
        queue_depth_max: u64,
        /// Invocations quarantined for non-finite accelerator output
        /// (forced to CPU re-execution, kept out of the tuner mean).
        quarantined: u64,
        /// Whether `cpu_capacity` was clamped up to 1 because the raw
        /// window budget floored to zero (recovery would otherwise be
        /// silently impossible).
        capacity_clamped: bool,
        /// Flagged invocations repaired in place by subtracting the
        /// signed error estimate instead of re-executing (0 — and omitted
        /// from the JSON — when the compensation band is disabled, so
        /// re-execution-only streams keep the pre-compensation schema).
        compensated: u64,
        /// Per-tier invocation counts for this window when a model zoo is
        /// attached: one slot per approximator (cheapest first) plus a
        /// final slot for exact-CPU routing. Empty — and omitted from the
        /// JSON — when no zoo is attached, so zoo-disabled streams keep
        /// the pre-zoo schema byte-for-byte.
        tiers: Vec<u64>,
        /// Serving-session label (empty outside the multi-tenant serving
        /// layer; empty labels are omitted from the JSON so single-tenant
        /// streams stay byte-identical to the pre-serving schema).
        session: String,
    },
    /// One fault was injected into (or detected on) the accelerator
    /// datapath. `outcome` is the runtime's verdict: `"detected"` (the
    /// checker fired on the faulty invocation), `"quarantined"` (caught
    /// by the non-finite screen before the checker ran), or `"escaped"`
    /// (the corrupted output reached the merged stream unfixed).
    Fault {
        /// Zero-based invocation index the fault struck.
        invocation: u64,
        /// Fault-taxonomy label (`bit_flip`, `non_finite`, `stuck_at`,
        /// `input_drift`, `checker_blind`, `queue_pressure`).
        kind: String,
        /// Output-element index the strike landed on (0 for
        /// whole-invocation faults).
        element: u64,
        /// `detected` | `quarantined` | `escaped` | `injected`.
        outcome: String,
        /// Serving-session label (empty outside the serving layer).
        session: String,
    },
    /// The graceful-degradation watchdog changed stage.
    Degrade {
        /// Window index at which the action was taken.
        window: u64,
        /// `recalibrate` | `cpu_fallback` | `recovered`.
        action: String,
        /// Human-readable trigger description (strike counts, quality).
        detail: String,
        /// Serving-session label (empty outside the serving layer).
        session: String,
    },
    /// The watchdog's `Recalibrated` rung re-fitted the checker from its
    /// recovery reservoir (open-world drift adaptation) instead of the
    /// reset-only recalibration.
    Refit {
        /// Window index at which the refit committed.
        window: u64,
        /// Refit epoch after the commit (1 = first online refit).
        epoch: u64,
        /// Clean reservoir rows the new model was trained on.
        rows: u64,
        /// Reservoir rows excluded for poisoned provenance (a
        /// `checker_blind` or `non_finite` fault was active when the row
        /// was captured).
        excluded: u64,
        /// The threshold re-calibrated on the refreshed fit.
        threshold: f64,
        /// Serving-session label (empty outside the serving layer).
        session: String,
    },
    /// One trained-model cache lookup resolved.
    Cache {
        /// Whether the entry was found and decoded.
        hit: bool,
        /// The entry's file name (kernel, seed, and content key).
        key: String,
    },
    /// Thread-pool usage summary (from the metrics registry, emitted once
    /// per process by [`crate::finish_run`]).
    Pool {
        /// Parallel map invocations.
        maps: u64,
        /// Total chunks executed across all maps.
        chunks: u64,
        /// Worker-thread count of the most recent map.
        threads: u64,
        /// Instruction set the batched kernels dispatched to
        /// (`scalar`/`avx2`/`neon`; decodes as `scalar` on streams from
        /// builds that predate the field).
        isa: String,
        /// Whether vector kernels were active (`isa != scalar`).
        simd: bool,
    },
    /// Offline threshold calibration completed.
    Calibration {
        /// Training samples calibrated over.
        samples: u64,
        /// Predictions that were non-finite and sanitized to "always
        /// fire" before ranking.
        sanitized: u64,
        /// The calibrated initial threshold.
        threshold: f64,
    },
    /// One full [`RumbaSystem::run`] completed.
    RunSummary {
        /// Kernel/benchmark name.
        kernel: String,
        /// Invocations processed.
        invocations: u64,
        /// Iterations re-executed.
        fixes: u64,
        /// Iterations compensated in place (0 — and omitted from the
        /// JSON — when the compensation band is disabled).
        compensated: u64,
        /// Measured mean output error of the merged stream.
        output_error: f64,
        /// Tuning windows observed.
        windows: u64,
        /// CPU recovery utilization from the Figure-8 pipeline model.
        cpu_utilization: f64,
        /// Threshold at end of run.
        final_threshold: f64,
        /// Whole-stream per-tier invocation counts (same layout as the
        /// `window_end` field; empty — and omitted from the JSON — when no
        /// zoo is attached).
        tiers: Vec<u64>,
        /// Serving-session label (empty outside the serving layer; the
        /// serving runtime emits one tagged `run_summary` per session at
        /// close, so a multi-tenant stream carries one summary per tenant).
        session: String,
    },
    /// A serving-layer session opened or closed (`rumba serve`). On
    /// `close` the counters cover the session's whole request stream.
    Session {
        /// The session's label (unique within the serving runtime).
        session: String,
        /// `open` | `close`.
        action: String,
        /// Kernel the session runs.
        kernel: String,
        /// Requests processed so far (0 on `open`).
        invocations: u64,
        /// Requests re-executed exactly on the CPU so far.
        fixes: u64,
        /// Requests rejected by admission control so far.
        shed: u64,
        /// The session tuner's current firing threshold.
        threshold: f64,
    },
    /// One serving shard's lifecycle (`rumba serve` network layer): the
    /// shard thread started, or stopped at shutdown with its final
    /// ownership and request counters.
    Shard {
        /// Zero-based shard index within the pool.
        shard: u64,
        /// `start` | `stop`.
        action: String,
        /// Sessions the shard owned at the event (0 on `start`).
        sessions: u64,
        /// Request lines the shard had handled at the event.
        requests: u64,
    },
    /// One client connection on the serving network layer was accepted or
    /// finished.
    Connection {
        /// Per-server connection sequence number (accept order).
        id: u64,
        /// `tcp` | `unix`.
        transport: String,
        /// `accept` | `close`.
        action: String,
        /// Request lines handled over the connection (0 on `accept`).
        requests: u64,
    },
    /// An admission-control decision on a full session queue: a `shed`
    /// policy rejected the request (the 503 path), a `block` policy forced
    /// a synchronous drain before accepting it.
    Admission {
        /// The session whose queue was full.
        session: String,
        /// `shed` | `block`.
        policy: String,
        /// Queue depth observed at the decision.
        queue_depth: u64,
        /// Configured queue capacity.
        capacity: u64,
        /// Cumulative requests shed from this session so far.
        shed_total: u64,
    },
}

impl Event {
    /// The `type` tag this event serializes under.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Event::WindowEnd { .. } => "window_end",
            Event::Fault { .. } => "fault",
            Event::Degrade { .. } => "degrade",
            Event::Refit { .. } => "refit",
            Event::Cache { .. } => "cache",
            Event::Pool { .. } => "pool",
            Event::Calibration { .. } => "calibration",
            Event::RunSummary { .. } => "run_summary",
            Event::Session { .. } => "session",
            Event::Shard { .. } => "shard",
            Event::Connection { .. } => "connection",
            Event::Admission { .. } => "admission",
        }
    }

    /// The serving-session label, for variants that carry one (`None`
    /// for untagged events and for tagged events outside any session).
    #[must_use]
    pub fn session(&self) -> Option<&str> {
        let label = match self {
            Event::WindowEnd { session, .. }
            | Event::Fault { session, .. }
            | Event::Degrade { session, .. }
            | Event::Refit { session, .. }
            | Event::RunSummary { session, .. }
            | Event::Session { session, .. }
            | Event::Admission { session, .. } => session.as_str(),
            _ => return None,
        };
        (!label.is_empty()).then_some(label)
    }

    /// Serializes to one JSON line (no trailing newline).
    ///
    /// The `session` tag of the serving-layer variants is appended last
    /// and only when non-empty, so every event emitted outside a serving
    /// session is byte-identical to the pre-serving schema (the
    /// `ci/fig10.golden` contract).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut w = JsonWriter::object(self.tag());
        match self {
            Event::WindowEnd {
                window,
                threshold,
                fired,
                suppressed_by_budget,
                mean_unfixed_pred,
                cpu_capacity,
                queue_depth_max,
                quarantined,
                capacity_clamped,
                compensated,
                tiers,
                session,
            } => {
                w.count("window", *window)
                    .float("threshold", *threshold)
                    .count("fired", *fired)
                    .count("suppressed_by_budget", *suppressed_by_budget)
                    .float("mean_unfixed_pred", *mean_unfixed_pred)
                    .count("cpu_capacity", *cpu_capacity)
                    .count("queue_depth_max", *queue_depth_max)
                    .count("quarantined", *quarantined)
                    .boolean("capacity_clamped", *capacity_clamped);
                if *compensated > 0 {
                    w.count("compensated", *compensated);
                }
                if !tiers.is_empty() {
                    w.counts("tiers", tiers);
                }
                if !session.is_empty() {
                    w.string("session", session);
                }
            }
            Event::Fault { invocation, kind, element, outcome, session } => {
                w.count("invocation", *invocation)
                    .string("kind", kind)
                    .count("element", *element)
                    .string("outcome", outcome);
                if !session.is_empty() {
                    w.string("session", session);
                }
            }
            Event::Degrade { window, action, detail, session } => {
                w.count("window", *window).string("action", action).string("detail", detail);
                if !session.is_empty() {
                    w.string("session", session);
                }
            }
            Event::Refit { window, epoch, rows, excluded, threshold, session } => {
                w.count("window", *window)
                    .count("epoch", *epoch)
                    .count("rows", *rows)
                    .count("excluded", *excluded)
                    .float("threshold", *threshold);
                if !session.is_empty() {
                    w.string("session", session);
                }
            }
            Event::Cache { hit, key } => {
                w.boolean("hit", *hit).string("key", key);
            }
            Event::Pool { maps, chunks, threads, isa, simd } => {
                w.count("maps", *maps)
                    .count("chunks", *chunks)
                    .count("threads", *threads)
                    .string("isa", isa)
                    .boolean("simd", *simd);
            }
            Event::Calibration { samples, sanitized, threshold } => {
                w.count("samples", *samples)
                    .count("sanitized", *sanitized)
                    .float("threshold", *threshold);
            }
            Event::RunSummary {
                kernel,
                invocations,
                fixes,
                compensated,
                output_error,
                windows,
                cpu_utilization,
                final_threshold,
                tiers,
                session,
            } => {
                w.string("kernel", kernel)
                    .count("invocations", *invocations)
                    .count("fixes", *fixes);
                if *compensated > 0 {
                    w.count("compensated", *compensated);
                }
                w.float("output_error", *output_error)
                    .count("windows", *windows)
                    .float("cpu_utilization", *cpu_utilization)
                    .float("final_threshold", *final_threshold);
                if !tiers.is_empty() {
                    w.counts("tiers", tiers);
                }
                if !session.is_empty() {
                    w.string("session", session);
                }
            }
            Event::Session { session, action, kernel, invocations, fixes, shed, threshold } => {
                w.string("session", session)
                    .string("action", action)
                    .string("kernel", kernel)
                    .count("invocations", *invocations)
                    .count("fixes", *fixes)
                    .count("shed", *shed)
                    .float("threshold", *threshold);
            }
            Event::Shard { shard, action, sessions, requests } => {
                w.count("shard", *shard)
                    .string("action", action)
                    .count("sessions", *sessions)
                    .count("requests", *requests);
            }
            Event::Connection { id, transport, action, requests } => {
                w.count("id", *id)
                    .string("transport", transport)
                    .string("action", action)
                    .count("requests", *requests);
            }
            Event::Admission { session, policy, queue_depth, capacity, shed_total } => {
                w.string("session", session)
                    .string("policy", policy)
                    .count("queue_depth", *queue_depth)
                    .count("capacity", *capacity)
                    .count("shed_total", *shed_total);
            }
        }
        w.finish()
    }

    /// Parses one JSONL line back into a typed event.
    ///
    /// # Errors
    ///
    /// Returns a description of the syntax error, unknown `type` tag, or
    /// missing/mistyped field.
    pub fn parse(line: &str) -> Result<Event, String> {
        let obj = parse_object(line)?;
        let tag = obj.string("type").ok_or("missing 'type' field")?;
        let field = |name: &'static str| format!("{tag}: missing or mistyped field '{name}'");
        match tag {
            "window_end" => Ok(Event::WindowEnd {
                window: obj.count("window").ok_or_else(|| field("window"))?,
                threshold: obj.number("threshold").ok_or_else(|| field("threshold"))?,
                fired: obj.count("fired").ok_or_else(|| field("fired"))?,
                suppressed_by_budget: obj
                    .count("suppressed_by_budget")
                    .ok_or_else(|| field("suppressed_by_budget"))?,
                mean_unfixed_pred: obj
                    .number("mean_unfixed_pred")
                    .ok_or_else(|| field("mean_unfixed_pred"))?,
                cpu_capacity: obj.count("cpu_capacity").ok_or_else(|| field("cpu_capacity"))?,
                queue_depth_max: obj
                    .count("queue_depth_max")
                    .ok_or_else(|| field("queue_depth_max"))?,
                quarantined: obj.count("quarantined").ok_or_else(|| field("quarantined"))?,
                capacity_clamped: obj
                    .boolean("capacity_clamped")
                    .ok_or_else(|| field("capacity_clamped"))?,
                // Streams recorded before the compensate path existed carry
                // no counter; those runs compensated nothing.
                compensated: obj.count("compensated").unwrap_or(0),
                // Pre-zoo streams carry no tier counts; those runs routed
                // every invocation to the single accelerator.
                tiers: obj.counts_array("tiers").unwrap_or_default(),
                session: obj.string("session").unwrap_or_default().to_owned(),
            }),
            "fault" => Ok(Event::Fault {
                invocation: obj.count("invocation").ok_or_else(|| field("invocation"))?,
                kind: obj.string("kind").ok_or_else(|| field("kind"))?.to_owned(),
                element: obj.count("element").ok_or_else(|| field("element"))?,
                outcome: obj.string("outcome").ok_or_else(|| field("outcome"))?.to_owned(),
                session: obj.string("session").unwrap_or_default().to_owned(),
            }),
            "degrade" => Ok(Event::Degrade {
                window: obj.count("window").ok_or_else(|| field("window"))?,
                action: obj.string("action").ok_or_else(|| field("action"))?.to_owned(),
                detail: obj.string("detail").ok_or_else(|| field("detail"))?.to_owned(),
                session: obj.string("session").unwrap_or_default().to_owned(),
            }),
            "refit" => Ok(Event::Refit {
                window: obj.count("window").ok_or_else(|| field("window"))?,
                epoch: obj.count("epoch").ok_or_else(|| field("epoch"))?,
                rows: obj.count("rows").ok_or_else(|| field("rows"))?,
                excluded: obj.count("excluded").ok_or_else(|| field("excluded"))?,
                threshold: obj.number("threshold").ok_or_else(|| field("threshold"))?,
                session: obj.string("session").unwrap_or_default().to_owned(),
            }),
            "cache" => Ok(Event::Cache {
                hit: obj.boolean("hit").ok_or_else(|| field("hit"))?,
                key: obj.string("key").ok_or_else(|| field("key"))?.to_owned(),
            }),
            "pool" => Ok(Event::Pool {
                maps: obj.count("maps").ok_or_else(|| field("maps"))?,
                chunks: obj.count("chunks").ok_or_else(|| field("chunks"))?,
                threads: obj.count("threads").ok_or_else(|| field("threads"))?,
                // Streams from builds without SIMD dispatch decode as the
                // scalar kernels they actually ran.
                isa: obj.string("isa").unwrap_or("scalar").to_owned(),
                simd: obj.boolean("simd").unwrap_or(false),
            }),
            "calibration" => Ok(Event::Calibration {
                samples: obj.count("samples").ok_or_else(|| field("samples"))?,
                sanitized: obj.count("sanitized").ok_or_else(|| field("sanitized"))?,
                threshold: obj.number("threshold").ok_or_else(|| field("threshold"))?,
            }),
            "run_summary" => Ok(Event::RunSummary {
                kernel: obj.string("kernel").ok_or_else(|| field("kernel"))?.to_owned(),
                invocations: obj.count("invocations").ok_or_else(|| field("invocations"))?,
                fixes: obj.count("fixes").ok_or_else(|| field("fixes"))?,
                compensated: obj.count("compensated").unwrap_or(0),
                output_error: obj.number("output_error").ok_or_else(|| field("output_error"))?,
                windows: obj.count("windows").ok_or_else(|| field("windows"))?,
                cpu_utilization: obj
                    .number("cpu_utilization")
                    .ok_or_else(|| field("cpu_utilization"))?,
                final_threshold: obj
                    .number("final_threshold")
                    .ok_or_else(|| field("final_threshold"))?,
                tiers: obj.counts_array("tiers").unwrap_or_default(),
                session: obj.string("session").unwrap_or_default().to_owned(),
            }),
            "session" => Ok(Event::Session {
                session: obj.string("session").ok_or_else(|| field("session"))?.to_owned(),
                action: obj.string("action").ok_or_else(|| field("action"))?.to_owned(),
                kernel: obj.string("kernel").ok_or_else(|| field("kernel"))?.to_owned(),
                invocations: obj.count("invocations").ok_or_else(|| field("invocations"))?,
                fixes: obj.count("fixes").ok_or_else(|| field("fixes"))?,
                shed: obj.count("shed").ok_or_else(|| field("shed"))?,
                threshold: obj.number("threshold").ok_or_else(|| field("threshold"))?,
            }),
            "shard" => Ok(Event::Shard {
                shard: obj.count("shard").ok_or_else(|| field("shard"))?,
                action: obj.string("action").ok_or_else(|| field("action"))?.to_owned(),
                sessions: obj.count("sessions").ok_or_else(|| field("sessions"))?,
                requests: obj.count("requests").ok_or_else(|| field("requests"))?,
            }),
            "connection" => Ok(Event::Connection {
                id: obj.count("id").ok_or_else(|| field("id"))?,
                transport: obj.string("transport").ok_or_else(|| field("transport"))?.to_owned(),
                action: obj.string("action").ok_or_else(|| field("action"))?.to_owned(),
                requests: obj.count("requests").ok_or_else(|| field("requests"))?,
            }),
            "admission" => Ok(Event::Admission {
                session: obj.string("session").ok_or_else(|| field("session"))?.to_owned(),
                policy: obj.string("policy").ok_or_else(|| field("policy"))?.to_owned(),
                queue_depth: obj.count("queue_depth").ok_or_else(|| field("queue_depth"))?,
                capacity: obj.count("capacity").ok_or_else(|| field("capacity"))?,
                shed_total: obj.count("shed_total").ok_or_else(|| field("shed_total"))?,
            }),
            other => Err(format!("unknown event type '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::WindowEnd {
                window: 3,
                threshold: 0.012_345_678_9,
                fired: 17,
                suppressed_by_budget: 2,
                mean_unfixed_pred: 1.0 / 3.0,
                cpu_capacity: 40,
                queue_depth_max: 5,
                quarantined: 4,
                capacity_clamped: true,
                compensated: 6,
                tiers: Vec::new(),
                session: String::new(),
            },
            Event::WindowEnd {
                window: 0,
                threshold: 0.08,
                fired: 3,
                suppressed_by_budget: 0,
                mean_unfixed_pred: 0.01,
                cpu_capacity: 12,
                queue_depth_max: 1,
                quarantined: 0,
                capacity_clamped: false,
                compensated: 0,
                tiers: vec![40, 21, 3],
                session: "tenant-1".into(),
            },
            Event::Fault {
                invocation: 812,
                kind: "non_finite".into(),
                element: 2,
                outcome: "quarantined".into(),
                session: String::new(),
            },
            Event::Degrade {
                window: 9,
                action: "recalibrate".into(),
                detail: "3 dirty windows, quality 0.31".into(),
                session: "tenant-2".into(),
            },
            Event::Refit {
                window: 12,
                epoch: 1,
                rows: 96,
                excluded: 4,
                threshold: 0.0021,
                session: "tenant-2".into(),
            },
            Event::Refit {
                window: 4,
                epoch: 2,
                rows: 48,
                excluded: 0,
                threshold: 0.3,
                session: String::new(),
            },
            Event::Cache { hit: true, key: "gaussian-s42-0123456789abcdef.words".into() },
            Event::Cache { hit: false, key: "fft-s7-fedcba9876543210.words".into() },
            Event::Pool { maps: 120, chunks: 4096, threads: 4, isa: "avx2".into(), simd: true },
            Event::Calibration { samples: 2048, sanitized: 3, threshold: 1e-6 },
            Event::RunSummary {
                kernel: "inversek2j".into(),
                invocations: 10_000,
                fixes: 731,
                compensated: 112,
                output_error: 0.0231,
                windows: 40,
                cpu_utilization: 0.412,
                final_threshold: 0.05,
                tiers: vec![9_000, 731, 269],
                session: String::new(),
            },
            Event::Session {
                session: "tenant-1".into(),
                action: "close".into(),
                kernel: "gaussian".into(),
                invocations: 512,
                fixes: 31,
                shed: 4,
                threshold: 0.071,
            },
            Event::Shard { shard: 1, action: "stop".into(), sessions: 3, requests: 412 },
            Event::Connection {
                id: 7,
                transport: "tcp".into(),
                action: "close".into(),
                requests: 25,
            },
            Event::Admission {
                session: "tenant-3".into(),
                policy: "shed".into(),
                queue_depth: 16,
                capacity: 16,
                shed_total: 9,
            },
        ]
    }

    #[test]
    fn every_event_type_round_trips_exactly() {
        // The schema test the ISSUE asks for: serialize → parse → field
        // check, for every variant.
        for event in samples() {
            let line = event.to_jsonl();
            assert!(!line.contains('\n'), "one line per event: {line}");
            let parsed = Event::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(parsed, event, "{line}");
        }
    }

    #[test]
    fn float_fields_round_trip_bitwise() {
        let event = Event::Calibration {
            samples: 1,
            sanitized: 0,
            threshold: 0.1 + 0.2, // 0.30000000000000004 — needs full precision
        };
        match Event::parse(&event.to_jsonl()).unwrap() {
            Event::Calibration { threshold, .. } => {
                assert_eq!(threshold.to_bits(), (0.1f64 + 0.2).to_bits());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn non_finite_quality_estimate_survives_as_nan() {
        let event = Event::WindowEnd {
            window: 0,
            threshold: 0.1,
            fired: 0,
            suppressed_by_budget: 0,
            mean_unfixed_pred: f64::NAN,
            cpu_capacity: 1,
            queue_depth_max: 0,
            quarantined: 0,
            capacity_clamped: false,
            compensated: 0,
            tiers: Vec::new(),
            session: String::new(),
        };
        let line = event.to_jsonl();
        assert!(line.contains("\"mean_unfixed_pred\":null"), "{line}");
        match Event::parse(&line).unwrap() {
            Event::WindowEnd { mean_unfixed_pred, .. } => assert!(mean_unfixed_pred.is_nan()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn pre_simd_pool_lines_decode_with_scalar_defaults() {
        // Streams recorded before the `pool` event carried the dispatched
        // ISA must keep decoding; those builds only ever ran scalar.
        let old = "{\"type\":\"pool\",\"maps\":7,\"chunks\":28,\"threads\":2}";
        match Event::parse(old).unwrap() {
            Event::Pool { maps, chunks, threads, isa, simd } => {
                assert_eq!((maps, chunks, threads), (7, 28, 2));
                assert_eq!(isa, "scalar");
                assert!(!simd);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_and_incomplete_events() {
        assert!(Event::parse("{\"type\":\"martian\"}").is_err());
        assert!(Event::parse("{\"type\":\"cache\",\"hit\":true}").is_err(), "missing key");
        assert!(Event::parse("not json").is_err());
        assert!(Event::parse("{\"hit\":true}").is_err(), "missing type");
    }

    #[test]
    fn tags_match_the_documented_schema() {
        let tags: Vec<&str> = samples().iter().map(Event::tag).collect();
        for want in [
            "window_end",
            "fault",
            "degrade",
            "refit",
            "cache",
            "pool",
            "calibration",
            "run_summary",
            "session",
            "admission",
        ] {
            assert!(tags.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn empty_session_labels_are_omitted_from_the_wire() {
        // The fig10 golden contract: single-tenant streams must serialize
        // exactly as they did before the serving layer added the tag.
        for event in samples() {
            let line = event.to_jsonl();
            match event.session() {
                Some(label) => {
                    assert!(line.contains(&format!("\"session\":\"{label}\"")), "{line}");
                }
                None => assert!(!line.contains("\"session\""), "{line}"),
            }
        }
        let tagged = Event::Fault {
            invocation: 1,
            kind: "bit_flip".into(),
            element: 0,
            outcome: "detected".into(),
            session: "t".into(),
        };
        // The tag is appended after every legacy field.
        assert!(tagged.to_jsonl().ends_with("\"session\":\"t\"}"), "{}", tagged.to_jsonl());
    }

    #[test]
    fn empty_tier_counts_are_omitted_from_the_wire() {
        // Same golden contract again: streams with no model zoo attached
        // serialize exactly as they did before the field existed.
        for event in samples() {
            let line = event.to_jsonl();
            let has = line.contains("\"tiers\"");
            match &event {
                Event::WindowEnd { tiers, .. } | Event::RunSummary { tiers, .. } => {
                    assert_eq!(has, !tiers.is_empty(), "{line}");
                }
                _ => assert!(!has, "{line}"),
            }
        }
    }

    #[test]
    fn zero_compensated_counts_are_omitted_from_the_wire() {
        // Same golden contract as the session tag: runs that never
        // compensate serialize exactly as they did before the field existed.
        for event in samples() {
            let line = event.to_jsonl();
            let has = line.contains("\"compensated\"");
            match &event {
                Event::WindowEnd { compensated, .. } | Event::RunSummary { compensated, .. } => {
                    assert_eq!(has, *compensated > 0, "{line}");
                }
                _ => assert!(!has, "{line}"),
            }
        }
    }
}
