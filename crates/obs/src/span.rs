//! Lightweight span timers: scoped wall-clock measurements feeding the
//! metrics registry.
//!
//! Durations are inherently nondeterministic, so spans record **only**
//! into registry histograms (`span.<name>.ms`) — never into the JSONL
//! event stream, whose content must be a pure function of the computation.
//! When telemetry is disabled a span takes no clock reading at all.

use std::time::Instant;

use crate::{enabled, metrics};

/// A running span; records its elapsed milliseconds on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to — bind it to a variable"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Milliseconds elapsed so far (`None` when telemetry is disabled).
    #[must_use]
    pub fn elapsed_ms(&self) -> Option<f64> {
        self.start.map(|s| s.elapsed().as_secs_f64() * 1e3)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(ms) = self.elapsed_ms() {
            metrics().observe(&format!("span.{}.ms", self.name), ms);
        }
    }
}

/// Starts a span named `name`. The returned guard records one observation
/// into the `span.<name>.ms` histogram when it goes out of scope.
pub fn span(name: &'static str) -> Span {
    Span { name, start: if enabled() { Some(Instant::now()) } else { None } }
}

// Span behavior is covered by the serialized global-state test in
// `lib.rs` (`global_sink_spans_and_finish_run`): every span assertion
// depends on the process-wide enabled flag, which parallel unit tests
// would race on.
