//! The metrics registry: named counters, gauges, and summary histograms.
//!
//! Unlike [`crate::Event`]s (a stream), the registry is cumulative state:
//! the pool bumps `pool.maps` on every parallel map, the tuner counts
//! history evictions, span timers feed duration histograms. Names are
//! dotted paths (`pool.chunks`, `span.cli.train.ms`); snapshots come back
//! sorted by name, so rendering is deterministic.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Summary statistics for one histogram (no buckets — the workspace needs
/// count/sum/min/max, and those merge trivially).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl HistogramSummary {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the observed values (NaN when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

/// A point-in-time copy of the registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Summary histograms.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// The counter `name`, defaulting to 0.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge `name`, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }
}

/// A registry of named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the counter `name` (created at zero).
    pub fn add(&self, name: &str, by: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Increments the counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_owned(), value);
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        self.lock()
            .histograms
            .entry(name.to_owned())
            .or_insert(HistogramSummary {
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            })
            .observe(value);
    }

    /// A sorted copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Clears every metric (tests).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("metrics lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 4);
        m.inc("b");
        let snap = m.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauges_take_the_last_write() {
        let m = MetricsRegistry::new();
        assert_eq!(m.snapshot().gauge("t"), None);
        m.set_gauge("t", 2.0);
        m.set_gauge("t", 8.0);
        assert_eq!(m.snapshot().gauge("t"), Some(8.0));
    }

    #[test]
    fn histograms_summarize() {
        let m = MetricsRegistry::new();
        for v in [3.0, 1.0, 2.0] {
            m.observe("h", v);
        }
        let h = m.snapshot().histograms["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 6.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_is_sorted_and_reset_clears() {
        let m = MetricsRegistry::new();
        m.inc("z.last");
        m.inc("a.first");
        let snap = m.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["a.first", "z.last"]);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }
}
