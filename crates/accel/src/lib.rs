//! Cycle-level model of the NPU-style approximate accelerator Rumba
//! supervises, together with the hardware Rumba adds around it.
//!
//! The model mirrors the execution subsystem in the paper's Figure 4:
//!
//! - [`Npu`]: an 8-processing-element neural accelerator evaluating a
//!   trained MLP; produces approximate outputs plus an invocation cycle
//!   count derived from per-layer neuron scheduling,
//! - [`queue::Fifo`]: the core↔accelerator I/O queues (config, input,
//!   output, and the *recovery queue* carrying recovery bits),
//! - [`CheckerUnit`]: the error-predictor hardware bolted onto the
//!   accelerator (coefficient buffers + MAC/comparator datapath, Figure 7),
//! - [`Placement`]: the Figure-9 design choice of running an input-based
//!   detector before the accelerator (Configuration 1) or in parallel with
//!   it (Configuration 2).
//!
//! # Examples
//!
//! ```
//! use rumba_accel::{Npu, NpuParams};
//! use rumba_nn::{Activation, NnDataset, TrainedModel, TrainParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = NnDataset::from_fn(1, 1, 64, |i, x, y| {
//!     x[0] = i as f64 / 64.0;
//!     y[0] = x[0] * 0.5;
//! })?;
//! let model = TrainedModel::fit(&[1, 4, 1], Activation::Sigmoid, &data,
//!                               &TrainParams::default(), 1)?;
//! let npu = Npu::new(model, NpuParams::default());
//! let result = npu.invoke(&[0.5])?;
//! assert_eq!(result.outputs.len(), 1);
//! assert!(result.cycles > 0);
//! # Ok(())
//! # }
//! ```

mod checker;
mod config;
mod npu;
mod placement;
pub mod queue;

pub use checker::CheckerUnit;
pub use config::{DeploymentImage, TransferReport};
pub use npu::{Npu, NpuParams, NpuResult};
pub use placement::{InvocationTiming, Placement};
