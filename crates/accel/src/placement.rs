//! §3.5 — relative placement of input-based error detectors (Figure 9).
//!
//! Configuration 1 runs the detector *before* the accelerator: a fired check
//! skips the accelerator invocation entirely (saving its energy) at the cost
//! of serializing detector and accelerator latency. Configuration 2 runs
//! both in parallel: no added latency, but fired invocations waste the
//! accelerator energy. The paper picks Configuration 2; `ablate_placement`
//! quantifies the trade-off.

use std::fmt;

/// Where an input-based detector sits relative to the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Figure 9(a): detector output gates the accelerator invocation.
    BeforeAccelerator,
    /// Figure 9(b): detector and accelerator start together (the paper's
    /// choice, used by default).
    #[default]
    Parallel,
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Placement::BeforeAccelerator => "configuration 1 (detector before accelerator)",
            Placement::Parallel => "configuration 2 (detector parallel to accelerator)",
        })
    }
}

/// Latency/energy consequences of one invocation under a placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationTiming {
    /// Cycles until the invocation's result (approximate or "fired, will
    /// re-execute") is known at the accelerator boundary.
    pub latency_cycles: u64,
    /// Whether the accelerator actually ran (false only under
    /// Configuration 1 with a fired check).
    pub accelerator_ran: bool,
}

impl Placement {
    /// Resolves the timing of one invocation.
    ///
    /// `fired` is whether the detector flagged this invocation;
    /// `detector_cycles` and `accelerator_cycles` are the respective
    /// datapath occupancies. Output-based detectors (EMA) must use
    /// [`Placement::Parallel`] semantics with the detector serialized after
    /// the accelerator — handled by the caller adding its cycles to
    /// `accelerator_cycles`.
    #[must_use]
    pub fn timing(
        self,
        fired: bool,
        detector_cycles: u64,
        accelerator_cycles: u64,
    ) -> InvocationTiming {
        match self {
            Placement::BeforeAccelerator => {
                if fired {
                    // Accelerator invocation is skipped entirely.
                    InvocationTiming { latency_cycles: detector_cycles, accelerator_ran: false }
                } else {
                    InvocationTiming {
                        latency_cycles: detector_cycles + accelerator_cycles,
                        accelerator_ran: true,
                    }
                }
            }
            Placement::Parallel => InvocationTiming {
                latency_cycles: detector_cycles.max(accelerator_cycles),
                accelerator_ran: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_hides_detector_latency() {
        let t = Placement::Parallel.timing(false, 10, 40);
        assert_eq!(t.latency_cycles, 40);
        assert!(t.accelerator_ran);
    }

    #[test]
    fn parallel_never_skips_the_accelerator() {
        let t = Placement::Parallel.timing(true, 10, 40);
        assert!(t.accelerator_ran, "energy is wasted on fired invocations");
        assert_eq!(t.latency_cycles, 40);
    }

    #[test]
    fn config1_serializes_when_not_fired() {
        let t = Placement::BeforeAccelerator.timing(false, 10, 40);
        assert_eq!(t.latency_cycles, 50);
        assert!(t.accelerator_ran);
    }

    #[test]
    fn config1_skips_accelerator_when_fired() {
        let t = Placement::BeforeAccelerator.timing(true, 10, 40);
        assert_eq!(t.latency_cycles, 10);
        assert!(!t.accelerator_ran, "accelerator energy saved");
    }

    #[test]
    fn default_is_the_papers_choice() {
        assert_eq!(Placement::default(), Placement::Parallel);
    }

    #[test]
    fn display_is_descriptive() {
        assert!(Placement::Parallel.to_string().contains("configuration 2"));
    }
}
