//! Bounded FIFO queues modeling the core↔accelerator interconnect of
//! Figure 4: the config queue (weights, checker coefficients), the
//! input/output data queues, and the recovery queue carrying per-iteration
//! recovery bits back to the CPU.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error returned when pushing into a full [`Fifo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError {
    /// Capacity of the queue that rejected the push.
    pub capacity: usize,
}

impl fmt::Display for QueueFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue is full (capacity {})", self.capacity)
    }
}

impl Error for QueueFullError {}

/// A bounded single-producer FIFO with occupancy statistics.
///
/// # Examples
///
/// ```
/// use rumba_accel::queue::Fifo;
///
/// let mut q = Fifo::new(2);
/// q.push(10u32)?;
/// q.push(20)?;
/// assert!(q.push(30).is_err());
/// assert_eq!(q.pop(), Some(10));
/// # Ok::<(), rumba_accel::queue::QueueFullError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    pushes: u64,
    pops: u64,
    high_water: usize,
}

impl<T> Fifo<T> {
    /// Creates an empty queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be nonzero");
        Self { items: VecDeque::new(), capacity, pushes: 0, pops: 0, high_water: 0 }
    }

    /// Enqueues one entry.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] when at capacity; the entry is dropped, so
    /// callers model back-pressure explicitly.
    pub fn push(&mut self, item: T) -> Result<(), QueueFullError> {
        if self.items.len() == self.capacity {
            return Err(QueueFullError { capacity: self.capacity });
        }
        self.items.push_back(item);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest entry, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// Oldest entry without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total successful pushes over the queue's lifetime.
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total successful pops over the queue's lifetime.
    #[must_use]
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Maximum occupancy ever observed.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drains all entries, oldest first.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.pops += self.items.len() as u64;
        self.items.drain(..)
    }
}

/// One recovery-queue entry: "iteration `iteration` produced a suspected
/// large error" (the recovery bit of Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecoveryBit {
    /// Index of the accelerator iteration to re-execute on the CPU.
    pub iteration: usize,
    /// The predicted error that fired the check (kept for tuner telemetry).
    pub predicted_error: OrderedF64,
}

/// A totally ordered `f64` wrapper (NaN-free by construction) so recovery
/// bits can live in ordered collections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a finite value.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "predicted errors must not be NaN");
        Self(value)
    }

    /// The wrapped value.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("NaN excluded at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_orders_and_counts() {
        let mut q = Fifo::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.high_water(), 4);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pushes(), 4);
        assert_eq!(q.pops(), 2);
    }

    #[test]
    fn push_to_full_queue_fails() {
        let mut q = Fifo::new(1);
        q.push('a').unwrap();
        assert_eq!(q.push('b'), Err(QueueFullError { capacity: 1 }));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn drain_empties_and_counts() {
        let mut q = Fifo::new(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let drained: Vec<_> = q.drain().collect();
        assert_eq!(drained, vec![1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.pops(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = Fifo::new(2);
        q.push(7).unwrap();
        assert_eq!(q.peek(), Some(&7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn ordered_f64_sorts() {
        let mut v = [OrderedF64::new(0.3), OrderedF64::new(0.1), OrderedF64::new(0.2)];
        v.sort();
        assert_eq!(v[0].get(), 0.1);
        assert_eq!(v[2].get(), 0.3);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ordered_f64_rejects_nan() {
        let _ = OrderedF64::new(f64::NAN);
    }

    proptest! {
        #[test]
        fn fifo_preserves_order(items in proptest::collection::vec(0u32..1000, 1..64)) {
            let mut q = Fifo::new(items.len());
            for &i in &items {
                q.push(i).unwrap();
            }
            let out: Vec<_> = q.drain().collect();
            prop_assert_eq!(out, items);
        }

        #[test]
        fn occupancy_never_exceeds_capacity(ops in proptest::collection::vec(proptest::bool::ANY, 1..200)) {
            let mut q = Fifo::new(8);
            let mut i = 0u32;
            for push in ops {
                if push {
                    let _ = q.push(i);
                    i += 1;
                } else {
                    let _ = q.pop();
                }
                prop_assert!(q.len() <= q.capacity());
                prop_assert!(q.high_water() <= q.capacity());
            }
        }
    }
}
