//! The error-predictor hardware added to the accelerator (Figure 7): a
//! coefficient buffer fed through the config queue plus a small datapath
//! (MAC chain for the linear model, comparator walk for the tree, one
//! multiply-add for the EMA).

use rumba_predict::{CheckerCost, ErrorEstimator};

/// A checker datapath wrapping an [`ErrorEstimator`] with a hardware cycle
/// model.
///
/// The cycle model is deliberately conservative: one cycle per MAC, one per
/// comparison, and coefficient reads overlapped with compute (they stream
/// from a dedicated circular buffer, Figure 7), plus a fixed one-cycle fire
/// decision.
///
/// # Examples
///
/// ```
/// use rumba_accel::CheckerUnit;
/// use rumba_predict::{EmaDetector, ErrorEstimator};
///
/// let ema = EmaDetector::new(8, 1).unwrap();
/// let mut unit = CheckerUnit::new(Box::new(ema));
/// let score = unit.predict(&[], &[0.5]);
/// assert!(score >= 0.0);
/// assert!(unit.cycles_per_prediction() >= 1);
/// ```
#[derive(Debug)]
pub struct CheckerUnit {
    estimator: Box<dyn ErrorEstimator>,
    cycles: u64,
    predictions: u64,
}

impl CheckerUnit {
    /// Wraps an estimator in the hardware model.
    #[must_use]
    pub fn new(estimator: Box<dyn ErrorEstimator>) -> Self {
        let cycles = cycles_of(estimator.cost());
        Self { estimator, cycles, predictions: 0 }
    }

    /// Runs one prediction through the datapath.
    pub fn predict(&mut self, input: &[f64], approx_output: &[f64]) -> f64 {
        self.predictions += 1;
        self.estimator.estimate(input, approx_output)
    }

    /// Signed output-space error estimate for the invocation most recently
    /// scored by [`CheckerUnit::predict`] (`magnitude` is that score). Pure:
    /// no counter bump, no estimator state change — the compensation path
    /// reuses the datapath pass the magnitude prediction already paid for.
    #[must_use]
    pub fn predict_signed(&self, input: &[f64], approx_output: &[f64], magnitude: f64) -> f64 {
        self.estimator.estimate_signed(input, approx_output, magnitude)
    }

    /// Cycles one prediction occupies the checker datapath.
    #[must_use]
    pub fn cycles_per_prediction(&self) -> u64 {
        self.cycles
    }

    /// Hardware work one prediction performs.
    #[must_use]
    pub fn cost(&self) -> CheckerCost {
        self.estimator.cost()
    }

    /// The wrapped estimator's paper-facing name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.estimator.name()
    }

    /// Whether the wrapped estimator is input-based (§3.5 placement rules).
    #[must_use]
    pub fn is_input_based(&self) -> bool {
        self.estimator.is_input_based()
    }

    /// Number of predictions issued since construction or the last reset.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Clears online estimator state (EMA history) and the prediction
    /// counter.
    pub fn reset(&mut self) {
        self.estimator.reset();
        self.predictions = 0;
    }

    /// Direct access to the wrapped estimator.
    #[must_use]
    pub fn estimator(&self) -> &dyn ErrorEstimator {
        self.estimator.as_ref()
    }

    /// Re-fits the wrapped estimator's trained model from online ground
    /// truth (see [`ErrorEstimator::refit`]). The datapath cycle model is
    /// refreshed afterwards: a refit tree may change depth, and the energy
    /// model must charge the new walk length.
    ///
    /// # Errors
    ///
    /// Propagates the estimator's refusal (output-based detectors carry no
    /// refittable model); the estimator is unchanged on error.
    pub fn refit(
        &mut self,
        rows: &[&[f64]],
        targets: &[f64],
        signed_targets: &[f64],
    ) -> Result<(), String> {
        self.estimator.refit(rows, targets, signed_targets)?;
        self.cycles = cycles_of(self.estimator.cost());
        Ok(())
    }

    /// Scores one row for *calibration* (threshold re-fitting) without
    /// bumping the prediction counter: calibration probes are not datapath
    /// traffic, so they must not show up in the energy accounting. Only
    /// meaningful for stateless input-based estimators — the refit path
    /// never reaches here for online (EMA-style) detectors.
    pub fn probe(&mut self, input: &[f64], approx_output: &[f64]) -> f64 {
        self.estimator.estimate(input, approx_output)
    }

    /// The wrapped estimator's trained-model words (see
    /// [`ErrorEstimator::export_model_words`]); `None` when the estimator
    /// kind does not support trained-model transport.
    #[must_use]
    pub fn export_model(&self) -> Option<Vec<u64>> {
        self.estimator.export_model_words()
    }

    /// Restores trained-model words produced by
    /// [`CheckerUnit::export_model`], refreshing the cycle model.
    ///
    /// # Errors
    ///
    /// Propagates the estimator's decode errors.
    pub fn import_model(&mut self, words: &[u64]) -> Result<(), String> {
        self.estimator.import_model_words(words)?;
        self.cycles = cycles_of(self.estimator.cost());
        Ok(())
    }

    /// Serializes the datapath's online state (prediction counter, the
    /// estimator's configuration fingerprint, then the estimator's own
    /// words) for session snapshots.
    #[must_use]
    pub fn export_state(&self) -> Vec<u64> {
        let mut words = vec![self.predictions, self.estimator.state_config_word()];
        words.extend(self.estimator.export_state());
        words
    }

    /// Restores state exported by [`CheckerUnit::export_state`] onto an
    /// identically configured unit.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when the words do not decode,
    /// or when the embedded configuration fingerprint disagrees with this
    /// unit's estimator — state words from a differently-configured checker
    /// (another kind, another EMA window, another model shape) can share a
    /// word count and would otherwise corrupt online state silently.
    pub fn import_state(&mut self, words: &[u64]) -> Result<(), String> {
        if words.len() < 2 {
            return Err(format!("checker state wants at least 2 words, got {}", words.len()));
        }
        let (predictions, config_word, rest) = (words[0], words[1], &words[2..]);
        let expected = self.estimator.state_config_word();
        if config_word != expected {
            return Err(format!(
                "checker config mismatch: snapshot was taken under {config_word:#018x}, \
                 this session's {} checker is {expected:#018x}",
                self.estimator.name()
            ));
        }
        self.estimator.import_state(rest)?;
        self.predictions = predictions;
        Ok(())
    }
}

fn cycles_of(cost: CheckerCost) -> u64 {
    // +1: the fire comparison against the tuning threshold.
    (cost.macs + cost.comparisons) as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumba_predict::{EmaDetector, LinearErrors, TreeErrors, TreeParams};

    fn linear_unit(dim: usize) -> CheckerUnit {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0; dim]).collect();
        let errors: Vec<f64> = (0..20).map(|i| i as f64 * 0.01).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        CheckerUnit::new(Box::new(LinearErrors::train(&refs, &errors, 1e-3).unwrap()))
    }

    #[test]
    fn linear_cycles_scale_with_width() {
        assert!(linear_unit(9).cycles_per_prediction() > linear_unit(2).cycles_per_prediction());
    }

    #[test]
    fn tree_checker_is_cheap() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let errors: Vec<f64> = rows.iter().map(|r| if r[0] > 0.5 { 0.5 } else { 0.0 }).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let unit = CheckerUnit::new(Box::new(
            TreeErrors::train(&refs, &errors, &TreeParams::default()).unwrap(),
        ));
        // Depth ≤ 7 → at most 8 comparisons + fire = 9 cycles.
        assert!(unit.cycles_per_prediction() <= 9);
    }

    #[test]
    fn prediction_counter_and_reset() {
        let ema = EmaDetector::new(4, 1).unwrap();
        let mut unit = CheckerUnit::new(Box::new(ema));
        let _ = unit.predict(&[], &[1.0]);
        let _ = unit.predict(&[], &[1.0]);
        assert_eq!(unit.predictions(), 2);
        unit.reset();
        assert_eq!(unit.predictions(), 0);
        // EMA history cleared: the next sample scores zero again.
        assert_eq!(unit.predict(&[], &[42.0]), 0.0);
    }

    #[test]
    fn name_and_placement_pass_through() {
        let unit = linear_unit(3);
        assert_eq!(unit.name(), "linearErrors");
        assert!(unit.is_input_based());
    }

    #[test]
    fn state_round_trips_through_the_config_word() {
        let mut unit = CheckerUnit::new(Box::new(EmaDetector::new(4, 2).unwrap()));
        let _ = unit.predict(&[], &[1.0, 2.0]);
        let words = unit.export_state();
        let mut fresh = CheckerUnit::new(Box::new(EmaDetector::new(4, 2).unwrap()));
        fresh.import_state(&words).unwrap();
        assert_eq!(fresh.predictions(), 1);
        assert_eq!(fresh.export_state(), words);
    }

    #[test]
    fn refit_passes_through_and_refreshes_the_cycle_model() {
        // Train a stump, refit into a deeper tree: the comparator-walk
        // cycle count must grow with the new depth.
        let rows: Vec<Vec<f64>> = (0..128).map(|i| vec![i as f64 / 128.0]).collect();
        let flat: Vec<f64> = vec![0.1; 128];
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let mut unit = CheckerUnit::new(Box::new(
            TreeErrors::train(&refs, &flat, &TreeParams::default()).unwrap(),
        ));
        let before = unit.cycles_per_prediction();
        let wavy: Vec<f64> = rows.iter().map(|r| (r[0] * 20.0).sin().abs()).collect();
        let signed: Vec<f64> = rows.iter().map(|r| r[0] - 0.5).collect();
        unit.refit(&refs, &wavy, &signed).unwrap();
        assert!(unit.cycles_per_prediction() > before);

        // Probing does not count as datapath traffic.
        let n = unit.predictions();
        let _ = unit.probe(&[0.5], &[]);
        assert_eq!(unit.predictions(), n);

        // Model words migrate the refit checker onto a fresh unit.
        let words = unit.export_model().unwrap();
        let mut fresh = CheckerUnit::new(Box::new(
            TreeErrors::train(&refs, &flat, &TreeParams::default()).unwrap(),
        ));
        fresh.import_model(&words).unwrap();
        assert_eq!(fresh.export_model().unwrap(), words);
        assert_eq!(fresh.cycles_per_prediction(), unit.cycles_per_prediction());

        // Output-based detectors decline the whole surface.
        let mut ema = CheckerUnit::new(Box::new(EmaDetector::new(4, 1).unwrap()));
        assert!(ema.refit(&refs, &wavy, &signed).is_err());
        assert!(ema.export_model().is_none());
        assert!(ema.import_model(&words).is_err());
    }

    #[test]
    fn import_rejects_a_differently_configured_checker() {
        // Same output_dim → identical estimator word counts; only the
        // config fingerprint tells an 8-window EMA from a 4-window one.
        let unit = CheckerUnit::new(Box::new(EmaDetector::new(8, 1).unwrap()));
        let words = unit.export_state();
        let mut other_alpha = CheckerUnit::new(Box::new(EmaDetector::new(4, 1).unwrap()));
        let err = other_alpha.import_state(&words).unwrap_err();
        assert!(err.contains("config mismatch"), "{err}");

        // Cross-kind: linear state under a tree checker.
        let linear = linear_unit(1);
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let errors: Vec<f64> = rows.iter().map(|r| if r[0] > 0.5 { 0.5 } else { 0.0 }).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let mut tree = CheckerUnit::new(Box::new(
            TreeErrors::train(&refs, &errors, &TreeParams::default()).unwrap(),
        ));
        assert!(tree.import_state(&linear.export_state()).unwrap_err().contains("mismatch"));
    }
}
