//! The neural processing unit: an 8-PE accelerator evaluating one trained
//! MLP per invocation, with a cycle model derived from how neurons schedule
//! onto processing elements.

use rumba_faults::FaultPlan;
use rumba_nn::{FixedModel, Matrix, MatrixView, NnError, Scratch, TrainedModel};

/// Microarchitectural parameters of the accelerator.
///
/// Defaults match the paper's 8-PE NPU configuration; the `ablate_pe_count`
/// harness sweeps `pe_count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NpuParams {
    /// Number of processing elements evaluating neurons in parallel.
    pub pe_count: usize,
    /// Pipeline fill/drain overhead charged per scheduled neuron wave.
    pub wave_overhead: u64,
    /// Queue-transfer cycles charged per word moved through the input and
    /// output FIFOs.
    pub io_cycles_per_word: u64,
    /// Fixed invocation overhead (enqueue/dequeue handshake).
    pub invocation_overhead: u64,
    /// Datapath precision in fractional bits; `None` is the paper's
    /// full-precision digital NPU, `Some(b)` models a limited-precision
    /// (analog-style) implementation whose values live on a `2^-b` grid —
    /// the "dial up the approximation" knob the `ablate_precision` harness
    /// sweeps.
    pub precision_bits: Option<u32>,
    /// Evaluate the limited-precision datapath on the true `i16`/`i32`
    /// fixed-point path ([`rumba_nn::FixedModel`]) instead of the f64
    /// grid simulation. Only meaningful with `precision_bits: Some(_)`
    /// (ignored otherwise); off by default so existing configurations and
    /// goldens are untouched.
    pub fixed_point: bool,
}

impl Default for NpuParams {
    fn default() -> Self {
        // Calibrated so kernel-level accelerator gains land in the paper's
        // 2–7x band (Figure 18 quotes 6.67x for the fastest configuration):
        // queue transfers dominate small-topology invocations.
        Self {
            pe_count: 8,
            wave_overhead: 4,
            io_cycles_per_word: 4,
            invocation_overhead: 16,
            precision_bits: None,
            fixed_point: false,
        }
    }
}

/// Output of one accelerator invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct NpuResult {
    /// The approximate outputs, in application units.
    pub outputs: Vec<f64>,
    /// Cycles the invocation occupied the accelerator.
    pub cycles: u64,
}

/// The accelerator: a [`TrainedModel`] plus the scheduling cycle model.
///
/// See the [crate docs](crate) for a usage example.
#[derive(Debug, Clone, PartialEq)]
pub struct Npu {
    model: TrainedModel,
    params: NpuParams,
    cycles_per_invocation: u64,
    fault_plan: Option<FaultPlan>,
    /// Prepared once at construction when `params.fixed_point` asks for
    /// the integer datapath, so invocations pay no quantization setup.
    fixed: Option<FixedModel>,
}

impl Npu {
    /// Builds an accelerator around an offline-trained model.
    ///
    /// # Panics
    ///
    /// Panics if `params.pe_count` is zero.
    #[must_use]
    pub fn new(model: TrainedModel, params: NpuParams) -> Self {
        assert!(params.pe_count > 0, "accelerator needs at least one PE");
        let cycles_per_invocation = cycle_model(&model, &params);
        let fixed = match (params.fixed_point, params.precision_bits) {
            (true, Some(bits)) => Some(model.prepare_fixed(bits)),
            _ => None,
        };
        Self { model, params, cycles_per_invocation, fault_plan: None, fixed }
    }

    /// Attaches a fault-injection plan (builder style). With a plan
    /// attached, [`Npu::invoke_at`] and [`Npu::invoke_batch`] corrupt the
    /// datapath exactly as the plan dictates; without one, the hooks are
    /// never consulted and the fault-off path is byte-identical to a build
    /// that has no fault support at all.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(Some(plan));
        self
    }

    /// Attaches or detaches the fault-injection plan. Empty plans are
    /// normalized to `None` so the hot path needs only one check.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan.filter(|p| !p.is_empty());
    }

    /// The attached fault-injection plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Evaluates one invocation.
    ///
    /// With a fault plan attached this is invocation index 0; streams that
    /// care about per-invocation fault positions use [`Npu::invoke_at`].
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `input` does not match the configured
    /// topology.
    pub fn invoke(&self, input: &[f64]) -> Result<NpuResult, NnError> {
        self.invoke_at(0, input)
    }

    /// Evaluates one invocation at stream position `invocation` — the
    /// coordinate fault decisions are keyed on, so a streaming caller
    /// passing its running index gets bit-identical corruption to a
    /// batched [`Npu::invoke_batch`] run over the same rows.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `input` does not match the configured
    /// topology.
    pub fn invoke_at(&self, invocation: usize, input: &[f64]) -> Result<NpuResult, NnError> {
        let mut drifted;
        let effective: &[f64] = match &self.fault_plan {
            Some(plan) if plan.has_input_faults() => {
                drifted = input.to_vec();
                plan.drift_input(invocation, &mut drifted);
                &drifted
            }
            _ => input,
        };
        let mut outputs = match (&self.fixed, self.params.precision_bits) {
            (Some(fixed), _) => fixed.predict(effective)?,
            (None, Some(bits)) => self.model.predict_quantized(effective, bits)?,
            (None, None) => self.model.predict(effective)?,
        };
        if let Some(plan) = &self.fault_plan {
            plan.corrupt_output(invocation, &mut outputs);
        }
        Ok(NpuResult { outputs, cycles: self.cycles_per_invocation })
    }

    /// Evaluates many invocations through the cache-blocked batched model
    /// path, writing row `i`'s outputs into `out.row(i)` and returning the
    /// per-invocation cycle cost (a constant of the configuration, so one
    /// number covers the whole batch). Row chunks fan out over the
    /// deterministic pool; each row is bit-identical to [`Npu::invoke`] at
    /// any thread count, and with a reused `scratch`/`out` pair the
    /// single-thread path allocates nothing in steady state.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `inputs` does not match the configured
    /// topology.
    pub fn invoke_batch(
        &self,
        inputs: MatrixView<'_>,
        scratch: &mut Scratch,
        out: &mut Matrix,
    ) -> Result<u64, NnError> {
        self.invoke_batch_at(0, inputs, scratch, out)
    }

    /// [`Npu::invoke_batch`] for a batch starting at stream position
    /// `base`: row `i` is treated as invocation `base + i` for every fault
    /// decision, so a mid-stream drain batch (the serving scheduler's case)
    /// is corrupted bit-identically to per-row [`Npu::invoke_at`] calls at
    /// the same stream positions.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `inputs` does not match the configured
    /// topology.
    pub fn invoke_batch_at(
        &self,
        base: usize,
        inputs: MatrixView<'_>,
        scratch: &mut Scratch,
        out: &mut Matrix,
    ) -> Result<u64, NnError> {
        // Input drift corrupts the accelerator's input-FIFO view, so the
        // drifted copy is built before the (parallel) batch compute; output
        // corruption is applied serially afterwards. Both are pure
        // functions of (seed, invocation, element), so the result is
        // bit-identical to per-row `invoke_at` calls at any thread count.
        let drifted;
        let effective = match &self.fault_plan {
            Some(plan) if plan.has_input_faults() => {
                let mut flat = inputs.as_slice().to_vec();
                let cols = inputs.cols().max(1);
                for (row, chunk) in flat.chunks_mut(cols).enumerate() {
                    plan.drift_input(base + row, chunk);
                }
                drifted = flat;
                MatrixView::new(&drifted, inputs.rows(), inputs.cols())
            }
            _ => inputs,
        };
        match (&self.fixed, self.params.precision_bits) {
            (Some(fixed), _) => fixed.predict_batch(effective, scratch, out)?,
            (None, Some(bits)) => {
                self.model.predict_batch_quantized(effective, bits, scratch, out)?;
            }
            (None, None) => self.model.predict_batch(effective, scratch, out)?,
        }
        if let Some(plan) = &self.fault_plan {
            if plan.has_output_faults() {
                for row in 0..out.rows() {
                    plan.corrupt_output(base + row, out.row_mut(row));
                }
            }
        }
        Ok(self.cycles_per_invocation)
    }

    /// [`Npu::invoke_batch_at`] for a *gathered* batch: row `i` of
    /// `inputs` is treated as stream invocation `positions[i]` for every
    /// fault decision. The model-zoo router uses this to dispatch the
    /// subset of a window routed to one tier as a single flat-matrix
    /// batch (keeping the SIMD paths hot) while every row's fault stream
    /// stays keyed on its true stream position — so a routed run is
    /// corrupted bit-identically to per-row [`Npu::invoke_at`] calls.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `inputs` does not match the configured
    /// topology.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len()` differs from `inputs.rows()`.
    pub fn invoke_rows_at(
        &self,
        positions: &[usize],
        inputs: MatrixView<'_>,
        scratch: &mut Scratch,
        out: &mut Matrix,
    ) -> Result<u64, NnError> {
        assert_eq!(positions.len(), inputs.rows(), "one stream position per gathered row");
        let drifted;
        let effective = match &self.fault_plan {
            Some(plan) if plan.has_input_faults() => {
                let mut flat = inputs.as_slice().to_vec();
                let cols = inputs.cols().max(1);
                for (row, chunk) in flat.chunks_mut(cols).enumerate() {
                    plan.drift_input(positions[row], chunk);
                }
                drifted = flat;
                MatrixView::new(&drifted, inputs.rows(), inputs.cols())
            }
            _ => inputs,
        };
        match (&self.fixed, self.params.precision_bits) {
            (Some(fixed), _) => fixed.predict_batch(effective, scratch, out)?,
            (None, Some(bits)) => {
                self.model.predict_batch_quantized(effective, bits, scratch, out)?;
            }
            (None, None) => self.model.predict_batch(effective, scratch, out)?,
        }
        if let Some(plan) = &self.fault_plan {
            if plan.has_output_faults() {
                for (row, &position) in positions.iter().enumerate() {
                    plan.corrupt_output(position, out.row_mut(row));
                }
            }
        }
        Ok(self.cycles_per_invocation)
    }

    /// Cycles every invocation costs (the model is static, so this is a
    /// constant per configuration).
    #[must_use]
    pub fn cycles_per_invocation(&self) -> u64 {
        self.cycles_per_invocation
    }

    /// Total multiply-accumulates one invocation performs.
    #[must_use]
    pub fn macs_per_invocation(&self) -> usize {
        self.model.mlp().mac_count()
    }

    /// The underlying trained model.
    #[must_use]
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The prepared fixed-point lowering, when `params.fixed_point`
    /// selected the integer datapath.
    #[must_use]
    pub fn fixed_model(&self) -> Option<&FixedModel> {
        self.fixed.as_ref()
    }

    /// The accelerator's microarchitectural parameters.
    #[must_use]
    pub fn params(&self) -> &NpuParams {
        &self.params
    }

    /// Width of the input port.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.model.mlp().input_dim()
    }

    /// Width of the output port.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.model.mlp().output_dim()
    }
}

/// Per-invocation cycles: for each layer, neurons are issued to PEs in
/// waves of `pe_count`; each wave streams the layer's inputs through its
/// MAC chain (`in_dim` cycles) plus sigmoid/pipeline overhead. Input and
/// output words pay queue transfer cost, plus a fixed handshake.
fn cycle_model(model: &TrainedModel, params: &NpuParams) -> u64 {
    let mlp = model.mlp();
    let mut cycles = params.invocation_overhead;
    cycles += params.io_cycles_per_word * (mlp.input_dim() as u64 + mlp.output_dim() as u64);
    for layer in mlp.layers() {
        let waves = layer.out_dim().div_ceil(params.pe_count) as u64;
        cycles += waves * (layer.in_dim() as u64 + params.wave_overhead);
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumba_nn::{Activation, NnDataset, TrainParams, TrainedModel};

    fn toy_model(topology: &[usize]) -> TrainedModel {
        let data = NnDataset::from_fn(topology[0], *topology.last().unwrap(), 32, |i, x, y| {
            for (j, v) in x.iter_mut().enumerate() {
                *v = (i + j) as f64 / 32.0;
            }
            for v in y.iter_mut() {
                *v = i as f64 / 32.0;
            }
        })
        .unwrap();
        let params = TrainParams { epochs: 2, ..TrainParams::default() };
        TrainedModel::fit(topology, Activation::Sigmoid, &data, &params, 0).unwrap()
    }

    #[test]
    fn cycle_model_matches_hand_count() {
        // Topology 3->8->8->1 on 8 PEs:
        //   layer 1: ceil(8/8)=1 wave * (3 + 4) = 7
        //   layer 2: 1 wave * (8 + 4) = 12
        //   layer 3: 1 wave * (8 + 4) = 12
        //   io: (3 + 1) words * 4 = 16, overhead 16  → total 63.
        let npu = Npu::new(toy_model(&[3, 8, 8, 1]), NpuParams::default());
        assert_eq!(npu.cycles_per_invocation(), 63);
    }

    #[test]
    fn fewer_pes_cost_more_cycles() {
        let model = toy_model(&[4, 16, 2]);
        let fast = Npu::new(model.clone(), NpuParams { pe_count: 16, ..NpuParams::default() });
        let slow = Npu::new(model, NpuParams { pe_count: 2, ..NpuParams::default() });
        assert!(slow.cycles_per_invocation() > fast.cycles_per_invocation());
    }

    #[test]
    fn bigger_networks_cost_more_cycles() {
        let small = Npu::new(toy_model(&[2, 2, 2]), NpuParams::default());
        let large = Npu::new(toy_model(&[2, 32, 32, 2]), NpuParams::default());
        assert!(large.cycles_per_invocation() > small.cycles_per_invocation());
    }

    #[test]
    fn invoke_validates_width() {
        let npu = Npu::new(toy_model(&[2, 2, 1]), NpuParams::default());
        assert!(npu.invoke(&[1.0]).is_err());
        assert!(npu.invoke(&[1.0, 2.0]).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let _ = Npu::new(toy_model(&[2, 2, 1]), NpuParams { pe_count: 0, ..NpuParams::default() });
    }

    #[test]
    fn limited_precision_perturbs_outputs() {
        let model = toy_model(&[2, 8, 1]);
        let exact = Npu::new(model.clone(), NpuParams::default());
        let analog = Npu::new(model, NpuParams { precision_bits: Some(3), ..NpuParams::default() });
        let x = [0.31, 0.77];
        let a = exact.invoke(&x).unwrap().outputs[0];
        let b = analog.invoke(&x).unwrap().outputs[0];
        assert_ne!(a, b, "3-bit datapath must deviate from full precision");
    }

    #[test]
    fn invoke_batch_matches_invoke_bitwise() {
        for precision in [None, Some(4)] {
            let params = NpuParams { precision_bits: precision, ..NpuParams::default() };
            let npu = Npu::new(toy_model(&[2, 6, 2]), params);
            let flat: Vec<f64> = (0..40).map(|i| i as f64 / 7.0).collect();
            let inputs = MatrixView::new(&flat, 20, 2);
            let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
            let cycles = npu.invoke_batch(inputs, &mut scratch, &mut out).unwrap();
            assert_eq!(cycles, npu.cycles_per_invocation());
            for i in 0..20 {
                let serial = npu.invoke(inputs.row(i)).unwrap();
                let batch_bits: Vec<u64> = out.row(i).iter().map(|x| x.to_bits()).collect();
                let row_bits: Vec<u64> = serial.outputs.iter().map(|x| x.to_bits()).collect();
                assert_eq!(batch_bits, row_bits, "precision {precision:?} row {i}");
            }
        }
    }

    #[test]
    fn fixed_point_requires_precision_bits() {
        let model = toy_model(&[2, 6, 2]);
        let no_bits =
            Npu::new(model.clone(), NpuParams { fixed_point: true, ..NpuParams::default() });
        assert!(no_bits.fixed_model().is_none(), "fixed_point without bits is a no-op");
        let armed = Npu::new(
            model,
            NpuParams { fixed_point: true, precision_bits: Some(10), ..NpuParams::default() },
        );
        assert_eq!(armed.fixed_model().unwrap().frac_bits(), 10);
    }

    #[test]
    fn fixed_point_batch_matches_fixed_point_serial_bitwise() {
        let params =
            NpuParams { fixed_point: true, precision_bits: Some(12), ..NpuParams::default() };
        let npu = Npu::new(toy_model(&[2, 6, 2]), params);
        let flat: Vec<f64> = (0..40).map(|i| i as f64 / 7.0).collect();
        let inputs = MatrixView::new(&flat, 20, 2);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        let cycles = npu.invoke_batch(inputs, &mut scratch, &mut out).unwrap();
        assert_eq!(cycles, npu.cycles_per_invocation());
        for i in 0..20 {
            let serial = npu.invoke(inputs.row(i)).unwrap();
            let batch_bits: Vec<u64> = out.row(i).iter().map(|x| x.to_bits()).collect();
            let row_bits: Vec<u64> = serial.outputs.iter().map(|x| x.to_bits()).collect();
            assert_eq!(batch_bits, row_bits, "row {i}");
        }
    }

    #[test]
    fn fixed_point_stays_near_the_float_datapath() {
        let model = toy_model(&[2, 8, 1]);
        let float_npu = Npu::new(model.clone(), NpuParams::default());
        let fixed_npu = Npu::new(
            model,
            NpuParams { fixed_point: true, precision_bits: Some(14), ..NpuParams::default() },
        );
        let x = [0.31, 0.77];
        let a = float_npu.invoke(&x).unwrap().outputs[0];
        let b = fixed_npu.invoke(&x).unwrap().outputs[0];
        assert!((a - b).abs() < 0.1, "integer datapath drifted: {a} vs {b}");
    }

    #[test]
    fn invocations_are_deterministic() {
        let npu = Npu::new(toy_model(&[2, 4, 1]), NpuParams::default());
        let a = npu.invoke(&[0.25, 0.75]).unwrap();
        let b = npu.invoke(&[0.25, 0.75]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_fault_plan_is_normalized_away() {
        let clean = Npu::new(toy_model(&[2, 4, 1]), NpuParams::default());
        let hooked = clean.clone().with_fault_plan(rumba_faults::FaultPlan::new(1));
        assert!(hooked.fault_plan().is_none(), "empty plans must not arm the hooks");
        assert_eq!(clean, hooked);
    }

    #[test]
    fn faulted_batch_matches_faulted_serial_invocations_bitwise() {
        use rumba_faults::{FaultModel, FaultPlan};
        let plan = FaultPlan::new(0xfa17)
            .with(FaultModel::BitFlip { rate: 0.1 })
            .with(FaultModel::NonFinite { rate: 0.05 })
            .with(FaultModel::StuckAt { start: 4, value: 0.5 })
            .with(FaultModel::InputDrift { start: 6, ramp: 4, magnitude: 0.2 });
        let npu = Npu::new(toy_model(&[2, 6, 2]), NpuParams::default()).with_fault_plan(plan);
        let flat: Vec<f64> = (0..40).map(|i| i as f64 / 7.0).collect();
        let inputs = MatrixView::new(&flat, 20, 2);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        npu.invoke_batch(inputs, &mut scratch, &mut out).unwrap();
        let mut any_corruption = false;
        for i in 0..20 {
            let serial = npu.invoke_at(i, inputs.row(i)).unwrap();
            let batch_bits: Vec<u64> = out.row(i).iter().map(|x| x.to_bits()).collect();
            let row_bits: Vec<u64> = serial.outputs.iter().map(|x| x.to_bits()).collect();
            assert_eq!(batch_bits, row_bits, "row {i}");
            let clean = {
                let mut bare = npu.clone();
                bare.set_fault_plan(None);
                bare.invoke(inputs.row(i)).unwrap().outputs
            };
            any_corruption |=
                clean.iter().map(|x| x.to_bits()).ne(serial.outputs.iter().map(|x| x.to_bits()));
        }
        assert!(any_corruption, "the plan must actually corrupt something over 20 rows");
    }

    #[test]
    fn offset_batch_matches_serial_invocations_at_the_same_stream_positions() {
        use rumba_faults::{FaultModel, FaultPlan};
        // A drain batch starting mid-stream must key every fault decision
        // on the stream position, not the batch-local row index.
        let plan = FaultPlan::new(0x5e55)
            .with(FaultModel::BitFlip { rate: 0.15 })
            .with(FaultModel::StuckAt { start: 10, value: 0.25 })
            .with(FaultModel::InputDrift { start: 8, ramp: 6, magnitude: 0.3 });
        let npu = Npu::new(toy_model(&[2, 6, 2]), NpuParams::default()).with_fault_plan(plan);
        let flat: Vec<f64> = (0..24).map(|i| i as f64 / 5.0).collect();
        let inputs = MatrixView::new(&flat, 12, 2);
        for base in [0usize, 7, 13] {
            let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
            npu.invoke_batch_at(base, inputs, &mut scratch, &mut out).unwrap();
            for i in 0..12 {
                let serial = npu.invoke_at(base + i, inputs.row(i)).unwrap();
                let batch_bits: Vec<u64> = out.row(i).iter().map(|x| x.to_bits()).collect();
                let row_bits: Vec<u64> = serial.outputs.iter().map(|x| x.to_bits()).collect();
                assert_eq!(batch_bits, row_bits, "base {base} row {i}");
            }
        }
    }

    #[test]
    fn gathered_rows_match_serial_invocations_at_their_true_positions() {
        use rumba_faults::{FaultModel, FaultPlan};
        // A routed sub-batch gathers non-contiguous stream positions; every
        // fault decision must key on the true position, not the gathered
        // row index — for the float, quantized, and fixed-point datapaths.
        let plan = FaultPlan::new(0x2007)
            .with(FaultModel::BitFlip { rate: 0.2 })
            .with(FaultModel::InputDrift { start: 3, ramp: 5, magnitude: 0.25 });
        for params in [
            NpuParams::default(),
            NpuParams { precision_bits: Some(8), ..NpuParams::default() },
            NpuParams { precision_bits: Some(10), fixed_point: true, ..NpuParams::default() },
        ] {
            let npu = Npu::new(toy_model(&[2, 6, 2]), params).with_fault_plan(plan.clone());
            let positions = [2usize, 5, 11, 17, 23];
            let flat: Vec<f64> = (0..10).map(|i| i as f64 / 3.0).collect();
            let gathered = MatrixView::new(&flat, 5, 2);
            let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
            let cycles = npu.invoke_rows_at(&positions, gathered, &mut scratch, &mut out).unwrap();
            assert_eq!(cycles, npu.cycles_per_invocation());
            for (i, &pos) in positions.iter().enumerate() {
                let serial = npu.invoke_at(pos, gathered.row(i)).unwrap();
                let batch_bits: Vec<u64> = out.row(i).iter().map(|x| x.to_bits()).collect();
                let row_bits: Vec<u64> = serial.outputs.iter().map(|x| x.to_bits()).collect();
                assert_eq!(batch_bits, row_bits, "params {params:?} position {pos}");
            }
        }
    }

    #[test]
    fn contiguous_gathered_rows_match_invoke_batch_at_bitwise() {
        let npu = Npu::new(toy_model(&[2, 6, 2]), NpuParams::default());
        let flat: Vec<f64> = (0..40).map(|i| i as f64 / 7.0).collect();
        let inputs = MatrixView::new(&flat, 20, 2);
        let positions: Vec<usize> = (9..29).collect();
        let (mut s1, mut plain) = (Scratch::new(), Matrix::default());
        npu.invoke_batch_at(9, inputs, &mut s1, &mut plain).unwrap();
        let (mut s2, mut routed) = (Scratch::new(), Matrix::default());
        npu.invoke_rows_at(&positions, inputs, &mut s2, &mut routed).unwrap();
        let bits = |m: &Matrix| m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&plain), bits(&routed));
    }

    #[test]
    fn fault_off_batch_is_byte_identical_with_hooks_compiled_in() {
        let npu = Npu::new(toy_model(&[2, 6, 2]), NpuParams::default());
        let flat: Vec<f64> = (0..40).map(|i| i as f64 / 7.0).collect();
        let inputs = MatrixView::new(&flat, 20, 2);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        npu.invoke_batch(inputs, &mut scratch, &mut out).unwrap();
        let mut hooked = npu.clone().with_fault_plan(rumba_faults::FaultPlan::new(3));
        hooked.set_fault_plan(None);
        let (mut scratch2, mut out2) = (Scratch::new(), Matrix::default());
        hooked.invoke_batch(inputs, &mut scratch2, &mut out2).unwrap();
        let bits = |m: &Matrix| m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&out), bits(&out2));
    }
}
