//! Deployment images and the config-queue transfer model.
//!
//! The offline trainers embed the accelerator topology/weights and the
//! checker coefficients in the application binary; at startup the CPU
//! streams them to the accelerator through the config queue (Figure 4) and
//! the checker's coefficient buffers (Figure 7). This module models that
//! path: a [`DeploymentImage`] bundles the word streams, and
//! [`DeploymentImage::transfer`] accounts the queue bursts and cycles the
//! upload costs.

use rumba_nn::{decode_model, NnError, TrainedModel};

use crate::queue::Fifo;
use crate::{Npu, NpuParams};

/// The configuration payload embedded in an application binary: the
/// accelerator model plus (optionally) one checker's coefficient image.
///
/// # Examples
///
/// ```
/// use rumba_accel::{DeploymentImage, NpuParams};
/// use rumba_nn::{encode_model, Activation, NnDataset, TrainedModel, TrainParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = NnDataset::from_fn(1, 1, 32, |i, x, y| {
///     x[0] = i as f64;
///     y[0] = x[0];
/// })?;
/// let model = TrainedModel::fit(&[1, 2, 1], Activation::Sigmoid, &data,
///                               &TrainParams::default(), 0)?;
/// let image = DeploymentImage::new(encode_model(&model), Vec::new());
/// let npu = image.instantiate_npu(NpuParams::default())?;
/// assert_eq!(npu.input_dim(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentImage {
    npu_words: Vec<f64>,
    checker_words: Vec<f64>,
}

/// Cost accounting for one config upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferReport {
    /// Total words streamed.
    pub words: usize,
    /// Queue bursts needed (the queue drains fully between bursts).
    pub bursts: usize,
    /// Cycles the upload occupied the interconnect.
    pub cycles: u64,
}

impl DeploymentImage {
    /// Bundles pre-encoded word streams (see [`rumba_nn::encode_model`],
    /// [`rumba_predict::encode_linear`] / [`rumba_predict::encode_tree`]).
    ///
    /// [`rumba_predict::encode_linear`]: https://docs.rs/rumba-predict
    /// [`rumba_predict::encode_tree`]: https://docs.rs/rumba-predict
    #[must_use]
    pub fn new(npu_words: Vec<f64>, checker_words: Vec<f64>) -> Self {
        Self { npu_words, checker_words }
    }

    /// The accelerator's portion of the stream.
    #[must_use]
    pub fn npu_words(&self) -> &[f64] {
        &self.npu_words
    }

    /// The checker's coefficient portion of the stream (may be empty).
    #[must_use]
    pub fn checker_words(&self) -> &[f64] {
        &self.checker_words
    }

    /// Total words in the image.
    #[must_use]
    pub fn total_words(&self) -> usize {
        self.npu_words.len() + self.checker_words.len()
    }

    /// Decodes the accelerator portion into a live [`Npu`].
    ///
    /// # Errors
    ///
    /// Propagates decode failures for corrupt or truncated images.
    pub fn instantiate_npu(&self, params: NpuParams) -> Result<Npu, NnError> {
        let model: TrainedModel = decode_model(&self.npu_words)?;
        Ok(Npu::new(model, params))
    }

    /// Streams the image through a config queue of the given capacity,
    /// charging `cycles_per_word` per transfer, and returns the cost.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity` is zero (a queue cannot hold nothing).
    #[must_use]
    pub fn transfer(&self, queue_capacity: usize, cycles_per_word: u64) -> TransferReport {
        let mut queue: Fifo<f64> = Fifo::new(queue_capacity);
        let mut bursts = 0usize;
        let mut words = 0usize;
        for &w in self.npu_words.iter().chain(&self.checker_words) {
            if queue.push(w).is_err() {
                // Queue full: the accelerator drains a burst into its
                // buffers, then transfer resumes.
                bursts += 1;
                let _ = queue.drain().count();
                queue.push(w).expect("queue was just drained");
            }
            words += 1;
        }
        if !queue.is_empty() {
            bursts += 1;
        }
        TransferReport { words, bursts, cycles: words as u64 * cycles_per_word }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumba_nn::{encode_model, Activation, NnDataset, TrainParams};

    fn image() -> DeploymentImage {
        let data = NnDataset::from_fn(2, 1, 48, |i, x, y| {
            x[0] = i as f64;
            x[1] = (i * 2) as f64;
            y[0] = x[0] + x[1];
        })
        .unwrap();
        let model =
            TrainedModel::fit(&[2, 4, 1], Activation::Sigmoid, &data, &TrainParams::default(), 3)
                .unwrap();
        DeploymentImage::new(encode_model(&model), vec![1.0, 2.0, 3.0])
    }

    #[test]
    fn instantiated_npu_matches_source_model() {
        let data = NnDataset::from_fn(2, 1, 48, |i, x, y| {
            x[0] = i as f64;
            x[1] = (i * 2) as f64;
            y[0] = x[0] + x[1];
        })
        .unwrap();
        let model =
            TrainedModel::fit(&[2, 4, 1], Activation::Sigmoid, &data, &TrainParams::default(), 3)
                .unwrap();
        let image = DeploymentImage::new(encode_model(&model), Vec::new());
        let npu = image.instantiate_npu(NpuParams::default()).unwrap();
        assert_eq!(npu.invoke(&[3.0, 6.0]).unwrap().outputs, model.predict(&[3.0, 6.0]).unwrap());
    }

    #[test]
    fn corrupt_image_fails_to_instantiate() {
        let mut img = image();
        img.npu_words[0] = -1.0;
        assert!(img.instantiate_npu(NpuParams::default()).is_err());
    }

    #[test]
    fn transfer_counts_words_and_bursts() {
        let img = image();
        let total = img.total_words();
        let report = img.transfer(8, 4);
        assert_eq!(report.words, total);
        assert_eq!(report.cycles, total as u64 * 4);
        assert_eq!(report.bursts, total.div_ceil(8));
    }

    #[test]
    fn one_big_queue_means_one_burst() {
        let img = image();
        let report = img.transfer(10_000, 1);
        assert_eq!(report.bursts, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_queue_rejected() {
        let _ = image().transfer(0, 1);
    }
}
