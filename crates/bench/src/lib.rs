//! Shared harness utilities for the per-figure evaluation binaries.
//!
//! Every `fig*`/`table*` binary builds [`Suite`] (one trained
//! [`AppContext`] per Table-1 benchmark), asks it questions via
//! `rumba_core::analysis`, and prints an aligned text table whose rows
//! mirror the paper's figure. EXPERIMENTS.md records paper-vs-measured for
//! each harness.

use rumba_apps::{all_kernels, Kernel};
use rumba_core::context::AppContext;
use rumba_core::scheme::SchemeKind;
use rumba_core::Result;

/// The master seed every harness binary uses, so all reported numbers are
/// reproducible bit-for-bit.
pub const HARNESS_SEED: u64 = 42;

/// The paper's target output quality (§4: "We target a 90% output
/// quality").
pub const TARGET_QUALITY: f64 = 0.90;

/// Error budget implied by [`TARGET_QUALITY`].
#[must_use]
pub fn target_error() -> f64 {
    1.0 - TARGET_QUALITY
}

/// One fully trained benchmark plus its kernel handle.
pub struct SuiteEntry {
    /// The benchmark kernel.
    pub kernel: Box<dyn Kernel>,
    /// Its trained, test-replayed context.
    pub ctx: AppContext,
}

/// All seven Table-1 benchmarks, trained and replayed.
pub struct Suite {
    entries: Vec<SuiteEntry>,
}

impl Suite {
    /// Trains the whole suite (prints progress to stderr; takes a few
    /// seconds per benchmark in release mode).
    ///
    /// # Errors
    ///
    /// Propagates training failures from any benchmark.
    pub fn build() -> Result<Self> {
        // Benchmarks are independent training problems, so they fan out
        // over the deterministic pool; the suite order (and every number
        // each context produces) is identical at any thread count. Only
        // stderr progress lines may interleave.
        let kernels = all_kernels();
        let contexts = rumba_parallel::par_map_indexed(&kernels, |_i, kernel| {
            eprintln!("[suite] training {} ...", kernel.name());
            AppContext::build(kernel.as_ref(), HARNESS_SEED)
        });
        let mut entries = Vec::new();
        for (kernel, ctx) in kernels.into_iter().zip(contexts) {
            entries.push(SuiteEntry { kernel, ctx: ctx? });
        }
        Ok(Self { entries })
    }

    /// Trains a subset of the suite by benchmark name.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown.
    pub fn build_subset(names: &[&str]) -> Result<Self> {
        let kernels: Vec<Box<dyn Kernel>> = names
            .iter()
            .map(|name| {
                rumba_apps::kernel_by_name(name)
                    .unwrap_or_else(|| panic!("unknown benchmark {name}"))
            })
            .collect();
        let contexts = rumba_parallel::par_map_indexed(&kernels, |_i, kernel| {
            eprintln!("[suite] training {} ...", kernel.name());
            AppContext::build(kernel.as_ref(), HARNESS_SEED)
        });
        let mut entries = Vec::new();
        for (kernel, ctx) in kernels.into_iter().zip(contexts) {
            entries.push(SuiteEntry { kernel, ctx: ctx? });
        }
        Ok(Self { entries })
    }

    /// The trained benchmarks, in Table-1 order.
    #[must_use]
    pub fn entries(&self) -> &[SuiteEntry] {
        &self.entries
    }
}

/// The operating point of §5: per scheme, the fixes needed to reach the
/// 90 % target quality on this context (clamped to "fix everything" when
/// unreachable).
#[must_use]
pub fn fixes_at_toq(ctx: &AppContext, kind: SchemeKind) -> usize {
    ctx.fixes_for_target_error(kind, target_error()).unwrap_or_else(|| ctx.len())
}

/// Geometric mean (the standard summary for speedup/energy ratios).
///
/// # Panics
///
/// Panics if any value is nonpositive.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(values.iter().all(|&v| v > 0.0), "geomean needs positive values");
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Prints an aligned table: a header row then data rows, all
/// column-padded.
pub fn print_table(header: &[String], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let print_row = |row: &[String]| {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(c, cell)| format!("{cell:>width$}", width = widths.get(c).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    };
    print_row(header);
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    for row in rows {
        print_row(row);
    }
}

/// Formats a ratio as the paper writes them, e.g. `3.2x`.
#[must_use]
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Writes a figure's data as CSV under `target/rumba-figures/<name>.csv`
/// for external plotting, returning the path written. Cells containing
/// commas or quotes are quoted per RFC 4180.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(
    name: &str,
    header: &[String],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target").join("rumba-figures");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let escape = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_owned()
        }
    };
    let mut text = String::new();
    for row in std::iter::once(header).chain(rows.iter().map(Vec::as_slice)) {
        let line: Vec<String> = row.iter().map(|c| escape(c)).collect();
        text.push_str(&line.join(","));
        text.push('\n');
    }
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Formats a fraction as percent with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_reciprocals_is_one() {
        let g = geomean(&[2.0, 0.5, 4.0, 0.25]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn target_error_matches_quality() {
        assert!((target_error() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(3.1999), "3.20x");
        assert_eq!(pct(0.105), "10.5%");
    }

    #[test]
    fn csv_round_trips_through_the_filesystem() {
        let header = vec!["a".to_owned(), "b,with comma".to_owned()];
        let rows = vec![vec!["1".to_owned(), "quote\"inside".to_owned()]];
        let path = write_csv("unit-test-csv", &header, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,\"b,with comma\"\n1,\"quote\"\"inside\"\n");
        std::fs::remove_file(path).unwrap();
    }
}
