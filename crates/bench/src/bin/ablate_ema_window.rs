//! Ablation — EMA history length `N` (§3.2.3, `α = 2/(1+N)`): short windows
//! chase the output too closely (everything looks normal), long windows
//! smear distinct output regimes together; the quality of the EMA detector
//! is bounded either way because it never sees the inputs.

use rumba_apps::{kernel_by_name, Split};
use rumba_bench::{print_table, target_error, HARNESS_SEED};
use rumba_core::trainer::{approximate_outputs, invocation_errors, train_app, OfflineConfig};
use rumba_predict::{EmaDetector, ErrorEstimator};

fn main() {
    println!("Ablation: EMA history window (fixes needed for 90% TOQ).\n");
    let apps = ["fft", "blackscholes", "kmeans"];
    let mut header = vec!["window N".to_owned(), "alpha".to_owned()];
    for app in apps {
        header.push(format!("{app} fixes"));
    }

    let mut contexts = Vec::new();
    for app in apps {
        let kernel = kernel_by_name(app).expect("known benchmark");
        let cfg = OfflineConfig { seed: HARNESS_SEED, ..OfflineConfig::default() };
        eprintln!("[ablate] training {app} ...");
        let trained = train_app(kernel.as_ref(), &cfg).expect("training succeeds");
        let test = kernel.generate(Split::Test, HARNESS_SEED);
        let approx = approximate_outputs(&trained.rumba_npu, &test).expect("replay");
        let errors = invocation_errors(kernel.as_ref(), &trained.rumba_npu, &test).expect("replay");
        let out_dim = kernel.output_dim();
        contexts.push((test, approx, errors, out_dim));
    }

    let mut rows = Vec::new();
    for window in [2usize, 4, 8, 16, 32, 64] {
        let mut row = vec![window.to_string(), format!("{:.3}", 2.0 / (1.0 + window as f64))];
        for (test, approx, errors, out_dim) in &contexts {
            let mut ema = EmaDetector::new(window, *out_dim).expect("valid window");
            let scores: Vec<f64> = (0..test.len())
                .map(|i| ema.estimate(test.input(i), &approx[i * out_dim..(i + 1) * out_dim]))
                .collect();
            let mut order: Vec<usize> = (0..test.len()).collect();
            order.sort_by(|&a, &b| {
                scores[b].partial_cmp(&scores[a]).expect("finite").then(a.cmp(&b))
            });
            let mut remaining: f64 = errors.iter().sum();
            let mut k = test.len();
            for (j, &i) in order.iter().enumerate() {
                if remaining / test.len() as f64 <= target_error() {
                    k = j;
                    break;
                }
                remaining -= errors[i];
            }
            row.push(format!("{:.1}%", k as f64 / test.len() as f64 * 100.0));
        }
        rows.push(row);
    }
    print_table(&header, &rows);

    println!("\nExpected: a broad optimum around N ≈ 4-16 (the paper's default is N = 8);");
    println!("EMA stays well above the input-based checkers regardless, because the deviation");
    println!("of an output from its recent trend is only a proxy for approximation error.");
}
