//! Figure 18 — the accelerator and the CPU working in tandem: per-element
//! predicted difference with the tuning threshold overlaid (top plot), and
//! the CPU's re-execution activity (bottom plot), for 200 output elements.

use rumba_apps::kernel_by_name;
use rumba_bench::HARNESS_SEED;
use rumba_core::context::AppContext;
use rumba_core::pipeline::simulate;
use rumba_core::scheme::SchemeKind;
use rumba_core::tuner::calibrate_threshold;

const ELEMENTS: usize = 200;

fn main() {
    // inversek2j: the benchmark whose ~15% firing rate at the 10% target
    // matches the paper's description (30 of 200 elements above threshold).
    let kernel = kernel_by_name("inversek2j").expect("Table-1 benchmark");
    let ctx = AppContext::build(kernel.as_ref(), HARNESS_SEED).expect("training succeeds");

    let scores = ctx.scores(SchemeKind::TreeErrors);
    let threshold = calibrate_threshold(&scores.scores()[..ctx.len()], ctx.true_errors(), 0.10);

    let window = &scores.scores()[..ELEMENTS];
    let fired: Vec<bool> = window.iter().map(|&s| s > threshold).collect();
    let npu_cycles = ctx.trained().rumba_npu.cycles_per_invocation() as f64;
    let run = simulate(ELEMENTS, npu_cycles, kernel.cpu_cycles(), &fired);

    println!("Figure 18: accelerator + CPU in tandem ({} / treeErrors).\n", ctx.name());
    println!("tuning threshold for 10% target error: {threshold:.3}");
    println!(
        "elements above threshold: {} / {ELEMENTS} ({:.0}%)",
        fired.iter().filter(|&&f| f).count(),
        fired.iter().filter(|&&f| f).count() as f64 / ELEMENTS as f64 * 100.0
    );
    println!(
        "kernel-level accelerator gain: {:.2}x; CPU kept up: {}\n",
        kernel.cpu_cycles() / npu_cycles,
        run.cpu_kept_up()
    );

    println!("{:>4}  {:>10}  {:>6}  {:>8}", "elem", "pred diff", "fires", "CPU busy");
    for t in &run.trace {
        println!(
            "{:>4}  {:>10.3}  {:>6}  {:>8}",
            t.iteration,
            window[t.iteration],
            if t.fired { "*" } else { "" },
            if t.cpu_busy { "#" } else { "" }
        );
    }

    println!("\nCPU utilization over the run: {:.1}%", run.cpu_utilization * 100.0);
    println!("Paper: threshold 0.33 puts 30/200 elements (15%) above it; the CPU keeps up");
    println!("with an accelerator as fast as 6.67x while fixing them.");
}
