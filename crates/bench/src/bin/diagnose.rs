//! Calibration diagnostic (not a paper figure): per benchmark, the
//! unchecked output errors of both accelerator topologies, the fixes each
//! scheme needs for 90 % quality, and checker agreement statistics. Used to
//! sanity-check that the reproduction sits in the paper's operating regime
//! (unchecked error ≈ 10–30 %, checkers ≈ Ideal, Random/Uniform far worse).

use rumba_bench::{fixes_at_toq, pct, print_table, Suite};
use rumba_core::scheme::SchemeKind;

fn main() {
    let suite = Suite::build().expect("suite trains");
    let header: Vec<String> = [
        "app",
        "unchecked",
        "npu-base",
        "n",
        "kIdeal",
        "kRandom",
        "kEMA",
        "kLinear",
        "kTree",
        "s_kernel",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();

    let mut rows = Vec::new();
    for entry in suite.entries() {
        let ctx = &entry.ctx;
        let n = ctx.len();
        let s_kernel =
            entry.kernel.cpu_cycles() / ctx.trained().rumba_npu.cycles_per_invocation() as f64;
        rows.push(vec![
            ctx.name().to_owned(),
            pct(ctx.unchecked_output_error()),
            pct(ctx.baseline_output_error()),
            n.to_string(),
            pct(fixes_at_toq(ctx, SchemeKind::Ideal) as f64 / n as f64),
            pct(fixes_at_toq(ctx, SchemeKind::Random) as f64 / n as f64),
            pct(fixes_at_toq(ctx, SchemeKind::Ema) as f64 / n as f64),
            pct(fixes_at_toq(ctx, SchemeKind::LinearErrors) as f64 / n as f64),
            pct(fixes_at_toq(ctx, SchemeKind::TreeErrors) as f64 / n as f64),
            format!("{s_kernel:.2}"),
        ]);
    }
    print_table(&header, &rows);
}
