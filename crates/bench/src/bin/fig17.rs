//! Figure 17 — time used by the error-prediction models relative to the
//! accelerator invocation itself. Both checkers finish before the NPU for
//! every benchmark, so error prediction never stalls the accelerator.

use rumba_bench::{print_table, Suite};
use rumba_core::scheme::SchemeKind;

fn main() {
    let suite = Suite::build().expect("suite trains");
    println!("Figure 17: checker cycles / NPU cycles per invocation (must stay below 1.0).\n");

    let header: Vec<String> = ["app", "NPU cycles", "linearErrors", "treeErrors", "EMA"]
        .iter()
        .map(ToString::to_string)
        .collect();

    let mut rows = Vec::new();
    let mut all_below_one = true;
    for entry in suite.entries() {
        let ctx = &entry.ctx;
        let npu_cycles = ctx.trained().rumba_npu.cycles_per_invocation() as f64;
        // Checker datapath cycles: one per MAC + one per comparison + the
        // fire decision (matching rumba_accel::CheckerUnit).
        let cycles_of = |kind: SchemeKind| {
            let c = ctx.scores(kind).checker_cost();
            (c.macs + c.comparisons + 1) as f64
        };
        let lin = cycles_of(SchemeKind::LinearErrors) / npu_cycles;
        let tree = cycles_of(SchemeKind::TreeErrors) / npu_cycles;
        let ema = cycles_of(SchemeKind::Ema) / npu_cycles;
        all_below_one &= lin < 1.0 && tree < 1.0 && ema < 1.0;
        rows.push(vec![
            ctx.name().to_owned(),
            format!("{npu_cycles:.0}"),
            format!("{lin:.3}"),
            format!("{tree:.3}"),
            format!("{ema:.3}"),
        ]);
    }
    print_table(&header, &rows);

    println!(
        "\nAll ratios below 1.0: {}. The predicted error is always available before the NPU",
        if all_below_one { "yes" } else { "NO — calibration regression!" }
    );
    println!("finishes, so the accelerator never waits on the error predictor (paper's claim).");
}
