//! Table 1 — applications and their inputs: domain, train/test data, NN
//! topologies (Rumba and NPU), and evaluation metric.

use rumba_apps::all_kernels;
use rumba_bench::print_table;

fn topology_string(t: &[usize]) -> String {
    t.iter().map(ToString::to_string).collect::<Vec<_>>().join("->")
}

fn main() {
    println!("Table 1: Applications and their inputs.\n");
    let header: Vec<String> = [
        "Application",
        "Domain",
        "Train Data",
        "Test Data",
        "NN Topology (Rumba)",
        "NN Topology (NPU)",
        "Evaluation Metric",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();

    let rows: Vec<Vec<String>> = all_kernels()
        .iter()
        .map(|k| {
            vec![
                k.name().to_owned(),
                k.domain().to_owned(),
                k.train_data_desc().to_owned(),
                k.test_data_desc().to_owned(),
                topology_string(&k.rumba_topology()),
                topology_string(&k.npu_topology()),
                k.metric().paper_name().to_owned(),
            ]
        })
        .collect();
    print_table(&header, &rows);
}
