//! Figure 2 — equal average error, very different noticeability: 10 % of
//! pixels at 100 % error (b) versus all pixels at 10 % error (c).

use rumba_apps::image::{corrupt, image_quality, Corruption, Image};
use rumba_bench::print_table;

fn main() {
    println!("Figure 2: error distribution vs perceived quality at equal mean error.\n");
    let reference = Image::synthetic(256, 256, 1337);

    let sparse = corrupt(&reference, Corruption::SparseLarge { fraction: 0.10 }, 7);
    let uniform = corrupt(&reference, Corruption::UniformSmall { relative: 0.10 }, 7);
    let qs = image_quality(&reference, &sparse);
    let qu = image_quality(&reference, &uniform);

    let header: Vec<String> =
        ["corruption", "mean rel. error", "pixels > 30% error", "local error contrast"]
            .iter()
            .map(ToString::to_string)
            .collect();
    let rows = vec![
        vec![
            "(b) 10% of pixels at 100% error".to_owned(),
            format!("{:.1}%", qs.mean_relative_error * 100.0),
            format!("{:.1}%", qs.large_error_fraction * 100.0),
            format!("{:.4}", qs.error_contrast),
        ],
        vec![
            "(c) all pixels at 10% error".to_owned(),
            format!("{:.1}%", qu.mean_relative_error * 100.0),
            format!("{:.1}%", qu.large_error_fraction * 100.0),
            format!("{:.4}", qu.error_contrast),
        ],
    ];
    print_table(&header, &rows);

    println!("\nBoth corruptions have the same quantitative quality (~90%), but (b)'s errors are");
    let contrast_ratio = qs.error_contrast / qu.error_contrast.max(1e-12);
    let ratio_text =
        if contrast_ratio > 100.0 { ">100".to_owned() } else { format!("{contrast_ratio:.0}") };
    println!("isolated and large — {ratio_text}x more conspicuous by local error contrast — which");
    println!("is why a quality manager must hunt the long tail, not the average.");
}
