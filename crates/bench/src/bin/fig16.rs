//! Figure 16 — energy consumption vs target error rate for `fft`: Ideal is
//! the floor, treeErrors tracks it at relaxed targets, and the gap widens
//! as the quality demand rises (false positives force extra re-execution).

use rumba_apps::kernel_by_name;
use rumba_bench::{print_table, write_csv, HARNESS_SEED};
use rumba_core::context::AppContext;
use rumba_core::scheme::SchemeKind;
use rumba_energy::{EnergyParams, SystemModel};

fn main() {
    let kernel = kernel_by_name("fft").expect("fft is a Table-1 benchmark");
    let ctx = AppContext::build(kernel.as_ref(), HARNESS_SEED).expect("training succeeds");
    let model = SystemModel::new(EnergyParams::default());
    let workload = ctx.workload();
    let baseline = model.cpu_baseline(&workload);

    println!("Figure 16: normalized energy vs target error rate (fft).\n");
    let schemes =
        [SchemeKind::Ideal, SchemeKind::TreeErrors, SchemeKind::LinearErrors, SchemeKind::Ema];
    let mut header = vec!["target err".to_owned(), "NPU".to_owned()];
    header.extend(schemes.iter().map(|s| s.label().to_owned()));

    let npu_run = model.accelerated(&workload, &ctx.unchecked_npu_activity());
    let npu_norm = npu_run.energy_nj / baseline.energy_nj;

    let mut rows = Vec::new();
    for t in 1..=10 {
        let target = t as f64 / 100.0;
        let mut row = vec![format!("{t}%"), format!("{npu_norm:.3}")];
        for &kind in &schemes {
            let fixes = ctx.fixes_for_target_error(kind, target).unwrap_or(ctx.len());
            let run = model.accelerated(&workload, &ctx.scheme_activity(kind, fixes));
            row.push(format!("{:.3}", run.energy_nj / baseline.energy_nj));
        }
        rows.push(row);
    }
    print_table(&header, &rows);
    if let Ok(path) = write_csv("fig16_fft", &header, &rows) {
        eprintln!("[csv] {}", path.display());
    }

    println!("\n(NPU row is the unchecked accelerator: flat, because it never fixes anything —");
    println!("and correspondingly it cannot actually hit the quality targets.)");
    println!("\nPaper shape: Ideal is lowest; treeErrors is close at relaxed targets (>7% error)");
    println!("and the gap grows as the target tightens, since prediction false positives force");
    println!("extra re-computation.");
}
