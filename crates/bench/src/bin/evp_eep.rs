//! §3.2 — EVP vs EEP: with the same model family, predicting the *errors*
//! directly (EEP) tracks the true errors more closely than predicting the
//! *output* and differencing (EVP). The paper measures average distances of
//! 1 (EEP) vs 2.5 (EVP) on the Gaussian example.

use rumba_apps::{kernel_by_name, Split};
use rumba_bench::HARNESS_SEED;
use rumba_core::analysis::mean_estimate_distance;
use rumba_core::context::AppContext;
use rumba_core::scheme::SchemeKind;

fn main() {
    let kernel = kernel_by_name("gaussian").expect("didactic kernel exists");
    let ctx = AppContext::build(kernel.as_ref(), HARNESS_SEED).expect("training succeeds");
    let _ = kernel.generate(Split::Test, HARNESS_SEED); // same split the ctx replayed

    let eep =
        mean_estimate_distance(ctx.scores(SchemeKind::LinearErrors).scores(), ctx.true_errors());
    let evp = mean_estimate_distance(ctx.scores(SchemeKind::Evp).scores(), ctx.true_errors());
    let tree =
        mean_estimate_distance(ctx.scores(SchemeKind::TreeErrors).scores(), ctx.true_errors());

    println!("EVP vs EEP on the Gaussian example (mean |estimate - true error|):\n");
    println!("  EEP (linear model on errors):   {eep:.4}");
    println!("  EVP (linear model on outputs):  {evp:.4}");
    println!("  EEP (tree model on errors):     {tree:.4}");
    println!("\n  EVP / EEP distance ratio:       {:.2}", evp / eep.max(1e-12));
    println!("\nPaper: EEP distance 1 vs EVP distance 2.5 (ratio 2.5) — predicting errors");
    println!("directly beats reconstructing them from value predictions.");
}
