//! Figure 13 — relative coverage of large errors (elements whose true error
//! exceeds 20 %) at the 90 % target output quality, normalized to Ideal's
//! coverage ratio (Ideal = 100 %).

use rumba_bench::{fixes_at_toq, print_table, Suite};
use rumba_core::analysis::relative_coverage;
use rumba_core::scheme::SchemeKind;

/// The paper's definition of a "large" error.
const LARGE_ERROR: f64 = 0.20;

fn main() {
    let suite = Suite::build().expect("suite trains");
    println!("Figure 13: relative coverage of large (>20%) errors at 90% TOQ (Ideal = 100%).\n");

    let schemes = SchemeKind::paper_set();
    let mut header = vec!["app".to_owned()];
    header.extend(schemes.iter().map(|s| s.label().to_owned()));

    let mut rows = Vec::new();
    let mut sums = vec![0.0; schemes.len()];
    let mut counted = vec![0usize; schemes.len()];
    for entry in suite.entries() {
        let ctx = &entry.ctx;
        let k_ideal = fixes_at_toq(ctx, SchemeKind::Ideal);
        let mut row = vec![ctx.name().to_owned()];
        for (si, &kind) in schemes.iter().enumerate() {
            let k = fixes_at_toq(ctx, kind);
            if k_ideal == 0 {
                row.push("n/a".to_owned());
                continue;
            }
            let cov =
                relative_coverage(ctx.scores(kind), ctx.true_errors(), k, k_ideal, LARGE_ERROR);
            sums[si] += cov;
            counted[si] += 1;
            row.push(format!("{cov:.1}%"));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_owned()];
    avg.extend(sums.iter().zip(&counted).map(|(s, &c)| {
        if c == 0 {
            "n/a".to_owned()
        } else {
            format!("{:.1}%", s / c as f64)
        }
    }));
    rows.push(avg);
    print_table(&header, &rows);

    println!(
        "\nPaper averages: linearErrors 57.6%, treeErrors 67.2% (Random ~29% on blackscholes)."
    );
}
