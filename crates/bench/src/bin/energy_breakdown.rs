//! Supplementary analysis — where the energy goes, component by component,
//! for the unchecked NPU vs Rumba (treeErrors) at the 90 % TOQ operating
//! point. Quantifies the paper's narrative: Rumba's overhead is re-execution
//! energy, not checker energy.

use rumba_bench::{fixes_at_toq, print_table, Suite};
use rumba_core::scheme::SchemeKind;
use rumba_energy::{EnergyParams, SystemModel};

fn main() {
    let suite = Suite::build().expect("suite trains");
    let model = SystemModel::new(EnergyParams::default());
    println!("Energy breakdown at 90% TOQ (percent of each scheme's total energy).\n");

    let header: Vec<String> = [
        "app",
        "scheme",
        "non-kernel",
        "accelerator",
        "queues",
        "checker",
        "re-execution",
        "idle wait",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();

    let mut rows = Vec::new();
    for entry in suite.entries() {
        let ctx = &entry.ctx;
        let workload = ctx.workload();
        let fixes = fixes_at_toq(ctx, SchemeKind::TreeErrors);
        for (label, activity) in [
            ("NPU", ctx.unchecked_npu_activity()),
            ("tree", ctx.scheme_activity(SchemeKind::TreeErrors, fixes)),
        ] {
            let (cost, b) = model.accelerated_detailed(&workload, &activity);
            let pct = |x: f64| format!("{:.1}%", x / cost.energy_nj * 100.0);
            rows.push(vec![
                ctx.name().to_owned(),
                label.to_owned(),
                pct(b.non_kernel_nj),
                pct(b.accelerator_nj),
                pct(b.queue_nj),
                pct(b.checker_nj),
                pct(b.reexecution_nj),
                pct(b.idle_nj),
            ]);
        }
    }
    print_table(&header, &rows);

    println!("\nExpected: the checker column stays negligible everywhere (the point of");
    println!("light-weight checkers), while re-execution absorbs the quality cost; the");
    println!("unchecked NPU instead burns the same cycles as idle wait.");
}
