//! Figure 1 — typical cumulative distribution function of errors generated
//! by approximation: most output elements have small errors, a few have
//! large ones.
//!
//! Prints, per benchmark, the fraction of elements below a grid of error
//! levels, plus the paper's headline statistic (the share of elements with
//! errors under 10 %).

use rumba_bench::{print_table, Suite};
use rumba_core::analysis::error_cdf;

fn main() {
    let suite = Suite::build().expect("suite trains");

    println!("Figure 1: CDF of per-element approximation errors (unchecked accelerator).\n");
    let levels = [0.02, 0.05, 0.10, 0.20, 0.50];
    let mut header = vec!["app".to_owned()];
    header.extend(levels.iter().map(|l| format!("<= {:.0}%", l * 100.0)));
    header.push("p95 error".to_owned());

    let mut rows = Vec::new();
    for entry in suite.entries() {
        let errors = entry.ctx.true_errors();
        let mut sorted = errors.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let frac_below =
            |level: f64| sorted.partition_point(|&e| e <= level) as f64 / sorted.len() as f64;
        let p95 = sorted[(sorted.len() as f64 * 0.95) as usize];
        let mut row = vec![entry.ctx.name().to_owned()];
        row.extend(levels.iter().map(|&l| format!("{:.1}%", frac_below(l) * 100.0)));
        row.push(format!("{:.1}%", p95 * 100.0));
        rows.push(row);
    }
    print_table(&header, &rows);

    // The dense curve for one representative benchmark, for plotting.
    let bs = &suite.entries()[0].ctx;
    println!("\nDense CDF for {} (error level, cumulative fraction):", bs.name());
    for (level, frac) in error_cdf(bs.true_errors(), 20) {
        println!("  {:>7.3}  {:>6.3}", level, frac);
    }
    println!("\nPaper shape: ~80% of elements below ~10% error, a long tail of large errors.");
}
