//! Figure 5 — exact output (a Gaussian), approximate accelerator output,
//! and the relative errors: the errors concentrate on certain inputs and
//! are easier to predict than the output itself.

use rumba_apps::kernel_by_name;
use rumba_bench::HARNESS_SEED;
use rumba_core::trainer::{train_app, OfflineConfig};

fn main() {
    let kernel = kernel_by_name("gaussian").expect("didactic kernel exists");
    let cfg = OfflineConfig { seed: HARNESS_SEED, ..OfflineConfig::default() };
    let app = train_app(kernel.as_ref(), &cfg).expect("training succeeds");

    println!("Figure 5: exact vs approximate output and relative error (Gaussian).\n");
    println!("{:>6}  {:>8}  {:>8}  {:>8}", "x", "exact", "approx", "rel.err");
    let mut peak_region_err = 0.0_f64;
    let mut shoulder_err = 0.0_f64;
    for k in 0..=60 {
        let x = -16.0 + 32.0 * k as f64 / 60.0;
        let exact = kernel.compute_vec(&[x])[0];
        let approx = app.rumba_npu.invoke(&[x]).expect("width matches").outputs[0];
        let rel = (approx - exact).abs() / exact.abs().max(0.05);
        println!("{x:>6.2}  {exact:>8.4}  {approx:>8.4}  {rel:>8.4}");
        if x.abs() < 2.0 {
            peak_region_err = peak_region_err.max(rel);
        }
        if (4.0..8.0).contains(&x.abs()) {
            shoulder_err = shoulder_err.max(rel);
        }
    }
    println!("\nmax relative error near the peak (|x| < 2):      {peak_region_err:.3}");
    println!("max relative error on the shoulders (4 < |x| < 8): {shoulder_err:.3}");
    println!("\nPaper shape: errors are concentrated on specific input regions, so a simple");
    println!("input-based model can separate high-error cases accurately.");
}
