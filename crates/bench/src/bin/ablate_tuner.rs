//! Ablation — §3.4's three online tuning modes, run through the actual
//! online system ([`rumba_core::runtime::RumbaSystem`]) on one benchmark:
//! TOQ mode holds quality, Energy mode holds the re-execution budget,
//! Quality mode saturates the CPU's overlap capacity.

use rumba_accel::CheckerUnit;
use rumba_apps::{kernel_by_name, Split};
use rumba_bench::{print_table, HARNESS_SEED};
use rumba_core::runtime::{RumbaSystem, RuntimeConfig};
use rumba_core::trainer::{train_app, OfflineConfig};
use rumba_core::tuner::{calibrate_threshold, Tuner, TuningMode};
use rumba_predict::ErrorEstimator;

fn main() {
    println!("Ablation: online tuning modes (inversek2j, treeErrors checker).\n");
    let kernel = kernel_by_name("inversek2j").expect("known benchmark");
    let cfg = OfflineConfig { seed: HARNESS_SEED, ..OfflineConfig::default() };
    eprintln!("[ablate] training ...");
    let app = train_app(kernel.as_ref(), &cfg).expect("training succeeds");
    let train = kernel.generate(Split::Train, HARNESS_SEED);
    let test = kernel.generate(Split::Test, HARNESS_SEED);

    let mut tree = app.tree.clone();
    let predicted: Vec<f64> =
        (0..train.len()).map(|i| tree.estimate(train.input(i), &[])).collect();
    let threshold = calibrate_threshold(&predicted, &app.train_errors, 0.10);

    let modes: Vec<(&str, TuningMode)> = vec![
        ("TOQ 90%", TuningMode::TargetQuality { toq: 0.90 }),
        ("TOQ 95%", TuningMode::TargetQuality { toq: 0.95 }),
        ("Energy (32/window)", TuningMode::EnergyBudget { budget: 32 }),
        ("Energy (8/window)", TuningMode::EnergyBudget { budget: 8 }),
        ("Quality (CPU-bound)", TuningMode::BestQuality),
    ];

    let header: Vec<String> =
        ["mode", "output error", "fixes", "fix rate", "final threshold", "CPU kept up"]
            .iter()
            .map(ToString::to_string)
            .collect();

    let mut rows = Vec::new();
    for (label, mode) in modes {
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree.clone())),
            Tuner::new(mode, threshold).expect("valid tuner"),
            RuntimeConfig::default(),
        )
        .expect("valid config");
        let outcome = system.run(kernel.as_ref(), &test).expect("run succeeds");
        rows.push(vec![
            label.to_owned(),
            format!("{:.1}%", outcome.output_error * 100.0),
            outcome.fixes.to_string(),
            format!("{:.1}%", outcome.fixes as f64 / test.len() as f64 * 100.0),
            format!("{:.3}", outcome.threshold_history.last().copied().unwrap_or(threshold)),
            if outcome.pipeline.cpu_kept_up() { "yes" } else { "no" }.to_owned(),
        ]);
    }
    print_table(&header, &rows);

    println!("\nunchecked output error of the same accelerator: {:.1}%", {
        let errs = rumba_core::trainer::invocation_errors(kernel.as_ref(), &app.rumba_npu, &test)
            .expect("replay");
        errs.iter().sum::<f64>() / errs.len() as f64 * 100.0
    });
    println!("\nExpected: tighter TOQ -> more fixes and lower error; smaller energy budget ->");
    println!("fewer fixes and higher error; Quality mode pins the fix rate near the CPU's");
    println!("overlap capacity (~1/kernel-gain of the iterations).");
}
