//! Ablation — "dialing up the approximation" (§3.1: "with Rumba's error
//! correction capabilities, it will be possible to dial up the amount of
//! approximation ... while still producing user acceptable outputs").
//!
//! The accelerator datapath precision is swept from full precision down to
//! a 4-bit grid (modeling St. Amant et al.'s limited-precision analog
//! implementation, the paper's reference \[4\]). The unchecked output error
//! climbs, but Rumba's treeErrors checker holds the 90 % target by fixing
//! more — quality management converts unusable aggression into usable
//! aggression.

use rumba_accel::NpuParams;
use rumba_apps::kernel_by_name;
use rumba_bench::{fixes_at_toq, print_table, ratio, target_error, HARNESS_SEED};
use rumba_core::context::AppContext;
use rumba_core::scheme::SchemeKind;
use rumba_core::trainer::OfflineConfig;
use rumba_energy::{EnergyParams, SystemModel};

fn main() {
    println!("Ablation: datapath precision (blackscholes, treeErrors at 90% TOQ).\n");
    let kernel = kernel_by_name("blackscholes").expect("known benchmark");
    let model = SystemModel::new(EnergyParams::default());

    let header: Vec<String> =
        ["precision", "unchecked err", "fires", "managed err", "speedup", "energy red."]
            .iter()
            .map(ToString::to_string)
            .collect();

    let mut rows = Vec::new();
    let settings: [(String, Option<u32>); 5] = [
        ("full".to_owned(), None),
        ("10-bit".to_owned(), Some(10)),
        ("8-bit".to_owned(), Some(8)),
        ("6-bit".to_owned(), Some(6)),
        ("4-bit".to_owned(), Some(4)),
    ];
    for (label, bits) in settings {
        let cfg = OfflineConfig {
            seed: HARNESS_SEED,
            npu_params: NpuParams { precision_bits: bits, ..NpuParams::default() },
            ..OfflineConfig::default()
        };
        eprintln!("[ablate] precision {label} ...");
        let ctx = AppContext::build_with_config(kernel.as_ref(), &cfg).expect("training succeeds");
        let fixes = fixes_at_toq(&ctx, SchemeKind::TreeErrors);
        let managed = ctx.error_after_fixing(SchemeKind::TreeErrors, fixes);
        let workload = ctx.workload();
        let baseline = model.cpu_baseline(&workload);
        let run = model.accelerated(&workload, &ctx.scheme_activity(SchemeKind::TreeErrors, fixes));
        rows.push(vec![
            label,
            format!("{:.1}%", ctx.unchecked_output_error() * 100.0),
            format!("{:.1}%", fixes as f64 / ctx.len() as f64 * 100.0),
            format!("{:.1}%", managed * 100.0),
            ratio(run.speedup_vs(&baseline)),
            ratio(run.energy_reduction_vs(&baseline)),
        ]);
    }
    print_table(&header, &rows);

    println!(
        "\nEvery row ends at or below the {:.0}% error target: the checker absorbs the",
        target_error() * 100.0
    );
    println!("extra approximation by re-executing more, trading energy for aggression —");
    println!("exactly the trade §3.1 promises quality management unlocks.");
}
