//! Ablation — accelerator PE count: more processing elements shorten the
//! accelerator's invocation, which *raises* performance but *shrinks* the
//! recovery headroom (the CPU can hide fewer re-executions behind a faster
//! accelerator) — the tension at the heart of §3.3's keep-up argument.
//!
//! Uses `jmeint` (18->32->2->2), the widest Table-1 topology, where PE
//! scaling actually changes the wave schedule.

use rumba_accel::{Npu, NpuParams};
use rumba_apps::kernel_by_name;
use rumba_bench::{fixes_at_toq, print_table, ratio, HARNESS_SEED};
use rumba_core::context::AppContext;
use rumba_core::scheme::SchemeKind;
use rumba_energy::{EnergyParams, SchemeActivity, SystemModel};

fn main() {
    println!("Ablation: NPU processing-element count (jmeint, treeErrors at 90% TOQ).\n");
    let kernel = kernel_by_name("jmeint").expect("known benchmark");
    let model = SystemModel::new(EnergyParams::default());

    // The trained network and the checker's firing decisions do not depend
    // on the PE count, so train once and re-derive only the cycle model.
    eprintln!("[ablate] training jmeint once ...");
    let ctx = AppContext::build(kernel.as_ref(), HARNESS_SEED).expect("training succeeds");
    let fixes = fixes_at_toq(&ctx, SchemeKind::TreeErrors);
    let workload = ctx.workload();
    let baseline = model.cpu_baseline(&workload);

    let header: Vec<String> =
        ["PEs", "npu cycles", "kernel gain", "keep-up cap", "fires", "speedup", "energy red."]
            .iter()
            .map(ToString::to_string)
            .collect();

    let mut rows = Vec::new();
    for pes in [1usize, 2, 4, 8, 16, 32] {
        let params = NpuParams { pe_count: pes, ..NpuParams::default() };
        let npu = Npu::new(ctx.trained().rumba_npu.model().clone(), params);
        let npu_cycles = npu.cycles_per_invocation();
        let gain = kernel.cpu_cycles() / npu_cycles as f64;

        let activity = SchemeActivity {
            npu_cycles_per_invocation: npu_cycles,
            ..ctx.scheme_activity(SchemeKind::TreeErrors, fixes)
        };
        let run = model.accelerated(&workload, &activity);
        rows.push(vec![
            pes.to_string(),
            npu_cycles.to_string(),
            format!("{gain:.2}x"),
            format!("{:.1}%", 100.0 / gain.max(1e-9)),
            format!("{:.1}%", fixes as f64 / ctx.len() as f64 * 100.0),
            ratio(run.speedup_vs(&baseline)),
            ratio(run.energy_reduction_vs(&baseline)),
        ]);
    }
    print_table(&header, &rows);

    println!("\nkeep-up cap = fraction of iterations the CPU can re-execute without stalling");
    println!("the pipeline (1 / kernel gain). Once the firing rate crosses it, extra PEs stop");
    println!("helping: the CPU recovery stream becomes the bottleneck, so speedup saturates");
    println!("even though raw accelerator cycles keep falling.");
}
