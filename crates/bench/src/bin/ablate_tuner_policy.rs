//! Ablation — tuner step policies: the paper's symmetric multiplicative
//! adjustment vs an AIMD (additive-relax / multiplicative-protect) policy,
//! in TOQ mode under a mid-stream distribution shift (the input statistics
//! change half way through, as they do when a new image or scene arrives).

use rumba_accel::CheckerUnit;
use rumba_apps::{kernel_by_name, Split};
use rumba_bench::{print_table, HARNESS_SEED};
use rumba_core::runtime::{RumbaSystem, RuntimeConfig};
use rumba_core::trainer::{train_app, OfflineConfig};
use rumba_core::tuner::{calibrate_threshold, StepPolicy, Tuner, TuningMode};
use rumba_nn::NnDataset;
use rumba_predict::ErrorEstimator;

fn main() {
    println!("Ablation: tuner step policy under a mid-stream shift (inversek2j, TOQ 90%).\n");
    let kernel = kernel_by_name("inversek2j").expect("known benchmark");
    let cfg = OfflineConfig { seed: HARNESS_SEED, ..OfflineConfig::default() };
    eprintln!("[ablate] training ...");
    let app = train_app(kernel.as_ref(), &cfg).expect("training succeeds");

    // Stream: easy half (test distribution) followed by a hard half (the
    // same inputs pulled toward the workspace boundary, where errors live).
    let test = kernel.generate(Split::Test, HARNESS_SEED);
    let mut stream = NnDataset::new(2, 2).expect("valid dims");
    let half = test.len() / 2;
    for i in 0..half {
        stream.push(test.input(i), test.target(i)).expect("widths match");
    }
    for i in half..test.len() {
        let x = test.input(i);
        // Push targets outward radially: boundary poses are the hard cases.
        let r = (x[0] * x[0] + x[1] * x[1]).sqrt().max(1e-9);
        let stretch = (0.98 / r).min(1.35);
        let moved = [x[0] * stretch, x[1] * stretch];
        let mut exact = [0.0; 2];
        kernel.compute(&moved, &mut exact);
        stream.push(&moved, &exact).expect("widths match");
    }

    let train = kernel.generate(Split::Train, HARNESS_SEED);
    let mut probe = app.tree.clone();
    let predicted: Vec<f64> =
        (0..train.len()).map(|i| probe.estimate(train.input(i), &[])).collect();
    let threshold = calibrate_threshold(&predicted, &app.train_errors, 0.10);

    let policies: Vec<(&str, StepPolicy)> = vec![
        ("multiplicative 0.05", StepPolicy::Multiplicative { step: 0.05 }),
        ("multiplicative 0.15", StepPolicy::Multiplicative { step: 0.15 }),
        ("multiplicative 0.40", StepPolicy::Multiplicative { step: 0.40 }),
        ("AIMD 0.05/0.40", StepPolicy::Aimd { increase: 0.05, decrease: 0.40 }),
    ];

    let header: Vec<String> = ["policy", "output error", "fixes", "threshold swings*"]
        .iter()
        .map(ToString::to_string)
        .collect();

    let mut rows = Vec::new();
    for (label, policy) in policies {
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree.clone())),
            Tuner::with_policy(TuningMode::TargetQuality { toq: 0.90 }, threshold, policy)
                .expect("valid tuner"),
            RuntimeConfig::default(),
        )
        .expect("valid config");
        let outcome = system.run(kernel.as_ref(), &stream).expect("run succeeds");
        let swings: f64 =
            outcome.threshold_history.windows(2).map(|w| (w[1] / w[0]).ln().abs()).sum();
        rows.push(vec![
            label.to_owned(),
            format!("{:.2}%", outcome.output_error * 100.0),
            format!("{:.1}%", outcome.fixes as f64 / stream.len() as f64 * 100.0),
            format!("{swings:.2}"),
        ]);
    }
    print_table(&header, &rows);

    println!("\n* total |log threshold| movement — a proxy for control churn.");
    println!("\nExpected: tiny steps adapt too slowly to the shift (quality sags mid-stream);");
    println!("huge steps oscillate; AIMD reacts hard to the violation and relaxes gently,");
    println!("holding quality with less churn than an equally aggressive symmetric step.");
}
