//! Ablation — the full checker design space, including the extension
//! `tableErrors` lookup checker (not in the paper): fixes needed at 90 %
//! TOQ vs the hardware cost of one prediction, per benchmark.

use rumba_apps::{all_kernels, Split};
use rumba_bench::{print_table, target_error, HARNESS_SEED};
use rumba_core::trainer::{invocation_errors, train_app, OfflineConfig};
use rumba_nn::{Matrix, Scratch};
use rumba_predict::{EmaDetector, ErrorEstimator, EvpErrors, TableErrors, TableParams};

fn fixes_needed(scores: &[f64], errors: &[f64]) -> f64 {
    let mut order: Vec<usize> = (0..errors.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite").then(a.cmp(&b)));
    let mut remaining: f64 = errors.iter().sum();
    for (k, &i) in order.iter().enumerate() {
        if remaining / errors.len() as f64 <= target_error() {
            return k as f64 / errors.len() as f64;
        }
        remaining -= errors[i];
    }
    1.0
}

fn main() {
    println!("Ablation: checker design space (fixes for 90% TOQ; ops = work per prediction).\n");
    let header: Vec<String> =
        ["app", "linear", "tree", "EMA", "EVP", "table"].iter().map(ToString::to_string).collect();

    let mut rows = Vec::new();
    let mut cost_row: Option<Vec<String>> = None;
    for kernel in all_kernels() {
        eprintln!("[ablate] training {} ...", kernel.name());
        let cfg = OfflineConfig { seed: HARNESS_SEED, ..OfflineConfig::default() };
        let mut app = train_app(kernel.as_ref(), &cfg).expect("training succeeds");
        let train = kernel.generate(Split::Train, HARNESS_SEED);
        let test = kernel.generate(Split::Test, HARNESS_SEED);
        let errors = invocation_errors(kernel.as_ref(), &app.rumba_npu, &test).expect("replay");

        // Extension checker, trained on the same observed errors.
        let train_rows: Vec<&[f64]> = (0..train.len()).map(|i| train.input(i)).collect();
        let mut table = TableErrors::train(&train_rows, &app.train_errors, &TableParams::default())
            .expect("fits");
        let mut ema = EmaDetector::new(app.ema_window, kernel.output_dim()).expect("valid");
        let exact_rows: Vec<&[f64]> = (0..train.len()).map(|i| train.target(i)).collect();
        let mut evp = EvpErrors::train(&train_rows, &exact_rows, cfg.ridge).expect("fits");

        let out_dim = kernel.output_dim();
        let mut batch = Matrix::default();
        app.rumba_npu
            .invoke_batch(test.inputs_view(), &mut Scratch::new(), &mut batch)
            .expect("width");
        let approx = batch.into_flat();

        let in_dim = kernel.input_dim();
        let score_all = |est: &mut dyn ErrorEstimator| -> Vec<f64> {
            est.reset();
            let mut scores = Vec::new();
            let flat = test.inputs_view();
            est.estimate_batch(test.len(), flat.as_slice(), in_dim, &approx, out_dim, &mut scores);
            scores
        };
        let estimators: Vec<(&str, Vec<f64>, usize)> = vec![
            ("linear", score_all(&mut app.linear), app.linear.cost().total_ops()),
            ("tree", score_all(&mut app.tree), app.tree.cost().total_ops()),
            ("EMA", score_all(&mut ema), ema.cost().total_ops()),
            ("EVP", score_all(&mut evp), evp.cost().total_ops()),
            ("table", score_all(&mut table), table.cost().total_ops()),
        ];

        let mut row = vec![kernel.name().to_owned()];
        for (_, scores, _) in &estimators {
            row.push(format!("{:.1}%", fixes_needed(scores, &errors) * 100.0));
        }
        rows.push(row);
        if cost_row.is_none() {
            let mut cr = vec!["ops/predict*".to_owned()];
            cr.extend(estimators.iter().map(|(_, _, ops)| ops.to_string()));
            cost_row = Some(cr);
        }
    }
    if let Some(cr) = cost_row {
        rows.push(cr);
    }
    print_table(&header, &rows);

    println!("\n* ops/predict shown for the first benchmark's input width (linear and EVP");
    println!("scale with it; tree, EMA, and table do not).");
    println!("\nExpected: the table checker approaches the tree on low-dimensional kernels at");
    println!("~2 ops per prediction, and degrades through hash aliasing on the wide ones");
    println!("(jmeint's 18 and jpeg's 64 inputs).");
}
