//! Figure 11 — false positives at the 90 % target output quality: elements
//! a scheme fixes that were not actually among the large errors, as a
//! percentage of all output elements. Ideal is zero by construction;
//! linearErrors and treeErrors should be low, Random/Uniform/EMA high.

use rumba_bench::{fixes_at_toq, print_table, Suite};
use rumba_core::analysis::false_positive_fraction;
use rumba_core::scheme::SchemeKind;

fn main() {
    let suite = Suite::build().expect("suite trains");
    println!("Figure 11: false positives at 90% target output quality (% of all elements).\n");

    let schemes = SchemeKind::paper_set();
    let mut header = vec!["app".to_owned()];
    header.extend(schemes.iter().map(|s| s.label().to_owned()));

    let mut rows = Vec::new();
    let mut sums = vec![0.0; schemes.len()];
    for entry in suite.entries() {
        let ctx = &entry.ctx;
        let k_ideal = fixes_at_toq(ctx, SchemeKind::Ideal);
        let mut row = vec![ctx.name().to_owned()];
        for (si, &kind) in schemes.iter().enumerate() {
            let k = fixes_at_toq(ctx, kind);
            let fp = false_positive_fraction(ctx.scores(kind), ctx.true_errors(), k, k_ideal);
            sums[si] += fp;
            row.push(format!("{:.1}%", fp * 100.0));
        }
        rows.push(row);
    }
    let mut avg = vec!["geo/avg".to_owned()];
    avg.extend(sums.iter().map(|s| format!("{:.1}%", s / suite.entries().len() as f64 * 100.0)));
    rows.push(avg);
    print_table(&header, &rows);

    println!("\nPaper averages: Ideal 0%, Random 14.8%, Uniform 14.5%, EMA 13.3%, linearErrors 2.1%, treeErrors 0.76%.");
}
