//! Ablation — recovery-queue sizing: the paper's Figure 4 recovery queue
//! must be deep enough that a burst of fired checks never back-pressures
//! the accelerator. The event-driven simulation sweeps the capacity and
//! reports the stall cycles and the occupancy high-water mark.

use rumba_apps::kernel_by_name;
use rumba_bench::{fixes_at_toq, print_table, HARNESS_SEED};
use rumba_core::context::AppContext;
use rumba_core::event_sim::{simulate_detailed, QueueConfig};
use rumba_core::scheme::SchemeKind;
use rumba_core::tuner::calibrate_threshold;

fn main() {
    println!("Ablation: recovery-queue capacity (inversek2j, treeErrors at 90% TOQ).\n");
    let kernel = kernel_by_name("inversek2j").expect("known benchmark");
    let ctx = AppContext::build(kernel.as_ref(), HARNESS_SEED).expect("training succeeds");

    // The online firing pattern at the TOQ operating threshold.
    let scores = ctx.scores(SchemeKind::TreeErrors);
    let threshold = calibrate_threshold(scores.scores(), ctx.true_errors(), 0.10);
    let fired: Vec<bool> = scores.scores().iter().map(|&s| s > threshold).collect();
    let fires = fired.iter().filter(|&&f| f).count();
    let k = fixes_at_toq(&ctx, SchemeKind::TreeErrors);
    println!(
        "firing pattern: {fires} of {} iterations (TOQ operating point needs {k})\n",
        ctx.len()
    );

    let npu_cycles = ctx.trained().rumba_npu.cycles_per_invocation() as f64;
    let cpu_cycles = kernel.cpu_cycles();

    let header: Vec<String> =
        ["capacity", "total cycles", "accel stall", "high water", "slowdown vs deep"]
            .iter()
            .map(ToString::to_string)
            .collect();

    let deep = simulate_detailed(
        ctx.len(),
        npu_cycles,
        cpu_cycles,
        &fired,
        QueueConfig { recovery_capacity: 1 << 20, ..QueueConfig::default() },
    );

    let mut rows = Vec::new();
    for capacity in [1usize, 2, 4, 8, 16, 32, 64, 256] {
        let run = simulate_detailed(
            ctx.len(),
            npu_cycles,
            cpu_cycles,
            &fired,
            QueueConfig { recovery_capacity: capacity, ..QueueConfig::default() },
        );
        rows.push(vec![
            capacity.to_string(),
            format!("{:.0}", run.total_cycles),
            format!("{:.0}", run.accel_stall_cycles),
            run.recovery_high_water.to_string(),
            format!("{:.2}%", (run.total_cycles / deep.total_cycles - 1.0) * 100.0),
        ]);
    }
    print_table(&header, &rows);

    println!("\nExpected: once the capacity covers the largest firing burst the CPU falls");
    println!("behind on, stalls vanish and the high-water mark stops growing — that knee is");
    println!("the queue size the hardware actually needs.");
}
