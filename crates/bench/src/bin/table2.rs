//! Table 2 — microarchitectural parameters of the x86-64 core used by the
//! timing and energy models.

use rumba_energy::{CoreConfig, EnergyParams};

fn main() {
    println!("Table 2: Microarchitectural parameters of the X86-64 cpu used in experiments.\n");
    print!("{}", CoreConfig::default());

    let p = EnergyParams::default();
    println!("\nDerived analytical energy constants (GEM5+McPAT substitute):");
    println!("  core clock                 {:.1} GHz", p.cpu_freq_ghz);
    println!("  CPU active energy          {:.2} nJ/cycle", p.cpu_active_nj_per_cycle);
    println!("  CPU wait energy            {:.2} nJ/cycle", p.cpu_idle_nj_per_cycle);
    println!("  NPU (8 PEs) energy         {:.2} nJ/cycle", p.npu_nj_per_cycle);
    println!(
        "  checker MAC / cmp / read   {:.3} / {:.3} / {:.3} nJ",
        p.checker_mac_nj, p.checker_cmp_nj, p.checker_read_nj
    );
    println!("  queue transfer             {:.3} nJ/word", p.queue_word_nj);
}
