//! Figure 15 — whole-application speedup vs the CPU baseline at the 90 %
//! target output quality. Because recovery overlaps accelerator execution
//! (Figure 8), Rumba maintains the unchecked NPU's speedup wherever the CPU
//! can keep up.

use rumba_bench::{fixes_at_toq, geomean, print_table, ratio, write_csv, Suite};
use rumba_core::scheme::SchemeKind;
use rumba_energy::{EnergyParams, SystemModel};

fn main() {
    let suite = Suite::build().expect("suite trains");
    let model = SystemModel::new(EnergyParams::default());
    println!("Figure 15: application speedup vs CPU baseline at 90% TOQ.\n");

    let schemes = SchemeKind::paper_set();
    let mut header = vec!["app".to_owned(), "NPU".to_owned()];
    header.extend(schemes.iter().map(|s| s.label().to_owned()));

    let mut rows = Vec::new();
    let mut npu_col = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for entry in suite.entries() {
        let ctx = &entry.ctx;
        let workload = ctx.workload();
        let baseline = model.cpu_baseline(&workload);
        let npu = model.accelerated(&workload, &ctx.unchecked_npu_activity());
        let npu_speedup = npu.speedup_vs(&baseline);
        npu_col.push(npu_speedup);

        let mut row = vec![ctx.name().to_owned(), ratio(npu_speedup)];
        for (si, &kind) in schemes.iter().enumerate() {
            let fixes = fixes_at_toq(ctx, kind);
            let run = model.accelerated(&workload, &ctx.scheme_activity(kind, fixes));
            let s = run.speedup_vs(&baseline);
            cols[si].push(s);
            row.push(ratio(s));
        }
        rows.push(row);
    }

    let mut gm = vec!["geomean".to_owned(), ratio(geomean(&npu_col))];
    gm.extend(cols.iter().map(|c| ratio(geomean(c))));
    rows.push(gm);
    print_table(&header, &rows);
    if let Ok(path) = write_csv("fig15", &header, &rows) {
        eprintln!("[csv] {}", path.display());
    }

    println!("\nPaper: Rumba (linearErrors/treeErrors) maintains the NPU's ~2.1-2.3x speedup;");
    println!("kmeans is a slowdown for every accelerated scheme. Benchmarks whose re-execution");
    println!("fraction exceeds the accelerator's kernel-level gain (sobel, and jmeint for the");
    println!("weaker checkers) give back part of the speedup.");
}
