//! Ablation — §3.5 / Figure 9: detector placement. Configuration 1 (detector
//! before the accelerator) skips the accelerator for fired invocations,
//! saving their energy but serializing detector latency; Configuration 2
//! (parallel) hides the detector but wastes accelerator energy on fired
//! invocations. The paper chooses Configuration 2 for performance.

use rumba_bench::{fixes_at_toq, print_table, ratio, Suite};
use rumba_core::scheme::SchemeKind;
use rumba_energy::{EnergyParams, SystemModel};

fn main() {
    let suite = Suite::build().expect("suite trains");
    let model = SystemModel::new(EnergyParams::default());
    println!("Ablation: detector placement (treeErrors at 90% TOQ).\n");

    let header: Vec<String> =
        ["app", "fires", "cfg2 speedup", "cfg1 speedup", "cfg2 energy", "cfg1 energy"]
            .iter()
            .map(ToString::to_string)
            .collect();

    let mut rows = Vec::new();
    for entry in suite.entries() {
        let ctx = &entry.ctx;
        let workload = ctx.workload();
        let baseline = model.cpu_baseline(&workload);
        let fixes = fixes_at_toq(ctx, SchemeKind::TreeErrors);

        // Configuration 2 (paper default): all invocations hit the
        // accelerator; detector fully hidden.
        let cfg2 =
            model.accelerated(&workload, &ctx.scheme_activity(SchemeKind::TreeErrors, fixes));

        // Configuration 1: fired invocations never reach the accelerator,
        // but every invocation pays the detector latency serially.
        let mut a1 = ctx.scheme_activity(SchemeKind::TreeErrors, fixes);
        a1.accelerator_invocations = ctx.len() - fixes;
        let cost = ctx.scores(SchemeKind::TreeErrors).checker_cost();
        let checker_cycles = (cost.macs + cost.comparisons + 1) as f64;
        a1.serial_detector_cycles = ctx.len() as f64 * checker_cycles;
        let cfg1 = model.accelerated(&workload, &a1);

        rows.push(vec![
            ctx.name().to_owned(),
            format!("{:.1}%", fixes as f64 / ctx.len() as f64 * 100.0),
            ratio(cfg2.speedup_vs(&baseline)),
            ratio(cfg1.speedup_vs(&baseline)),
            ratio(cfg2.energy_reduction_vs(&baseline)),
            ratio(cfg1.energy_reduction_vs(&baseline)),
        ]);
    }
    print_table(&header, &rows);

    println!("\nExpected trade-off: cfg1 recovers a little energy on high-fire benchmarks");
    println!("(skipped accelerator invocations) but pays serialized detector latency on every");
    println!("invocation — the paper picks cfg2 to protect performance.");
}
