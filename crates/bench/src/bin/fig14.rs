//! Figure 14 — whole-application energy reduction vs the CPU baseline at
//! the 90 % target output quality, including re-computation and checker
//! energy. The unchecked NPU saves the most (but misses quality); Rumba's
//! treeErrors lands near the paper's 2.2x vs the NPU's 3.2x.

use rumba_bench::{fixes_at_toq, geomean, print_table, ratio, write_csv, Suite};
use rumba_core::scheme::SchemeKind;
use rumba_energy::{EnergyParams, SystemModel};

fn main() {
    let suite = Suite::build().expect("suite trains");
    let model = SystemModel::new(EnergyParams::default());
    println!("Figure 14: application energy reduction vs CPU baseline at 90% TOQ.\n");

    let schemes = SchemeKind::paper_set();
    let mut header = vec!["app".to_owned(), "NPU".to_owned()];
    header.extend(schemes.iter().map(|s| s.label().to_owned()));

    let mut rows = Vec::new();
    let mut npu_col = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for entry in suite.entries() {
        let ctx = &entry.ctx;
        let workload = ctx.workload();
        let baseline = model.cpu_baseline(&workload);
        let npu = model.accelerated(&workload, &ctx.unchecked_npu_activity());
        let npu_red = npu.energy_reduction_vs(&baseline);
        npu_col.push(npu_red);

        let mut row = vec![ctx.name().to_owned(), ratio(npu_red)];
        for (si, &kind) in schemes.iter().enumerate() {
            let fixes = fixes_at_toq(ctx, kind);
            let run = model.accelerated(&workload, &ctx.scheme_activity(kind, fixes));
            let red = run.energy_reduction_vs(&baseline);
            cols[si].push(red);
            row.push(ratio(red));
        }
        rows.push(row);
    }

    let mut gm = vec!["geomean".to_owned(), ratio(geomean(&npu_col))];
    gm.extend(cols.iter().map(|c| ratio(geomean(c))));
    rows.push(gm);
    print_table(&header, &rows);
    if let Ok(path) = write_csv("fig14", &header, &rows) {
        eprintln!("[csv] {}", path.display());
    }

    println!("\nPaper: unchecked NPU 3.2x -> Rumba treeErrors 2.2x (energy traded for quality);");
    println!("kmeans shows little or no gain; sobel drops the most under linear/tree because it");
    println!("needs the largest number of re-executions.");
}
