//! Figure 10 — output error vs the fraction of output elements fixed, per
//! benchmark and scheme. Techniques closer to Ideal are better; in the
//! paper, linearErrors and treeErrors hug the Ideal curve while Random and
//! Uniform decay linearly.

use rumba_bench::{print_table, write_csv, Suite};
use rumba_core::analysis::error_vs_fixed_curve;
use rumba_core::scheme::SchemeKind;

fn main() {
    // Honors RUMBA_METRICS_OUT (training cache probes, pool usage) and
    // flushes the telemetry stream on exit; stdout is unaffected.
    let _obs = rumba_obs::guard();
    let suite = Suite::build().expect("suite trains");
    let fractions: Vec<f64> = (0..=10).map(|k| k as f64 / 10.0).collect();

    for entry in suite.entries() {
        let ctx = &entry.ctx;
        println!(
            "\nFigure 10 ({}) — output error (%) vs fraction of elements fixed:\n",
            ctx.name()
        );
        let mut header = vec!["scheme".to_owned()];
        header.extend(fractions.iter().map(|f| format!("{:.0}%", f * 100.0)));

        let mut rows = Vec::new();
        for kind in SchemeKind::paper_set() {
            let curve = error_vs_fixed_curve(ctx.scores(kind), ctx.true_errors(), &fractions);
            let mut row = vec![kind.label().to_owned()];
            row.extend(curve.iter().map(|p| format!("{:.1}", p.output_error_percent)));
            rows.push(row);
        }
        print_table(&header, &rows);
        if let Ok(path) = write_csv(&format!("fig10_{}", ctx.name()), &header, &rows) {
            eprintln!("[csv] {}", path.display());
        }
    }

    // The paper's spot check: inversek2j at 30% fixed.
    let ik = suite
        .entries()
        .iter()
        .find(|e| e.ctx.name() == "inversek2j")
        .expect("suite contains inversek2j");
    println!("\ninversek2j at 30% fixed (paper: Ideal 2.1, Random 9.7, Uniform 9.6, EMA 5.9, linear 2.6, tree 2.7):");
    let k = (0.3 * ik.ctx.len() as f64) as usize;
    for kind in SchemeKind::paper_set() {
        println!("  {:<14} {:>5.1}%", kind.label(), ik.ctx.error_after_fixing(kind, k) * 100.0);
    }
}
