//! Figure 12 — the number of elements that must be re-executed to achieve
//! the 90 % target output quality, as a percentage of all elements. Fewer
//! is better (less recovery energy); Ideal is the floor.

use rumba_bench::{fixes_at_toq, print_table, Suite};
use rumba_core::scheme::SchemeKind;

fn main() {
    let suite = Suite::build().expect("suite trains");
    println!("Figure 12: elements re-executed for 90% target output quality (% of total).\n");

    let schemes = SchemeKind::paper_set();
    let mut header = vec!["app".to_owned()];
    header.extend(schemes.iter().map(|s| s.label().to_owned()));

    let mut rows = Vec::new();
    let mut sums = vec![0.0; schemes.len()];
    for entry in suite.entries() {
        let ctx = &entry.ctx;
        let mut row = vec![ctx.name().to_owned()];
        for (si, &kind) in schemes.iter().enumerate() {
            let frac = fixes_at_toq(ctx, kind) as f64 / ctx.len() as f64;
            sums[si] += frac;
            row.push(format!("{:.1}%", frac * 100.0));
        }
        rows.push(row);
    }
    let n_apps = suite.entries().len() as f64;
    let mut avg = vec!["average".to_owned()];
    avg.extend(sums.iter().map(|s| format!("{:.1}%", s / n_apps * 100.0)));
    rows.push(avg);
    print_table(&header, &rows);

    let ideal_avg = sums[0] / n_apps;
    let linear_avg = sums[4] / n_apps;
    let tree_avg = sums[5] / n_apps;
    let random_avg = sums[1] / n_apps;
    println!(
        "\nExtra elements fixed vs Ideal (paper: Random +29%, linearErrors +9%, treeErrors +6%):"
    );
    println!("  Random       +{:.1}%", (random_avg - ideal_avg) * 100.0);
    println!("  linearErrors +{:.1}%", (linear_avg - ideal_avg) * 100.0);
    println!("  treeErrors   +{:.1}%", (tree_avg - ideal_avg) * 100.0);
}
