//! Ablation — decision-tree depth: the paper caps the tree at depth 7.
//! Sweeping the cap shows the accuracy/hardware-cost trade-off: shallow
//! trees under-fit the error landscape (more fixes for the same quality),
//! deeper ones stop paying off while costing more comparator cycles.

use rumba_apps::{kernel_by_name, Split};
use rumba_bench::{print_table, target_error, HARNESS_SEED};
use rumba_core::trainer::{invocation_errors, train_app, OfflineConfig};
use rumba_predict::{ErrorEstimator, TreeErrors, TreeParams};

fn main() {
    println!("Ablation: decision-tree depth cap (fixes needed for 90% TOQ).\n");
    let apps = ["blackscholes", "inversek2j", "sobel"];
    let mut header = vec!["depth".to_owned()];
    for app in apps {
        header.push(format!("{app} fixes"));
    }
    header.push("tree cycles".to_owned());

    // Train each app once; re-fit only the tree per depth.
    let mut contexts = Vec::new();
    for app in apps {
        let kernel = kernel_by_name(app).expect("known benchmark");
        let cfg = OfflineConfig { seed: HARNESS_SEED, ..OfflineConfig::default() };
        eprintln!("[ablate] training {app} ...");
        let trained = train_app(kernel.as_ref(), &cfg).expect("training succeeds");
        let train = kernel.generate(Split::Train, HARNESS_SEED);
        let test = kernel.generate(Split::Test, HARNESS_SEED);
        let test_errors =
            invocation_errors(kernel.as_ref(), &trained.rumba_npu, &test).expect("replay");
        contexts.push((kernel, trained, train, test, test_errors));
    }

    let mut rows = Vec::new();
    for depth in 1..=9 {
        let mut row = vec![depth.to_string()];
        let mut max_cycles = 0usize;
        for (_, trained, train, test, test_errors) in &contexts {
            let rows_train: Vec<&[f64]> = (0..train.len()).map(|i| train.input(i)).collect();
            let params = TreeParams { max_depth: depth, ..TreeParams::default() };
            let mut tree =
                TreeErrors::train(&rows_train, &trained.train_errors, &params).expect("fits");

            // Fixes needed: sort test by predicted score, find the k
            // reaching the error budget.
            let scores: Vec<f64> =
                (0..test.len()).map(|i| tree.estimate(test.input(i), &[])).collect();
            let mut order: Vec<usize> = (0..test.len()).collect();
            order.sort_by(|&a, &b| {
                scores[b].partial_cmp(&scores[a]).expect("finite").then(a.cmp(&b))
            });
            let total: f64 = test_errors.iter().sum();
            let mut remaining = total;
            let mut k = test.len();
            for (j, &i) in order.iter().enumerate() {
                if remaining / test.len() as f64 <= target_error() {
                    k = j;
                    break;
                }
                remaining -= test_errors[i];
            }
            row.push(format!("{:.1}%", k as f64 / test.len() as f64 * 100.0));
            let cost = tree.cost();
            max_cycles = max_cycles.max(cost.comparisons + 1);
        }
        row.push(max_cycles.to_string());
        rows.push(row);
    }
    print_table(&header, &rows);

    println!("\nExpected: fixes drop steeply up to depth ~5-7 and flatten after — the paper's");
    println!("depth-7 cap buys nearly all of the accuracy at single-digit comparator cycles.");
}
