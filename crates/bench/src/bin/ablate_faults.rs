//! Ablation — transient faults: §6 notes Rumba's re-execution idea comes
//! from soft-error recovery. If the accelerator also suffers *transient
//! faults* (particle strikes, voltage droop) on top of its systematic
//! approximation error, the checker families behave very differently:
//! input-based predictors (linear/tree) cannot see a fault at all — the
//! inputs look benign — while the output-based EMA flags the deviating
//! output immediately.
//!
//! Faults come from the shared `rumba-faults` plan (seed-deterministic,
//! thread-invariant): a 16.16 fixed-point datapath bit-flip model and a
//! NaN/Inf corruption model, both at the same per-element rate.

use rumba_apps::{kernel_by_name, Split};
use rumba_bench::{print_table, HARNESS_SEED};
use rumba_core::trainer::{train_app, OfflineConfig};
use rumba_faults::{FaultModel, FaultPlan};
use rumba_nn::{Matrix, Scratch};
use rumba_predict::{EmaDetector, ErrorEstimator, MaxEnsemble};

fn main() {
    println!("Ablation: transient-fault coverage by checker family (fft).\n");
    let kernel = kernel_by_name("fft").expect("known benchmark");
    let cfg = OfflineConfig { seed: HARNESS_SEED, ..OfflineConfig::default() };
    eprintln!("[ablate] training ...");
    let mut app = train_app(kernel.as_ref(), &cfg).expect("training succeeds");
    let test = kernel.generate(Split::Test, HARNESS_SEED);
    let out_dim = kernel.output_dim();
    let in_dim = kernel.input_dim();

    let fault_rate = 0.01;
    let models = [
        ("datapath bit-flips", FaultModel::BitFlip { rate: fault_rate }),
        ("NaN/Inf corruption", FaultModel::NonFinite { rate: fault_rate }),
    ];

    for (title, model) in models {
        let plan = FaultPlan::new(HARNESS_SEED).with(model);

        // Replay the whole test stream through the faulted accelerator and
        // recover which invocations were struck from the plan's pure
        // decisions (no RNG state to thread through).
        let npu = app.rumba_npu.clone().with_fault_plan(plan.clone());
        let mut batch = Matrix::default();
        npu.invoke_batch(test.inputs_view(), &mut Scratch::new(), &mut batch)
            .expect("width matches");
        let approx = batch.into_flat();
        let mut log = Vec::new();
        let faulted: Vec<bool> =
            (0..test.len()).map(|i| plan.output_fault_events(i, out_dim, &mut log) > 0).collect();
        let injected = faulted.iter().filter(|&&f| f).count();

        // Score the stream with each checker and measure, at each checker's
        // own 95th-percentile threshold, how many faults it flags.
        let mut ema = EmaDetector::new(app.ema_window, out_dim).expect("valid window");
        let mut both = MaxEnsemble::new(
            Box::new(app.tree.clone()),
            Box::new(EmaDetector::new(app.ema_window, out_dim).expect("valid window")),
        );
        let score = |est: &mut dyn ErrorEstimator| -> Vec<f64> {
            est.reset();
            let mut scores = Vec::new();
            let flat = test.inputs_view();
            est.estimate_batch(test.len(), flat.as_slice(), in_dim, &approx, out_dim, &mut scores);
            scores
        };
        let schemes: Vec<(&str, Vec<f64>)> = vec![
            ("linearErrors (input-based)", score(&mut app.linear)),
            ("treeErrors (input-based)", score(&mut app.tree)),
            ("EMA (output-based)", score(&mut ema)),
            ("tree+EMA (maxEnsemble)", score(&mut both)),
        ];

        println!("{title} at rate {fault_rate} ({injected} struck invocations):");
        let header: Vec<String> =
            ["checker", "faults flagged", "coverage"].iter().map(ToString::to_string).collect();
        let mut rows = Vec::new();
        for (label, scores) in &schemes {
            let mut sorted = scores.clone();
            sorted.sort_by(f64::total_cmp);
            let threshold = sorted[(sorted.len() as f64 * 0.95) as usize];
            let caught = faulted.iter().zip(scores).filter(|(&f, &s)| f && s > threshold).count();
            rows.push(vec![
                (*label).to_owned(),
                format!("{caught} / {injected}"),
                format!("{:.0}%", caught as f64 / injected.max(1) as f64 * 100.0),
            ]);
        }
        print_table(&header, &rows);
        println!();
    }

    println!("Flagging budget: each checker's top 5% of its own scores.");
    println!("\nExpected: the input-based checkers flag faults only by coincidence (the");
    println!("struck inputs are distributed like any others -> ~5% coverage), while EMA");
    println!("catches nearly all of them — the niche §3.2.3's output-based method fills,");
    println!("and why a deployment may want both detector families side by side.");
    println!("\nThe managed loop's answer to the NaN/Inf row is quarantine: see");
    println!("'rumba faults', which runs the same models through RumbaSystem.");
}
