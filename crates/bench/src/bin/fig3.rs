//! Figure 3 — mosaic's output error over 800 flower images under loop
//! perforation: the output quality is highly input-dependent (≈5 % average
//! but up to ≈23 % worst case in the paper).

use rumba_apps::mosaic::{run_study, summarize, Perforation};

fn main() {
    println!("Figure 3: mosaic output error across 800 flower images (loop perforation).\n");
    let samples = run_study(800, 64, Perforation::Random { keep: 0.02, seed: 99 }, 4242);
    let summary = summarize(&samples);

    println!("images:               800");
    println!("perforation:          keep 2% of pixels (random)");
    println!("average output error: {:.1}%", summary.mean_percent);
    println!("maximum output error: {:.1}%", summary.max_percent);
    println!("images above 2x mean: {:.1}%", summary.above_twice_mean * 100.0);

    // Histogram of per-image errors, mirroring the scatter of Figure 3.
    println!("\nerror histogram (1%-wide bins):");
    let max_bin = summary.max_percent.ceil() as usize + 1;
    let mut bins = vec![0usize; max_bin.max(1)];
    for s in &samples {
        bins[(s.error_percent.floor() as usize).min(max_bin - 1)] += 1;
    }
    for (b, &count) in bins.iter().enumerate() {
        if count > 0 {
            println!("  {:>2}-{:<2}%  {:<4} {}", b, b + 1, count, "#".repeat(count / 4 + 1));
        }
    }

    println!("\nfirst 10 images (index, exact brightness, perforated, error%):");
    for s in samples.iter().take(10) {
        println!(
            "  {:>3}  {:.4}  {:.4}  {:>5.2}%",
            s.image_index, s.exact, s.approximate, s.error_percent
        );
    }
    println!("\nPaper shape: low average error with a heavy input-dependent tail.");
}
