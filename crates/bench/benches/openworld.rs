//! Cost of the open-world machinery: synthesizing one scenario sample
//! (a pure hash of seed x scenario x invocation), and the overhead the
//! armed refit channel — audit sampling, reservoir capture, re-fit and
//! re-calibration at the `Recalibrated` rung — adds to a drifting
//! stream over the reset-only watchdog it replaces.

use criterion::{criterion_group, criterion_main, Criterion};
use rumba_accel::CheckerUnit;
use rumba_apps::{kernel_by_name, Split};
use rumba_core::openworld::{scenarios, ScenarioStream};
use rumba_core::runtime::{RefitConfig, RumbaSystem, RuntimeConfig, WatchdogConfig};
use rumba_core::trainer::{train_app, OfflineConfig};
use rumba_core::tuner::{Tuner, TuningMode};
use std::hint::black_box;

fn bench_openworld(c: &mut Criterion) {
    let kernel = kernel_by_name("gaussian").expect("didactic kernel");
    let cfg = OfflineConfig::default();
    let app = train_app(kernel.as_ref(), &cfg).expect("training succeeds");
    let pool = kernel.generate(Split::Test, 42);
    let drift = scenarios().into_iter().find(|s| s.name == "drift").expect("drift scenario");
    let stream = ScenarioStream::new(&pool, 7, drift);
    let n = 1408usize;

    let mut group = c.benchmark_group("openworld");
    // Pure per-invocation sample synthesis, amortized over a stream.
    group.bench_function("scenario_input_per_invocation", |b| {
        b.iter(|| {
            let mut sum = 0.0f64;
            for i in 0..n {
                sum += stream.input(black_box(i))[0];
            }
            black_box(sum)
        });
    });

    let build = |refit: bool| {
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree.clone())),
            Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, 0.05).expect("valid"),
            RuntimeConfig {
                window: 128,
                watchdog: Some(WatchdogConfig {
                    quality_limit: 0.12,
                    patience: 2,
                    fallback_patience: 8,
                }),
                ..RuntimeConfig::default()
            },
        )
        .expect("valid config");
        if refit {
            system
                .arm_refit(RefitConfig {
                    capacity: 192,
                    min_rows: 24,
                    audit_period: 8,
                    quality_budget: 0.05,
                })
                .expect("refit arms");
        }
        system
    };
    let run = |system: &mut RumbaSystem| {
        system.set_fault_plan(stream.fault_plan());
        system.begin_stream();
        let mut out = vec![0.0; kernel.output_dim()];
        for i in 0..n {
            system.process(kernel.as_ref(), &stream.input(i), &mut out).expect("process succeeds");
        }
        system.end_stream(kernel.as_ref());
        out[0]
    };
    // The reset-only baseline: watchdog armed, refit off.
    group.bench_function("drift_stream_reset_only", |b| {
        b.iter(|| {
            let mut system = build(false);
            black_box(run(&mut system))
        });
    });
    // The full open-world loop: audit channel + reservoir + at least one
    // committed refit over the same stream.
    group.bench_function("drift_stream_refit_on", |b| {
        b.iter(|| {
            let mut system = build(true);
            black_box(run(&mut system))
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_openworld
}
criterion_main!(benches);
