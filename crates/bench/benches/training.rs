//! Cost of the offline trainers: checker fitting (linear least squares and
//! CART) and a small accelerator-network training run. These run once per
//! application deployment, so seconds are acceptable — the bench documents
//! the budget.

use criterion::{criterion_group, criterion_main, Criterion};
use rumba_nn::{Activation, Mlp, NnDataset, TrainParams, Trainer};
use rumba_predict::{LinearErrors, TreeErrors, TreeParams};
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let n = 5_000;
    let dim = 3;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..dim).map(|j| ((i * 31 + j * 17) % 100) as f64 / 100.0).collect())
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let errors: Vec<f64> = rows.iter().map(|r| (r[0] - 0.5).abs() * 0.4).collect();

    let mut group = c.benchmark_group("offline_training");
    group.bench_function("linear_checker_5k", |b| {
        b.iter(|| black_box(LinearErrors::train(&refs, &errors, 1e-6).expect("fits")));
    });
    group.bench_function("tree_checker_5k_depth7", |b| {
        b.iter(|| {
            black_box(TreeErrors::train(&refs, &errors, &TreeParams::default()).expect("fits"))
        });
    });

    let data = NnDataset::from_fn(1, 1, 512, |i, x, y| {
        x[0] = i as f64 / 512.0;
        y[0] = (x[0] * 5.0).sin() * 0.5 + 0.5;
    })
    .expect("valid dims");
    group.bench_function("mlp_1_8_1_20_epochs", |b| {
        b.iter(|| {
            let mut mlp = Mlp::new(&[1, 8, 1], Activation::Sigmoid, 3).expect("valid");
            let params = TrainParams { epochs: 20, ..TrainParams::default() };
            black_box(Trainer::new(params).train(&mut mlp, &data).expect("trains"))
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_training
}
criterion_main!(benches);
