//! Wall-clock cost of one accelerator invocation per Table-1 topology —
//! the simulation-side counterpart of the NPU cycle model.

use criterion::{criterion_group, criterion_main, Criterion};
use rumba_accel::{Npu, NpuParams};
use rumba_nn::{Activation, NnDataset, TrainParams, TrainedModel};
use std::hint::black_box;

fn quick_model(topology: &[usize]) -> TrainedModel {
    let data =
        NnDataset::from_fn(topology[0], *topology.last().expect("nonempty"), 64, |i, x, y| {
            for (j, v) in x.iter_mut().enumerate() {
                *v = ((i * 13 + j * 7) % 50) as f64 / 50.0;
            }
            for v in y.iter_mut() {
                *v = (i % 50) as f64 / 50.0;
            }
        })
        .expect("valid dims");
    let params = TrainParams { epochs: 2, ..TrainParams::default() };
    TrainedModel::fit(topology, Activation::Sigmoid, &data, &params, 1).expect("fits")
}

fn bench_npu(c: &mut Criterion) {
    let topologies: [(&str, Vec<usize>); 4] = [
        ("blackscholes 3-8-8-1", vec![3, 8, 8, 1]),
        ("inversek2j 2-2-2", vec![2, 2, 2]),
        ("jmeint 18-32-2-2", vec![18, 32, 2, 2]),
        ("jpeg 64-16-64", vec![64, 16, 64]),
    ];
    let mut group = c.benchmark_group("npu_invoke");
    for (name, topo) in topologies {
        let npu = Npu::new(quick_model(&topo), NpuParams::default());
        let input = vec![0.3; topo[0]];
        group.bench_function(name, |b| {
            b.iter(|| black_box(npu.invoke(black_box(&input)).expect("width matches")));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_npu
}
criterion_main!(benches);
