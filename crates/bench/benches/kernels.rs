//! Wall-clock cost of one *exact* invocation of each Table-1 kernel — the
//! software-side ground truth behind the `cpu_cycles()` calibration and the
//! recovery cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use rumba_apps::{all_kernels, Split};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_kernel");
    for kernel in all_kernels() {
        let data = kernel.generate(Split::Train, 7);
        let input = data.input(data.len() / 2).to_vec();
        let mut output = vec![0.0; kernel.output_dim()];
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                kernel.compute(black_box(&input), &mut output);
                black_box(output[0])
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernels
}
criterion_main!(benches);
