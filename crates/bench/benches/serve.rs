//! Wall-clock cost of the serving layer: one multiplexed scheduling
//! round versus per-session serial drains, and the full seeded workload
//! replay at each tenant count (the interactive-latency counterpart of
//! `BENCH_serve.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use rumba_apps::{kernel_by_name, Split};
use rumba_core::event_sim::QueueConfig;
use rumba_core::tuner::TuningMode;
use rumba_serve::bench::{run_net_trace, run_trace, BenchConfig};
use rumba_serve::{AdmissionPolicy, CheckerKind, ServeRuntime, SessionConfig};
use std::hint::black_box;

fn profile(tenant: usize) -> SessionConfig {
    SessionConfig {
        kernel: "gaussian".to_owned(),
        seed: 42,
        checker: [CheckerKind::Tree, CheckerKind::Linear, CheckerKind::Ema][tenant % 3],
        mode: TuningMode::TargetQuality { toq: 0.9 },
        window: 32,
        queue: QueueConfig { input_capacity: 64, ..QueueConfig::default() },
        admission: AdmissionPolicy::Shed,
        faults: None,
        watchdog: None,
        ..SessionConfig::default()
    }
}

fn bench_drain(c: &mut Criterion) {
    let kernel = kernel_by_name("gaussian").expect("registered");
    let data = kernel.generate(Split::Test, 42);
    let batch = 32usize;

    let mut group = c.benchmark_group("serve_drain");
    for tenants in [1usize, 3] {
        group.bench_function(&format!("drain_all x{tenants}"), |b| {
            let mut rt = ServeRuntime::new();
            for t in 0..tenants {
                rt.open(&format!("t{t}"), profile(t)).expect("opens");
            }
            b.iter(|| {
                for t in 0..tenants {
                    let name = format!("t{t}");
                    for k in 0..batch {
                        rt.submit(&name, data.input((t * 61 + k) % data.len())).expect("admits");
                    }
                }
                rt.drain_all().expect("drains");
                for t in 0..tenants {
                    black_box(rt.take_all_results());
                    let _ = t;
                }
            });
        });
    }
    group.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_trace");
    for tenants in [1usize, 3] {
        group.bench_function(&format!("replay x{tenants}"), |b| {
            b.iter(|| {
                black_box(
                    run_trace(BenchConfig { seed: 7, tenants, requests: 20 }).expect("replays"),
                )
            });
        });
    }
    group.finish();
}

fn bench_net(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_net");
    // Lockstep multi-client TCP replay per shard count — the shard
    // fan-out overhead on top of the in-process `replay` baseline.
    for shards in [1usize, 2] {
        group.bench_function(&format!("tcp replay shards={shards}"), |b| {
            b.iter(|| {
                black_box(
                    run_net_trace(BenchConfig { seed: 7, tenants: 3, requests: 20 }, shards)
                        .expect("replays"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_drain, bench_trace, bench_net);
criterion_main!(benches);
