//! Scaling of the deterministic thread pool on the two hottest harness
//! workloads: candidate-topology training and the Figure-10 error-vs-fixed
//! sweep. Each workload is measured at 1/2/4/8 worker threads; outputs are
//! bit-identical at every setting, so the bench asserts that too before
//! timing. Besides the Criterion report, the run writes wall-clock
//! speedups to `BENCH_parallel.json` at the workspace root so the perf
//! trajectory is machine-readable across commits.

use criterion::{criterion_group, criterion_main, Criterion};
use rumba_core::analysis::error_vs_fixed_curve;
use rumba_core::scheme::{SchemeKind, SchemeScores};
use rumba_nn::{NnDataset, TopologySearch, TrainParams};
use rumba_predict::CheckerCost;
use std::hint::black_box;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Training set for the topology-search workload: a smooth 2-in/1-out
/// surface with enough rows that each candidate trains for a measurable
/// time.
fn search_dataset() -> NnDataset {
    NnDataset::from_fn(2, 1, 768, |i, x, y| {
        x[0] = (i % 97) as f64 / 97.0;
        x[1] = (i % 41) as f64 / 41.0;
        y[0] = ((x[0] * 4.0).sin() * (x[1] * 3.0).cos()).mul_add(0.4, 0.5);
    })
    .expect("valid dims")
}

/// The search itself: error cap 0 means no candidate is ever "good
/// enough", so the serial path trains every candidate too and the
/// comparison measures pure scaling, not speculation waste.
fn run_search(data: &NnDataset) -> f64 {
    let params = TrainParams { epochs: 25, ..TrainParams::default() };
    let (_model, report) = TopologySearch::new(0.0)
        .with_hidden_sizes(&[4, 6, 8])
        .with_max_hidden_layers(2)
        .with_train_params(params)
        .run(data, 42)
        .expect("search succeeds");
    report.best().validation_error
}

/// Inputs for the Figure-10 sweep workload: a deterministic error vector
/// and an Ideal scoring of it, swept over a dense fix-fraction grid.
fn sweep_inputs() -> (SchemeScores, Vec<f64>, Vec<f64>) {
    let n = 120_000usize;
    let errors: Vec<f64> = (0..n)
        .map(|i| {
            // Cheap deterministic noise (SplitMix64 finalizer).
            let mut z = (i as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64 * 0.3
        })
        .collect();
    let scores = SchemeScores::new(SchemeKind::Ideal, errors.clone(), CheckerCost::free());
    let fractions: Vec<f64> = (0..=256).map(|k| k as f64 / 256.0).collect();
    (scores, errors, fractions)
}

fn run_sweep(scores: &SchemeScores, errors: &[f64], fractions: &[f64]) -> f64 {
    let curve = error_vs_fixed_curve(scores, errors, fractions);
    curve.iter().map(|p| p.output_error_percent).sum()
}

/// Runs `work` under a fixed worker-thread count and returns the best
/// wall-clock of `reps` runs (best-of filters scheduler noise).
fn wall_clock<R>(threads: usize, reps: usize, mut work: impl FnMut() -> R) -> f64 {
    rumba_parallel::set_thread_override(Some(threads));
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(work());
        best = best.min(start.elapsed().as_secs_f64());
    }
    rumba_parallel::set_thread_override(None);
    best
}

fn bench_topology_search(c: &mut Criterion) {
    let data = search_dataset();

    // The determinism contract the pool guarantees: identical selection at
    // every thread count. Assert it before timing anything.
    rumba_parallel::set_thread_override(Some(1));
    let serial = run_search(&data);
    for threads in THREAD_COUNTS {
        rumba_parallel::set_thread_override(Some(threads));
        assert_eq!(run_search(&data).to_bits(), serial.to_bits(), "threads={threads}");
    }
    rumba_parallel::set_thread_override(None);

    let mut group = c.benchmark_group("topology_search");
    for threads in THREAD_COUNTS {
        group.bench_function(&format!("{threads}_threads"), |b| {
            rumba_parallel::set_thread_override(Some(threads));
            b.iter(|| black_box(run_search(&data)));
            rumba_parallel::set_thread_override(None);
        });
    }
    group.finish();
}

fn bench_fig10_sweep(c: &mut Criterion) {
    let (scores, errors, fractions) = sweep_inputs();

    rumba_parallel::set_thread_override(Some(1));
    let serial = run_sweep(&scores, &errors, &fractions);
    for threads in THREAD_COUNTS {
        rumba_parallel::set_thread_override(Some(threads));
        let got = run_sweep(&scores, &errors, &fractions);
        assert_eq!(got.to_bits(), serial.to_bits(), "threads={threads}");
    }
    rumba_parallel::set_thread_override(None);

    let mut group = c.benchmark_group("fig10_sweep");
    for threads in THREAD_COUNTS {
        group.bench_function(&format!("{threads}_threads"), |b| {
            rumba_parallel::set_thread_override(Some(threads));
            b.iter(|| black_box(run_sweep(&scores, &errors, &fractions)));
            rumba_parallel::set_thread_override(None);
        });
    }
    group.finish();
}

/// One workload's wall-clock row for the JSON artifact.
fn json_workload(name: &str, seconds: &[(usize, f64)]) -> String {
    let serial = seconds.iter().find(|(t, _)| *t == 1).map_or(f64::NAN, |&(_, s)| s);
    let secs: Vec<String> = seconds.iter().map(|(t, s)| format!("\"{t}\": {s:.6}")).collect();
    let speedups: Vec<String> = seconds
        .iter()
        .filter(|(t, _)| *t != 1)
        .map(|(t, s)| format!("\"{t}\": {:.3}", serial / s))
        .collect();
    format!(
        "    {{\"name\": \"{name}\", \"wall_clock_seconds\": {{{}}}, \"speedup_vs_serial\": {{{}}}}}",
        secs.join(", "),
        speedups.join(", ")
    )
}

/// Measures both workloads at each thread count with plain `Instant`
/// timing and writes `BENCH_parallel.json` at the workspace root.
fn emit_json(_c: &mut Criterion) {
    let data = search_dataset();
    let search_times: Vec<(usize, f64)> =
        THREAD_COUNTS.iter().map(|&t| (t, wall_clock(t, 3, || run_search(&data)))).collect();

    let (scores, errors, fractions) = sweep_inputs();
    let sweep_times: Vec<(usize, f64)> = THREAD_COUNTS
        .iter()
        .map(|&t| (t, wall_clock(t, 5, || run_sweep(&scores, &errors, &fractions))))
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"available_parallelism\": {},\n  \"workloads\": [\n{},\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        json_workload("topology_search", &search_times),
        json_workload("fig10_sweep", &sweep_times),
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_parallel.json");
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    println!("wrote {}", path.display());
    print!("{json}");
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_topology_search, bench_fig10_sweep, emit_json
}
criterion_main!(benches);
