//! Cost of model-zoo routing: the per-invocation router decision (a
//! linear predict per tier until one fits the bar) and the end-to-end
//! overhead of a zoo-routed stream against the single-model runtime it
//! replaces — the router must stay far below one accelerator invocation
//! for tiered serving to pay for itself.

use criterion::{criterion_group, criterion_main, Criterion};
use rumba_accel::CheckerUnit;
use rumba_apps::{kernel_by_name, Split};
use rumba_core::cache::TrainedModelCache;
use rumba_core::runtime::{RumbaSystem, RuntimeConfig};
use rumba_core::trainer::{train_app, OfflineConfig};
use rumba_core::tuner::{Tuner, TuningMode};
use rumba_core::zoo::train_zoo_with_cache;
use std::hint::black_box;

fn bench_zoo(c: &mut Criterion) {
    let kernel = kernel_by_name("gaussian").expect("didactic kernel");
    let cfg = OfflineConfig::default();
    let app = train_app(kernel.as_ref(), &cfg).expect("training succeeds");
    let zoo = train_zoo_with_cache(kernel.as_ref(), &app, &cfg, 3, &TrainedModelCache::disabled())
        .expect("zoo training succeeds");
    let test = kernel.generate(Split::Test, 42);

    let mut group = c.benchmark_group("model_zoo");
    // The pure router decision, amortized over the test split: one
    // linear predict per tier until a tier meets the bar.
    group.bench_function("route_per_invocation", |b| {
        b.iter(|| {
            let mut sum = 0usize;
            for i in 0..test.len() {
                sum += zoo.route(black_box(test.input(i)), black_box(0.05));
            }
            black_box(sum)
        });
    });

    let build = || {
        RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree.clone())),
            Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, 0.05).expect("valid"),
            RuntimeConfig::default(),
        )
        .expect("valid config")
    };
    group.bench_function("single_model_stream", |b| {
        b.iter(|| {
            let mut system = build();
            black_box(system.run(kernel.as_ref(), &test).expect("run succeeds"))
        });
    });
    group.bench_function("zoo_routed_stream", |b| {
        b.iter(|| {
            let mut system = build();
            system.attach_zoo(zoo.clone(), 0.05).expect("zoo attaches");
            black_box(system.run(kernel.as_ref(), &test).expect("run succeeds"))
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_zoo
}
criterion_main!(benches);
