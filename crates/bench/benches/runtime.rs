//! End-to-end throughput of the online Rumba system: 2 000 invocations of
//! detection + selective recovery + merging + tuning on the Gaussian
//! kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use rumba_accel::CheckerUnit;
use rumba_apps::{kernel_by_name, Split};
use rumba_core::runtime::{RumbaSystem, RuntimeConfig};
use rumba_core::trainer::{train_app, OfflineConfig};
use rumba_core::tuner::{Tuner, TuningMode};
use std::hint::black_box;

fn bench_runtime(c: &mut Criterion) {
    let kernel = kernel_by_name("gaussian").expect("didactic kernel");
    let app = train_app(kernel.as_ref(), &OfflineConfig::default()).expect("training succeeds");
    let test = kernel.generate(Split::Test, 42);

    let mut group = c.benchmark_group("online_system");
    group.bench_function("run_2000_invocations", |b| {
        b.iter(|| {
            let mut system = RumbaSystem::new(
                app.rumba_npu.clone(),
                CheckerUnit::new(Box::new(app.tree.clone())),
                Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, 0.05).expect("valid"),
                RuntimeConfig::default(),
            )
            .expect("valid config");
            black_box(system.run(kernel.as_ref(), &test).expect("run succeeds"))
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_runtime
}
criterion_main!(benches);
