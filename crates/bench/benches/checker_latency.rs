//! Wall-clock latency of one checker prediction for each light-weight
//! error-prediction method — the software analogue of Figure 17's "the
//! checker always finishes before the accelerator".

use criterion::{criterion_group, criterion_main, Criterion};
use rumba_predict::{EmaDetector, ErrorEstimator, EvpErrors, LinearErrors, TreeErrors, TreeParams};
use std::hint::black_box;

fn training_rows(dim: usize, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..dim).map(|j| ((i * 31 + j * 17) % 100) as f64 / 100.0).collect())
        .collect();
    let errors: Vec<f64> =
        rows.iter().map(|r| if r[0] > 0.7 { 0.5 } else { 0.02 + r[dim - 1] * 0.01 }).collect();
    (rows, errors)
}

fn bench_checkers(c: &mut Criterion) {
    let dim = 9; // sobel-sized input
    let (rows, errors) = training_rows(dim, 2_000);
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let exact: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0] * 0.5]).collect();
    let exact_refs: Vec<&[f64]> = exact.iter().map(Vec::as_slice).collect();

    let mut linear = LinearErrors::train(&refs, &errors, 1e-6).expect("fits");
    let mut tree = TreeErrors::train(&refs, &errors, &TreeParams::default()).expect("fits");
    let mut ema = EmaDetector::new(8, 1).expect("valid");
    let mut evp = EvpErrors::train(&refs, &exact_refs, 1e-6).expect("fits");

    let input = rows[1_000].clone();
    let approx = [0.4];

    let mut group = c.benchmark_group("checker_predict");
    group.bench_function("linearErrors", |b| {
        b.iter(|| black_box(linear.estimate(black_box(&input), &approx)));
    });
    group.bench_function("treeErrors", |b| {
        b.iter(|| black_box(tree.estimate(black_box(&input), &approx)));
    });
    group.bench_function("EMA", |b| {
        b.iter(|| black_box(ema.estimate(black_box(&input), &approx)));
    });
    group.bench_function("EVP", |b| {
        b.iter(|| black_box(evp.estimate(black_box(&input), &approx)));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_checkers
}
criterion_main!(benches);
