//! The flat matrix engine vs the per-sample path: forward throughput at
//! batch sizes 1/16/64/256 plus the zero-allocation steady-state probe.
//! Before timing anything the bench asserts the batched rows are
//! bit-identical to per-sample invocations, then measures both paths with
//! wall-clock timing and counts heap allocations across reused-workspace
//! batch invocations (the contract is zero after warmup on the serial
//! path). Results land in `BENCH_matrix.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use rumba_accel::{Npu, NpuParams};
use rumba_nn::{
    Activation, Matrix, MatrixView, Mlp, NnDataset, Normalizer, Scratch, SimdMode, TrainParams,
    TrainedModel,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Wraps the system allocator with an allocation counter so the
/// zero-allocation claim is measured, not asserted on faith.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BATCH_SIZES: [usize; 4] = [1, 16, 64, 256];
// Paper-scale topology (the benchmark kernels run 1->2->1 up to 9->8->1):
// at these sizes the per-sample path's allocations are the dominant cost,
// which is exactly what the flat engine removes.
const TOPOLOGY: [usize; 3] = [2, 4, 1];
// Wider layer for the SIMD series: at paper scale the transcendental
// activation dominates and hides the matmul, so the scalar-vs-vector
// ratio is measured where the row-lane kernels actually do the work.
const SIMD_TOPOLOGY: [usize; 3] = [24, 48, 8];

fn accelerator() -> Npu {
    let data = NnDataset::from_fn(TOPOLOGY[0], TOPOLOGY[2], 256, |i, x, y| {
        x[0] = (i % 89) as f64 / 89.0;
        x[1] = (i % 31) as f64 / 31.0;
        y[0] = ((x[0] * 5.0).sin() * x[1]).mul_add(0.4, 0.5);
    })
    .expect("valid dims");
    let params = TrainParams { epochs: 4, ..TrainParams::default() };
    let model = TrainedModel::fit(&TOPOLOGY, Activation::Sigmoid, &data, &params, 42)
        .expect("training succeeds");
    Npu::new(model, NpuParams::default())
}

fn inputs(n: usize) -> Vec<f64> {
    (0..n * TOPOLOGY[0]).map(|i| (i % 101) as f64 / 101.0 - 0.3).collect()
}

fn run_per_sample(npu: &Npu, view: MatrixView<'_>, sink: &mut Vec<f64>) {
    sink.clear();
    for i in 0..view.rows() {
        sink.extend(npu.invoke(view.row(i)).expect("width matches").outputs);
    }
}

fn run_batched(npu: &Npu, view: MatrixView<'_>, scratch: &mut Scratch, out: &mut Matrix) {
    npu.invoke_batch(view, scratch, out).expect("width matches");
}

/// The bit-exactness gate: every batched row must equal its per-sample
/// invocation exactly, at every benchmarked batch size.
fn assert_bit_identical(npu: &Npu) {
    let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
    for &n in &BATCH_SIZES {
        let flat = inputs(n);
        let view = MatrixView::new(&flat, n, TOPOLOGY[0]);
        run_batched(npu, view, &mut scratch, &mut out);
        for i in 0..n {
            let serial = npu.invoke(view.row(i)).expect("width matches").outputs;
            let batch: Vec<u64> = out.row(i).iter().map(|x| x.to_bits()).collect();
            let row: Vec<u64> = serial.iter().map(|x| x.to_bits()).collect();
            assert_eq!(batch, row, "batch {n} row {i}");
        }
    }
}

/// Allocations per `invoke_batch` with reused workspaces after warmup, on
/// the serial path (the steady state the runtime's hot loop sits in).
fn steady_state_allocations(npu: &Npu) -> u64 {
    rumba_parallel::set_thread_override(Some(1));
    let flat = inputs(256);
    let view = MatrixView::new(&flat, 256, TOPOLOGY[0]);
    let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
    run_batched(npu, view, &mut scratch, &mut out); // warmup: buffers grow once
    let reps = 64u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..reps {
        run_batched(npu, view, &mut scratch, &mut out);
        black_box(out.as_slice());
    }
    let total = ALLOCATIONS.load(Ordering::Relaxed) - before;
    rumba_parallel::set_thread_override(None);
    total / reps
}

/// The wide model for the SIMD series (normalizers fitted on the input
/// distribution so the fixed-point path quantizes sensible values).
fn simd_model() -> TrainedModel {
    let mlp = Mlp::new(&SIMD_TOPOLOGY, Activation::Relu, 9).expect("valid topology");
    let rows = simd_inputs(64);
    let out_rows: Vec<f64> = (0..64 * SIMD_TOPOLOGY[2]).map(|i| (i % 17) as f64 / 17.0).collect();
    let input_norm = Normalizer::fit(rows.chunks(SIMD_TOPOLOGY[0]), SIMD_TOPOLOGY[0], 0.0, 1.0);
    let output_norm =
        Normalizer::fit(out_rows.chunks(SIMD_TOPOLOGY[2]), SIMD_TOPOLOGY[2], 0.0, 1.0);
    TrainedModel::from_parts(mlp, input_norm, output_norm)
}

fn simd_inputs(n: usize) -> Vec<f64> {
    (0..n * SIMD_TOPOLOGY[0]).map(|i| (i % 113) as f64 / 113.0 - 0.4).collect()
}

/// The SIMD gate: forced-vector and forced-scalar batches must be
/// bit-identical at every benchmarked size, and the fixed-point batch
/// must match its serial integer reference.
fn assert_simd_bit_identical(model: &TrainedModel) {
    let fixed = model.prepare_fixed(12);
    let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
    let (mut scratch2, mut out2) = (Scratch::new(), Matrix::default());
    for &n in &BATCH_SIZES {
        let flat = simd_inputs(n);
        let view = MatrixView::new(&flat, n, SIMD_TOPOLOGY[0]);
        rumba_nn::set_simd_override(Some(SimdMode::Off));
        model.predict_batch(view, &mut scratch, &mut out).expect("width matches");
        rumba_nn::set_simd_override(Some(SimdMode::On));
        model.predict_batch(view, &mut scratch2, &mut out2).expect("width matches");
        let bits = |m: &Matrix| m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&out), bits(&out2), "scalar vs simd, batch {n}");
        fixed.predict_batch(view, &mut scratch2, &mut out2).expect("width matches");
        for i in 0..n {
            let serial = fixed.predict(view.row(i)).expect("width matches");
            let row: Vec<u64> = out2.row(i).iter().map(|x| x.to_bits()).collect();
            let refr: Vec<u64> = serial.iter().map(|x| x.to_bits()).collect();
            assert_eq!(row, refr, "fixed batch {n} row {i}");
        }
    }
    rumba_nn::set_simd_override(None);
}

/// Steady-state allocations for the new kernels: the SIMD batched float
/// path and the fixed-point batched path, with reused workspaces on one
/// thread, must allocate nothing after warmup (the lane-transpose and
/// quantization buffers are grow-only).
fn steady_state_allocations_simd(model: &TrainedModel) -> (u64, u64) {
    rumba_parallel::set_thread_override(Some(1));
    rumba_nn::set_simd_override(Some(SimdMode::On));
    let flat = simd_inputs(256);
    let view = MatrixView::new(&flat, 256, SIMD_TOPOLOGY[0]);
    let fixed = model.prepare_fixed(12);
    let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
    let reps = 64u64;
    model.predict_batch(view, &mut scratch, &mut out).expect("width matches");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..reps {
        model.predict_batch(view, &mut scratch, &mut out).expect("width matches");
        black_box(out.as_slice());
    }
    let float_allocs = (ALLOCATIONS.load(Ordering::Relaxed) - before) / reps;
    fixed.predict_batch(view, &mut scratch, &mut out).expect("width matches");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..reps {
        fixed.predict_batch(view, &mut scratch, &mut out).expect("width matches");
        black_box(out.as_slice());
    }
    let fixed_allocs = (ALLOCATIONS.load(Ordering::Relaxed) - before) / reps;
    rumba_nn::set_simd_override(None);
    rumba_parallel::set_thread_override(None);
    (float_allocs, fixed_allocs)
}

fn best_of<R>(reps: usize, mut work: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(work());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench_forward_paths(c: &mut Criterion) {
    let npu = accelerator();
    assert_bit_identical(&npu);

    rumba_parallel::set_thread_override(Some(1));
    let mut group = c.benchmark_group("matrix_forward");
    for &n in &BATCH_SIZES {
        let flat = inputs(n);
        let view = MatrixView::new(&flat, n, TOPOLOGY[0]);
        let mut sink = Vec::new();
        group.bench_function(&format!("per_sample_{n}"), |b| {
            b.iter(|| run_per_sample(&npu, view, &mut sink));
        });
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        group.bench_function(&format!("batched_{n}"), |b| {
            b.iter(|| run_batched(&npu, view, &mut scratch, &mut out));
        });
    }
    group.finish();
    rumba_parallel::set_thread_override(None);
}

fn bench_simd_paths(c: &mut Criterion) {
    let model = simd_model();
    assert_simd_bit_identical(&model);
    let fixed = model.prepare_fixed(12);

    rumba_parallel::set_thread_override(Some(1));
    let mut group = c.benchmark_group("matrix_simd");
    for &n in &BATCH_SIZES {
        let flat = simd_inputs(n);
        let view = MatrixView::new(&flat, n, SIMD_TOPOLOGY[0]);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        rumba_nn::set_simd_override(Some(SimdMode::Off));
        group.bench_function(&format!("scalar_{n}"), |b| {
            b.iter(|| model.predict_batch(view, &mut scratch, &mut out).expect("width matches"));
        });
        rumba_nn::set_simd_override(Some(SimdMode::On));
        group.bench_function(&format!("simd_{n}"), |b| {
            b.iter(|| model.predict_batch(view, &mut scratch, &mut out).expect("width matches"));
        });
        group.bench_function(&format!("fixed_{n}"), |b| {
            b.iter(|| fixed.predict_batch(view, &mut scratch, &mut out).expect("width matches"));
        });
        rumba_nn::set_simd_override(None);
    }
    group.finish();
    rumba_parallel::set_thread_override(None);
}

/// Wall-clock comparison plus the allocation probe, written to
/// `BENCH_matrix.json`.
fn emit_json(_c: &mut Criterion) {
    let npu = accelerator();
    assert_bit_identical(&npu);
    let allocs = steady_state_allocations(&npu);
    assert_eq!(allocs, 0, "steady-state invoke_batch must not allocate");
    let model = simd_model();
    assert_simd_bit_identical(&model);
    let (simd_allocs, fixed_allocs) = steady_state_allocations_simd(&model);
    assert_eq!(simd_allocs, 0, "steady-state SIMD predict_batch must not allocate");
    assert_eq!(fixed_allocs, 0, "steady-state fixed-point predict_batch must not allocate");

    rumba_parallel::set_thread_override(Some(1));
    let mut rows = Vec::new();
    for &n in &BATCH_SIZES {
        let flat = inputs(n);
        let view = MatrixView::new(&flat, n, TOPOLOGY[0]);
        // Repeat each measured call enough times that tiny batches are
        // timed above clock resolution.
        let inner = (4096 / n.max(1)).max(1);
        let mut sink = Vec::new();
        let per_sample = best_of(30, || {
            for _ in 0..inner {
                run_per_sample(&npu, view, &mut sink);
            }
        }) / inner as f64;
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        run_batched(&npu, view, &mut scratch, &mut out);
        let batched = best_of(30, || {
            for _ in 0..inner {
                run_batched(&npu, view, &mut scratch, &mut out);
            }
        }) / inner as f64;
        rows.push(format!(
            "    {{\"batch_size\": {n}, \"per_sample_seconds\": {per_sample:.9}, \
             \"batched_seconds\": {batched:.9}, \"speedup\": {:.3}}}",
            per_sample / batched
        ));
    }
    // The SIMD series: forced-scalar vs forced-vector batched forward on
    // the wide topology, plus the i16/i32 fixed-point path, all serial so
    // the ratio isolates the kernels.
    let fixed = model.prepare_fixed(12);
    let mut simd_rows = Vec::new();
    for &n in &BATCH_SIZES {
        let flat = simd_inputs(n);
        let view = MatrixView::new(&flat, n, SIMD_TOPOLOGY[0]);
        let inner = (4096 / n.max(1)).max(1);
        let (mut scratch, mut out) = (Scratch::new(), Matrix::default());
        rumba_nn::set_simd_override(Some(SimdMode::Off));
        model.predict_batch(view, &mut scratch, &mut out).expect("width matches");
        let scalar = best_of(30, || {
            for _ in 0..inner {
                model.predict_batch(view, &mut scratch, &mut out).expect("width matches");
            }
        }) / inner as f64;
        rumba_nn::set_simd_override(Some(SimdMode::On));
        model.predict_batch(view, &mut scratch, &mut out).expect("width matches");
        let simd = best_of(30, || {
            for _ in 0..inner {
                model.predict_batch(view, &mut scratch, &mut out).expect("width matches");
            }
        }) / inner as f64;
        fixed.predict_batch(view, &mut scratch, &mut out).expect("width matches");
        let fixed_point = best_of(30, || {
            for _ in 0..inner {
                fixed.predict_batch(view, &mut scratch, &mut out).expect("width matches");
            }
        }) / inner as f64;
        rumba_nn::set_simd_override(None);
        simd_rows.push(format!(
            "    {{\"batch_size\": {n}, \"scalar_seconds\": {scalar:.9}, \
             \"simd_seconds\": {simd:.9}, \"simd_speedup\": {:.3}, \
             \"fixed_point_seconds\": {fixed_point:.9}}}",
            scalar / simd
        ));
    }
    rumba_parallel::set_thread_override(None);

    // Record what `--simd 1` actually dispatches on this machine (the
    // kernels fall back to scalar where AVX2/NEON is absent).
    rumba_nn::set_simd_override(Some(SimdMode::On));
    let isa = rumba_nn::active_isa().name();
    rumba_nn::set_simd_override(None);

    let json = format!(
        "{{\n  \"bench\": \"matrix\",\n  \"topology\": {:?},\n  \
         \"steady_state_allocations_per_invoke_batch\": {allocs},\n  \"batch\": [\n{}\n  ],\n  \
         \"simd_isa\": \"{isa}\",\n  \"simd_topology\": {:?},\n  \
         \"steady_state_allocations_simd\": {simd_allocs},\n  \
         \"steady_state_allocations_fixed_point\": {fixed_allocs},\n  \"simd\": [\n{}\n  ]\n}}\n",
        TOPOLOGY,
        rows.join(",\n"),
        SIMD_TOPOLOGY,
        simd_rows.join(",\n"),
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_matrix.json");
    std::fs::write(&path, &json).expect("write BENCH_matrix.json");
    println!("wrote {}", path.display());
    print!("{json}");
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_forward_paths, bench_simd_paths, emit_json
}
criterion_main!(benches);
