//! Admission control and backpressure: bounded queues, shed-vs-block
//! policy behaviour, rejection accounting, and the invariant that the
//! observed queue depth never exceeds the configured bound — even when
//! `QueuePressure` faults shrink the effective capacity underneath the
//! tenant.

use proptest::prelude::*;
use rumba_apps::{kernel_by_name, Split};
use rumba_core::event_sim::QueueConfig;
use rumba_core::tuner::TuningMode;
use rumba_faults::{FaultModel, FaultPlan};
use rumba_serve::{AdmissionPolicy, ServeRuntime, SessionConfig, Submit};

fn config(capacity: usize, admission: AdmissionPolicy) -> SessionConfig {
    SessionConfig {
        seed: 42,
        window: 8,
        queue: QueueConfig { input_capacity: capacity, ..QueueConfig::default() },
        admission,
        mode: TuningMode::TargetQuality { toq: 0.9 },
        ..SessionConfig::default()
    }
}

fn payloads(n: usize) -> Vec<Vec<f64>> {
    let kernel = kernel_by_name("gaussian").unwrap();
    let data = kernel.generate(Split::Test, 42);
    (0..n).map(|i| data.input(i % data.len()).to_vec()).collect()
}

#[test]
fn shed_policy_rejects_exactly_the_overflow_and_counts_it() {
    let mut rt = ServeRuntime::new();
    rt.open("t", config(4, AdmissionPolicy::Shed)).unwrap();
    let inputs = payloads(7);

    let mut accepted = 0;
    let mut shed = 0;
    for input in &inputs {
        match rt.submit("t", input).unwrap() {
            Submit::Accepted { depth, blocked } => {
                accepted += 1;
                assert!(!blocked, "shed policy never blocks");
                assert!(depth <= 4, "depth {depth} exceeded the bound");
            }
            Submit::Shed => shed += 1,
        }
    }
    assert_eq!((accepted, shed), (4, 3));

    let stats = rt.session("t").unwrap().stats();
    assert_eq!(stats.shed, 3, "every rejection is counted");
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.queue_high_water, 4);

    // The accepted requests still flow through untouched.
    let results = rt.drain("t").unwrap();
    assert_eq!(results.len(), 4);
    assert!(results.iter().all(|r| r.output.iter().all(|v| v.is_finite())));
    // Capacity is available again after the drain.
    assert!(matches!(rt.submit("t", &inputs[0]).unwrap(), Submit::Accepted { depth: 1, .. }));
}

#[test]
fn block_policy_drains_instead_of_rejecting_and_never_exceeds_the_bound() {
    let mut rt = ServeRuntime::new();
    rt.open("t", config(3, AdmissionPolicy::Block)).unwrap();

    for input in &payloads(10) {
        match rt.submit("t", input).unwrap() {
            Submit::Accepted { depth, .. } => assert!(depth <= 3),
            Submit::Shed => panic!("block policy must never shed"),
        }
    }
    let stats = rt.session("t").unwrap().stats();
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.submitted, 10, "every request is eventually admitted");
    assert_eq!(stats.blocked, 3, "each full queue forces one blocking drain (at 3, 6 and 9)");
    assert!(stats.queue_high_water <= 3, "the bound held throughout");

    let (final_stats, results) = rt.close("t").unwrap();
    assert_eq!(final_stats.processed, 10);
    assert_eq!(results.len(), 10);
    // Blocking drains preserve stream order.
    let indices: Vec<usize> = results.iter().map(|r| r.index).collect();
    assert_eq!(indices, (0..10).collect::<Vec<_>>());
}

#[test]
fn queue_pressure_faults_shrink_capacity_but_never_break_the_bound() {
    let capacity = 8;
    let mut cfg = config(capacity, AdmissionPolicy::Shed);
    // From invocation 0, pressure steals 6 of the 8 slots.
    cfg.faults = Some(FaultPlan::new(7).with(FaultModel::QueuePressure { start: 0, slots: 6 }));
    let mut rt = ServeRuntime::new();
    rt.open("t", cfg).unwrap();

    let mut accepted = 0;
    for input in &payloads(6) {
        let depth = rt.session("t").unwrap().queue_depth();
        let effective = rt.session("t").unwrap().effective_capacity();
        assert_eq!(effective, 2, "8-slot queue under 6 slots of pressure");
        assert!(depth <= effective, "observed depth {depth} above the pressured bound");
        if matches!(rt.submit("t", input).unwrap(), Submit::Accepted { .. }) {
            accepted += 1;
        }
    }
    assert_eq!(accepted, 2, "pressure sheds what no longer fits");
    let stats = rt.session("t").unwrap().stats();
    assert_eq!(stats.shed, 4);
    assert!(stats.queue_high_water <= capacity);
}

#[test]
fn pressured_block_sessions_degrade_to_lockstep_service_not_deadlock() {
    let mut cfg = config(4, AdmissionPolicy::Block);
    // Pressure exceeding the capacity clamps the effective bound to 1.
    cfg.faults = Some(FaultPlan::new(7).with(FaultModel::QueuePressure { start: 0, slots: 99 }));
    let mut rt = ServeRuntime::new();
    rt.open("t", cfg).unwrap();

    for input in &payloads(5) {
        assert!(matches!(rt.submit("t", input).unwrap(), Submit::Accepted { depth: 1, .. }));
    }
    let (stats, results) = rt.close("t").unwrap();
    assert_eq!(stats.processed, 5);
    assert_eq!(stats.blocked, 4, "every submission after the first forces a drain");
    assert_eq!(results.len(), 5);
}

#[test]
fn back_pressured_drains_are_deterministic() {
    // A tiny recovery queue plus a fault plan aggressive enough to fire
    // the checker constantly makes the event-level pipeline stall; two
    // identical runs must agree on every counter bit.
    let run = || {
        let mut cfg = config(32, AdmissionPolicy::Shed);
        cfg.queue.recovery_capacity = 2;
        cfg.faults = Some(FaultPlan::new(3).with(FaultModel::NonFinite { rate: 0.6 }));
        let mut rt = ServeRuntime::new();
        rt.open("t", cfg).unwrap();
        for input in &payloads(32) {
            rt.submit("t", input).unwrap();
        }
        rt.close("t").unwrap()
    };
    let (a_stats, a_results) = run();
    let (b_stats, b_results) = run();
    assert!(a_stats.back_pressured_drains > 0, "the stall scenario must actually stall");
    assert!(a_stats.recovery_high_water >= 2, "the recovery queue must actually fill");
    assert_eq!(a_stats, b_stats);
    let bits = |rs: &[rumba_serve::SessionResult]| -> Vec<u64> {
        rs.iter().flat_map(|r| r.output.iter().map(|v| v.to_bits())).collect::<Vec<_>>()
    };
    assert_eq!(bits(&a_results), bits(&b_results));
}

proptest! {
    /// For every capacity, request volume, policy and pressure level: the
    /// queue bound holds at all times, and accounting is conserved —
    /// every request is either admitted (and eventually processed) or
    /// counted as shed.
    #[test]
    fn admission_accounting_is_conserved_and_bounded(
        capacity in 1usize..10,
        requests in 0usize..24,
        block in proptest::bool::ANY,
        pressure in 0usize..12,
    ) {
        let policy = if block { AdmissionPolicy::Block } else { AdmissionPolicy::Shed };
        let mut cfg = config(capacity, policy);
        if pressure > 0 {
            cfg.faults =
                Some(FaultPlan::new(11).with(FaultModel::QueuePressure { start: 0, slots: pressure }));
        }
        let mut rt = ServeRuntime::new();
        rt.open("t", cfg).unwrap();
        let mut shed = 0u64;
        for input in &payloads(requests) {
            match rt.submit("t", input).unwrap() {
                Submit::Accepted { depth, .. } => prop_assert!(depth <= capacity),
                Submit::Shed => {
                    prop_assert!(!block, "block never sheds");
                    shed += 1;
                }
            }
            let depth = rt.session("t").unwrap().queue_depth();
            prop_assert!(depth <= capacity, "depth {} above configured bound {}", depth, capacity);
        }
        let (stats, results) = rt.close("t").unwrap();
        prop_assert_eq!(stats.shed, shed);
        prop_assert_eq!(stats.processed + stats.shed, requests as u64);
        prop_assert_eq!(results.len() as u64, stats.processed);
        prop_assert!(stats.queue_high_water <= capacity);
    }
}
