//! Model-zoo serving conformance: routing a session's invocations across
//! a quality/energy ladder must not weaken any serving promise.
//!
//! * Router dispatch lives on the deterministic quality path: the same
//!   zoo-enabled script is byte-identical at one and four workers, scalar
//!   and vector kernels, in-process and over a sharded TCP server.
//! * A zoo of size 1 is the pre-zoo single-model path byte for byte —
//!   the top tier carries the app's own accelerator and a one-tier zoo
//!   has no routing choice.
//! * Queue-pressure degradation slides traffic toward cheaper tiers
//!   *before* shedding and never violates the session's TOQ over the
//!   seeded trace.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use proptest::prelude::*;
use rumba_apps::{kernel_by_name, Split};
use rumba_core::event_sim::QueueConfig;
use rumba_core::tuner::TuningMode;
use rumba_faults::{FaultModel, FaultPlan};
use rumba_nn::NnDataset;
use rumba_obs::json::JsonWriter;
use rumba_serve::protocol::handle_line;
use rumba_serve::transport::NetServer;
use rumba_serve::{AdmissionPolicy, CheckerKind, ServeRuntime, SessionConfig};

fn workload() -> &'static NnDataset {
    static DATA: OnceLock<NnDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        let kernel = kernel_by_name("gaussian").unwrap();
        kernel.generate(Split::Test, 42)
    })
}

/// An `open` request for a zoo-routed session; `tiers == 0` opens the
/// plain single-model session with the byte-identical remaining config.
fn open_zoo_req(name: &str, tiers: usize) -> String {
    let zoo = if tiers > 0 { format!(",\"zoo\":{tiers}") } else { String::new() };
    format!(
        "{{\"op\":\"open\",\"session\":\"{name}\",\"kernel\":\"gaussian\",\"seed\":42,\
         \"checker\":\"tree\",\"mode\":\"toq\",\"toq\":0.95,\"window\":8,\"queue\":16,\
         \"admission\":\"shed\"{zoo}}}"
    )
}

fn invoke_req(name: &str, input: &[f64]) -> String {
    let mut w = JsonWriter::object("request");
    w.string("op", "invoke").string("session", name).floats("input", input);
    w.finish().replacen("\"type\":\"request\",", "", 1)
}

fn drain_req(name: &str) -> String {
    format!("{{\"op\":\"drain\",\"session\":\"{name}\"}}")
}

/// The session's request stream: `rows[k]` picks the workload row of
/// request `k`, `drains[k]` inserts a drain after it, and the script
/// always ends with stats + close so the full quality trajectory (fires,
/// threshold, mean error) lands in the response stream.
fn zoo_script(
    name: &str,
    tiers: usize,
    rows: &[usize],
    drains: &[bool],
) -> Vec<(String, &'static str)> {
    let data = workload();
    let mut script = vec![(open_zoo_req(name, tiers), "open")];
    for (k, &row) in rows.iter().enumerate() {
        script.push((invoke_req(name, data.input(row % data.len())), "invoke"));
        if drains.get(k).copied().unwrap_or(false) {
            script.push((drain_req(name), "drain"));
        }
    }
    script.push((format!("{{\"op\":\"stats\",\"session\":\"{name}\"}}"), "stats"));
    script.push((format!("{{\"op\":\"close\",\"session\":\"{name}\"}}"), "close"));
    script
}

/// Runs `script` through an in-process runtime, collecting every response
/// line.
fn replay(script: &[(String, &'static str)]) -> Vec<String> {
    let mut rt = ServeRuntime::new();
    let mut out = Vec::new();
    for (line, _) in script {
        let (lines, _) = handle_line(&mut rt, line);
        out.extend(lines);
    }
    out
}

/// One lockstep client connection (the `net.rs` idiom): sends a request
/// line and reads the complete response group.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Self { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream }
    }

    fn request(&mut self, line: &str, op: &str) -> Vec<String> {
        self.writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        self.writer.flush().unwrap();
        let mut lines: Vec<String> = Vec::new();
        loop {
            let mut buf = String::new();
            if self.reader.read_line(&mut buf).unwrap() == 0 {
                return lines;
            }
            let line = buf.trim_end_matches(['\n', '\r']).to_owned();
            let first_is_error = lines.is_empty() && line.starts_with("{\"type\":\"error\"");
            let terminal = match op {
                "drain" => line.starts_with("{\"type\":\"ack\",\"op\":\"drain\""),
                "close" => line.starts_with("{\"type\":\"closed\""),
                "shutdown" => line.starts_with("{\"type\":\"ack\",\"op\":\"shutdown\""),
                _ => true,
            };
            lines.push(line);
            if terminal || first_is_error {
                return lines;
            }
        }
    }
}

/// The seeded trace the invariance tests share: enough rows to cross
/// several tuning windows, drains at irregular points so batch shapes
/// vary, and a three-tier ladder so the router actually has choices.
fn reference_script() -> Vec<(String, &'static str)> {
    let rows: Vec<usize> = (0..24).map(|k| (k * 37 + 11) % 512).collect();
    let drains: Vec<bool> = (0..24).map(|k| k % 5 == 3).collect();
    zoo_script("t0", 3, &rows, &drains)
}

/// Router dispatch is pure input × bar: the same zoo-routed script
/// produces byte-identical response streams at one and four workers,
/// scalar and vector kernels, and over a sharded TCP server at one and
/// two shards.
#[test]
fn zoo_routing_is_thread_simd_and_shard_invariant() {
    use rumba_nn::SimdMode;

    let script = reference_script();
    let mut traces = Vec::new();
    for threads in [1usize, 4] {
        for mode in [SimdMode::Off, SimdMode::On] {
            rumba_parallel::set_thread_override(Some(threads));
            rumba_nn::set_simd_override(Some(mode));
            traces.push(replay(&script));
        }
    }
    rumba_nn::set_simd_override(None);
    rumba_parallel::set_thread_override(None);
    for other in &traces[1..] {
        assert_eq!(&traces[0], other, "router dispatch moved across threads/SIMD");
    }
    // The invariance is not vacuous: the trace really routed and fired.
    assert!(traces[0].iter().any(|l| l.starts_with("{\"type\":\"result\"")), "no results");

    for shards in [1usize, 2] {
        let server = NetServer::bind_tcp("127.0.0.1:0", shards).unwrap();
        let addr = server.addr().to_owned();
        let mut client = Client::connect(&addr);
        let mut observed = Vec::new();
        for (line, op) in &script {
            observed.extend(client.request(line, op));
        }
        client.request("{\"op\":\"shutdown\"}", "shutdown");
        drop(client);
        server.join().unwrap();
        assert_eq!(observed, traces[0], "router dispatch moved over TCP at {shards} shard(s)");
    }
}

proptest! {
    /// Over arbitrary request streams and drain points, zoo-routed
    /// serving is bitwise identical at every thread-count × SIMD-mode
    /// combination — per-invocation tier decisions, outputs, fires and
    /// the closing stats all ride the deterministic quality path.
    #[test]
    fn zoo_dispatch_is_bitwise_identical_across_threads_and_simd(
        rows in proptest::collection::vec(0usize..512, 6..14),
        drains in proptest::collection::vec(proptest::bool::ANY, 14),
    ) {
        use rumba_nn::SimdMode;

        let script = zoo_script("t0", 2, &rows, &drains);
        let mut traces = Vec::new();
        for threads in [1usize, 4] {
            for mode in [SimdMode::Off, SimdMode::On] {
                rumba_parallel::set_thread_override(Some(threads));
                rumba_nn::set_simd_override(Some(mode));
                traces.push(replay(&script));
            }
        }
        rumba_nn::set_simd_override(None);
        rumba_parallel::set_thread_override(None);
        for other in &traces[1..] {
            prop_assert_eq!(&traces[0], other);
        }
    }

    /// A zoo of size 1 is the pre-zoo path byte for byte: the top tier
    /// reuses the app's own accelerator and a one-tier zoo has no routing
    /// choice, so the full response stream — outputs, fires, predicted
    /// errors, thresholds, closing stats — matches a zoo-less session
    /// exactly, over arbitrary request streams and drain points.
    #[test]
    fn a_zoo_of_one_is_byte_identical_to_the_pre_zoo_path(
        rows in proptest::collection::vec(0usize..512, 6..16),
        drains in proptest::collection::vec(proptest::bool::ANY, 16),
    ) {
        let plain = replay(&zoo_script("t0", 0, &rows, &drains));
        let single = replay(&zoo_script("t0", 1, &rows, &drains));
        prop_assert_eq!(single, plain);
    }
}

/// Config for the queue-pressure degradation trace: a three-tier zoo on a
/// small queue, with a fault plan that steals most of the queue partway
/// through the stream.
fn pressured_config(pressured: bool) -> SessionConfig {
    let mut config = SessionConfig {
        kernel: "gaussian".to_owned(),
        seed: 42,
        checker: CheckerKind::Tree,
        mode: TuningMode::TargetQuality { toq: 0.98 },
        window: 8,
        queue: QueueConfig { input_capacity: 8, ..QueueConfig::default() },
        admission: AdmissionPolicy::Shed,
        zoo: 3,
        ..SessionConfig::default()
    };
    if pressured {
        config.faults =
            Some(FaultPlan::new(7).with(FaultModel::QueuePressure { start: 16, slots: 6 }));
    }
    config
}

/// Runs the seeded degradation trace: submit 64 requests, draining every
/// time the queue rejects one (and every 8th otherwise), recording the
/// highest pressure rung the session reaches.
fn run_pressured_trace(pressured: bool) -> (u32, Vec<u64>, f64, u64) {
    let data = workload();
    let mut rt = ServeRuntime::new();
    rt.open("t", pressured_config(pressured)).unwrap();
    let mut peak_rung = 0u32;
    for k in 0..64usize {
        let input = data.input((k * 37 + 11) % data.len());
        let shed = matches!(rt.submit("t", input).unwrap(), rumba_serve::Submit::Shed);
        peak_rung = peak_rung.max(rt.session("t").unwrap().zoo_pressure());
        if shed || k % 8 == 7 {
            rt.drain("t").unwrap();
        }
    }
    let session = rt.session("t").unwrap();
    let tiers = session.stream_tiers().to_vec();
    let shed = session.stats().shed;
    let (stats, _results) = rt.close("t").unwrap();
    (peak_rung, tiers, stats.mean_error(), shed)
}

/// Queue pressure degrades service quality before it degrades
/// availability: full-queue events climb the zoo's pressure rungs, the
/// widened bar routes more traffic to cheaper tiers than the fault-free
/// run — and the whole degraded trace still lands inside the session's
/// TOQ budget, because the checker keeps vouching for every routed row.
#[test]
fn queue_pressure_degrades_to_cheaper_tiers_without_violating_the_toq() {
    let (calm_rung, calm_tiers, calm_error, _calm_shed) = run_pressured_trace(false);
    let (peak_rung, hot_tiers, hot_error, _hot_shed) = run_pressured_trace(true);

    assert_eq!(calm_rung, 0, "no pressure without the fault plan");
    assert!(peak_rung > 0, "the seeded trace must actually climb the pressure rungs");

    // Degradation shifted the mix toward the cheap end of the ladder: the
    // traffic-weighted mean tier (exact CPU = most expensive) drops under
    // pressure. Shares, not counts — the pressured queue sheds some
    // requests, so the two traces process different volumes.
    assert_eq!(calm_tiers.len(), 4, "3 model tiers + exact CPU");
    assert_eq!(hot_tiers.len(), 4);
    let mean_tier = |tiers: &[u64]| {
        let total: u64 = tiers.iter().sum();
        let weighted: u64 = tiers.iter().enumerate().map(|(t, &n)| t as u64 * n).sum();
        weighted as f64 / total as f64
    };
    assert!(
        mean_tier(&hot_tiers) < mean_tier(&calm_tiers),
        "pressure must route more traffic to cheaper tiers: calm {calm_tiers:?}, hot {hot_tiers:?}"
    );

    // Availability degraded last and quality never left the contract:
    // both traces hold the session's TOQ budget.
    let budget = 1.0 - 0.98;
    assert!(calm_error <= budget, "fault-free trace broke the TOQ: {calm_error} > {budget}");
    assert!(hot_error <= budget, "degraded trace broke the TOQ: {hot_error} > {budget}");
}
