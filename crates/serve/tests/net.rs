//! Sharded multi-client network serving: the conformance promises of the
//! TCP transport layered on the serving layer's determinism contract.
//!
//! * Multiplexing clients over a sharded TCP server changes *nothing*:
//!   each session's responses are bit-identical to its solo stream, and
//!   the full multi-client trace is byte-identical at any shard count.
//! * A `snapshot` → `restore` → continue run is bitwise identical to the
//!   uninterrupted run, including online checker state, armed fault
//!   plans and the watchdog — and restoring under a new name migrates a
//!   session to a different shard without perturbing its stream.
//! * Protocol error paths (malformed NDJSON, oversized lines, abrupt
//!   disconnects mid-line) cost exactly one connection-scoped error and
//!   never poison the shard or other clients.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use proptest::prelude::*;
use rumba_apps::{kernel_by_name, Split};
use rumba_nn::NnDataset;
use rumba_obs::json::{parse_object, JsonWriter, ObjectExt};
use rumba_serve::bench::{run_net_trace, run_trace, BenchConfig};
use rumba_serve::protocol::handle_line;
use rumba_serve::shard::shard_of;
use rumba_serve::transport::NetServer;
use rumba_serve::ServeRuntime;

fn workload() -> &'static NnDataset {
    static DATA: OnceLock<NnDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        let kernel = kernel_by_name("gaussian").unwrap();
        kernel.generate(Split::Test, 42)
    })
}

fn open_req(name: &str) -> String {
    format!(
        "{{\"op\":\"open\",\"session\":\"{name}\",\"kernel\":\"gaussian\",\"seed\":42,\
         \"checker\":\"ema\",\"mode\":\"toq\",\"toq\":0.9,\"window\":8,\"queue\":8,\
         \"admission\":\"shed\",\"faults\":\"non_finite=0.05\",\"fault_seed\":42,\
         \"watchdog\":true}}"
    )
}

fn invoke_req(name: &str, input: &[f64]) -> String {
    let mut w = JsonWriter::object("request");
    w.string("op", "invoke").string("session", name).floats("input", input);
    w.finish().replacen("\"type\":\"request\",", "", 1)
}

/// One lockstep client connection: sends a request line and reads the
/// complete response group (multi-line ops up to their terminal line).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Self { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).unwrap();
        self.writer.flush().unwrap();
    }

    fn read_group(&mut self, op: &str) -> Vec<String> {
        let mut lines: Vec<String> = Vec::new();
        loop {
            let mut buf = String::new();
            if self.reader.read_line(&mut buf).unwrap() == 0 {
                return lines;
            }
            let line = buf.trim_end_matches(['\n', '\r']).to_owned();
            let first_is_error = lines.is_empty() && line.starts_with("{\"type\":\"error\"");
            let terminal = match op {
                "drain" => line.starts_with("{\"type\":\"ack\",\"op\":\"drain\""),
                "close" => line.starts_with("{\"type\":\"closed\""),
                "shutdown" => line.starts_with("{\"type\":\"ack\",\"op\":\"shutdown\""),
                _ => true,
            };
            lines.push(line);
            if terminal || first_is_error {
                return lines;
            }
        }
    }

    fn request(&mut self, line: &str, op: &str) -> Vec<String> {
        self.send_raw(format!("{line}\n").as_bytes());
        self.read_group(op)
    }
}

/// The per-session op script the multi-client/solo comparison runs: the
/// session's own stream, independent of any other tenant.
fn session_script(name: &str, rows_base: usize) -> Vec<(String, &'static str)> {
    let data = workload();
    let mut script = vec![(open_req(name), "open")];
    for k in 0..12 {
        let row = (rows_base + k * 7) % data.len();
        script.push((invoke_req(name, data.input(row)), "invoke"));
        if k % 4 == 3 {
            script.push((format!("{{\"op\":\"drain\",\"session\":\"{name}\"}}"), "drain"));
        }
    }
    script.push((format!("{{\"op\":\"stats\",\"session\":\"{name}\"}}"), "stats"));
    script.push((format!("{{\"op\":\"close\",\"session\":\"{name}\"}}"), "close"));
    script
}

#[test]
fn net_trace_is_shard_count_invariant_and_matches_solo() {
    let cfg = BenchConfig { seed: 7, tenants: 3, requests: 18 };
    let (solo, _) = run_trace(cfg).unwrap();
    let one = run_net_trace(cfg, 1).unwrap();
    let two = run_net_trace(cfg, 2).unwrap();
    assert_eq!(one, two, "trace must not depend on the shard count");
    let stripped: String = one.lines().fold(String::new(), |mut acc, l| {
        acc.push_str(l.split_once(' ').expect("[cN] prefix").1);
        acc.push('\n');
        acc
    });
    assert_eq!(stripped, solo, "multi-client payloads must match the in-process trace");
}

#[test]
fn each_client_sees_its_solo_stream_bit_for_bit() {
    let server = NetServer::bind_tcp("127.0.0.1:0", 2).unwrap();
    let addr = server.addr().to_owned();
    let names = ["tenant-a", "tenant-b", "tenant-c"];
    let mut clients: Vec<Client> = names.iter().map(|_| Client::connect(&addr)).collect();
    let scripts: Vec<_> =
        names.iter().enumerate().map(|(t, n)| session_script(n, t * 31)).collect();

    // Interleave the three clients round-robin, one request per turn —
    // every session is multiplexed against the other two the whole time.
    let mut observed: Vec<Vec<String>> = vec![Vec::new(); names.len()];
    let longest = scripts.iter().map(Vec::len).max().unwrap();
    for step in 0..longest {
        for (t, script) in scripts.iter().enumerate() {
            if let Some((line, op)) = script.get(step) {
                observed[t].extend(clients[t].request(line, op));
            }
        }
    }
    clients[0].request("{\"op\":\"shutdown\"}", "shutdown");
    drop(clients);
    server.join().unwrap();

    // Reference: each session's script alone on a fresh in-process runtime.
    for (t, script) in scripts.iter().enumerate() {
        let mut rt = ServeRuntime::new();
        let mut expected = Vec::new();
        for (line, _) in script {
            let (lines, _) = handle_line(&mut rt, line);
            expected.extend(lines);
        }
        assert_eq!(observed[t], expected, "session {} diverged from its solo stream", names[t]);
    }
}

/// Runs `script` through `rt`, collecting every response line.
fn replay(rt: &mut ServeRuntime, script: &[(String, &str)]) -> Vec<String> {
    let mut out = Vec::new();
    for (line, _) in script {
        let (lines, _) = handle_line(rt, line);
        out.extend(lines);
    }
    out
}

fn continuation_script(name: &str) -> Vec<(String, &'static str)> {
    let data = workload();
    let mut script = Vec::new();
    for k in 10..20 {
        let row = (k * 7) % data.len();
        script.push((invoke_req(name, data.input(row)), "invoke"));
        if k % 4 == 3 {
            script.push((format!("{{\"op\":\"drain\",\"session\":\"{name}\"}}"), "drain"));
        }
    }
    script.push((format!("{{\"op\":\"stats\",\"session\":\"{name}\"}}"), "stats"));
    script.push((format!("{{\"op\":\"close\",\"session\":\"{name}\"}}"), "close"));
    script
}

#[test]
fn snapshot_restore_continue_is_bitwise_identical() {
    let data = workload();
    // Head: open (ema checker + fault plan + watchdog) and run 10 requests
    // with interleaved drains, leaving two requests queued at the cut.
    let mut head: Vec<(String, &str)> = vec![(open_req("t0"), "open")];
    for k in 0..10 {
        let row = (k * 7) % data.len();
        head.push((invoke_req("t0", data.input(row)), "invoke"));
        if k % 4 == 3 {
            head.push(("{\"op\":\"drain\",\"session\":\"t0\"}".to_owned(), "drain"));
        }
    }
    let tail = continuation_script("t0");

    // Uninterrupted reference.
    let mut rt = ServeRuntime::new();
    replay(&mut rt, &head);
    let expected = replay(&mut rt, &tail);

    // Interrupted run: snapshot at the cut, "crash" (drop the runtime),
    // restore into a fresh one, continue.
    let mut rt = ServeRuntime::new();
    replay(&mut rt, &head);
    let (snap_lines, _) = handle_line(&mut rt, "{\"op\":\"snapshot\",\"session\":\"t0\"}");
    assert!(snap_lines[0].starts_with("{\"type\":\"snapshot\""), "{snap_lines:?}");
    let state =
        parse_object(&snap_lines[0]).unwrap().string("state").expect("state field").to_owned();
    drop(rt);

    let mut rt = ServeRuntime::new();
    let mut w = JsonWriter::object("request");
    w.string("op", "restore").string("session", "t0").string("state", &state);
    let restore_req = w.finish().replacen("\"type\":\"request\",", "", 1);
    let (ack, _) = handle_line(&mut rt, &restore_req);
    assert!(ack[0].starts_with("{\"type\":\"ack\",\"op\":\"restore\""), "{ack:?}");

    // The restored session's own snapshot is the exact same config-word
    // line — the codec is a fixed point under restore.
    let (resnap, _) = handle_line(&mut rt, "{\"op\":\"snapshot\",\"session\":\"t0\"}");
    let restate = parse_object(&resnap[0]).unwrap().string("state").unwrap().to_owned();
    assert_eq!(restate, state, "snapshot must round-trip bit-exactly through restore");

    let continued = replay(&mut rt, &tail);
    assert_eq!(continued, expected, "restored session diverged from the uninterrupted run");
}

#[test]
fn snapshot_migrates_to_another_shard_under_a_new_name() {
    let old = "alice";
    // A new name that lands on the other shard of a 2-shard pool.
    let new = ["bob", "carol", "dave", "erin"]
        .into_iter()
        .find(|n| shard_of(n, 2) != shard_of(old, 2))
        .expect("some candidate hashes to the other shard");

    let server = NetServer::bind_tcp("127.0.0.1:0", 2).unwrap();
    let addr = server.addr().to_owned();
    let data = workload();
    let mut client = Client::connect(&addr);

    // Uninterrupted reference, solo and in-process.
    let mut head: Vec<(String, &str)> = vec![(open_req(old), "open")];
    for k in 0..10 {
        head.push((invoke_req(old, data.input((k * 7) % data.len())), "invoke"));
        if k % 4 == 3 {
            head.push((format!("{{\"op\":\"drain\",\"session\":\"{old}\"}}"), "drain"));
        }
    }
    let mut rt = ServeRuntime::new();
    replay(&mut rt, &head);
    let expected = replay(&mut rt, &continuation_script(old));

    // Networked run: same head on `old`'s shard, snapshot, close the
    // original, restore under `new` — which hashes to the *other* shard —
    // and continue there.
    for (line, op) in &head {
        client.request(line, op);
    }
    let snap =
        client.request(&format!("{{\"op\":\"snapshot\",\"session\":\"{old}\"}}"), "snapshot");
    let state = parse_object(&snap[0]).unwrap().string("state").expect("state").to_owned();
    client.request(&format!("{{\"op\":\"close\",\"session\":\"{old}\"}}"), "close");

    let mut w = JsonWriter::object("request");
    w.string("op", "restore").string("session", new).string("state", &state);
    let restore_req = w.finish().replacen("\"type\":\"request\",", "", 1);
    let ack = client.request(&restore_req, "restore");
    assert!(ack[0].starts_with("{\"type\":\"ack\",\"op\":\"restore\""), "{ack:?}");

    let mut migrated = Vec::new();
    for (line, op) in &continuation_script(new) {
        migrated.extend(client.request(line, op));
    }
    client.request("{\"op\":\"shutdown\"}", "shutdown");
    drop(client);
    server.join().unwrap();

    // Identical streams modulo the session's name.
    let renamed: Vec<String> = migrated
        .iter()
        .map(|l| l.replace(&format!("\"session\":\"{new}\""), &format!("\"session\":\"{old}\"")))
        .collect();
    assert_eq!(renamed, expected, "migrated session diverged from the uninterrupted run");
}

#[test]
fn malformed_and_oversized_lines_stay_connection_scoped() {
    let server = NetServer::bind_tcp("127.0.0.1:0", 2).unwrap();
    let addr = server.addr().to_owned();
    let data = workload();
    let mut bad = Client::connect(&addr);
    let mut good = Client::connect(&addr);

    good.request(&open_req("steady"), "open");

    // Malformed NDJSON answers with one error line on the bad connection.
    let err = bad.request("this is not json", "garbage");
    assert_eq!(err.len(), 1);
    assert!(err[0].starts_with("{\"type\":\"error\""), "{err:?}");

    // Oversized line: consumed, answered in-band, connection survives.
    let huge = format!("{}\n", "x".repeat(300 * 1024));
    bad.send_raw(huge.as_bytes());
    let err = bad.read_group("oversized");
    assert!(err[0].contains("exceeds"), "{err:?}");
    let after = bad.request("{\"op\":\"stats\",\"session\":\"steady\"}", "stats");
    assert!(after[0].starts_with("{\"type\":\"stats\""), "bad connection poisoned: {after:?}");

    // The well-behaved client's session is untouched throughout.
    let ack = good.request(&invoke_req("steady", data.input(0)), "invoke");
    assert!(ack[0].starts_with("{\"type\":\"ack\",\"op\":\"invoke\""), "{ack:?}");
    let drained = good.request("{\"op\":\"drain\",\"session\":\"steady\"}", "drain");
    assert!(drained.iter().any(|l| l.starts_with("{\"type\":\"result\"")), "{drained:?}");

    good.request("{\"op\":\"shutdown\"}", "shutdown");
    drop((bad, good));
    server.join().unwrap();
}

#[test]
fn abrupt_disconnect_mid_line_never_executes_the_torn_request() {
    let server = NetServer::bind_tcp("127.0.0.1:0", 2).unwrap();
    let addr = server.addr().to_owned();
    let data = workload();

    let mut doomed = Client::connect(&addr);
    doomed.request(&open_req("orphan"), "open");
    doomed.request(&invoke_req("orphan", data.input(3)), "invoke");
    // A torn request: half a close op, no newline, then a hard drop. The
    // tail must be discarded — were it executed, `orphan` would close.
    doomed.send_raw(b"{\"op\":\"close\",\"session\":\"orp");
    drop(doomed);

    let mut good = Client::connect(&addr);
    good.request(&open_req("steady"), "open");
    good.request(&invoke_req("steady", data.input(0)), "invoke");
    let drained = good.request("{\"op\":\"drain\",\"session\":\"steady\"}", "drain");
    assert!(drained.iter().any(|l| l.starts_with("{\"type\":\"result\"")), "{drained:?}");

    // Shutdown drains the orphaned session: it was opened, never closed,
    // and still owns one queued request — its shard is alive and flushes
    // it on the way out.
    let down = good.request("{\"op\":\"shutdown\"}", "shutdown");
    assert!(
        down.iter().any(|l| l.starts_with("{\"type\":\"closed\",\"session\":\"orphan\"")),
        "torn connection poisoned its shard: {down:?}"
    );
    assert!(
        down.iter().any(|l| l.starts_with("{\"type\":\"result\",\"session\":\"orphan\"")),
        "orphaned in-flight request was not drained: {down:?}"
    );
    drop(good);
    server.join().unwrap();
}

/// The compensating variant of [`open_req`]: flagged invocations whose
/// predicted error sits at or below `band` are repaired in place instead
/// of queued for CPU re-execution.
fn open_compensate_req(name: &str, band: f64) -> String {
    open_req(name).replacen(
        "\"watchdog\":true}",
        &format!("\"watchdog\":true,\"fix\":\"compensate\",\"band\":{band}}}"),
        1,
    )
}

/// [`open_compensate_req`] at a quality target tight enough that the
/// firing threshold lands inside the checker's score range: ordinary
/// finite scores then actually flag, giving the band something to
/// compensate (at `toq = 0.9` only fault-injected non-finite scores fire,
/// and those always sit above any band).
fn open_compensate_tight_req(name: &str, band: f64) -> String {
    open_compensate_req(name, band).replacen("\"toq\":0.9,", "\"toq\":0.995,", 1)
}

/// Restoring a snapshot onto a differently-configured checker must fail
/// in-band: the config word embedded in the exported checker state
/// detects the mismatch before any coefficients are imported, instead of
/// silently priming an incompatible predictor with another model's state.
#[test]
fn restore_under_a_different_checker_is_rejected_in_band() {
    let data = workload();
    let mut rt = ServeRuntime::new();
    let mut head: Vec<(String, &str)> = vec![(open_req("t0"), "open")];
    for k in 0..6 {
        head.push((invoke_req("t0", data.input((k * 7) % data.len())), "invoke"));
    }
    head.push(("{\"op\":\"drain\",\"session\":\"t0\"}".to_owned(), "drain"));
    replay(&mut rt, &head);
    let (snap, _) = handle_line(&mut rt, "{\"op\":\"snapshot\",\"session\":\"t0\"}");
    let state = parse_object(&snap[0]).unwrap().string("state").expect("state").to_owned();
    drop(rt);

    // Tamper the config line: claim the snapshot was taken under a tree
    // checker. The embedded checker state still carries the EMA config
    // word, so the restore must be refused.
    assert!(state.contains("checker=ema"), "snapshot must name its checker: {state}");
    let tampered = state.replace("checker=ema", "checker=tree");

    let restore_req = |state: &str| {
        let mut w = JsonWriter::object("request");
        w.string("op", "restore").string("session", "t1").string("state", state);
        w.finish().replacen("\"type\":\"request\",", "", 1)
    };
    let mut rt = ServeRuntime::new();
    let (lines, shutdown) = handle_line(&mut rt, &restore_req(&tampered));
    assert!(!shutdown);
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].starts_with("{\"type\":\"error\""), "{lines:?}");
    assert!(lines[0].contains("checker config mismatch"), "{lines:?}");

    // The rejection is clean: the same runtime still accepts the
    // untampered snapshot afterwards.
    let (ack, _) = handle_line(&mut rt, &restore_req(&state));
    assert!(ack[0].starts_with("{\"type\":\"ack\",\"op\":\"restore\""), "{ack:?}");
}

/// A compensating session survives snapshot → restore → continue bit for
/// bit: the band travels in the config line, the compensation counter in
/// the runtime state, and the continuation replays identically to the
/// uninterrupted run.
#[test]
fn compensating_snapshot_restore_continue_is_bitwise_identical() {
    let data = workload();
    let mut head: Vec<(String, &str)> = vec![(open_compensate_tight_req("t0", 5.0), "open")];
    for k in 0..10 {
        head.push((invoke_req("t0", data.input((k * 7) % data.len())), "invoke"));
        if k % 4 == 3 {
            head.push(("{\"op\":\"drain\",\"session\":\"t0\"}".to_owned(), "drain"));
        }
    }
    let tail = continuation_script("t0");

    let mut rt = ServeRuntime::new();
    replay(&mut rt, &head);
    let expected = replay(&mut rt, &tail);

    let mut rt = ServeRuntime::new();
    replay(&mut rt, &head);
    let (snap, _) = handle_line(&mut rt, "{\"op\":\"snapshot\",\"session\":\"t0\"}");
    let state = parse_object(&snap[0]).unwrap().string("state").expect("state").to_owned();
    assert!(state.contains("fix=comp:"), "compensating snapshot must carry its band: {state}");
    drop(rt);

    let mut rt = ServeRuntime::new();
    let mut w = JsonWriter::object("request");
    w.string("op", "restore").string("session", "t0").string("state", &state);
    let restore_req = w.finish().replacen("\"type\":\"request\",", "", 1);
    let (ack, _) = handle_line(&mut rt, &restore_req);
    assert!(ack[0].starts_with("{\"type\":\"ack\",\"op\":\"restore\""), "{ack:?}");
    let continued = replay(&mut rt, &tail);
    assert_eq!(continued, expected, "restored compensating session diverged");

    // The run repaired something in place — the invariance above is not
    // vacuous — and the closed line reports it.
    let closed = expected.last().unwrap();
    assert!(closed.contains("\"compensated\":"), "no compensation happened: {closed}");
}

/// Compensation decisions live on the deterministic quality path: the
/// same compensating script produces byte-identical response streams at
/// one and four workers, scalar and vector kernels, and over a sharded
/// TCP server at one and two shards.
#[test]
fn compensation_is_thread_simd_and_shard_invariant() {
    use rumba_nn::SimdMode;

    let mut script = session_script("t0", 5);
    script[0] = (open_compensate_tight_req("t0", 5.0), "open");

    let mut traces = Vec::new();
    for threads in [1usize, 4] {
        for mode in [SimdMode::Off, SimdMode::On] {
            rumba_parallel::set_thread_override(Some(threads));
            rumba_nn::set_simd_override(Some(mode));
            let mut rt = ServeRuntime::new();
            traces.push(replay(&mut rt, &script));
        }
    }
    rumba_nn::set_simd_override(None);
    rumba_parallel::set_thread_override(None);
    for other in &traces[1..] {
        assert_eq!(&traces[0], other, "compensation moved across threads/SIMD");
    }

    for shards in [1usize, 2] {
        let server = NetServer::bind_tcp("127.0.0.1:0", shards).unwrap();
        let addr = server.addr().to_owned();
        let mut client = Client::connect(&addr);
        let mut observed = Vec::new();
        for (line, op) in &script {
            observed.extend(client.request(line, op));
        }
        client.request("{\"op\":\"shutdown\"}", "shutdown");
        drop(client);
        server.join().unwrap();
        assert_eq!(observed, traces[0], "compensation moved across the net at {shards} shard(s)");
    }
}

/// Printable-ASCII garbage derived from a seed (the vendored proptest
/// shim has no string strategies): everything from empty lines to brace
/// soup that almost parses.
fn garbage_line(seed: u64) -> String {
    let len = (seed % 61) as usize;
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            char::from(32 + ((x >> 33) % 95) as u8)
        })
        .collect()
}

proptest! {
    /// Arbitrary garbage lines between valid requests never poison the
    /// shard: every garbage line gets exactly one error response and the
    /// session's stream continues bit-identically to a garbage-free run.
    #[test]
    fn garbage_lines_never_poison_the_shard(
        seeds in proptest::collection::vec(0u64..u64::MAX, 1..6),
        interleave in proptest::collection::vec(0u64..4, 6),
    ) {
        let garbage: Vec<String> = seeds.iter().map(|&s| garbage_line(s)).collect();
        let script = session_script("t0", 0);

        let mut clean_rt = ServeRuntime::new();
        let clean = replay(&mut clean_rt, &script);

        let mut rt = ServeRuntime::new();
        let mut observed = Vec::new();
        let mut g = 0usize;
        for (i, (line, _)) in script.iter().enumerate() {
            if interleave.get(i % interleave.len()).is_some_and(|&k| k == 0) && g < garbage.len() {
                // Garbage that parses as a valid request would mutate the
                // session; the grammar makes that practically impossible,
                // but guard the invariant explicitly.
                let (lines, shutdown) = handle_line(&mut rt, &garbage[g]);
                g += 1;
                if !garbage[g - 1].trim().is_empty() {
                    prop_assert!(!shutdown);
                    prop_assert_eq!(lines.len(), 1);
                    prop_assert!(
                        lines[0].starts_with("{\"type\":\"error\""),
                        "garbage produced a non-error: {:?}", lines
                    );
                }
            }
            let (lines, _) = handle_line(&mut rt, line);
            observed.extend(lines);
        }
        prop_assert_eq!(observed, clean);
    }

    /// `fix=compensate` with an empty band is the re-execution-only
    /// policy bit for bit, over arbitrary request streams and drain
    /// points: a vanishing band clamps up to the firing threshold, where
    /// `threshold < predicted <= band` has no solutions, so the
    /// compensation machinery must be pure scaffolding until the band
    /// actually opens.
    #[test]
    fn empty_compensation_band_is_bitwise_reexecute_only(
        rows in proptest::collection::vec(0usize..512, 8..20),
        drains in proptest::collection::vec(proptest::bool::ANY, 20),
    ) {
        let data = workload();
        let build = |open: String| {
            let mut script: Vec<(String, &'static str)> = vec![(open, "open")];
            for (k, &r) in rows.iter().enumerate() {
                script.push((invoke_req("t0", data.input(r % data.len())), "invoke"));
                if drains.get(k).copied().unwrap_or(false) {
                    script.push(("{\"op\":\"drain\",\"session\":\"t0\"}".to_owned(), "drain"));
                }
            }
            script.push(("{\"op\":\"stats\",\"session\":\"t0\"}".to_owned(), "stats"));
            script.push(("{\"op\":\"close\",\"session\":\"t0\"}".to_owned(), "close"));
            script
        };
        let mut rt = ServeRuntime::new();
        let reexec = replay(&mut rt, &build(open_req("t0")));
        let mut rt = ServeRuntime::new();
        let comp = replay(&mut rt, &build(open_compensate_req("t0", 1e-12)));
        prop_assert_eq!(comp, reexec);
    }
}
