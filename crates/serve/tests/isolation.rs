//! Cross-session isolation: the serving layer's core promise is that
//! multiplexing N tenants over the shared accelerator changes *nothing*
//! for any one of them. Random interleavings of submissions and drains
//! must leave every session's merged outputs, fixes and final threshold
//! bit-identical to running that session's stream alone, and a fault plan
//! armed in one session must leave every other session's event stream
//! untouched.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use rumba_apps::{kernel_by_name, Split};
use rumba_core::event_sim::QueueConfig;
use rumba_core::tuner::TuningMode;
use rumba_faults::{FaultModel, FaultPlan};
use rumba_nn::NnDataset;
use rumba_obs::{Event, MemorySink, NullSink};
use rumba_serve::{
    AdmissionPolicy, CheckerKind, ServeRuntime, SessionConfig, SessionResult, SessionStats,
};

/// Serializes the tests that install a global event sink.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn with_memory_sink<R>(f: impl FnOnce() -> R) -> (Vec<Event>, R) {
    let _guard: MutexGuard<'_, ()> =
        SINK_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let sink = Arc::new(MemorySink::new());
    rumba_obs::set_global_sink(sink.clone());
    let result = f();
    rumba_obs::set_global_sink(Arc::new(NullSink));
    (sink.events(), result)
}

fn workload() -> &'static NnDataset {
    static DATA: OnceLock<NnDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        let kernel = kernel_by_name("gaussian").unwrap();
        let full = kernel.generate(Split::Test, 42);
        let indices: Vec<usize> = (0..full.len().min(256)).collect();
        full.subset(&indices)
    })
}

/// Deliberately heterogeneous tenant profiles: different checkers, tuning
/// families and windows, so isolation is not an artifact of symmetric
/// configuration. Capacity is large enough that admission never sheds —
/// shedding policy interplay has its own tests in `backpressure.rs`.
fn profile(tenant: usize, faulty: bool) -> SessionConfig {
    let mut config = SessionConfig {
        kernel: "gaussian".to_owned(),
        seed: 42,
        checker: [CheckerKind::Tree, CheckerKind::Linear, CheckerKind::Ema][tenant % 3],
        mode: match tenant % 3 {
            0 => TuningMode::TargetQuality { toq: 0.95 },
            1 => TuningMode::EnergyBudget { budget: 4 },
            _ => TuningMode::TargetQuality { toq: 0.9 },
        },
        window: [8, 12, 16][tenant % 3],
        queue: QueueConfig { input_capacity: 256, ..QueueConfig::default() },
        admission: AdmissionPolicy::Shed,
        faults: None,
        watchdog: None,
        ..SessionConfig::default()
    };
    if faulty {
        config.faults = Some(
            FaultPlan::new(99)
                .with(FaultModel::NonFinite { rate: 0.05 })
                .with(FaultModel::BitFlip { rate: 0.02 }),
        );
    }
    config
}

fn tenant_name(tenant: usize) -> String {
    format!("tenant-{tenant}")
}

/// Row of the shared workload that request `k` of `tenant` carries; the
/// per-tenant offset keeps streams distinct.
fn request_row(tenant: usize, k: usize) -> usize {
    (tenant * 61 + k) % workload().len()
}

/// The baseline: one session alone on the runtime, requests in order,
/// drained only at close.
fn run_solo(tenant: usize, requests: usize, faulty: bool) -> (SessionStats, Vec<SessionResult>) {
    let mut rt = ServeRuntime::new();
    let name = tenant_name(tenant);
    rt.open(&name, profile(tenant, faulty)).unwrap();
    for k in 0..requests {
        rt.submit(&name, workload().input(request_row(tenant, k))).unwrap();
    }
    rt.close(&name).unwrap()
}

/// N sessions multiplexed: the `schedule` interleaves every tenant's
/// submissions; `drain_mask[i]` triggers a multiplexed scheduling round
/// after submission `i`.
fn run_multiplexed(
    tenants: usize,
    requests: usize,
    faulty_tenant: Option<usize>,
    schedule: &[usize],
    drain_mask: &[bool],
) -> Vec<(SessionStats, Vec<SessionResult>)> {
    let mut rt = ServeRuntime::new();
    for t in 0..tenants {
        rt.open(&tenant_name(t), profile(t, faulty_tenant == Some(t))).unwrap();
    }
    let mut next = vec![0usize; tenants];
    for (i, &t) in schedule.iter().enumerate() {
        let k = next[t];
        next[t] += 1;
        rt.submit(&tenant_name(t), workload().input(request_row(t, k))).unwrap();
        if drain_mask.get(i).copied().unwrap_or(false) {
            rt.drain_all().unwrap();
        }
    }
    assert!(next.iter().all(|&n| n == requests), "schedule covers every request");
    (0..tenants).map(|t| rt.close(&tenant_name(t)).unwrap()).collect()
}

/// Builds a schedule where each of `tenants` appears exactly `requests`
/// times, ordered by the proptest-drawn priorities.
fn schedule_from(tenants: usize, requests: usize, priorities: &[u64]) -> Vec<usize> {
    let mut slots: Vec<(u64, usize)> = (0..tenants * requests)
        .map(|i| (priorities.get(i).copied().unwrap_or(i as u64), i % tenants))
        .collect();
    slots.sort();
    slots.into_iter().map(|(_, t)| t).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_identical(
    solo: &(SessionStats, Vec<SessionResult>),
    multi: &(SessionStats, Vec<SessionResult>),
) {
    let (solo_stats, solo_results) = solo;
    let (multi_stats, multi_results) = multi;
    assert_eq!(solo_results.len(), multi_results.len());
    for (a, b) in solo_results.iter().zip(multi_results) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.fired, b.fired);
        assert_eq!(bits(&a.output), bits(&b.output));
        assert_eq!(a.predicted_error.to_bits(), b.predicted_error.to_bits());
        assert_eq!(a.measured_error.to_bits(), b.measured_error.to_bits());
    }
    assert_eq!(solo_stats.fixes, multi_stats.fixes);
    assert_eq!(solo_stats.processed, multi_stats.processed);
    assert_eq!(solo_stats.final_threshold.to_bits(), multi_stats.final_threshold.to_bits());
}

proptest! {
    /// Any interleaving of three tenants' requests — with multiplexed
    /// scheduling rounds at arbitrary points — is invisible to each
    /// tenant: outputs, firing decisions, fixes and the tuner's final
    /// threshold match the solo run bitwise.
    #[test]
    fn interleaving_is_invisible_to_every_session(
        priorities in proptest::collection::vec(0u64..1_000_000, 54),
        drains in proptest::collection::vec(proptest::bool::ANY, 54),
    ) {
        let (tenants, requests) = (3, 18);
        let schedule = schedule_from(tenants, requests, &priorities);
        let multi = run_multiplexed(tenants, requests, None, &schedule, &drains);
        for (t, session) in multi.iter().enumerate() {
            let solo = run_solo(t, requests, false);
            assert_identical(&solo, session);
        }
    }

    /// A fault plan armed in one session never leaks into another: the
    /// clean tenants still match their clean solo runs bitwise, while the
    /// faulty tenant matches its faulty solo run.
    #[test]
    fn faults_in_one_session_never_move_another(
        priorities in proptest::collection::vec(0u64..1_000_000, 36),
        drains in proptest::collection::vec(proptest::bool::ANY, 36),
        faulty in 0usize..3,
    ) {
        let (tenants, requests) = (3, 12);
        let schedule = schedule_from(tenants, requests, &priorities);
        let multi = run_multiplexed(tenants, requests, Some(faulty), &schedule, &drains);
        for (t, session) in multi.iter().enumerate() {
            let solo = run_solo(t, requests, t == faulty);
            assert_identical(&solo, session);
        }
    }
}

/// The multiplexed scheduler's fan-out phase must be thread-invariant:
/// one worker and four workers produce bitwise-identical sessions.
#[test]
fn multiplexed_serving_is_thread_invariant() {
    let schedule = schedule_from(3, 16, &[]);
    let drains: Vec<bool> = (0..48).map(|i| i % 5 == 4).collect();

    rumba_parallel::set_thread_override(Some(1));
    let single = run_multiplexed(3, 16, Some(2), &schedule, &drains);
    rumba_parallel::set_thread_override(Some(4));
    let quad = run_multiplexed(3, 16, Some(2), &schedule, &drains);
    rumba_parallel::set_thread_override(None);

    for (a, b) in single.iter().zip(&quad) {
        assert_identical(a, b);
    }
}

/// The lane-reduction contract reaches the serving layer: forcing the
/// scalar kernels and forcing the vector kernels (at one and at four
/// workers) all produce bitwise-identical sessions, so the committed
/// serve trace stays valid on any hardware and any `RUMBA_SIMD` setting.
#[test]
fn multiplexed_serving_is_simd_invariant() {
    use rumba_nn::SimdMode;

    let schedule = schedule_from(3, 16, &[]);
    let drains: Vec<bool> = (0..48).map(|i| i % 5 == 4).collect();

    let mut traces = Vec::new();
    for threads in [1usize, 4] {
        for mode in [SimdMode::Off, SimdMode::On] {
            rumba_parallel::set_thread_override(Some(threads));
            rumba_nn::set_simd_override(Some(mode));
            traces.push(run_multiplexed(3, 16, Some(2), &schedule, &drains));
        }
    }
    rumba_nn::set_simd_override(None);
    rumba_parallel::set_thread_override(None);

    for other in &traces[1..] {
        for (a, b) in traces[0].iter().zip(other) {
            assert_identical(a, b);
        }
    }
}

/// Event-stream isolation, down to the telemetry layer: with a fault plan
/// armed in one session, every event tagged with a *clean* session's
/// label is identical to the events that session emits when it runs the
/// same stream alone — no fault, degrade or admission event crosses the
/// session boundary.
#[test]
fn fault_events_stay_inside_the_faulty_session() {
    let requests = 24;
    let schedule = schedule_from(2, requests, &[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8]);
    let drains: Vec<bool> = (0..2 * requests).map(|i| i % 7 == 6).collect();

    // Run summaries are excluded: their cpu_utilization comes from the
    // event-level pipeline timing, which legitimately depends on drain
    // batching (the quality path — outputs, thresholds, fixes — is
    // covered bitwise by the proptests above).
    let tagged = |events: &[Event], name: &str| -> Vec<String> {
        events
            .iter()
            .filter(|e| e.session() == Some(name) && !matches!(e, Event::RunSummary { .. }))
            .map(rumba_obs::Event::to_jsonl)
            .collect()
    };

    let (multi_events, _) =
        with_memory_sink(|| run_multiplexed(2, requests, Some(1), &schedule, &drains));
    let (solo_clean_events, _) = with_memory_sink(|| run_solo(0, requests, false));
    let (solo_faulty_events, _) = with_memory_sink(|| run_solo(1, requests, true));

    // The clean tenant's event stream is untouched by its neighbour's
    // faults (and the faulty tenant's stream matches its solo faults).
    assert_eq!(tagged(&multi_events, "tenant-0"), tagged(&solo_clean_events, "tenant-0"));
    assert_eq!(tagged(&multi_events, "tenant-1"), tagged(&solo_faulty_events, "tenant-1"));

    // The faulty session did observably fault — the isolation claim is
    // not vacuous.
    let faults_in = |events: &[Event], name: &str| {
        events
            .iter()
            .filter(|e| matches!(e, Event::Fault { .. }) && e.session() == Some(name))
            .count()
    };
    assert!(faults_in(&multi_events, "tenant-1") > 0, "fault plan must actually fire");
    assert_eq!(faults_in(&multi_events, "tenant-0"), 0, "clean session saw a fault event");
}
