//! Serving-layer conformance of the opt-in online checker re-fit
//! (`"refit":true` at open): the refit machinery's state — audit
//! accumulators, bounded reservoir, refit epoch, re-fit model words —
//! travels in the session snapshot, so a snapshot → restore → continue
//! run is bitwise identical to the uninterrupted stream even when the
//! cut lands mid-refit with the reservoir partially filled, and a
//! snapshot restored under a new name migrates to a different shard of a
//! TCP pool without perturbing the stream.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use rumba_apps::{kernel_by_name, Split};
use rumba_nn::NnDataset;
use rumba_obs::json::{parse_object, JsonWriter, ObjectExt};
use rumba_serve::protocol::handle_line;
use rumba_serve::shard::shard_of;
use rumba_serve::transport::NetServer;
use rumba_serve::ServeRuntime;

fn workload() -> &'static NnDataset {
    static DATA: OnceLock<NnDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        let kernel = kernel_by_name("gaussian").unwrap();
        kernel.generate(Split::Test, 42)
    })
}

/// An open request arming the refit channel under a ramped `InputDrift`
/// plan and the default watchdog — the open-world serving scenario the
/// refit rung exists for.
fn open_refit_req(name: &str) -> String {
    format!(
        "{{\"op\":\"open\",\"session\":\"{name}\",\"kernel\":\"gaussian\",\"seed\":42,\
         \"checker\":\"tree\",\"mode\":\"toq\",\"toq\":0.9,\"window\":8,\"queue\":8,\
         \"admission\":\"shed\",\"faults\":\"input_drift=8:16:2.0\",\"fault_seed\":42,\
         \"watchdog\":true,\"refit\":true}}"
    )
}

fn invoke_req(name: &str, input: &[f64]) -> String {
    let mut w = JsonWriter::object("request");
    w.string("op", "invoke").string("session", name).floats("input", input);
    w.finish().replacen("\"type\":\"request\",", "", 1)
}

fn drain_req(name: &str) -> String {
    format!("{{\"op\":\"drain\",\"session\":\"{name}\"}}")
}

/// `count` invokes starting at stream step `base`, a drain every fourth.
fn invoke_script(name: &str, base: usize, count: usize) -> Vec<(String, &'static str)> {
    let data = workload();
    let mut script = Vec::new();
    for k in base..base + count {
        script.push((invoke_req(name, data.input((k * 7) % data.len())), "invoke"));
        if k % 4 == 3 {
            script.push((drain_req(name), "drain"));
        }
    }
    script
}

fn closing_script(name: &str) -> Vec<(String, &'static str)> {
    vec![
        (format!("{{\"op\":\"stats\",\"session\":\"{name}\"}}"), "stats"),
        (format!("{{\"op\":\"close\",\"session\":\"{name}\"}}"), "close"),
    ]
}

fn replay(rt: &mut ServeRuntime, script: &[(String, &str)]) -> Vec<String> {
    let mut out = Vec::new();
    for (line, _) in script {
        let (lines, _) = handle_line(rt, line);
        out.extend(lines);
    }
    out
}

fn snapshot_state(rt: &mut ServeRuntime, name: &str) -> String {
    let (lines, _) = handle_line(rt, &format!("{{\"op\":\"snapshot\",\"session\":\"{name}\"}}"));
    assert!(lines[0].starts_with("{\"type\":\"snapshot\""), "{lines:?}");
    parse_object(&lines[0]).unwrap().string("state").expect("state field").to_owned()
}

fn restore_req(name: &str, state: &str) -> String {
    let mut w = JsonWriter::object("request");
    w.string("op", "restore").string("session", name).string("state", state);
    w.finish().replacen("\"type\":\"request\",", "", 1)
}

/// Word count of the snapshot's `runtime` section — the part that grows
/// as the refit reservoir accrues rows.
fn runtime_words(state: &str) -> usize {
    let mut tokens = state.split_whitespace();
    while let Some(t) = tokens.next() {
        if t == "section" && tokens.next() == Some("runtime") {
            return tokens.next().expect("runtime word count").parse().expect("decimal count");
        }
    }
    panic!("snapshot has no runtime section: {state}");
}

#[test]
fn mid_refit_snapshot_restore_continue_is_bitwise_identical() {
    // Head: 40 drifted invocations — the audit channel has sampled exact
    // results into the reservoir by the cut, so the snapshot is taken
    // mid-refit with the reservoir partially filled.
    let head: Vec<(String, &str)> =
        std::iter::once((open_refit_req("t0"), "open")).chain(invoke_script("t0", 0, 40)).collect();
    let tail: Vec<(String, &str)> =
        invoke_script("t0", 40, 24).into_iter().chain(closing_script("t0")).collect();

    // Uninterrupted reference.
    let mut rt = ServeRuntime::new();
    replay(&mut rt, &head);
    let expected = replay(&mut rt, &tail);

    // Interrupted run: snapshot at the cut, "crash", restore, continue.
    let mut rt = ServeRuntime::new();
    replay(&mut rt, &head);
    let state = snapshot_state(&mut rt, "t0");
    assert!(state.contains(" refit=1"), "refit must travel in the config line: {state}");
    drop(rt);

    let mut rt = ServeRuntime::new();
    let (ack, _) = handle_line(&mut rt, &restore_req("t0", &state));
    assert!(ack[0].starts_with("{\"type\":\"ack\",\"op\":\"restore\""), "{ack:?}");

    // The restored session re-snapshots to the exact same line: the refit
    // tail (epoch, audit sums, model words, reservoir rows) is a fixed
    // point of the codec.
    assert_eq!(snapshot_state(&mut rt, "t0"), state, "snapshot must round-trip bit-exactly");

    let continued = replay(&mut rt, &tail);
    assert_eq!(continued, expected, "restored mid-refit session diverged");
}

#[test]
fn reservoir_rows_accrue_in_the_snapshot_and_refit_off_stays_fixed_width() {
    // Refit-on: the runtime section grows between an early and a late
    // snapshot — audited rows are entering the reservoir and traveling.
    let mut rt = ServeRuntime::new();
    replay(
        &mut rt,
        &std::iter::once((open_refit_req("t0"), "open"))
            .chain(invoke_script("t0", 0, 8))
            .collect::<Vec<_>>(),
    );
    let early = runtime_words(&snapshot_state(&mut rt, "t0"));
    replay(&mut rt, &invoke_script("t0", 8, 48));
    let late = runtime_words(&snapshot_state(&mut rt, "t0"));
    assert!(late > early, "reservoir rows must accrue in the snapshot: {early} -> {late}");

    // Refit-off control under the identical script: the runtime section
    // stays the historical fixed width throughout.
    let open_off = open_refit_req("t1").replace(",\"refit\":true", "");
    let mut rt = ServeRuntime::new();
    replay(
        &mut rt,
        &std::iter::once((open_off, "open")).chain(invoke_script("t1", 0, 8)).collect::<Vec<_>>(),
    );
    let early_off = runtime_words(&snapshot_state(&mut rt, "t1"));
    replay(&mut rt, &invoke_script("t1", 8, 48));
    let late_off = runtime_words(&snapshot_state(&mut rt, "t1"));
    assert_eq!(early_off, late_off, "refit-off runtime section must stay fixed width");
}

/// One lockstep client connection (the `net.rs` idiom): sends a request
/// line and reads the complete response group.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Self { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream }
    }

    fn request(&mut self, line: &str, op: &str) -> Vec<String> {
        self.writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        self.writer.flush().unwrap();
        let mut lines: Vec<String> = Vec::new();
        loop {
            let mut buf = String::new();
            if self.reader.read_line(&mut buf).unwrap() == 0 {
                return lines;
            }
            let line = buf.trim_end_matches(['\n', '\r']).to_owned();
            let first_is_error = lines.is_empty() && line.starts_with("{\"type\":\"error\"");
            let terminal = match op {
                "drain" => line.starts_with("{\"type\":\"ack\",\"op\":\"drain\""),
                "close" => line.starts_with("{\"type\":\"closed\""),
                "shutdown" => line.starts_with("{\"type\":\"ack\",\"op\":\"shutdown\""),
                _ => true,
            };
            lines.push(line);
            if terminal || first_is_error {
                return lines;
            }
        }
    }
}

#[test]
fn mid_refit_snapshot_migrates_across_tcp_shards() {
    let old = "alice";
    // A restore name that lands on the other shard of a 2-shard pool.
    let new = ["bob", "carol", "dave", "erin"]
        .into_iter()
        .find(|n| shard_of(n, 2) != shard_of(old, 2))
        .expect("some candidate hashes to the other shard");

    // Uninterrupted in-process reference.
    let head: Vec<(String, &str)> =
        std::iter::once((open_refit_req(old), "open")).chain(invoke_script(old, 0, 40)).collect();
    let tail = |name: &str| -> Vec<(String, &'static str)> {
        invoke_script(name, 40, 24).into_iter().chain(closing_script(name)).collect()
    };
    let mut rt = ServeRuntime::new();
    replay(&mut rt, &head);
    let expected = replay(&mut rt, &tail(old));

    // Networked run: same head on `old`'s shard, snapshot mid-refit,
    // close the original, restore under `new` on the *other* shard,
    // continue there.
    let server = NetServer::bind_tcp("127.0.0.1:0", 2).unwrap();
    let addr = server.addr().to_owned();
    let mut client = Client::connect(&addr);
    for (line, op) in &head {
        client.request(line, op);
    }
    let snap =
        client.request(&format!("{{\"op\":\"snapshot\",\"session\":\"{old}\"}}"), "snapshot");
    let state = parse_object(&snap[0]).unwrap().string("state").expect("state").to_owned();
    assert!(state.contains(" refit=1"), "{state}");
    client.request(&format!("{{\"op\":\"close\",\"session\":\"{old}\"}}"), "close");

    let ack = client.request(&restore_req(new, &state), "restore");
    assert!(ack[0].starts_with("{\"type\":\"ack\",\"op\":\"restore\""), "{ack:?}");

    let mut migrated = Vec::new();
    for (line, op) in &tail(new) {
        migrated.extend(client.request(line, op));
    }
    client.request("{\"op\":\"shutdown\"}", "shutdown");
    drop(client);
    server.join().unwrap();

    // Identical streams modulo the session's name.
    let renamed: Vec<String> = migrated
        .iter()
        .map(|l| l.replace(&format!("\"session\":\"{new}\""), &format!("\"session\":\"{old}\"")))
        .collect();
    assert_eq!(renamed, expected, "migrated mid-refit session diverged");
}
