//! Network transports for `rumba serve`: TCP and Unix-socket listeners
//! that fan client connections into the shard pool.
//!
//! Both transports share one path: a non-blocking acceptor thread polls
//! the listener and spawns a detached thread per connection; each
//! connection thread reads newline-delimited requests with a hard line
//! cap ([`MAX_LINE`]) and forwards them to the shared [`Router`], so a
//! malformed, oversized or torn line costs only its own connection —
//! never the shard or other clients.
//!
//! The Unix transport owns its socket file via an RAII guard: the path
//! is unlinked when the server is joined or dropped (including on error
//! paths), so a clean `shutdown` no longer leaves a stale socket behind.

use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rumba_obs::Event;

use crate::protocol::error_line;
use crate::shard::Router;

/// Hard cap on one request line, in bytes (newline excluded). Longer
/// lines are consumed and answered with a single `error` response
/// instead of buffering without bound.
pub const MAX_LINE: usize = 256 * 1024;

/// Outcome of reading one capped line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineRead {
    /// A complete line within the cap (terminator stripped).
    Line(String),
    /// The stream ended mid-line: the unterminated tail (an abrupt
    /// client disconnect on sockets; a final line without `\n` on stdin).
    Partial(String),
    /// The line exceeded `cap` bytes; its payload was consumed and
    /// discarded up to and including the next newline (or EOF).
    Oversized,
    /// Clean end of stream at a line boundary.
    Eof,
}

/// Reads one `\n`-terminated line of at most `cap` bytes. A trailing
/// `\r` is stripped (matching [`BufRead::lines`]), and oversized input
/// is drained rather than buffered, so a hostile client cannot grow
/// server memory past the cap.
///
/// # Errors
///
/// Propagates reader I/O failures other than `Interrupted`.
pub fn read_line_capped(reader: &mut impl BufRead, cap: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF.
            if oversized {
                return Ok(LineRead::Oversized);
            }
            if buf.is_empty() {
                return Ok(LineRead::Eof);
            }
            strip_cr(&mut buf);
            return Ok(LineRead::Partial(String::from_utf8_lossy(&buf).into_owned()));
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if !oversized && buf.len() + pos <= cap {
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                strip_cr(&mut buf);
                return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
            reader.consume(pos + 1);
            return Ok(LineRead::Oversized);
        }
        let len = chunk.len();
        if !oversized {
            if buf.len() + len > cap {
                oversized = true;
                buf.clear();
            } else {
                buf.extend_from_slice(chunk);
            }
        }
        reader.consume(len);
    }
}

fn strip_cr(buf: &mut Vec<u8>) {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
}

/// Serves one connection against the router until EOF, a torn line, or
/// an I/O failure; returns the number of requests handled. Oversized
/// lines are answered in-band and the connection continues; a partial
/// final line (abrupt disconnect mid-request) is discarded — a torn
/// request is never executed.
fn drive(router: &Router, reader: &mut impl BufRead, writer: &mut impl Write) -> io::Result<u64> {
    let mut requests = 0u64;
    loop {
        match read_line_capped(reader, MAX_LINE)? {
            LineRead::Eof | LineRead::Partial(_) => return Ok(requests),
            LineRead::Oversized => {
                requests += 1;
                let msg = format!("line exceeds {MAX_LINE} bytes");
                writeln!(writer, "{}", error_line("parse", &msg))?;
                writer.flush()?;
            }
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                requests += 1;
                for response in router.route(&line) {
                    writeln!(writer, "{response}")?;
                }
                writer.flush()?;
            }
        }
    }
}

/// Unlinks the Unix socket path when the server winds down, including on
/// panic and error paths.
#[derive(Debug)]
struct SocketGuard(PathBuf);

impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A running network server: acceptor thread + shard pool behind one
/// [`Router`].
#[derive(Debug)]
pub struct NetServer {
    addr: String,
    router: Arc<Router>,
    acceptor: JoinHandle<io::Result<u64>>,
    socket_guard: Option<SocketGuard>,
}

impl NetServer {
    /// Binds a TCP listener (use port `:0` for an ephemeral port; the
    /// resolved address is [`NetServer::addr`]) over `shards` shard
    /// threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_tcp(addr: &str, shards: usize) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let router = Arc::new(Router::new(shards));
        let acceptor = {
            let router = Arc::clone(&router);
            std::thread::spawn(move || {
                accept_loop(&router, "tcp", || match listener.accept() {
                    Ok((stream, _)) => {
                        // Request/response round trips on a Nagle'd socket
                        // stall ~40ms each on the delayed-ACK timer.
                        stream.set_nodelay(true)?;
                        let reader = stream.try_clone()?;
                        Ok(Some((reader, stream)))
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
                    Err(e) => Err(e),
                })
            })
        };
        Ok(Self { addr, router, acceptor, socket_guard: None })
    }

    /// Binds a Unix-socket listener at `path` over `shards` shard
    /// threads. A stale socket file from a crashed predecessor is
    /// unlinked before binding, and the file is removed again when the
    /// server winds down.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_unix(path: &str, shards: usize) -> io::Result<Self> {
        // Rebind fallback: clear a stale socket left by a crashed server.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let guard = SocketGuard(PathBuf::from(path));
        listener.set_nonblocking(true)?;
        let router = Arc::new(Router::new(shards));
        let acceptor = {
            let router = Arc::clone(&router);
            std::thread::spawn(move || {
                accept_loop(&router, "unix", || match listener.accept() {
                    Ok((stream, _)) => {
                        let reader = stream.try_clone()?;
                        Ok(Some((reader, stream)))
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
                    Err(e) => Err(e),
                })
            })
        };
        Ok(Self { addr: path.to_owned(), router, acceptor, socket_guard: Some(guard) })
    }

    /// The bound address: `host:port` for TCP, the socket path for Unix.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The shared router (e.g. for in-process requests or tests).
    #[must_use]
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Waits for the acceptor to stop (a client sent `shutdown`) and
    /// returns the number of connections served. The Unix socket file, if
    /// any, is unlinked here.
    ///
    /// # Errors
    ///
    /// Propagates listener I/O failures from the acceptor thread.
    pub fn join(self) -> io::Result<u64> {
        let served =
            self.acceptor.join().map_err(|_| io::Error::other("acceptor thread panicked"))??;
        drop(self.socket_guard);
        Ok(served)
    }
}

/// Polls `accept` until the router closes (a `shutdown` was processed),
/// spawning a detached thread per connection. Returns the number of
/// connections accepted.
fn accept_loop<S, F>(
    router: &Arc<Router>,
    transport: &'static str,
    mut accept: F,
) -> io::Result<u64>
where
    S: Read + Write + Send + 'static,
    F: FnMut() -> io::Result<Option<(S, S)>>,
{
    static CONNECTION_ID: AtomicU64 = AtomicU64::new(0);
    let mut served = 0u64;
    while !router.is_closed() {
        match accept()? {
            Some((reader, writer)) => {
                served += 1;
                let id = CONNECTION_ID.fetch_add(1, Ordering::Relaxed);
                let router = Arc::clone(router);
                std::thread::spawn(move || {
                    if rumba_obs::enabled() {
                        rumba_obs::global_sink().emit(&Event::Connection {
                            id,
                            transport: transport.to_owned(),
                            action: "accept".to_owned(),
                            requests: 0,
                        });
                    }
                    let mut reader = BufReader::new(reader);
                    let mut writer = writer;
                    let requests = drive(&router, &mut reader, &mut writer).unwrap_or(0);
                    if rumba_obs::enabled() {
                        rumba_obs::global_sink().emit(&Event::Connection {
                            id,
                            transport: transport.to_owned(),
                            action: "close".to_owned(),
                            requests,
                        });
                    }
                });
            }
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    Ok(served)
}

/// Connects to a server over TCP (`host:port`) or a Unix socket path and
/// returns buffered reader/writer halves — the client side of the
/// transports above, shared by the CLI and the bench harness.
///
/// # Errors
///
/// Propagates connect failures.
pub fn connect(addr: &str) -> io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
    if addr.contains(':') {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok((Box::new(BufReader::new(reader)), Box::new(stream)))
    } else {
        let stream = UnixStream::connect(addr)?;
        let reader = stream.try_clone()?;
        Ok((Box::new(BufReader::new(reader)), Box::new(stream)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(input: &str, cap: usize) -> Vec<LineRead> {
        let mut reader = io::BufReader::new(input.as_bytes());
        let mut out = Vec::new();
        loop {
            let item = read_line_capped(&mut reader, cap).unwrap();
            let done = item == LineRead::Eof;
            out.push(item);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn capped_reader_matches_lines_for_well_formed_input() {
        let got = read_all("alpha\nbeta\r\n\ngamma", 64);
        assert_eq!(
            got,
            vec![
                LineRead::Line("alpha".into()),
                LineRead::Line("beta".into()),
                LineRead::Line(String::new()),
                LineRead::Partial("gamma".into()),
                LineRead::Eof,
            ]
        );
    }

    #[test]
    fn oversized_lines_are_drained_not_buffered() {
        let long = "x".repeat(100);
        let input = format!("{long}\nshort\n");
        let got = read_all(&input, 16);
        assert_eq!(got, vec![LineRead::Oversized, LineRead::Line("short".into()), LineRead::Eof]);
        // Oversized tail without a newline drains to EOF.
        assert_eq!(read_all(&long, 16), vec![LineRead::Oversized, LineRead::Eof]);
        // Exactly at the cap still passes.
        assert_eq!(read_all("abcd\n", 4), vec![LineRead::Line("abcd".into()), LineRead::Eof]);
        // One past the cap does not.
        assert_eq!(read_all("abcde\n", 4), vec![LineRead::Oversized, LineRead::Eof]);
    }

    #[test]
    fn tcp_server_round_trips_and_shuts_down() {
        let server = NetServer::bind_tcp("127.0.0.1:0", 2).unwrap();
        let addr = server.addr().to_owned();
        let (mut reader, mut writer) = connect(&addr).unwrap();
        writeln!(
            writer,
            "{{\"op\":\"open\",\"session\":\"t0\",\"kernel\":\"gaussian\",\"seed\":7,\
             \"window\":16,\"queue\":4}}"
        )
        .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("{\"type\":\"ack\",\"op\":\"open\""), "{line}");
        writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
        writer.flush().unwrap();
        let mut saw_ack = false;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            if line.contains("\"op\":\"shutdown\"") {
                saw_ack = true;
                break;
            }
        }
        assert!(saw_ack);
        assert!(server.join().unwrap() >= 1);
    }

    #[test]
    fn unix_socket_file_is_unlinked_on_join() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rumba-transport-test-{}.sock", std::process::id()));
        let path_str = path.to_str().unwrap().to_owned();
        let server = NetServer::bind_unix(&path_str, 1).unwrap();
        assert!(path.exists());
        let (mut reader, mut writer) = connect(&path_str).unwrap();
        writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"op\":\"shutdown\""), "{line}");
        server.join().unwrap();
        assert!(!path.exists(), "stale socket file left behind");
    }
}
