//! One tenant of the serving layer: a calibrated Rumba pipeline behind a
//! bounded request queue.

use std::collections::VecDeque;

use rumba_accel::{CheckerUnit, Npu};
use rumba_apps::{kernel_by_name, Kernel, Split};
use rumba_core::event_sim::{simulate_detailed_with_faults, QueueConfig};
use rumba_core::runtime::MAX_ZOO_PRESSURE;
use rumba_core::runtime::{FixPolicy, RefitConfig, RumbaSystem, RuntimeConfig, WatchdogConfig};
use rumba_core::trainer::{invocation_errors, train_app, OfflineConfig, TrainedApp};
use rumba_core::tuner::{calibrate_threshold, Tuner, TuningMode};
use rumba_core::zoo::{train_zoo, ModelZoo};
use rumba_faults::FaultPlan;
use rumba_nn::{Matrix, MatrixView, NnDataset, NnError, Scratch};
use rumba_obs::Event;
use rumba_predict::{EmaDetector, ErrorEstimator};

use crate::snapshot::SnapshotParts;
use crate::ServeError;

/// Which online checker a session runs. Mirrors the CLI's checker choice,
/// restricted to the schemes that need no extra training pass at session
/// open (the serving layer opens sessions on the request path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckerKind {
    /// Linear per-output error model.
    Linear,
    /// Decision-tree error model (the paper's default).
    #[default]
    Tree,
    /// Exponential-moving-average output-drift detector.
    Ema,
    /// Error value prediction (EVP).
    Evp,
}

impl CheckerKind {
    /// Parses the protocol spelling (`"linear"`, `"tree"`, `"ema"`,
    /// `"evp"`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted spellings.
    pub fn parse(text: &str) -> Result<Self, ServeError> {
        match text {
            "linear" => Ok(Self::Linear),
            "tree" => Ok(Self::Tree),
            "ema" => Ok(Self::Ema),
            "evp" => Ok(Self::Evp),
            other => Err(ServeError::InvalidConfig(format!(
                "unknown checker {other:?} (expected linear, tree, ema or evp)"
            ))),
        }
    }

    /// Protocol spelling of this checker.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Linear => "linear",
            Self::Tree => "tree",
            Self::Ema => "ema",
            Self::Evp => "evp",
        }
    }
}

/// What happens when a request arrives and the session's bounded queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Reject the request (503-style). The caller is told and the
    /// rejection is counted; nothing enters the pipeline.
    #[default]
    Shed,
    /// Drain the session's queue through the pipeline first, then admit.
    /// Trades latency for completeness; the queue bound still holds.
    Block,
}

impl AdmissionPolicy {
    /// Parses the protocol spelling (`"shed"` or `"block"`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted spellings.
    pub fn parse(text: &str) -> Result<Self, ServeError> {
        match text {
            "shed" => Ok(Self::Shed),
            "block" => Ok(Self::Block),
            other => Err(ServeError::InvalidConfig(format!(
                "unknown admission policy {other:?} (expected shed or block)"
            ))),
        }
    }

    /// Protocol spelling of this policy.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Shed => "shed",
            Self::Block => "block",
        }
    }
}

/// Everything needed to open a session. The calibration flow mirrors
/// `rumba run`: train (or cache-load) the app, probe the checker on the
/// train split, calibrate the firing threshold against the mode's error
/// target.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Benchmark kernel name (Table 1 of the paper).
    pub kernel: String,
    /// Master seed for training, calibration and fault injection.
    pub seed: u64,
    /// Online checker scheme.
    pub checker: CheckerKind,
    /// Tuning mode (TOQ / energy budget / best quality).
    pub mode: TuningMode,
    /// Iterations per tuning window.
    pub window: usize,
    /// Pipeline queue bounds; `input_capacity` is also the session's
    /// request-queue bound for admission control.
    pub queue: QueueConfig,
    /// Full-queue behaviour.
    pub admission: AdmissionPolicy,
    /// Optional deterministic fault plan, scoped to this session only.
    pub faults: Option<FaultPlan>,
    /// Optional quality watchdog for graceful degradation.
    pub watchdog: Option<WatchdogConfig>,
    /// What flagged invocations get: CPU re-execution (the default) or
    /// in-place compensation for the mildly wrong band.
    pub fix_policy: FixPolicy,
    /// Model-zoo size: 0 (the default) serves the single Rumba
    /// accelerator exactly as before; `N > 0` trains an `N`-tier
    /// quality/energy ladder and routes every request to the cheapest
    /// tier predicted to meet the session's quality target (exact CPU as
    /// the last resort). Under queue pressure the session degrades to
    /// cheaper tiers before any request is shed.
    pub zoo: usize,
    /// Opt-in online checker re-fit (`false`, the default, serves exactly
    /// as before, byte for byte): when set, the session arms the
    /// runtime's refit machinery — an exact-result audit channel feeding
    /// a bounded deterministic reservoir, re-fit and threshold
    /// re-calibration at the watchdog's `Recalibrated` rung — with the
    /// session's own quality budget as the re-calibration target. The
    /// reservoir and refit epoch travel in the snapshot, so a mid-refit
    /// migration continues bit-for-bit.
    pub refit: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            kernel: "gaussian".to_owned(),
            seed: 42,
            checker: CheckerKind::default(),
            mode: TuningMode::TargetQuality { toq: 0.9 },
            window: 64,
            queue: QueueConfig::default(),
            admission: AdmissionPolicy::default(),
            faults: None,
            watchdog: None,
            fix_policy: FixPolicy::default(),
            zoo: 0,
            refit: false,
        }
    }
}

/// One completed request, in submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Stream position (0-based invocation index within the session).
    pub index: usize,
    /// Merged output: accelerator result, or the exact CPU re-execution
    /// when the check fired.
    pub output: Vec<f64>,
    /// Whether the check fired and the invocation was re-executed.
    pub fired: bool,
    /// The checker's predicted error for this invocation.
    pub predicted_error: f64,
    /// True error of the merged output against the exact computation —
    /// the conformance harness's oracle.
    pub measured_error: f64,
}

/// Running counters for one session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that went through the pipeline.
    pub processed: u64,
    /// Invocations re-executed on the CPU.
    pub fixes: u64,
    /// Invocations compensated in place (predicted error subtracted; no
    /// CPU re-execution).
    pub compensated: u64,
    /// Requests rejected by the shed policy.
    pub shed: u64,
    /// Requests that forced a blocking drain before admission.
    pub blocked: u64,
    /// Highest request-queue depth observed.
    pub queue_high_water: usize,
    /// Sum of measured output errors over processed requests.
    pub error_sum: f64,
    /// Pipeline drains executed.
    pub drains: u64,
    /// Drains whose event-level simulation saw accelerator back-pressure.
    pub back_pressured_drains: u64,
    /// Highest recovery-queue occupancy across all drains.
    pub recovery_high_water: usize,
    /// Total simulated pipeline cycles across all drains.
    pub total_cycles: f64,
    /// Simulated CPU re-execution cycles across all drains.
    pub cpu_busy_cycles: f64,
    /// Tuner threshold after the final window flush (set at close; 0
    /// while the session is live — read [`Session::threshold`] instead).
    pub final_threshold: f64,
}

impl SessionStats {
    /// Mean measured output error over processed requests (NaN before the
    /// first request completes).
    #[must_use]
    pub fn mean_error(&self) -> f64 {
        if self.processed == 0 {
            f64::NAN
        } else {
            self.error_sum / self.processed as f64
        }
    }

    /// Simulated CPU utilization across all drains (0 before the first).
    #[must_use]
    pub fn cpu_utilization(&self) -> f64 {
        if self.total_cycles > 0.0 {
            self.cpu_busy_cycles / self.total_cycles
        } else {
            0.0
        }
    }
}

/// Outcome of a submission attempt (see [`AdmissionPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admit {
    /// Queued; the payload is the new queue depth.
    Accepted(usize),
    /// Rejected under the shed policy.
    Shed,
    /// Queue full under the block policy — the caller must drain this
    /// session and retry.
    MustDrain,
}

/// A session's pending requests, detached for batch compute. `base` is the
/// stream position of row 0, so offset batch invocation reproduces the
/// per-row fault stream bit-exactly.
#[derive(Debug)]
pub(crate) struct PendingBatch {
    pub(crate) base: usize,
    pub(crate) rows: usize,
    pub(crate) inputs: Vec<f64>,
    /// Per-row zoo tier decisions, fixed serially at detach time from the
    /// session's routing bar (`None` without a zoo). Routing before the
    /// parallel phase keeps the decision a pure function of (input,
    /// session state), independent of worker count.
    pub(crate) routes: Option<Vec<usize>>,
}

/// Pure accelerator compute for one pending batch. Free-standing (rather
/// than a `Session` method) so the scheduler's parallel phase can run it
/// from `&Npu` / `&ModelZoo` alone — `Session` itself is deliberately not
/// `Sync`.
///
/// A routed batch is grouped into per-tier sub-batches so each tier's
/// SIMD/flat-matrix path still runs over contiguous gathered rows; rows
/// routed to the exact-CPU tier are left zeroed (the serial replay
/// computes them exactly).
pub(crate) fn compute_batch(
    npu: &Npu,
    zoo: Option<&ModelZoo>,
    input_dim: usize,
    batch: &PendingBatch,
    scratch: &mut Scratch,
    out: &mut Matrix,
) -> Result<(), NnError> {
    let (Some(routes), Some(zoo)) = (&batch.routes, zoo) else {
        let view = MatrixView::new(&batch.inputs, batch.rows, input_dim);
        npu.invoke_batch_at(batch.base, view, scratch, out)?;
        return Ok(());
    };
    out.resize(batch.rows, npu.output_dim());
    let mut gathered = Vec::new();
    let mut positions = Vec::new();
    let mut tier_out = Matrix::default();
    for t in 0..zoo.len() {
        gathered.clear();
        positions.clear();
        let mut local_rows = Vec::new();
        for (r, &route) in routes.iter().enumerate() {
            if route == t {
                gathered.extend_from_slice(&batch.inputs[r * input_dim..(r + 1) * input_dim]);
                positions.push(batch.base + r);
                local_rows.push(r);
            }
        }
        if positions.is_empty() {
            continue;
        }
        let view = MatrixView::new(&gathered, positions.len(), input_dim);
        zoo.tier(t).npu.invoke_rows_at(&positions, view, scratch, &mut tier_out)?;
        for (g, &r) in local_rows.iter().enumerate() {
            out.row_mut(r).copy_from_slice(tier_out.row(g));
        }
    }
    Ok(())
}

/// One tenant: calibrated pipeline, bounded request queue, completed
/// results, counters.
#[derive(Debug)]
pub struct Session {
    name: String,
    kernel: Box<dyn Kernel>,
    system: RumbaSystem,
    admission: AdmissionPolicy,
    queue: QueueConfig,
    fault_plan: Option<FaultPlan>,
    /// The full opening configuration, kept verbatim so a snapshot can
    /// reproduce this session on any shard or process.
    config: SessionConfig,
    cpu_cycles: f64,
    /// Flat row-major request queue (depth = `pending_rows`).
    pending_inputs: Vec<f64>,
    pending_rows: usize,
    completed: VecDeque<SessionResult>,
    scratch: Scratch,
    batch_out: Matrix,
    out_buf: Vec<f64>,
    exact_buf: Vec<f64>,
    stats: SessionStats,
}

impl Session {
    /// Opens a session: trains (or cache-loads) the app, calibrates the
    /// checker threshold exactly as `rumba run` does, and arms the
    /// per-session fault plan and watchdog.
    ///
    /// # Errors
    ///
    /// Fails on unknown kernels, invalid configuration, or offline
    /// training failures.
    pub fn open(name: &str, config: SessionConfig) -> Result<Self, ServeError> {
        let kernel = kernel_by_name(&config.kernel)
            .ok_or_else(|| ServeError::UnknownKernel(config.kernel.clone()))?;
        let offline = OfflineConfig { seed: config.seed, ..OfflineConfig::default() };
        let app = train_app(kernel.as_ref(), &offline)?;
        let threshold = calibrate(&app, config.checker, kernel.as_ref(), config.seed, config.mode)?;
        let session = Self::assemble(name, config, &app, threshold)?;
        session.emit_session_event("open");
        Ok(session)
    }

    /// Rebuilds a session from a [`Session::snapshot`] line under `name`
    /// (which need not match the snapshotted session's name — placement is
    /// a pure hash of the name, so restoring under a new name migrates the
    /// stream to whatever shard owns it). The restored session continues
    /// bit-for-bit where the snapshot was taken: same tuner threshold,
    /// checker history, fault-stream position, queued inputs, and
    /// uncollected results.
    ///
    /// # Errors
    ///
    /// Fails on malformed snapshot text, unknown kernels, or offline
    /// training failures.
    pub fn restore(name: &str, text: &str) -> Result<Self, ServeError> {
        let parts = SnapshotParts::parse(text)
            .map_err(|e| ServeError::InvalidConfig(format!("snapshot: {e}")))?;
        let config = parts.config.clone();
        let kernel = kernel_by_name(&config.kernel)
            .ok_or_else(|| ServeError::UnknownKernel(config.kernel.clone()))?;
        let offline = OfflineConfig { seed: config.seed, ..OfflineConfig::default() };
        let app = train_app(kernel.as_ref(), &offline)?;
        // The placeholder threshold never fires: `import_state` rebuilds
        // the tuner at the snapshotted threshold (and the calibration
        // anchor), so the calibration probe is skipped entirely.
        let mut session = Self::assemble(name, config, &app, 1.0)?;
        session
            .system
            .import_state(&parts.runtime)
            .map_err(|e| ServeError::InvalidConfig(format!("snapshot runtime: {e}")))?;
        session.import_stats(&parts.stats)?;
        session.import_queue(&parts.queue)?;
        session.import_completed(&parts.completed)?;
        session.emit_session_event("restore");
        Ok(session)
    }

    /// Serializes the session's full live state as one plain-text
    /// config-word line (see [`crate::snapshot`] for the format). The
    /// session keeps running; the snapshot is a copy, not a detach.
    #[must_use]
    pub fn snapshot(&self) -> String {
        let dim = self.kernel.input_dim();
        let mut queue = Vec::with_capacity(1 + self.pending_rows * dim);
        queue.push(self.pending_rows as u64);
        queue.extend(self.pending_inputs[..self.pending_rows * dim].iter().map(|x| x.to_bits()));
        let out_dim = self.kernel.output_dim();
        let mut completed = Vec::with_capacity(1 + self.completed.len() * (4 + out_dim));
        completed.push(self.completed.len() as u64);
        for r in &self.completed {
            completed.extend([
                r.index as u64,
                u64::from(r.fired),
                r.predicted_error.to_bits(),
                r.measured_error.to_bits(),
            ]);
            completed.extend(r.output.iter().map(|x| x.to_bits()));
        }
        SnapshotParts {
            config: self.config.clone(),
            runtime: self.system.export_state(),
            stats: self.export_stats(),
            queue,
            completed,
        }
        .encode()
    }

    /// Shared construction path of [`Session::open`] and
    /// [`Session::restore`]: validates the configuration and assembles the
    /// pipeline around an already-trained app at the given threshold.
    fn assemble(
        name: &str,
        config: SessionConfig,
        app: &TrainedApp,
        threshold: f64,
    ) -> Result<Self, ServeError> {
        let kernel = kernel_by_name(&config.kernel)
            .ok_or_else(|| ServeError::UnknownKernel(config.kernel.clone()))?;
        if config.window == 0 {
            return Err(ServeError::InvalidConfig("window must be positive".into()));
        }
        if config.queue.input_capacity == 0 {
            return Err(ServeError::InvalidConfig("queue capacity must be positive".into()));
        }
        let checker = build_checker(config.checker, app, kernel.as_ref())?;
        let runtime = RuntimeConfig {
            window: config.window,
            recovery_queue_capacity: config.queue.recovery_capacity,
            watchdog: config.watchdog,
            fix_policy: config.fix_policy,
            ..RuntimeConfig::default()
        };
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(checker),
            Tuner::new(config.mode, threshold)?,
            runtime,
        )?;
        system.set_session_label(name);
        system.set_fault_plan(config.faults.clone());
        if config.zoo > 0 {
            let offline = OfflineConfig { seed: config.seed, ..OfflineConfig::default() };
            let zoo = train_zoo(kernel.as_ref(), app, &offline, config.zoo)?;
            // The bar base is calibrated on the train split under the same
            // mean-error contract as the firing threshold (a raw 1 - toq
            // per-invocation cut would over-route to exact CPU).
            let train = kernel.generate(Split::Train, config.seed);
            // A tenth of the budget is held back as generalization margin
            // (the tiers and routers were fit on this same split).
            let budget = 0.9 * quality_budget(config.mode);
            let rows: Vec<&[f64]> = (0..train.len()).map(|i| train.input(i)).collect();
            let mut tier_errors: Vec<Vec<f64>> = zoo
                .tiers()
                .iter()
                .map(|t| invocation_errors(kernel.as_ref(), &t.npu, &train))
                .collect::<Result<_, _>>()?;
            let bar = zoo.calibrate_bar(&rows, &tier_errors, budget);
            // Queue-pressure degradation may widen the bar only as far as
            // the checker/recovery loop can still vouch for the budget:
            // rows the checker flags re-execute exactly at every tier, so
            // they are credited as zero error and the same calibration run
            // again gives the widest safe bar. The mask uses the
            // calibration-time threshold — a pure function of the config,
            // not the tuner's adaptive state — so `restore` rebuilds the
            // identical ceiling.
            let predicted = probe_predictions(app, config.checker, kernel.as_ref(), &train)?;
            let fire_threshold =
                calibrate_threshold(&predicted, &app.train_errors, quality_budget(config.mode));
            for errors in &mut tier_errors {
                for (e, p) in errors.iter_mut().zip(&predicted) {
                    if *p > fire_threshold {
                        *e = 0.0;
                    }
                }
            }
            let ceiling = zoo.calibrate_bar(&rows, &tier_errors, budget);
            system.attach_zoo(zoo, bar)?;
            system.set_zoo_pressure_ceiling(ceiling);
        }
        // Armed before `begin_stream` (and thus before any `restore`
        // imports state), so a snapshot's refit tail — epoch, audit
        // accumulators, re-fit model words, reservoir — parses and lands
        // in an already-armed runtime.
        if config.refit {
            system.arm_refit(RefitConfig {
                quality_budget: quality_budget(config.mode),
                ..RefitConfig::default()
            })?;
        }
        system.begin_stream();

        let (input_dim, output_dim) = (kernel.input_dim(), kernel.output_dim());
        let cpu_cycles = kernel.cpu_cycles();
        Ok(Self {
            name: name.to_owned(),
            kernel,
            system,
            admission: config.admission,
            queue: config.queue,
            fault_plan: config.faults.clone(),
            cpu_cycles,
            pending_inputs: Vec::with_capacity(config.queue.input_capacity * input_dim),
            pending_rows: 0,
            completed: VecDeque::new(),
            scratch: Scratch::new(),
            batch_out: Matrix::default(),
            out_buf: vec![0.0; output_dim],
            exact_buf: vec![0.0; output_dim],
            stats: SessionStats::default(),
            config,
        })
    }

    fn emit_session_event(&self, action: &str) {
        if rumba_obs::enabled() {
            rumba_obs::global_sink().emit(&Event::Session {
                session: self.name.clone(),
                action: action.to_owned(),
                kernel: self.kernel.name().to_owned(),
                invocations: self.stats.processed,
                fixes: self.stats.fixes,
                shed: self.stats.shed,
                threshold: self.system.tuner().threshold(),
            });
        }
    }

    /// The `SessionStats` counters as snapshot words, floats as bits. The
    /// 14th word (`compensated`) is appended only when nonzero, so
    /// re-execution-only sessions keep the historical 13-word layout byte
    /// for byte.
    fn export_stats(&self) -> Vec<u64> {
        let s = &self.stats;
        let mut words = vec![
            s.submitted,
            s.processed,
            s.fixes,
            s.shed,
            s.blocked,
            s.queue_high_water as u64,
            s.error_sum.to_bits(),
            s.drains,
            s.back_pressured_drains,
            s.recovery_high_water as u64,
            s.total_cycles.to_bits(),
            s.cpu_busy_cycles.to_bits(),
            s.final_threshold.to_bits(),
        ];
        if s.compensated > 0 {
            words.push(s.compensated);
        }
        words
    }

    fn import_stats(&mut self, words: &[u64]) -> Result<(), ServeError> {
        if words.len() != 13 && words.len() != 14 {
            return Err(ServeError::InvalidConfig(format!(
                "snapshot stats wants 13 or 14 words, got {}",
                words.len()
            )));
        }
        self.stats = SessionStats {
            submitted: words[0],
            processed: words[1],
            fixes: words[2],
            shed: words[3],
            blocked: words[4],
            queue_high_water: words[5] as usize,
            error_sum: f64::from_bits(words[6]),
            drains: words[7],
            back_pressured_drains: words[8],
            recovery_high_water: words[9] as usize,
            total_cycles: f64::from_bits(words[10]),
            cpu_busy_cycles: f64::from_bits(words[11]),
            final_threshold: f64::from_bits(words[12]),
            compensated: words.get(13).copied().unwrap_or(0),
        };
        Ok(())
    }

    fn import_queue(&mut self, words: &[u64]) -> Result<(), ServeError> {
        let malformed =
            |detail: String| ServeError::InvalidConfig(format!("snapshot queue: {detail}"));
        let (&rows, inputs) =
            words.split_first().ok_or_else(|| malformed("empty section".into()))?;
        let rows = rows as usize;
        let expect = rows
            .checked_mul(self.kernel.input_dim())
            .ok_or_else(|| malformed(format!("row count {rows} overflows")))?;
        if inputs.len() != expect {
            return Err(malformed(format!(
                "{rows} rows want {expect} input words, got {}",
                inputs.len()
            )));
        }
        self.pending_inputs.clear();
        self.pending_inputs.extend(inputs.iter().map(|&w| f64::from_bits(w)));
        self.pending_rows = rows;
        Ok(())
    }

    fn import_completed(&mut self, words: &[u64]) -> Result<(), ServeError> {
        let malformed =
            |detail: String| ServeError::InvalidConfig(format!("snapshot completed: {detail}"));
        let (&count, mut rest) =
            words.split_first().ok_or_else(|| malformed("empty section".into()))?;
        let out_dim = self.kernel.output_dim();
        let record = 4 + out_dim;
        let expect = (count as usize)
            .checked_mul(record)
            .ok_or_else(|| malformed(format!("result count {count} overflows")))?;
        if rest.len() != expect {
            return Err(malformed(format!(
                "{count} results want {expect} words, got {}",
                rest.len()
            )));
        }
        self.completed.clear();
        for _ in 0..count {
            let (head, tail) = rest.split_at(record);
            let fired = match head[1] {
                0 => false,
                1 => true,
                flag => return Err(malformed(format!("fired flag must be 0|1, got {flag}"))),
            };
            self.completed.push_back(SessionResult {
                index: head[0] as usize,
                fired,
                predicted_error: f64::from_bits(head[2]),
                measured_error: f64::from_bits(head[3]),
                output: head[4..].iter().map(|&w| f64::from_bits(w)).collect(),
            });
            rest = tail;
        }
        Ok(())
    }

    /// Session name (the telemetry label).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Kernel name served by this session.
    #[must_use]
    pub fn kernel_name(&self) -> &str {
        self.kernel.name()
    }

    /// Request payload width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.kernel.input_dim()
    }

    /// Current request-queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.pending_rows
    }

    /// Configured request-queue bound (before fault-induced pressure).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.queue.input_capacity
    }

    /// Completed results waiting to be collected.
    #[must_use]
    pub fn results_ready(&self) -> usize {
        self.completed.len()
    }

    /// Running counters.
    #[must_use]
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Current firing threshold of the session's tuner.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.system.tuner().threshold()
    }

    /// Admission policy.
    #[must_use]
    pub fn admission(&self) -> AdmissionPolicy {
        self.admission
    }

    /// This drain's NPU (shared-topology accelerator state is immutable
    /// during serving, so the scheduler can borrow it across threads).
    #[must_use]
    pub(crate) fn npu(&self) -> &Npu {
        self.system.npu()
    }

    /// The session's model zoo, if one is attached (immutable during
    /// serving, so the scheduler can borrow it across threads like the
    /// NPU).
    #[must_use]
    pub(crate) fn zoo(&self) -> Option<&ModelZoo> {
        self.system.zoo()
    }

    /// The session's current queue-pressure degradation rung (0 = no
    /// degradation; meaningful only with a zoo attached).
    #[must_use]
    pub fn zoo_pressure(&self) -> u32 {
        self.system.zoo_pressure()
    }

    /// Whole-stream per-tier routing counts (`zoo + 1` slots, last =
    /// exact CPU; empty without a zoo).
    #[must_use]
    pub fn stream_tiers(&self) -> &[u64] {
        self.system.stream_tiers()
    }

    /// Queue bound after `QueuePressure` faults shrink it — never below 1,
    /// so a pressured session degrades to request-at-a-time service
    /// instead of deadlocking.
    #[must_use]
    pub fn effective_capacity(&self) -> usize {
        let cap = self.queue.input_capacity;
        match &self.fault_plan {
            Some(plan) => {
                let pressured = cap.saturating_sub(
                    plan.queue_pressure(self.system.stream_invocations() + self.pending_rows),
                );
                pressured.max(1)
            }
            None => cap,
        }
    }

    /// Attempts to queue one request. Does not run the pipeline; the
    /// `Block` full-queue case is reported as [`Admit::MustDrain`] for the
    /// registry to resolve (draining needs the scheduler).
    pub(crate) fn try_submit(&mut self, input: &[f64]) -> Result<Admit, ServeError> {
        let dim = self.kernel.input_dim();
        if input.len() != dim {
            return Err(ServeError::InvalidInput(format!(
                "kernel {} expects {dim} inputs, got {}",
                self.kernel.name(),
                input.len()
            )));
        }
        if self.pending_rows >= self.effective_capacity() {
            // Degrade before shedding: every full-queue event raises the
            // zoo's pressure rung (doubling the routing bar), sliding
            // subsequent traffic toward cheaper tiers so drains finish
            // sooner. The rung decays as drains run under-capacity.
            let rung = self.system.zoo_pressure();
            if self.system.zoo().is_some() && rung < MAX_ZOO_PRESSURE {
                self.system.set_zoo_pressure(rung + 1);
            }
            return match self.admission {
                AdmissionPolicy::Shed => {
                    self.stats.shed += 1;
                    self.emit_admission();
                    Ok(Admit::Shed)
                }
                AdmissionPolicy::Block => Ok(Admit::MustDrain),
            };
        }
        self.pending_inputs.extend_from_slice(input);
        self.pending_rows += 1;
        self.stats.submitted += 1;
        self.stats.queue_high_water = self.stats.queue_high_water.max(self.pending_rows);
        Ok(Admit::Accepted(self.pending_rows))
    }

    /// Counts a blocking admission and emits its telemetry; the registry
    /// calls this right before the forced drain.
    pub(crate) fn note_blocked(&mut self) {
        self.stats.blocked += 1;
        self.emit_admission();
    }

    fn emit_admission(&self) {
        if rumba_obs::enabled() {
            rumba_obs::global_sink().emit(&Event::Admission {
                session: self.name.clone(),
                policy: self.admission.label().to_owned(),
                queue_depth: self.pending_rows as u64,
                capacity: self.effective_capacity() as u64,
                shed_total: self.stats.shed,
            });
        }
    }

    /// Detaches the pending queue as a batch for compute, stamped with its
    /// stream base position.
    pub(crate) fn take_pending(&mut self) -> Option<PendingBatch> {
        if self.pending_rows == 0 {
            return None;
        }
        let dim = self.kernel.input_dim();
        // Route the whole batch serially at the drain-time bar (which only
        // moves at window flushes and pressure changes), before any
        // parallel compute sees it.
        let routes = self.system.routing_bar().map(|bar| {
            let zoo = self.system.zoo().expect("a routing bar implies an attached zoo");
            (0..self.pending_rows)
                .map(|r| zoo.route(&self.pending_inputs[r * dim..(r + 1) * dim], bar))
                .collect()
        });
        let batch = PendingBatch {
            base: self.system.stream_invocations(),
            rows: self.pending_rows,
            inputs: std::mem::take(&mut self.pending_inputs),
            routes,
        };
        self.pending_rows = 0;
        Some(batch)
    }

    /// Replays a computed batch through the stateful decision path —
    /// checker, threshold, recovery, merge, window tuning — in arrival
    /// order, exactly as a solo stream would, and accounts the drain's
    /// event-level pipeline timing.
    pub(crate) fn absorb(
        &mut self,
        batch: PendingBatch,
        approx: Matrix,
    ) -> Result<usize, ServeError> {
        let dim = self.kernel.input_dim();
        let out_dim = self.kernel.output_dim();
        let metric = self.kernel.metric();
        let routes = batch.routes.as_deref();
        let model_tiers = self.system.zoo().map_or(usize::MAX, rumba_core::zoo::ModelZoo::len);
        let mut fired = vec![false; batch.rows];
        for (i, fired_slot) in fired.iter_mut().enumerate() {
            let input = &batch.inputs[i * dim..(i + 1) * dim];
            let outcome = match routes {
                Some(routes) => {
                    let tier = routes[i];
                    // CPU-routed rows carry no precomputed approximation;
                    // the runtime computes them exactly in the replay.
                    let approx_row = (tier < model_tiers).then(|| approx.row(i));
                    self.system.process_routed(
                        &*self.kernel,
                        input,
                        tier,
                        approx_row,
                        &mut self.out_buf,
                    )?
                }
                None => self.system.process_approx(
                    &*self.kernel,
                    input,
                    approx.row(i),
                    &mut self.out_buf,
                )?,
            };
            self.kernel.compute(input, &mut self.exact_buf);
            let err = metric.invocation_error(&self.exact_buf, &self.out_buf[..out_dim]);
            // CPU-routed rows occupy the CPU lane of the drain's pipeline
            // simulation exactly like a fired re-execution does.
            *fired_slot = outcome.fired || routes.is_some_and(|r| r[i] == model_tiers);
            self.stats.processed += 1;
            self.stats.error_sum += err;
            self.completed.push_back(SessionResult {
                index: batch.base + i,
                output: self.out_buf[..out_dim].to_vec(),
                fired: outcome.fired,
                predicted_error: outcome.predicted_error,
                measured_error: err,
            });
        }
        self.stats.fixes = self.system.stream_fixes() as u64;
        self.stats.compensated = self.system.stream_compensations() as u64;

        let run = simulate_detailed_with_faults(
            batch.rows,
            self.system.npu().cycles_per_invocation() as f64,
            self.cpu_cycles,
            &fired,
            self.queue,
            self.fault_plan.as_ref(),
        );
        self.stats.drains += 1;
        if run.back_pressured() {
            self.stats.back_pressured_drains += 1;
        }
        self.stats.recovery_high_water =
            self.stats.recovery_high_water.max(run.recovery_high_water);
        self.stats.total_cycles += run.total_cycles;
        self.stats.cpu_busy_cycles += run.cpu_busy_cycles;

        // Under-capacity drains release queue-pressure degradation one
        // rung at a time, the inverse of the full-queue raise.
        if routes.is_some() && batch.rows * 2 < self.effective_capacity() {
            let rung = self.system.zoo_pressure();
            self.system.set_zoo_pressure(rung.saturating_sub(1));
        }

        // Hand the (now larger-capacity) buffers back for reuse.
        if self.pending_inputs.capacity() < batch.inputs.capacity() {
            self.pending_inputs = batch.inputs;
            self.pending_inputs.clear();
        }
        self.batch_out = approx;
        Ok(batch.rows)
    }

    /// Drains this session's queue through the pipeline serially (the
    /// single-tenant path; the registry's `drain_all` fans compute out
    /// instead).
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn drain(&mut self) -> Result<usize, ServeError> {
        let Some(batch) = self.take_pending() else { return Ok(0) };
        let mut out = std::mem::take(&mut self.batch_out);
        {
            let (scratch, npu, zoo) = (&mut self.scratch, self.system.npu(), self.system.zoo());
            compute_batch(npu, zoo, self.kernel.input_dim(), &batch, scratch, &mut out)?;
        }
        self.absorb(batch, out)
    }

    /// Collects all completed results in submission order.
    pub fn take_results(&mut self) -> Vec<SessionResult> {
        self.completed.drain(..).collect()
    }

    /// Closes the session: drains whatever is still queued, flushes the
    /// final partial tuning window, and emits the session-tagged run
    /// summary plus the close marker.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures from the final drain.
    pub fn finish(mut self) -> Result<(SessionStats, Vec<SessionResult>), ServeError> {
        self.drain()?;
        self.system.end_stream(&*self.kernel);
        self.stats.final_threshold = self.system.tuner().threshold();
        if rumba_obs::enabled() {
            let sink = rumba_obs::global_sink();
            sink.emit(&Event::RunSummary {
                kernel: self.kernel.name().to_owned(),
                invocations: self.stats.processed,
                fixes: self.stats.fixes,
                compensated: self.stats.compensated,
                output_error: self.stats.mean_error(),
                windows: self.system.windows_flushed(),
                cpu_utilization: self.stats.cpu_utilization(),
                final_threshold: self.system.tuner().threshold(),
                tiers: self.system.stream_tiers().to_vec(),
                session: self.name.clone(),
            });
            sink.emit(&Event::Session {
                session: self.name.clone(),
                action: "close".to_owned(),
                kernel: self.kernel.name().to_owned(),
                invocations: self.stats.processed,
                fixes: self.stats.fixes,
                shed: self.stats.shed,
                threshold: self.system.tuner().threshold(),
            });
        }
        let results = self.completed.into_iter().collect();
        Ok((self.stats, results))
    }
}

fn build_checker(
    kind: CheckerKind,
    app: &TrainedApp,
    kernel: &dyn Kernel,
) -> Result<Box<dyn ErrorEstimator>, ServeError> {
    Ok(match kind {
        CheckerKind::Linear => Box::new(app.linear.clone()),
        CheckerKind::Tree => Box::new(app.tree.clone()),
        CheckerKind::Ema => Box::new(EmaDetector::new(app.ema_window, kernel.output_dim())?),
        CheckerKind::Evp => Box::new(app.evp.clone()),
    })
}

/// Probes a fresh checker of `kind` over the train split's accelerator
/// outputs, returning the per-invocation error predictions the threshold
/// (and the zoo's degradation ceiling) are calibrated against. Pure in
/// the app and config, so `open` and `restore` reproduce it bit-for-bit.
fn probe_predictions(
    app: &TrainedApp,
    kind: CheckerKind,
    kernel: &dyn Kernel,
    train: &NnDataset,
) -> Result<Vec<f64>, ServeError> {
    let mut probe = build_checker(kind, app, kernel)?;
    let mut scratch = Scratch::new();
    let mut approx = Matrix::default();
    app.rumba_npu.invoke_batch(train.inputs_view(), &mut scratch, &mut approx)?;
    Ok((0..train.len()).map(|i| probe.estimate(train.input(i), approx.row(i))).collect())
}

/// Threshold calibration, identical to `rumba run`: probe the checker over
/// the train split's accelerator outputs, then pick the threshold whose
/// firing rate meets the mode's error target on the training errors.
fn calibrate(
    app: &TrainedApp,
    kind: CheckerKind,
    kernel: &dyn Kernel,
    seed: u64,
    mode: TuningMode,
) -> Result<f64, ServeError> {
    let train = kernel.generate(Split::Train, seed);
    let predicted = probe_predictions(app, kind, kernel, &train)?;
    Ok(calibrate_threshold(&predicted, &app.train_errors, quality_budget(mode)))
}

/// The session's mean-error budget: the threshold calibration target,
/// and — when a zoo is attached — the budget
/// [`ModelZoo::calibrate_bar`] fits the routing bar to.
fn quality_budget(mode: TuningMode) -> f64 {
    match mode {
        TuningMode::TargetQuality { toq } => 1.0 - toq,
        _ => 0.10,
    }
}
