//! Session snapshot codec: one line of plain-text config-words.
//!
//! A snapshot is the serialized form of a live serving session — its
//! opening configuration plus every piece of online state (tuner
//! threshold, checker history, window counters, fault accounting, queued
//! inputs, uncollected results). The encoding follows the
//! `TrainedModelCache` family: human-readable tokens, floats as the
//! `{:016x}` hex of their IEEE-754 bits so round-trips are bit-exact, and
//! a versioned header so stale snapshots fail loudly instead of decoding
//! garbage.
//!
//! The whole snapshot is a single line (no newlines, characters drawn
//! from `[a-z0-9 =:,._-]`), so it embeds verbatim in a protocol JSON
//! string:
//!
//! ```text
//! rumba-session-snapshot v1 kernel=gaussian seed=7 checker=ema
//!     mode=toq:3feccccccccccccd window=16 queue=6,16,64 admission=shed
//!     section runtime 25 3f91a... section stats 13 ... section queue 3 ...
//! ```
//!
//! (wrapped here for readability). The session *name* is deliberately not
//! part of the snapshot: `restore` names the session, which is what lets
//! a snapshot migrate to a different shard — placement is a pure hash of
//! the name — or to a differently named session entirely.

use rumba_core::event_sim::QueueConfig;
use rumba_core::runtime::{FixPolicy, WatchdogConfig};
use rumba_core::tuner::TuningMode;
use rumba_faults::{FaultModel, FaultPlan};

use crate::session::{AdmissionPolicy, CheckerKind, SessionConfig};

/// Leading tokens of every snapshot; bump the version when the word
/// layout changes.
pub const FORMAT_HEADER: &str = "rumba-session-snapshot v1";

/// A parsed (or to-be-encoded) snapshot: the opening configuration plus
/// the raw word sections the session's components export.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SnapshotParts {
    /// Everything `Session::open` needs (fault plan and watchdog ride in
    /// their own sections of the encoded form).
    pub(crate) config: SessionConfig,
    /// `RumbaSystem::export_state` words (tuner, windows, checker, ...).
    pub(crate) runtime: Vec<u64>,
    /// The `SessionStats` counters (13, plus a trailing `compensated`
    /// word when nonzero).
    pub(crate) stats: Vec<u64>,
    /// Queued-but-undrained request rows: `[rows, input bits...]`.
    pub(crate) queue: Vec<u64>,
    /// Completed-but-uncollected results:
    /// `[count, (index, fired, predicted, measured, output bits...)...]`.
    pub(crate) completed: Vec<u64>,
}

impl SnapshotParts {
    /// Encodes the snapshot as its single-line text form.
    pub(crate) fn encode(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(
            64 + 17 * (self.runtime.len() + self.stats.len() + self.queue.len())
                + 17 * self.completed.len(),
        );
        out.push_str(FORMAT_HEADER);
        let c = &self.config;
        let _ = write!(out, " kernel={} seed={} checker={}", c.kernel, c.seed, c.checker.label());
        match c.mode {
            TuningMode::TargetQuality { toq } => {
                let _ = write!(out, " mode=toq:{:016x}", toq.to_bits());
            }
            TuningMode::EnergyBudget { budget } => {
                let _ = write!(out, " mode=energy:{budget}");
            }
            TuningMode::BestQuality => out.push_str(" mode=best"),
        }
        let _ = write!(
            out,
            " window={} queue={},{},{} admission={}",
            c.window,
            c.queue.input_capacity,
            c.queue.output_capacity,
            c.queue.recovery_capacity,
            c.admission.label()
        );
        // Omitted for the default re-execution policy, so snapshots of
        // sessions that never heard of compensation are byte-identical to
        // the pre-compensation encoding.
        if let FixPolicy::Compensate { band } = c.fix_policy {
            let _ = write!(out, " fix=comp:{:016x}", band.to_bits());
        }
        // Omitted for zoo-less sessions, so their snapshots stay
        // byte-identical to the pre-zoo encoding.
        if c.zoo > 0 {
            let _ = write!(out, " zoo={}", c.zoo);
        }
        // Omitted for refit-less sessions, so their snapshots stay
        // byte-identical to the pre-refit encoding. The token arms the
        // restore *before* the runtime words are imported — the runtime
        // section of a refit session carries a trailing reservoir/epoch
        // tail that only an armed system knows how to parse.
        if c.refit {
            out.push_str(" refit=1");
        }
        if let Some(plan) = &c.faults {
            push_section(&mut out, "faults", &encode_fault_plan(plan));
        }
        if let Some(w) = &c.watchdog {
            let words =
                [w.quality_limit.to_bits(), u64::from(w.patience), u64::from(w.fallback_patience)];
            push_section(&mut out, "watchdog", &words);
        }
        push_section(&mut out, "runtime", &self.runtime);
        push_section(&mut out, "stats", &self.stats);
        push_section(&mut out, "queue", &self.queue);
        push_section(&mut out, "completed", &self.completed);
        out
    }

    /// Parses the text form back into its parts, validating the header,
    /// every config token, and section arithmetic. The inverse of
    /// [`SnapshotParts::encode`], bit for bit.
    pub(crate) fn parse(text: &str) -> Result<Self, String> {
        let mut tokens = text.split_whitespace().peekable();
        let (magic, version) = (tokens.next(), tokens.next());
        if magic != Some("rumba-session-snapshot") || version != Some("v1") {
            return Err("not a rumba-session-snapshot v1".to_owned());
        }

        let mut config = SessionConfig::default();
        let mut seen_mode = false;
        while let Some(&token) = tokens.peek() {
            if token == "section" {
                break;
            }
            tokens.next();
            let (key, value) =
                token.split_once('=').ok_or_else(|| format!("malformed token {token:?}"))?;
            match key {
                "kernel" => config.kernel = value.to_owned(),
                "seed" => config.seed = parse_dec(value, "seed")?,
                "checker" => {
                    config.checker = CheckerKind::parse(value).map_err(|e| e.to_string())?;
                }
                "mode" => {
                    config.mode = parse_mode(value)?;
                    seen_mode = true;
                }
                "window" => config.window = parse_dec(value, "window")? as usize,
                "queue" => config.queue = parse_queue(value)?,
                "admission" => {
                    config.admission = AdmissionPolicy::parse(value).map_err(|e| e.to_string())?;
                }
                "fix" => config.fix_policy = parse_fix(value)?,
                "zoo" => config.zoo = parse_dec(value, "zoo")? as usize,
                "refit" => {
                    if value != "1" {
                        return Err(format!("bad refit value {value:?} (expected 1)"));
                    }
                    config.refit = true;
                }
                other => return Err(format!("unknown config key {other:?}")),
            }
        }
        if !seen_mode {
            return Err("snapshot is missing the mode token".to_owned());
        }

        let mut runtime = None;
        let mut stats = None;
        let mut queue = None;
        let mut completed = None;
        while let Some(keyword) = tokens.next() {
            if keyword != "section" {
                return Err(format!("expected section keyword, got {keyword:?}"));
            }
            let name = tokens.next().ok_or("section is missing its name")?;
            let count =
                parse_dec(tokens.next().ok_or("section is missing its word count")?, "count")?;
            let mut words = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let hex = tokens
                    .next()
                    .ok_or_else(|| format!("section {name} truncated at word {}", words.len()))?;
                let word = u64::from_str_radix(hex, 16)
                    .map_err(|_| format!("section {name}: bad word {hex:?}"))?;
                words.push(word);
            }
            match name {
                "faults" => config.faults = Some(decode_fault_plan(&words)?),
                "watchdog" => {
                    if words.len() != 3 {
                        return Err(format!("watchdog section wants 3 words, got {}", words.len()));
                    }
                    let patience = u32::try_from(words[1])
                        .map_err(|_| "watchdog patience overflows u32".to_owned())?;
                    let fallback_patience = u32::try_from(words[2])
                        .map_err(|_| "watchdog fallback_patience overflows u32".to_owned())?;
                    config.watchdog = Some(WatchdogConfig {
                        quality_limit: f64::from_bits(words[0]),
                        patience,
                        fallback_patience,
                    });
                }
                "runtime" => runtime = Some(words),
                "stats" => stats = Some(words),
                "queue" => queue = Some(words),
                "completed" => completed = Some(words),
                other => return Err(format!("unknown section {other:?}")),
            }
        }

        Ok(Self {
            config,
            runtime: runtime.ok_or("snapshot is missing the runtime section")?,
            stats: stats.ok_or("snapshot is missing the stats section")?,
            queue: queue.ok_or("snapshot is missing the queue section")?,
            completed: completed.ok_or("snapshot is missing the completed section")?,
        })
    }
}

fn push_section(out: &mut String, name: &str, words: &[u64]) {
    use std::fmt::Write;
    let _ = write!(out, " section {name} {}", words.len());
    for w in words {
        let _ = write!(out, " {w:016x}");
    }
}

fn parse_dec(text: &str, what: &str) -> Result<u64, String> {
    text.parse::<u64>().map_err(|_| format!("bad {what} value {text:?}"))
}

fn parse_mode(value: &str) -> Result<TuningMode, String> {
    if value == "best" {
        return Ok(TuningMode::BestQuality);
    }
    let (tag, param) =
        value.split_once(':').ok_or_else(|| format!("malformed mode token {value:?}"))?;
    match tag {
        "toq" => {
            let bits =
                u64::from_str_radix(param, 16).map_err(|_| format!("bad toq bits {param:?}"))?;
            Ok(TuningMode::TargetQuality { toq: f64::from_bits(bits) })
        }
        "energy" => Ok(TuningMode::EnergyBudget { budget: parse_dec(param, "budget")? as usize }),
        other => Err(format!("unknown mode {other:?}")),
    }
}

fn parse_fix(value: &str) -> Result<FixPolicy, String> {
    let Some(("comp", bits)) = value.split_once(':') else {
        return Err(format!("malformed fix token {value:?} (expected comp:<band bits>)"));
    };
    let bits = u64::from_str_radix(bits, 16).map_err(|_| format!("bad band bits {bits:?}"))?;
    Ok(FixPolicy::Compensate { band: f64::from_bits(bits) })
}

fn parse_queue(value: &str) -> Result<QueueConfig, String> {
    let mut it = value.split(',');
    let mut next = |what: &str| -> Result<usize, String> {
        Ok(parse_dec(it.next().ok_or_else(|| format!("queue token missing {what}"))?, what)?
            as usize)
    };
    let config = QueueConfig {
        input_capacity: next("input_capacity")?,
        output_capacity: next("output_capacity")?,
        recovery_capacity: next("recovery_capacity")?,
    };
    if it.next().is_some() {
        return Err(format!("queue token has trailing fields: {value:?}"));
    }
    Ok(config)
}

/// `[plan seed, model count, (tag, p0, p1, p2) per model]` — numeric
/// params as raw bits (floats) or plain values (indices/counts), so the
/// decoded plan compares equal to the original and replays the identical
/// fault stream.
fn encode_fault_plan(plan: &FaultPlan) -> Vec<u64> {
    let mut words = Vec::with_capacity(2 + 4 * plan.models().len());
    words.push(plan.seed());
    words.push(plan.models().len() as u64);
    for model in plan.models() {
        let (tag, p0, p1, p2) = match *model {
            FaultModel::BitFlip { rate } => (0, rate.to_bits(), 0, 0),
            FaultModel::NonFinite { rate } => (1, rate.to_bits(), 0, 0),
            FaultModel::StuckAt { start, value } => (2, start as u64, value.to_bits(), 0),
            FaultModel::InputDrift { start, ramp, magnitude } => {
                (3, start as u64, ramp as u64, magnitude.to_bits())
            }
            FaultModel::CheckerBlind { rate } => (4, rate.to_bits(), 0, 0),
            FaultModel::QueuePressure { start, slots } => (5, start as u64, slots as u64, 0),
        };
        words.extend([tag, p0, p1, p2]);
    }
    words
}

fn decode_fault_plan(words: &[u64]) -> Result<FaultPlan, String> {
    let [seed, count, models @ ..] = words else {
        return Err("faults section wants at least 2 words".to_owned());
    };
    if models.len() != *count as usize * 4 {
        return Err(format!(
            "faults section declares {count} models but carries {} param words",
            models.len()
        ));
    }
    let mut plan = FaultPlan::new(*seed);
    for chunk in models.chunks_exact(4) {
        let [tag, p0, p1, p2] = [chunk[0], chunk[1], chunk[2], chunk[3]];
        let model = match tag {
            0 => FaultModel::BitFlip { rate: f64::from_bits(p0) },
            1 => FaultModel::NonFinite { rate: f64::from_bits(p0) },
            2 => FaultModel::StuckAt { start: p0 as usize, value: f64::from_bits(p1) },
            3 => FaultModel::InputDrift {
                start: p0 as usize,
                ramp: p1 as usize,
                magnitude: f64::from_bits(p2),
            },
            4 => FaultModel::CheckerBlind { rate: f64::from_bits(p0) },
            5 => FaultModel::QueuePressure { start: p0 as usize, slots: p1 as usize },
            other => return Err(format!("unknown fault model tag {other}")),
        };
        plan = plan.with(model);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_config() -> SessionConfig {
        SessionConfig {
            kernel: "gaussian".to_owned(),
            seed: 9,
            checker: CheckerKind::Ema,
            mode: TuningMode::TargetQuality { toq: 0.93 },
            window: 16,
            queue: QueueConfig { input_capacity: 6, ..QueueConfig::default() },
            admission: AdmissionPolicy::Block,
            faults: Some(
                FaultPlan::new(11)
                    .with(FaultModel::NonFinite { rate: 0.05 })
                    .with(FaultModel::StuckAt { start: 3, value: -2.5 })
                    .with(FaultModel::InputDrift { start: 1, ramp: 4, magnitude: 0.25 })
                    .with(FaultModel::BitFlip { rate: 0.01 })
                    .with(FaultModel::CheckerBlind { rate: 0.02 })
                    .with(FaultModel::QueuePressure { start: 8, slots: 2 }),
            ),
            watchdog: Some(WatchdogConfig::default()),
            fix_policy: FixPolicy::Compensate { band: 0.125 },
            zoo: 2,
            refit: true,
        }
    }

    #[test]
    fn parts_round_trip_exactly() {
        let parts = SnapshotParts {
            config: rich_config(),
            runtime: vec![0.25f64.to_bits(), 7, u64::MAX],
            stats: vec![1; 13],
            queue: vec![2, 0.5f64.to_bits(), 0.75f64.to_bits()],
            completed: vec![0],
        };
        let text = parts.encode();
        assert!(!text.contains('\n'));
        let back = SnapshotParts::parse(&text).unwrap();
        assert_eq!(back.config.kernel, parts.config.kernel);
        assert_eq!(back.config.faults, parts.config.faults);
        assert_eq!(back.config.watchdog, parts.config.watchdog);
        assert_eq!(back, parts);
        // Encoding the parse is byte-identical: the codec is canonical.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn parse_rejects_corruption() {
        let parts = SnapshotParts {
            config: SessionConfig::default(),
            runtime: vec![1, 2],
            stats: vec![0; 13],
            queue: vec![0],
            completed: vec![0],
        };
        let text = parts.encode();
        assert!(SnapshotParts::parse("rumba-trained-model-cache v1").is_err());
        assert!(SnapshotParts::parse(&text.replace("v1", "v2")).is_err());
        assert!(
            SnapshotParts::parse(&text.replace("section stats 13", "section stats 14")).is_err()
        );
        assert!(SnapshotParts::parse(text.trim_end_matches(char::is_alphanumeric)).is_err());
        let truncated = text.rsplit_once(' ').unwrap().0;
        assert!(SnapshotParts::parse(truncated).is_err());
    }

    #[test]
    fn default_fix_policy_leaves_the_encoding_untouched() {
        let parts = SnapshotParts {
            config: SessionConfig::default(),
            runtime: vec![1],
            stats: vec![0; 13],
            queue: vec![0],
            completed: vec![0],
        };
        let text = parts.encode();
        assert!(!text.contains("fix="), "{text}");
        assert_eq!(SnapshotParts::parse(&text).unwrap().config.fix_policy, FixPolicy::Reexecute);

        let comp = SnapshotParts {
            config: SessionConfig {
                fix_policy: FixPolicy::Compensate { band: 0.25 },
                ..SessionConfig::default()
            },
            ..parts
        };
        let comp_text = comp.encode();
        assert!(comp_text.contains("fix=comp:"), "{comp_text}");
        assert_eq!(SnapshotParts::parse(&comp_text).unwrap(), comp);
        assert!(SnapshotParts::parse(&comp_text.replace("comp:", "warp:")).is_err());
    }

    #[test]
    fn zoo_less_sessions_leave_the_encoding_untouched() {
        let parts = SnapshotParts {
            config: SessionConfig::default(),
            runtime: vec![1],
            stats: vec![0; 13],
            queue: vec![0],
            completed: vec![0],
        };
        let text = parts.encode();
        assert!(!text.contains("zoo="), "{text}");
        assert_eq!(SnapshotParts::parse(&text).unwrap().config.zoo, 0);

        let zooed =
            SnapshotParts { config: SessionConfig { zoo: 3, ..SessionConfig::default() }, ..parts };
        let zoo_text = zooed.encode();
        assert!(zoo_text.contains(" zoo=3 "), "{zoo_text}");
        assert_eq!(SnapshotParts::parse(&zoo_text).unwrap(), zooed);
        assert!(SnapshotParts::parse(&zoo_text.replace("zoo=3", "zoo=x")).is_err());
    }

    #[test]
    fn refit_less_sessions_leave_the_encoding_untouched() {
        let parts = SnapshotParts {
            config: SessionConfig::default(),
            runtime: vec![1],
            stats: vec![0; 13],
            queue: vec![0],
            completed: vec![0],
        };
        let text = parts.encode();
        assert!(!text.contains("refit="), "{text}");
        assert!(!SnapshotParts::parse(&text).unwrap().config.refit);

        let armed = SnapshotParts {
            config: SessionConfig { refit: true, ..SessionConfig::default() },
            ..parts
        };
        let armed_text = armed.encode();
        assert!(armed_text.contains(" refit=1 "), "{armed_text}");
        assert_eq!(SnapshotParts::parse(&armed_text).unwrap(), armed);
        assert!(SnapshotParts::parse(&armed_text.replace("refit=1", "refit=2")).is_err());
    }
}
