//! Session registry and the deterministic multi-tenant batch scheduler.

use rumba_accel::Npu;
use rumba_core::zoo::ModelZoo;
use rumba_nn::{Matrix, NnError, Scratch};

use crate::session::{
    compute_batch, Admit, PendingBatch, Session, SessionConfig, SessionResult, SessionStats,
};
use crate::ServeError;

/// Outcome of [`ServeRuntime::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// Queued. `depth` is the queue depth after admission; `blocked` is
    /// true when the block policy forced a drain first.
    Accepted {
        /// Queue depth after admission.
        depth: usize,
        /// Whether admission required a blocking drain.
        blocked: bool,
    },
    /// Rejected under the shed policy (503-style).
    Shed,
}

/// The serving runtime: open sessions in open order, plus the scheduler
/// that multiplexes their batches over the shared accelerator.
///
/// # Determinism contract
///
/// For every session, the merged outputs, fixes and final threshold are
/// bit-identical to running that session's request stream alone, at any
/// worker count. Two properties make this hold:
///
/// 1. **Offset batch equivalence** — the pure compute phase uses
///    [`Npu::invoke_batch_at`], whose row `i` reproduces
///    `invoke_at(base + i)` bitwise, so batch boundaries (and therefore
///    drain timing) cannot change any accelerator output or injected
///    fault.
/// 2. **Serial replay** — the stateful decision path (checker, threshold,
///    recovery, tuning, telemetry) runs serially in session-open order
///    via the same `process_approx` path a solo stream uses. Threads only
///    ever touch the pure phase.
#[derive(Debug, Default)]
pub struct ServeRuntime {
    sessions: Vec<Session>,
}

impl ServeRuntime {
    /// An empty runtime.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named session; returns its calibrated firing threshold.
    ///
    /// # Errors
    ///
    /// Rejects empty or duplicate names and invalid configurations.
    pub fn open(&mut self, name: &str, config: SessionConfig) -> Result<f64, ServeError> {
        if name.is_empty() {
            return Err(ServeError::InvalidConfig("session name must be non-empty".into()));
        }
        if self.index(name).is_ok() {
            return Err(ServeError::DuplicateSession(name.to_owned()));
        }
        let session = Session::open(name, config)?;
        let threshold = session.threshold();
        self.sessions.push(session);
        Ok(threshold)
    }

    /// Restores a session from a [`Session::snapshot`] line under `name`,
    /// continuing its stream bit-for-bit; returns the restored firing
    /// threshold. The name is free — restoring under a new name is how a
    /// snapshot migrates between shards.
    ///
    /// # Errors
    ///
    /// Rejects empty or duplicate names and malformed snapshots.
    pub fn restore(&mut self, name: &str, state: &str) -> Result<f64, ServeError> {
        if name.is_empty() {
            return Err(ServeError::InvalidConfig("session name must be non-empty".into()));
        }
        if self.index(name).is_ok() {
            return Err(ServeError::DuplicateSession(name.to_owned()));
        }
        let session = Session::restore(name, state)?;
        let threshold = session.threshold();
        self.sessions.push(session);
        Ok(threshold)
    }

    fn index(&self, name: &str) -> Result<usize, ServeError> {
        self.sessions
            .iter()
            .position(|s| s.name() == name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))
    }

    /// The named session, if open.
    #[must_use]
    pub fn session(&self, name: &str) -> Option<&Session> {
        self.sessions.iter().find(|s| s.name() == name)
    }

    /// Open session names, in open order.
    #[must_use]
    pub fn session_names(&self) -> Vec<String> {
        self.sessions.iter().map(|s| s.name().to_owned()).collect()
    }

    /// Number of open sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session is open.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Submits one request to the named session, applying its admission
    /// policy. Under `Block` with a full queue, the session is drained
    /// first and the request then admitted — the queue bound is never
    /// exceeded.
    ///
    /// # Errors
    ///
    /// Unknown sessions, payload-width mismatches, pipeline failures.
    pub fn submit(&mut self, name: &str, input: &[f64]) -> Result<Submit, ServeError> {
        let i = self.index(name)?;
        match self.sessions[i].try_submit(input)? {
            Admit::Accepted(depth) => Ok(Submit::Accepted { depth, blocked: false }),
            Admit::Shed => Ok(Submit::Shed),
            Admit::MustDrain => {
                self.sessions[i].note_blocked();
                self.sessions[i].drain()?;
                match self.sessions[i].try_submit(input)? {
                    Admit::Accepted(depth) => Ok(Submit::Accepted { depth, blocked: true }),
                    // A freshly drained queue admits at least one request
                    // (effective capacity never drops below 1).
                    Admit::Shed | Admit::MustDrain => Err(ServeError::Runtime(
                        "admission retry failed after blocking drain".into(),
                    )),
                }
            }
        }
    }

    /// Drains one session and collects its completed results.
    ///
    /// # Errors
    ///
    /// Unknown sessions, pipeline failures.
    pub fn drain(&mut self, name: &str) -> Result<Vec<SessionResult>, ServeError> {
        let i = self.index(name)?;
        self.sessions[i].drain()?;
        Ok(self.sessions[i].take_results())
    }

    /// Drains every session's queue through one multiplexed scheduling
    /// round: the pure accelerator compute of all pending batches fans out
    /// across the worker pool, then each batch is replayed serially in
    /// session-open order. Results stay with their sessions (collect with
    /// [`ServeRuntime::drain`] or [`Session::take_results`] via close).
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn drain_all(&mut self) -> Result<(), ServeError> {
        // Phase 1: detach pending batches (open order).
        let mut jobs: Vec<(usize, PendingBatch)> = Vec::new();
        for (i, session) in self.sessions.iter_mut().enumerate() {
            if let Some(batch) = session.take_pending() {
                jobs.push((i, batch));
            }
        }
        if jobs.is_empty() {
            return Ok(());
        }

        // Phase 2: pure accelerator compute, one worker task per session
        // batch. Only `&Npu` / `&ModelZoo` (plain immutable data) cross
        // threads; routed batches carry their per-row tier decisions from
        // phase 1, so workers never make a routing choice.
        let outputs: Vec<Result<Matrix, NnError>> = {
            let metas: Vec<(&Npu, Option<&ModelZoo>, usize)> = jobs
                .iter()
                .map(|(i, _)| {
                    let s = &self.sessions[*i];
                    (s.npu(), s.zoo(), s.input_dim())
                })
                .collect();
            rumba_parallel::par_map_indexed(&jobs, |j, (_, batch)| {
                let (npu, zoo, input_dim) = metas[j];
                let mut scratch = Scratch::new();
                let mut out = Matrix::default();
                compute_batch(npu, zoo, input_dim, batch, &mut scratch, &mut out).map(|()| out)
            })
        };

        // Phase 3: serial stateful replay, in session-open order.
        for ((i, batch), out) in jobs.into_iter().zip(outputs) {
            self.sessions[i].absorb(batch, out?)?;
        }
        Ok(())
    }

    /// Collects completed results from every session that has any, in
    /// open order.
    pub fn take_all_results(&mut self) -> Vec<(String, Vec<SessionResult>)> {
        self.sessions
            .iter_mut()
            .filter(|s| s.results_ready() > 0)
            .map(|s| (s.name().to_owned(), s.take_results()))
            .collect()
    }

    /// Closes the named session, removing it from the registry.
    ///
    /// # Errors
    ///
    /// Unknown sessions, pipeline failures during the final drain.
    pub fn close(&mut self, name: &str) -> Result<(SessionStats, Vec<SessionResult>), ServeError> {
        let i = self.index(name)?;
        self.sessions.remove(i).finish()
    }

    /// Closes every session in open order, returning `(name, stats,
    /// results)` per session.
    ///
    /// # Errors
    ///
    /// Stops at the first pipeline failure.
    #[allow(clippy::type_complexity)]
    pub fn close_all(
        &mut self,
    ) -> Result<Vec<(String, SessionStats, Vec<SessionResult>)>, ServeError> {
        let mut closed = Vec::with_capacity(self.sessions.len());
        for session in self.sessions.drain(..) {
            let name = session.name().to_owned();
            let (stats, results) = session.finish()?;
            closed.push((name, stats, results));
        }
        Ok(closed)
    }
}
