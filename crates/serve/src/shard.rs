//! Shard threads and the session-placement router.
//!
//! The network layer fans client connections into N *shards*. Each shard
//! thread owns a private [`ServeRuntime`] — a disjoint set of sessions —
//! and processes its mailbox strictly in arrival order, so per-shard
//! state never needs a lock and the per-shard stream is exactly the solo
//! protocol stream. Placement is [`shard_of`], a pure FNV-1a hash of the
//! session name: reproducible across runs, processes, and shard pools,
//! which is what lets a snapshot restored under the same name land on
//! the same shard (and one restored under a new name migrate).
//!
//! The [`Router`] is the only shared object: it parses just enough of
//! each request line to pick a shard, forwards the raw line, and blocks
//! on the reply — so a connection observes its own requests in order
//! while different connections proceed in parallel on different shards.
//! The two global operations are handled here instead of in a shard:
//!
//! - **global `drain`** broadcasts to every shard and reorders the
//!   per-session result groups by *global session-open order*, making
//!   the merged response byte-identical at any shard count;
//! - **`shutdown`** broadcasts a close-all, merges the same way, joins
//!   every shard thread (all in-flight work finishes before the ack),
//!   and flushes the telemetry sink.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

use rumba_obs::json::{parse_object, ObjectExt};
use rumba_obs::Event;

use crate::protocol::{closed_line, error_line, handle_line, result_line};
use crate::registry::ServeRuntime;

/// Which shard owns a session: FNV-1a over the session name, mod the
/// shard count. A pure function — placement is reproducible and carries
/// no state, so it holds across restarts and snapshot migration.
#[must_use]
pub fn shard_of(session: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in session.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    (h % shards.max(1) as u64) as usize
}

/// Per-session response-line groups, tagged with the session name so the
/// router can reorder them into global open order.
type Groups = Vec<(String, Vec<String>)>;

enum ShardMsg {
    /// One protocol request line for a session this shard owns (or a
    /// sessionless single-line op; those are shard-independent).
    Line { line: String, reply: Sender<Vec<String>> },
    /// Global drain: run one multiplexed scheduling round over this
    /// shard's sessions and return their result lines, grouped.
    DrainAll { reply: Sender<Groups> },
    /// Shutdown: close every session (draining it) and exit the thread.
    CloseAll { reply: Sender<Groups> },
}

fn shard_loop(index: u64, rx: &Receiver<ShardMsg>) {
    let mut rt = ServeRuntime::new();
    let mut requests = 0u64;
    if rumba_obs::enabled() {
        rumba_obs::global_sink().emit(&Event::Shard {
            shard: index,
            action: "start".to_owned(),
            sessions: 0,
            requests: 0,
        });
    }
    while let Ok(msg) = rx.recv() {
        requests += 1;
        match msg {
            ShardMsg::Line { line, reply } => {
                let (lines, _) = handle_line(&mut rt, &line);
                let _ = reply.send(lines);
            }
            ShardMsg::DrainAll { reply } => {
                let groups = match rt.drain_all() {
                    Ok(()) => rt
                        .take_all_results()
                        .into_iter()
                        .map(|(name, results)| {
                            let lines = results.iter().map(|r| result_line(&name, r)).collect();
                            (name, lines)
                        })
                        .collect(),
                    Err(e) => vec![(String::new(), vec![error_line("drain", &e.to_string())])],
                };
                let _ = reply.send(groups);
            }
            ShardMsg::CloseAll { reply } => {
                let owned = rt.len() as u64;
                let groups = match rt.close_all() {
                    Ok(closed) => closed
                        .into_iter()
                        .map(|(name, stats, results)| {
                            let mut lines: Vec<String> =
                                results.iter().map(|r| result_line(&name, r)).collect();
                            lines.push(closed_line(&name, &stats));
                            (name, lines)
                        })
                        .collect(),
                    Err(e) => vec![(String::new(), vec![error_line("shutdown", &e.to_string())])],
                };
                let _ = reply.send(groups);
                if rumba_obs::enabled() {
                    rumba_obs::global_sink().emit(&Event::Shard {
                        shard: index,
                        action: "stop".to_owned(),
                        sessions: owned,
                        requests,
                    });
                }
                return;
            }
        }
    }
}

/// The shared fan-in point: owns the shard threads and routes request
/// lines to the shard that owns their session.
///
/// # Determinism contract
///
/// For a fixed request schedule, every response is byte-identical at any
/// shard count (and any `RUMBA_THREADS`/`RUMBA_SIMD` setting): per-shard
/// streams are solo protocol streams over disjoint sessions, and the two
/// cross-shard responses (global drain, shutdown) are merged in global
/// session-open order rather than shard order.
#[derive(Debug)]
pub struct Router {
    senders: Vec<Sender<ShardMsg>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Global session-open order (open/restore acks append, close
    /// removes) — the merge key for cross-shard responses.
    open_seq: Mutex<Vec<String>>,
    closed: AtomicBool,
}

impl Router {
    /// Spawns `shards` shard threads (at least one).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for index in 0..shards {
            let (tx, rx) = channel();
            senders.push(tx);
            handles.push(std::thread::spawn(move || shard_loop(index as u64, &rx)));
        }
        Self {
            senders,
            handles: Mutex::new(handles),
            open_seq: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Whether `shutdown` has been processed (the acceptor's stop signal).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Routes one request line and returns its response lines, in order.
    /// Blocks until the owning shard has processed the request, so each
    /// connection sees its own requests answered strictly in order.
    pub fn route(&self, line: &str) -> Vec<String> {
        if self.is_closed() {
            return vec![error_line("route", "server is shutting down")];
        }
        let obj = match parse_object(line) {
            Ok(obj) => obj,
            Err(msg) => return vec![error_line("parse", &msg)],
        };
        let Some(op) = obj.string("op").map(str::to_owned) else {
            return vec![error_line("none", "request is missing the \"op\" field")];
        };
        let session = obj.string("session").filter(|s| !s.is_empty()).map(str::to_owned);
        match (op.as_str(), &session) {
            ("shutdown", _) => self.shutdown(),
            ("drain", None) => self.drain_all(),
            _ => {
                // Session ops go to the owning shard; sessionless ops of
                // the single-line kind fail identically on any shard, so
                // shard 0 answers them.
                let shard = session.as_deref().map_or(0, |s| shard_of(s, self.senders.len()));
                let (tx, rx) = channel();
                let msg = ShardMsg::Line { line: line.to_owned(), reply: tx };
                if self.senders[shard].send(msg).is_err() {
                    return vec![error_line(&op, "server is shutting down")];
                }
                let Ok(lines) = rx.recv() else {
                    return vec![error_line(&op, "server is shutting down")];
                };
                self.note_effect(&op, session.as_deref(), &lines);
                lines
            }
        }
    }

    /// Tracks session lifecycle from response shapes: successful opens and
    /// restores append to the open order, successful closes remove.
    fn note_effect(&self, op: &str, session: Option<&str>, lines: &[String]) {
        let Some(name) = session else { return };
        match op {
            "open" | "restore"
                if lines.first().is_some_and(|l| l.starts_with("{\"type\":\"ack\"")) =>
            {
                self.open_seq.lock().expect("open_seq lock").push(name.to_owned());
            }
            "close" if lines.last().is_some_and(|l| l.starts_with("{\"type\":\"closed\"")) => {
                self.open_seq.lock().expect("open_seq lock").retain(|n| n != name);
            }
            _ => {}
        }
    }

    /// Broadcasts a message constructor to every shard and collects the
    /// groups in shard order (the caller re-orders them globally).
    fn broadcast(&self, make: impl Fn(Sender<Groups>) -> ShardMsg) -> Groups {
        let receivers: Vec<_> = self
            .senders
            .iter()
            .filter_map(|s| {
                let (tx, rx) = channel();
                s.send(make(tx)).ok().map(|()| rx)
            })
            .collect();
        let mut groups = Groups::new();
        for rx in receivers {
            if let Ok(g) = rx.recv() {
                groups.extend(g);
            }
        }
        groups
    }

    /// Flattens per-session groups into global session-open order — the
    /// step that makes cross-shard responses shard-count invariant. Groups
    /// without an open-order entry (shard-level errors) come last, in
    /// shard order.
    fn merge(&self, mut groups: Groups) -> Vec<String> {
        let mut lines = Vec::new();
        {
            let seq = self.open_seq.lock().expect("open_seq lock");
            for name in seq.iter() {
                if let Some(pos) = groups.iter().position(|(n, _)| n == name) {
                    lines.extend(groups.remove(pos).1);
                }
            }
        }
        for (_, g) in groups {
            lines.extend(g);
        }
        lines
    }

    fn drain_all(&self) -> Vec<String> {
        let mut lines = self.merge(self.broadcast(|reply| ShardMsg::DrainAll { reply }));
        let total = lines.iter().filter(|l| l.starts_with("{\"type\":\"result\"")).count() as u64;
        let mut w = rumba_obs::json::JsonWriter::object("ack");
        w.string("op", "drain").count("results", total);
        lines.push(w.finish());
        lines
    }

    fn shutdown(&self) -> Vec<String> {
        if self.closed.swap(true, Ordering::AcqRel) {
            return vec![error_line("shutdown", "server is shutting down")];
        }
        let groups = self.broadcast(|reply| ShardMsg::CloseAll { reply });
        let sessions = groups.iter().filter(|(name, _)| !name.is_empty()).count() as u64;
        let mut lines = self.merge(groups);
        // Every shard thread has answered CloseAll and exited its loop;
        // joining here makes the ack a completion barrier: all sessions
        // drained, all telemetry emitted.
        for handle in self.handles.lock().expect("handles lock").drain(..) {
            let _ = handle.join();
        }
        self.open_seq.lock().expect("open_seq lock").clear();
        let mut w = rumba_obs::json::JsonWriter::object("ack");
        w.string("op", "shutdown").count("sessions", sessions);
        lines.push(w.finish());
        rumba_obs::global_sink().flush();
        lines
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        // Dropping the senders hangs up every shard mailbox; threads not
        // already stopped by `shutdown` exit their recv loop.
        self.senders.clear();
        for handle in self.handles.lock().expect("handles lock").drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_pure_and_spread() {
        assert_eq!(shard_of("tenant-0", 4), shard_of("tenant-0", 4));
        assert_eq!(shard_of("anything", 1), 0);
        // FNV-1a spreads consecutive tenant names across a small pool.
        let owners: Vec<usize> = (0..8).map(|t| shard_of(&format!("tenant-{t}"), 2)).collect();
        assert!(owners.contains(&0) && owners.contains(&1), "{owners:?}");
    }

    #[test]
    fn router_is_a_protocol_endpoint() {
        let router = Router::new(2);
        let open = router.route(
            "{\"op\":\"open\",\"session\":\"a\",\"kernel\":\"gaussian\",\"seed\":7,\
             \"window\":16,\"queue\":4}",
        );
        assert!(open[0].starts_with("{\"type\":\"ack\",\"op\":\"open\""), "{open:?}");
        let bad = router.route("not json");
        assert!(bad[0].starts_with("{\"type\":\"error\""), "{bad:?}");
        let missing = router.route("{\"op\":\"stats\",\"session\":\"ghost\"}");
        assert!(missing[0].contains("no open session"), "{missing:?}");
        let down = router.route("{\"op\":\"shutdown\"}");
        assert!(down.last().unwrap().contains("\"op\":\"shutdown\",\"sessions\":1"), "{down:?}");
        let after = router.route("{\"op\":\"stats\",\"session\":\"a\"}");
        assert!(after[0].contains("shutting down"), "{after:?}");
    }

    #[test]
    fn duplicate_names_are_rejected_across_the_pool() {
        let router = Router::new(3);
        let line = "{\"op\":\"open\",\"session\":\"dup\",\"kernel\":\"gaussian\",\"seed\":7,\
                    \"window\":16,\"queue\":4}";
        assert!(router.route(line)[0].starts_with("{\"type\":\"ack\""));
        // Same name hashes to the same shard, whose runtime rejects it.
        let again = router.route(line);
        assert!(again[0].contains("already open"), "{again:?}");
        router.route("{\"op\":\"shutdown\"}");
    }
}
