//! Newline-delimited JSON request/response protocol for `rumba serve`.
//!
//! Requests are flat JSON objects with an `"op"` field; every request
//! produces one or more flat JSON response lines whose `"type"` field
//! names the response kind (`ack`, `result`, `shed`, `stats`, `closed`,
//! `error`). The dialect reuses the observability crate's codec, so the
//! wire format shares its bit-exact float round-trip guarantees.
//!
//! Operations:
//!
//! | op         | fields                                                            |
//! |------------|-------------------------------------------------------------------|
//! | `open`     | `session` (required), `kernel`, `seed`, `checker`, `mode` (`toq`/`energy`/`best`), `toq`, `budget`, `window`, `queue`, `admission` (`shed`/`block`), `faults` (spec string), `fault_seed`, `watchdog` (bool), `fix` (`reexecute`/`compensate`), `band` (compensation band, required with `fix=compensate`), `zoo` (tier count; 0 = single-model serving), `refit` (bool; arm the online checker re-fit at the watchdog's `Recalibrated` rung) |
//! | `invoke`   | `session`, `input` (number array)                                 |
//! | `drain`    | `session` (optional — omitted drains **all** sessions through one multiplexed scheduling round) |
//! | `stats`    | `session`                                                         |
//! | `close`    | `session`                                                         |
//! | `snapshot` | `session` — serialize the session's live state as one config-word line |
//! | `restore`  | `session`, `state` (a `snapshot` payload) — rebuild the session, bit-for-bit |
//! | `shutdown` | —                                                                 |

use std::io::{BufRead, Write};

use rumba_core::runtime::{FixPolicy, WatchdogConfig};
use rumba_core::tuner::TuningMode;
use rumba_faults::FaultPlan;
use rumba_obs::json::{parse_object, JsonObject, JsonWriter, ObjectExt};

use crate::registry::{ServeRuntime, Submit};
use crate::session::{AdmissionPolicy, CheckerKind, SessionConfig, SessionResult, SessionStats};
use crate::ServeError;

pub(crate) fn error_line(op: &str, message: &str) -> String {
    let mut w = JsonWriter::object("error");
    w.string("op", op).string("message", message);
    w.finish()
}

pub(crate) fn result_line(session: &str, r: &SessionResult) -> String {
    let mut w = JsonWriter::object("result");
    w.string("session", session)
        .count("index", r.index as u64)
        .boolean("fired", r.fired)
        .float("predicted", r.predicted_error)
        .float("error", r.measured_error)
        .floats("output", &r.output);
    w.finish()
}

pub(crate) fn closed_line(session: &str, stats: &SessionStats) -> String {
    let mut w = JsonWriter::object("closed");
    w.string("session", session).count("processed", stats.processed).count("fixes", stats.fixes);
    // Like the telemetry events, the compensated count is omitted when
    // zero so re-execution-only transcripts are byte-identical to the
    // pre-compensation wire format.
    if stats.compensated > 0 {
        w.count("compensated", stats.compensated);
    }
    w.count("shed", stats.shed)
        .count("blocked", stats.blocked)
        .float("mean_error", stats.mean_error())
        .float("cpu_utilization", stats.cpu_utilization())
        .float("threshold", stats.final_threshold);
    w.finish()
}

fn parse_config(obj: &JsonObject) -> Result<SessionConfig, ServeError> {
    let mut config = SessionConfig::default();
    if let Some(kernel) = obj.string("kernel") {
        config.kernel = kernel.to_owned();
    }
    if let Some(seed) = obj.count("seed") {
        config.seed = seed;
    }
    if let Some(checker) = obj.string("checker") {
        config.checker = CheckerKind::parse(checker)?;
    }
    let mode = obj.string("mode").unwrap_or("toq");
    config.mode = match mode {
        "toq" => {
            let toq = obj.number("toq").unwrap_or(0.9);
            TuningMode::TargetQuality { toq }
        }
        "energy" => {
            let budget = obj.count("budget").unwrap_or(8) as usize;
            TuningMode::EnergyBudget { budget }
        }
        "best" => TuningMode::BestQuality,
        other => {
            return Err(ServeError::InvalidConfig(format!(
                "unknown mode {other:?} (expected toq, energy or best)"
            )))
        }
    };
    if let Some(window) = obj.count("window") {
        config.window = window as usize;
    }
    if let Some(queue) = obj.count("queue") {
        config.queue.input_capacity = queue as usize;
    }
    if let Some(admission) = obj.string("admission") {
        config.admission = AdmissionPolicy::parse(admission)?;
    }
    if let Some(spec) = obj.string("faults") {
        let fault_seed = obj.count("fault_seed").unwrap_or(config.seed);
        let plan = FaultPlan::parse(fault_seed, spec).map_err(ServeError::InvalidConfig)?;
        config.faults = (!plan.is_empty()).then_some(plan);
    }
    if obj.boolean("watchdog").unwrap_or(false) {
        config.watchdog = Some(WatchdogConfig::default());
    }
    if let Some(zoo) = obj.count("zoo") {
        config.zoo = zoo as usize;
    }
    if obj.boolean("refit").unwrap_or(false) {
        config.refit = true;
    }
    match obj.string("fix") {
        None | Some("reexecute") => {}
        Some("compensate") => {
            let band = obj.number("band").ok_or_else(|| {
                ServeError::InvalidConfig(
                    "fix \"compensate\" requires a \"band\" number".to_owned(),
                )
            })?;
            config.fix_policy = FixPolicy::Compensate { band };
        }
        Some(other) => {
            return Err(ServeError::InvalidConfig(format!(
                "unknown fix policy {other:?} (expected reexecute or compensate)"
            )))
        }
    }
    Ok(config)
}

fn required_session<'a>(obj: &'a JsonObject, op: &str) -> Result<&'a str, String> {
    obj.string("session")
        .filter(|s| !s.is_empty())
        .ok_or_else(|| format!("op {op:?} requires a \"session\" field"))
}

/// Handles one request line against the runtime. Returns the response
/// lines plus a flag that is true when the request asked for shutdown
/// (all sessions are closed before the flag is returned).
pub fn handle_line(rt: &mut ServeRuntime, line: &str) -> (Vec<String>, bool) {
    let obj = match parse_object(line) {
        Ok(obj) => obj,
        Err(msg) => return (vec![error_line("parse", &msg)], false),
    };
    let Some(op) = obj.string("op").map(str::to_owned) else {
        return (vec![error_line("none", "request is missing the \"op\" field")], false);
    };
    match handle_op(rt, &op, &obj) {
        Ok((lines, shutdown)) => (lines, shutdown),
        Err(msg) => (vec![error_line(&op, &msg)], false),
    }
}

#[allow(clippy::too_many_lines)]
fn handle_op(
    rt: &mut ServeRuntime,
    op: &str,
    obj: &JsonObject,
) -> Result<(Vec<String>, bool), String> {
    match op {
        "open" => {
            let name = required_session(obj, op)?;
            let config = parse_config(obj).map_err(|e| e.to_string())?;
            let kernel = config.kernel.clone();
            let checker = config.checker.label();
            let threshold = rt.open(name, config).map_err(|e| e.to_string())?;
            let mut w = JsonWriter::object("ack");
            w.string("op", "open")
                .string("session", name)
                .string("kernel", &kernel)
                .string("checker", checker)
                .float("threshold", threshold);
            Ok((vec![w.finish()], false))
        }
        "invoke" => {
            let name = required_session(obj, op)?;
            let input = obj
                .numbers("input")
                .ok_or_else(|| "op \"invoke\" requires an \"input\" number array".to_owned())?;
            match rt.submit(name, &input).map_err(|e| e.to_string())? {
                Submit::Accepted { depth, blocked } => {
                    let mut w = JsonWriter::object("ack");
                    w.string("op", "invoke")
                        .string("session", name)
                        .count("queued", depth as u64)
                        .boolean("blocked", blocked);
                    Ok((vec![w.finish()], false))
                }
                Submit::Shed => {
                    let shed_total = rt.session(name).map_or(0, |s| s.stats().shed);
                    let mut w = JsonWriter::object("shed");
                    w.string("session", name).count("code", 503).count("shed_total", shed_total);
                    Ok((vec![w.finish()], false))
                }
            }
        }
        "drain" => {
            let mut lines = Vec::new();
            let mut total = 0u64;
            if let Some(name) = obj.string("session").filter(|s| !s.is_empty()) {
                let results = rt.drain(name).map_err(|e| e.to_string())?;
                total += results.len() as u64;
                lines.extend(results.iter().map(|r| result_line(name, r)));
            } else {
                rt.drain_all().map_err(|e| e.to_string())?;
                for (name, results) in rt.take_all_results() {
                    total += results.len() as u64;
                    lines.extend(results.iter().map(|r| result_line(&name, r)));
                }
            }
            let mut w = JsonWriter::object("ack");
            w.string("op", "drain").count("results", total);
            lines.push(w.finish());
            Ok((lines, false))
        }
        "stats" => {
            let name = required_session(obj, op)?;
            let session = rt
                .session(name)
                .ok_or_else(|| ServeError::UnknownSession(name.to_owned()).to_string())?;
            let stats = session.stats();
            let mut w = JsonWriter::object("stats");
            w.string("session", name)
                .string("kernel", session.kernel_name())
                .count("queue_depth", session.queue_depth() as u64)
                .count("capacity", session.effective_capacity() as u64)
                .count("processed", stats.processed)
                .count("fixes", stats.fixes);
            if stats.compensated > 0 {
                w.count("compensated", stats.compensated);
            }
            w.count("shed", stats.shed)
                .count("blocked", stats.blocked)
                .count("queue_high_water", stats.queue_high_water as u64)
                .float("mean_error", stats.mean_error())
                .float("threshold", session.threshold())
                .boolean("back_pressured", stats.back_pressured_drains > 0);
            Ok((vec![w.finish()], false))
        }
        "close" => {
            let name = required_session(obj, op)?;
            let (stats, results) = rt.close(name).map_err(|e| e.to_string())?;
            let mut lines: Vec<String> = results.iter().map(|r| result_line(name, r)).collect();
            lines.push(closed_line(name, &stats));
            Ok((lines, false))
        }
        "snapshot" => {
            let name = required_session(obj, op)?;
            let session = rt
                .session(name)
                .ok_or_else(|| ServeError::UnknownSession(name.to_owned()).to_string())?;
            let mut w = JsonWriter::object("snapshot");
            w.string("session", name).string("state", &session.snapshot());
            Ok((vec![w.finish()], false))
        }
        "restore" => {
            let name = required_session(obj, op)?;
            let state = obj
                .string("state")
                .ok_or_else(|| "op \"restore\" requires a \"state\" string".to_owned())?;
            let threshold = rt.restore(name, state).map_err(|e| e.to_string())?;
            let session = rt.session(name).expect("restored session is open");
            let mut w = JsonWriter::object("ack");
            w.string("op", "restore")
                .string("session", name)
                .string("kernel", session.kernel_name())
                .float("threshold", threshold);
            Ok((vec![w.finish()], false))
        }
        "shutdown" => {
            let closed = rt.close_all().map_err(|e| e.to_string())?;
            let mut lines = Vec::new();
            for (name, stats, results) in &closed {
                lines.extend(results.iter().map(|r| result_line(name, r)));
                lines.push(closed_line(name, stats));
            }
            let mut w = JsonWriter::object("ack");
            w.string("op", "shutdown").count("sessions", closed.len() as u64);
            lines.push(w.finish());
            Ok((lines, true))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Runs the request/response loop until EOF or a `shutdown` op. Responses
/// are flushed after every request line so interactive clients see them
/// immediately. Returns `true` when the loop ended because of a
/// `shutdown` op (socket servers use this to stop accepting).
///
/// Request lines are capped at [`crate::transport::MAX_LINE`] bytes; an
/// oversized line costs one in-band `error` response, not the loop. A
/// final line without a terminator is processed (matching
/// [`BufRead::lines`] on stdin scripts).
///
/// # Errors
///
/// Propagates I/O failures from the reader or writer.
pub fn serve_loop(
    rt: &mut ServeRuntime,
    mut reader: impl BufRead,
    writer: &mut impl Write,
) -> std::io::Result<bool> {
    use crate::transport::{read_line_capped, LineRead, MAX_LINE};
    loop {
        let (line, last) = match read_line_capped(&mut reader, MAX_LINE)? {
            LineRead::Eof => return Ok(false),
            LineRead::Oversized => {
                writeln!(
                    writer,
                    "{}",
                    error_line("parse", &format!("line exceeds {MAX_LINE} bytes"))
                )?;
                writer.flush()?;
                continue;
            }
            LineRead::Line(line) => (line, false),
            LineRead::Partial(line) => (line, true),
        };
        if !line.trim().is_empty() {
            let (responses, shutdown) = handle_line(rt, &line);
            for response in &responses {
                writeln!(writer, "{response}")?;
            }
            writer.flush()?;
            if shutdown {
                return Ok(true);
            }
        }
        if last {
            return Ok(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_line(name: &str) -> String {
        format!(
            "{{\"op\":\"open\",\"session\":\"{name}\",\"kernel\":\"gaussian\",\"seed\":7,\"window\":16,\"queue\":4}}"
        )
    }

    fn invoke_line(name: &str, input: &[f64]) -> String {
        let mut w = JsonWriter::object("ignored");
        w.string("op", "invoke").string("session", name).floats("input", input);
        // Strip the writer's mandatory type tag: requests carry "op" only.
        w.finish().replacen("\"type\":\"ignored\",", "", 1)
    }

    #[test]
    fn open_invoke_drain_close_round_trip() {
        let mut rt = ServeRuntime::new();
        let (lines, _) = handle_line(&mut rt, &open_line("t0"));
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].starts_with("{\"type\":\"ack\",\"op\":\"open\""), "{}", lines[0]);

        let dim = rt.session("t0").unwrap().input_dim();
        let (lines, _) = handle_line(&mut rt, &invoke_line("t0", &vec![0.25; dim]));
        assert!(lines[0].contains("\"queued\":1"), "{}", lines[0]);

        let (lines, _) = handle_line(&mut rt, "{\"op\":\"drain\",\"session\":\"t0\"}");
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].starts_with("{\"type\":\"result\""), "{}", lines[0]);
        assert!(lines[1].contains("\"results\":1"), "{}", lines[1]);

        let (lines, shutdown) = handle_line(&mut rt, "{\"op\":\"close\",\"session\":\"t0\"}");
        assert!(!shutdown);
        assert!(lines.last().unwrap().starts_with("{\"type\":\"closed\""));
        assert!(rt.is_empty());
    }

    #[test]
    fn malformed_lines_yield_error_responses() {
        let mut rt = ServeRuntime::new();
        let (lines, _) = handle_line(&mut rt, "not json");
        assert!(lines[0].starts_with("{\"type\":\"error\""), "{}", lines[0]);
        let (lines, _) = handle_line(&mut rt, "{\"session\":\"x\"}");
        assert!(lines[0].contains("missing the \\\"op\\\" field"), "{}", lines[0]);
        let (lines, _) =
            handle_line(&mut rt, "{\"op\":\"invoke\",\"session\":\"ghost\",\"input\":[1]}");
        assert!(lines[0].contains("no open session"), "{}", lines[0]);
        let (lines, _) = handle_line(&mut rt, "{\"op\":\"warp\"}");
        assert!(lines[0].contains("unknown op"), "{}", lines[0]);
    }

    #[test]
    fn shed_responses_carry_the_503_code() {
        let mut rt = ServeRuntime::new();
        handle_line(&mut rt, &open_line("t0"));
        let dim = rt.session("t0").unwrap().input_dim();
        let payload = vec![0.5; dim];
        for _ in 0..4 {
            let (lines, _) = handle_line(&mut rt, &invoke_line("t0", &payload));
            assert!(lines[0].starts_with("{\"type\":\"ack\""), "{}", lines[0]);
        }
        let (lines, _) = handle_line(&mut rt, &invoke_line("t0", &payload));
        assert!(lines[0].contains("\"code\":503"), "{}", lines[0]);
        assert!(lines[0].contains("\"shed_total\":1"), "{}", lines[0]);
    }

    #[test]
    fn serve_loop_stops_at_shutdown_and_flushes_responses() {
        let mut rt = ServeRuntime::new();
        let script = format!("{}\n{}\n", open_line("t0"), "{\"op\":\"shutdown\"}");
        let mut out = Vec::new();
        assert!(serve_loop(&mut rt, script.as_bytes(), &mut out).unwrap());
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"op\":\"open\""), "{text}");
        assert!(lines.last().unwrap().contains("\"op\":\"shutdown\""), "{text}");
        assert!(rt.is_empty());
    }
}
