//! Multi-tenant serving layer for the Rumba online quality manager.
//!
//! `rumba-serve` turns the single-stream [`rumba_core::runtime::RumbaSystem`]
//! into a long-running request-serving runtime that multiplexes many
//! concurrent client *sessions* — each with its own kernel, checker, tuning
//! mode, fault plan and quality state — over the shared NPU + CPU-recovery
//! pipeline.
//!
//! The layer is built from three pieces:
//!
//! * [`session::Session`] — one tenant. Wraps a fully calibrated
//!   `RumbaSystem` (tuner, checker, degradation ladder isolated per
//!   session), a bounded request queue with shed-or-block admission
//!   control, and an online measured-error oracle so the per-session run
//!   summary is honest.
//! * [`registry::ServeRuntime`] — the session registry and deterministic
//!   batch scheduler. `drain_all` fans the *pure* accelerator compute of
//!   every session's pending batch across the worker pool, then replays
//!   the stateful decision path serially in session-open order, so merged
//!   outputs are bit-identical to running each session alone at any
//!   thread count.
//! * [`protocol`] — a newline-delimited JSON request/response dialect
//!   (std-only; stdin/stdout or a Unix socket) plus the seeded
//!   multi-tenant workload replay behind `rumba bench-serve`
//!   ([`bench`]).

pub mod bench;
pub mod protocol;
pub mod registry;
pub mod session;
pub mod shard;
pub mod snapshot;
pub mod transport;

pub use registry::{ServeRuntime, Submit};
pub use session::{
    AdmissionPolicy, CheckerKind, Session, SessionConfig, SessionResult, SessionStats,
};

use std::fmt;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The requested kernel is not a registered benchmark.
    UnknownKernel(String),
    /// No open session has this name.
    UnknownSession(String),
    /// A session with this name is already open.
    DuplicateSession(String),
    /// A session configuration field is out of range or unparsable.
    InvalidConfig(String),
    /// A request payload does not match the session's kernel.
    InvalidInput(String),
    /// An underlying pipeline component failed.
    Runtime(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownKernel(name) => write!(f, "unknown kernel {name:?}"),
            Self::UnknownSession(name) => write!(f, "no open session named {name:?}"),
            Self::DuplicateSession(name) => write!(f, "session {name:?} is already open"),
            Self::InvalidConfig(msg) => write!(f, "invalid session config: {msg}"),
            Self::InvalidInput(msg) => write!(f, "invalid request: {msg}"),
            Self::Runtime(msg) => write!(f, "serving runtime error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<rumba_core::RumbaError> for ServeError {
    fn from(err: rumba_core::RumbaError) -> Self {
        Self::Runtime(err.to_string())
    }
}

impl From<rumba_nn::NnError> for ServeError {
    fn from(err: rumba_nn::NnError) -> Self {
        Self::Runtime(err.to_string())
    }
}

impl From<rumba_predict::PredictError> for ServeError {
    fn from(err: rumba_predict::PredictError) -> Self {
        Self::Runtime(err.to_string())
    }
}
