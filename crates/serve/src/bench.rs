//! Seeded multi-tenant workload replay behind `rumba bench-serve`.
//!
//! [`run_trace`] drives the full NDJSON protocol with a deterministic
//! interleaved workload and returns the response stream verbatim — that
//! stream is the conformance artifact (`ci/serve_trace.golden`): every
//! float in it is shortest-round-trip formatted, so a byte-diff against
//! the golden file is a bitwise conformance check of the whole serving
//! layer at any thread count.
//!
//! [`bench_report`] additionally sweeps the tenant count and reports
//! wall-clock throughput plus tail queue depth (`BENCH_serve.json`);
//! timing is intentionally kept out of the golden trace.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use rumba_apps::{kernel_by_name, Split};
use rumba_obs::json::JsonWriter;

use crate::protocol::handle_line;
use crate::registry::ServeRuntime;
use crate::transport::NetServer;
use crate::ServeError;

/// Workload shape for one trace replay.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Master seed: datasets, schedule shuffle and injected faults.
    pub seed: u64,
    /// Number of concurrent tenants (sessions).
    pub tenants: usize,
    /// Requests submitted per tenant.
    pub requests: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self { seed: 7, tenants: 3, requests: 40 }
    }
}

/// Deterministic side-channel counters collected while replaying a trace
/// (the trace itself stays the source of truth for conformance).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Requests submitted across all tenants.
    pub submitted: u64,
    /// Requests that completed the pipeline.
    pub processed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests that forced a blocking drain.
    pub blocked: u64,
    /// Queue depth sampled after every submission, in order.
    pub depth_samples: Vec<u64>,
}

impl TraceStats {
    /// p99 of the sampled queue depths (0 when nothing was sampled).
    #[must_use]
    pub fn p99_queue_depth(&self) -> u64 {
        if self.depth_samples.is_empty() {
            return 0;
        }
        let mut sorted = self.depth_samples.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) * 99 / 100]
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The benchmark's tenant profiles: three deliberately different
/// configurations so the trace exercises shed and block admission, both
/// tuning families, distinct checkers, and per-session fault isolation
/// (only the third profile injects faults).
fn open_line(tenant: usize, seed: u64) -> String {
    let name = format!("tenant-{tenant}");
    match tenant % 3 {
        0 => format!(
            "{{\"op\":\"open\",\"session\":\"{name}\",\"kernel\":\"gaussian\",\"seed\":{seed},\
             \"checker\":\"tree\",\"mode\":\"toq\",\"toq\":0.95,\"window\":16,\"queue\":12,\
             \"admission\":\"shed\"}}"
        ),
        1 => format!(
            "{{\"op\":\"open\",\"session\":\"{name}\",\"kernel\":\"gaussian\",\"seed\":{seed},\
             \"checker\":\"linear\",\"mode\":\"energy\",\"budget\":6,\"window\":16,\"queue\":4,\
             \"admission\":\"block\"}}"
        ),
        // The third profile's queue-pressure fault collapses its queue
        // bound mid-stream, so 503-style sheds deterministically appear
        // in the conformance trace.
        _ => format!(
            "{{\"op\":\"open\",\"session\":\"{name}\",\"kernel\":\"gaussian\",\"seed\":{seed},\
             \"checker\":\"ema\",\"mode\":\"toq\",\"toq\":0.9,\"window\":16,\"queue\":6,\
             \"admission\":\"shed\",\"faults\":\"non_finite=0.05,queue_pressure=16:5\",\
             \"fault_seed\":{seed}}}"
        ),
    }
}

fn invoke_line(tenant: usize, input: &[f64]) -> String {
    let mut w = JsonWriter::object("request");
    w.string("op", "invoke").string("session", &format!("tenant-{tenant}")).floats("input", input);
    w.finish().replacen("\"type\":\"request\",", "", 1)
}

/// Replays the seeded workload through the protocol layer, appending every
/// response line to the returned trace.
///
/// # Errors
///
/// Fails only if a tenant cannot be opened (trace-level errors surface as
/// `error` response lines instead, so they land in the golden diff).
pub fn run_trace(cfg: BenchConfig) -> Result<(String, TraceStats), ServeError> {
    let kernel = kernel_by_name("gaussian")
        .ok_or_else(|| ServeError::UnknownKernel("gaussian".to_owned()))?;
    let dataset = kernel.generate(Split::Test, cfg.seed);
    let n = dataset.len();

    let mut rt = ServeRuntime::new();
    let mut trace = String::new();
    let mut stats = TraceStats::default();
    let emit = |trace: &mut String, lines: Vec<String>| {
        for line in lines {
            trace.push_str(&line);
            trace.push('\n');
        }
    };

    for t in 0..cfg.tenants {
        let (lines, _) = handle_line(&mut rt, &open_line(t, cfg.seed));
        if lines.first().is_some_and(|l| l.starts_with("{\"type\":\"error\"")) {
            return Err(ServeError::InvalidConfig(lines[0].clone()));
        }
        emit(&mut trace, lines);
    }

    // Deterministic interleave: each tenant appears exactly `requests`
    // times; Fisher–Yates over the schedule keyed off the seed.
    let mut schedule: Vec<usize> =
        (0..cfg.tenants * cfg.requests).map(|i| i % cfg.tenants).collect();
    for i in (1..schedule.len()).rev() {
        let j = (splitmix(cfg.seed ^ (i as u64).wrapping_mul(0x9E37)) % (i as u64 + 1)) as usize;
        schedule.swap(i, j);
    }

    let mut next_row = vec![0usize; cfg.tenants];
    for (step, &tenant) in schedule.iter().enumerate() {
        let row = (tenant * 997 + next_row[tenant]) % n.max(1);
        next_row[tenant] += 1;
        let (lines, _) = handle_line(&mut rt, &invoke_line(tenant, dataset.input(row)));
        emit(&mut trace, lines);
        stats.submitted += 1;
        let name = format!("tenant-{tenant}");
        if let Some(session) = rt.session(&name) {
            stats.depth_samples.push(session.queue_depth() as u64);
        }
        // Multiplexed scheduling round every nine submissions — slow
        // enough that bursts fill the smaller tenant queues, so shed and
        // block admission both appear in the conformance trace — plus a
        // solo drain of tenant 0 on a coprime cadence so both scheduler
        // paths stay covered.
        if step % 9 == 8 {
            let (lines, _) = handle_line(&mut rt, "{\"op\":\"drain\"}");
            emit(&mut trace, lines);
        } else if step % 13 == 12 {
            let (lines, _) = handle_line(&mut rt, "{\"op\":\"drain\",\"session\":\"tenant-0\"}");
            emit(&mut trace, lines);
        }
    }

    for t in 0..cfg.tenants {
        let line = format!("{{\"op\":\"stats\",\"session\":\"tenant-{t}\"}}");
        let (lines, _) = handle_line(&mut rt, &line);
        emit(&mut trace, lines);
        if let Some(session) = rt.session(&format!("tenant-{t}")) {
            let s = session.stats();
            stats.processed += s.processed;
            stats.shed += s.shed;
            stats.blocked += s.blocked;
        }
    }
    // Shutdown drains the remainder; fold those into `processed` so the
    // side-channel counters match the closed lines in the trace.
    let queued: u64 = (0..cfg.tenants)
        .filter_map(|t| rt.session(&format!("tenant-{t}")))
        .map(|s| s.queue_depth() as u64)
        .sum();
    stats.processed += queued;
    let (lines, _) = handle_line(&mut rt, "{\"op\":\"shutdown\"}");
    emit(&mut trace, lines);

    Ok((trace, stats))
}

/// One lockstep TCP client in a [`run_net_trace`] replay: sends a request
/// line and reads the complete response group before the driver moves on,
/// so the multi-connection trace is exactly as deterministic as the
/// in-process one.
struct NetClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl NetClient {
    fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream })
    }

    /// Sends one request and reads its full response group. Most ops
    /// answer with exactly one line; `drain`, `close` and `shutdown`
    /// stream result lines first, so their replies are read up to the
    /// op's terminal line (route-level failures answer with a single
    /// `error` line instead).
    fn request(&mut self, line: &str, op: &str) -> std::io::Result<Vec<String>> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut lines: Vec<String> = Vec::new();
        loop {
            let mut buf = String::new();
            if self.reader.read_line(&mut buf)? == 0 {
                return Ok(lines);
            }
            let line = buf.trim_end_matches(['\n', '\r']).to_owned();
            let first_is_error = lines.is_empty() && line.starts_with("{\"type\":\"error\"");
            let terminal = match op {
                "drain" => line.starts_with("{\"type\":\"ack\",\"op\":\"drain\""),
                "close" => line.starts_with("{\"type\":\"closed\""),
                "shutdown" => line.starts_with("{\"type\":\"ack\",\"op\":\"shutdown\""),
                _ => true,
            };
            lines.push(line);
            if terminal || first_is_error {
                return Ok(lines);
            }
        }
    }
}

fn net_io(e: std::io::Error) -> ServeError {
    ServeError::Runtime(format!("net bench I/O: {e}"))
}

/// Replays the [`run_trace`] workload over real TCP: one in-process
/// sharded [`NetServer`], one client connection per tenant, the same
/// seeded schedule driven in lockstep (global ops go through client 0).
/// Each response line is prefixed with `[c<i>] ` naming the connection
/// that observed it — stripped of prefixes, the trace is byte-identical
/// to the in-process [`run_trace`] trace at any shard count, which is
/// what `ci/serve_net.golden` pins.
///
/// # Errors
///
/// Fails on connection errors or when a tenant cannot be opened.
pub fn run_net_trace(cfg: BenchConfig, shards: usize) -> Result<String, ServeError> {
    let kernel = kernel_by_name("gaussian")
        .ok_or_else(|| ServeError::UnknownKernel("gaussian".to_owned()))?;
    let dataset = kernel.generate(Split::Test, cfg.seed);
    let n = dataset.len();

    let server = NetServer::bind_tcp("127.0.0.1:0", shards).map_err(net_io)?;
    let addr = server.addr().to_owned();
    let mut clients: Vec<NetClient> = Vec::with_capacity(cfg.tenants);
    for _ in 0..cfg.tenants.max(1) {
        clients.push(NetClient::connect(&addr).map_err(net_io)?);
    }

    let mut trace = String::new();
    let emit = |trace: &mut String, client: usize, lines: &[String]| {
        for line in lines {
            let _ = writeln!(trace, "[c{client}] {line}");
        }
    };

    for (t, client) in clients.iter_mut().enumerate().take(cfg.tenants) {
        let lines = client.request(&open_line(t, cfg.seed), "open").map_err(net_io)?;
        if lines.first().is_some_and(|l| l.starts_with("{\"type\":\"error\"")) {
            return Err(ServeError::InvalidConfig(lines[0].clone()));
        }
        emit(&mut trace, t, &lines);
    }

    let mut schedule: Vec<usize> =
        (0..cfg.tenants * cfg.requests).map(|i| i % cfg.tenants).collect();
    for i in (1..schedule.len()).rev() {
        let j = (splitmix(cfg.seed ^ (i as u64).wrapping_mul(0x9E37)) % (i as u64 + 1)) as usize;
        schedule.swap(i, j);
    }

    let mut next_row = vec![0usize; cfg.tenants];
    for (step, &tenant) in schedule.iter().enumerate() {
        let row = (tenant * 997 + next_row[tenant]) % n.max(1);
        next_row[tenant] += 1;
        let lines = clients[tenant]
            .request(&invoke_line(tenant, dataset.input(row)), "invoke")
            .map_err(net_io)?;
        emit(&mut trace, tenant, &lines);
        if step % 9 == 8 {
            let lines = clients[0].request("{\"op\":\"drain\"}", "drain").map_err(net_io)?;
            emit(&mut trace, 0, &lines);
        } else if step % 13 == 12 {
            let lines = clients[0]
                .request("{\"op\":\"drain\",\"session\":\"tenant-0\"}", "drain")
                .map_err(net_io)?;
            emit(&mut trace, 0, &lines);
        }
    }

    for (t, client) in clients.iter_mut().enumerate().take(cfg.tenants) {
        let line = format!("{{\"op\":\"stats\",\"session\":\"tenant-{t}\"}}");
        let lines = client.request(&line, "stats").map_err(net_io)?;
        emit(&mut trace, t, &lines);
    }
    let lines = clients[0].request("{\"op\":\"shutdown\"}", "shutdown").map_err(net_io)?;
    emit(&mut trace, 0, &lines);

    drop(clients);
    server.join().map_err(net_io)?;
    Ok(trace)
}

/// One measured point of the shard-scaling sweep: `clients` concurrent
/// TCP connections, each driving its own disjoint tenant set against a
/// `shards`-shard server.
#[derive(Debug, Clone, Copy)]
struct NetPoint {
    shards: usize,
    clients: usize,
    submitted: u64,
    secs: f64,
}

/// Drives `clients` concurrent connections (client `c` owns the tenants
/// with `t % clients == c`) and measures wall-clock throughput. Unlike
/// [`run_net_trace`], clients run freely in parallel — this is the perf
/// number, not a conformance artifact.
fn run_net_workload(
    cfg: BenchConfig,
    shards: usize,
    clients: usize,
) -> Result<NetPoint, ServeError> {
    let tenants = cfg.tenants.max(clients);
    let server = NetServer::bind_tcp("127.0.0.1:0", shards).map_err(net_io)?;
    let addr = server.addr().to_owned();
    let start = Instant::now();
    let submitted: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || -> Result<u64, ServeError> {
                    let kernel = kernel_by_name("gaussian")
                        .ok_or_else(|| ServeError::UnknownKernel("gaussian".to_owned()))?;
                    let dataset = kernel.generate(Split::Test, cfg.seed);
                    let n = dataset.len().max(1);
                    let mut client = NetClient::connect(&addr).map_err(net_io)?;
                    let mut submitted = 0u64;
                    for t in (c..tenants).step_by(clients) {
                        client.request(&open_line(t, cfg.seed), "open").map_err(net_io)?;
                        for r in 0..cfg.requests {
                            let row = (t * 997 + r) % n;
                            client
                                .request(&invoke_line(t, dataset.input(row)), "invoke")
                                .map_err(net_io)?;
                            submitted += 1;
                            if r % 8 == 7 {
                                let drain =
                                    format!("{{\"op\":\"drain\",\"session\":\"tenant-{t}\"}}");
                                client.request(&drain, "drain").map_err(net_io)?;
                            }
                        }
                        let close = format!("{{\"op\":\"close\",\"session\":\"tenant-{t}\"}}");
                        client.request(&close, "close").map_err(net_io)?;
                    }
                    Ok(submitted)
                })
            })
            .collect();
        let mut total = 0u64;
        for handle in handles {
            total += handle
                .join()
                .map_err(|_| ServeError::Runtime("net bench client panicked".to_owned()))??;
        }
        Ok::<u64, ServeError>(total)
    })?;
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let mut control = NetClient::connect(&addr).map_err(net_io)?;
    control.request("{\"op\":\"shutdown\"}", "shutdown").map_err(net_io)?;
    drop(control);
    server.join().map_err(net_io)?;
    Ok(NetPoint { shards, clients, submitted, secs })
}

/// Sweeps the tenant count from 1 to `cfg.tenants` and reports wall-clock
/// throughput and p99 queue depth per point, then sweeps shard × client
/// counts over real TCP (the shard-scaling series) — the
/// `BENCH_serve.json` payload. The execution environment (worker threads,
/// dispatched SIMD ISA) is recorded alongside, mirroring
/// `BENCH_matrix.json`. Never golden-gated (it contains timing).
///
/// # Errors
///
/// Propagates [`run_trace`] and network failures.
pub fn bench_report(cfg: BenchConfig) -> Result<String, ServeError> {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"bench\":\"serve\",\"seed\":{},\"requests_per_tenant\":{},\
         \"threads\":{},\"simd_isa\":\"{}\",\"points\":[",
        cfg.seed,
        cfg.requests,
        rumba_parallel::max_threads(),
        rumba_nn::active_isa().name()
    );
    for tenants in 1..=cfg.tenants.max(1) {
        let point = BenchConfig { tenants, ..cfg };
        let start = Instant::now();
        let (_, stats) = run_trace(point)?;
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let throughput = stats.submitted as f64 / secs;
        if tenants > 1 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"tenants\":{tenants},\"throughput_rps\":{throughput:.1},\
             \"p99_queue_depth\":{},\"processed\":{},\"shed\":{},\"blocked\":{}}}",
            stats.p99_queue_depth(),
            stats.processed,
            stats.shed,
            stats.blocked
        );
    }
    out.push_str("],\"net_points\":[");
    let sweep = [(1usize, 1usize), (1, 4), (2, 4), (4, 4)];
    for (i, &(shards, clients)) in sweep.iter().enumerate() {
        let point = run_net_workload(cfg, shards, clients)?;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"shards\":{},\"clients\":{},\"submitted\":{},\"throughput_rps\":{:.1}}}",
            point.shards,
            point.clients,
            point.submitted,
            point.submitted as f64 / point.secs
        );
    }
    out.push_str("]}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_reproducible_for_a_seed() {
        let cfg = BenchConfig { seed: 11, tenants: 2, requests: 8 };
        let (a, stats_a) = run_trace(cfg).unwrap();
        let (b, stats_b) = run_trace(cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(stats_a, stats_b);
        assert!(a.lines().all(|l| l.starts_with('{') && l.ends_with('}')), "JSONL shape");
        assert!(!a.contains("\"type\":\"error\""), "clean trace:\n{a}");
    }

    #[test]
    fn different_seeds_change_the_trace() {
        let (a, _) = run_trace(BenchConfig { seed: 1, tenants: 2, requests: 6 }).unwrap();
        let (b, _) = run_trace(BenchConfig { seed: 2, tenants: 2, requests: 6 }).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn every_submitted_request_is_processed_or_shed() {
        let cfg = BenchConfig { seed: 7, tenants: 3, requests: 20 };
        let (trace, stats) = run_trace(cfg).unwrap();
        assert_eq!(stats.submitted, (cfg.tenants * cfg.requests) as u64);
        assert_eq!(stats.processed + stats.shed, stats.submitted, "trace:\n{trace}");
        assert!(trace.contains("\"type\":\"closed\""));
    }

    #[test]
    fn net_trace_matches_the_solo_trace_at_any_shard_count() {
        let cfg = BenchConfig { seed: 11, tenants: 2, requests: 8 };
        let (solo, _) = run_trace(cfg).unwrap();
        for shards in [1, 2] {
            let net = run_net_trace(cfg, shards).unwrap();
            let stripped: String = net
                .lines()
                .map(|l| l.split_once(' ').expect("prefixed line").1)
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
            assert_eq!(stripped, solo, "shards={shards}");
        }
    }

    #[test]
    fn bench_report_sweeps_tenant_counts() {
        let report = bench_report(BenchConfig { seed: 3, tenants: 2, requests: 4 }).unwrap();
        assert!(report.starts_with("{\"bench\":\"serve\""), "{report}");
        assert!(report.contains("\"tenants\":1"), "{report}");
        assert!(report.contains("\"tenants\":2"), "{report}");
    }
}
