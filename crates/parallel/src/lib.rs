//! Deterministic parallel execution for the Rumba workspace.
//!
//! Every evaluation layer in this repository (topology search, batched
//! accelerator replay, figure sweeps, dataset generation) is a map over an
//! index range. This crate parallelizes those maps on plain `std::thread`
//! workers while keeping one hard guarantee:
//!
//! > **The output is bit-for-bit identical to the serial path, for every
//! > thread count.**
//!
//! Three rules make that hold:
//!
//! 1. **Fixed chunk layout.** Work is split into chunks whose boundaries
//!    are a pure function of the item count (never of the thread count),
//!    see [`chunk_size`]. Workers claim chunks dynamically, so scheduling
//!    is nondeterministic — but *what* each chunk computes is not.
//! 2. **Ordered merge.** Per-chunk results are merged back in chunk index
//!    order, so the output vector is independent of completion order.
//! 3. **Seed-per-chunk randomness.** Work that needs randomness derives an
//!    RNG stream from an explicit `u64` seed and the chunk (or item) index
//!    via [`seed_for_chunk`] — never from shared mutable state.
//!
//! Thread count comes from, in priority order: an explicit
//! [`ThreadPool::with_threads`], the process-wide [`set_thread_override`]
//! (the CLI's `--threads` flag), the `RUMBA_THREADS` environment variable,
//! and finally [`std::thread::available_parallelism`]. A count of 1 takes
//! the exact legacy serial path (no worker threads are spawned at all).
//!
//! # Examples
//!
//! ```
//! let squares = rumba_parallel::par_map_range(1_000, |i| i * i);
//! assert_eq!(squares[999], 999 * 999);
//!
//! let pool = rumba_parallel::ThreadPool::with_threads(4);
//! let doubled = pool.par_map_indexed(&[1, 2, 3], |_i, x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread-count override (0 = unset). Set by the CLI's
/// `--threads` flag; takes precedence over `RUMBA_THREADS`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the thread count for every subsequent pool constructed without
/// an explicit count. `None` restores environment-based selection.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Resolves the effective thread count: override, then `RUMBA_THREADS`,
/// then available parallelism (minimum 1 everywhere).
#[must_use]
pub fn max_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    let env = std::env::var("RUMBA_THREADS").ok();
    threads_from_parts(env.as_deref(), default_parallelism())
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Pure helper behind [`max_threads`]: parses the `RUMBA_THREADS` value,
/// falling back to `available` when absent or malformed.
#[must_use]
pub fn threads_from_parts(env: Option<&str>, available: usize) -> usize {
    match env.map(str::trim).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => available.max(1),
    }
}

/// The chunk width used for `n` items — a pure function of `n` only, so
/// chunk boundaries (and therefore any per-chunk RNG stream) are identical
/// for every thread count.
///
/// The layout targets enough chunks for dynamic load balancing across any
/// sane worker count without drowning small workloads in scheduling
/// overhead.
#[must_use]
pub fn chunk_size(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

/// Mixes an explicit seed with a chunk (or item) index into an independent
/// RNG stream seed (SplitMix64 finalizer). This is the workspace contract
/// for randomness inside parallel maps: never draw from shared state.
#[must_use]
pub fn seed_for_chunk(seed: u64, chunk_index: u64) -> u64 {
    let mut z = seed ^ chunk_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Feeds one chunked-map dispatch into the telemetry registry (`pool.maps`
/// / `pool.chunks` counters, `pool.threads` gauge — surfaced as the `pool`
/// event by `rumba_obs::finish_run`). Purely observational, and skipped
/// entirely (one relaxed atomic load) when telemetry is disabled.
fn note_pool_usage(n_chunks: usize, workers: usize) {
    if rumba_obs::enabled() {
        let m = rumba_obs::metrics();
        m.inc("pool.maps");
        m.add("pool.chunks", n_chunks as u64);
        m.set_gauge("pool.threads", workers as f64);
    }
}

/// A deterministic pool of `std::thread` workers.
///
/// The pool is a thread-count policy plus the chunked map primitives; the
/// worker threads themselves are scoped to each map call, so a pool is
/// trivially cheap to construct and carries no shutdown obligations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadPool {
    /// A pool sized by [`max_threads`] (override → env → hardware).
    #[must_use]
    pub fn new() -> Self {
        Self { threads: max_threads() }
    }

    /// A pool with an explicit worker count (minimum 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// The worker count this pool runs with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` with the item index, in parallel, returning
    /// outputs in index order. Bit-identical to
    /// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` for every
    /// thread count; with 1 thread that exact serial loop *is* the
    /// implementation.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_chunked(items.len(), |_chunk, range| {
            range.map(|i| f(i, &items[i])).collect::<Vec<R>>()
        })
    }

    /// Maps `f` over `0..n` in parallel, outputs in index order.
    pub fn par_map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.par_map_chunked(n, |_chunk, range| range.map(&f).collect::<Vec<R>>())
    }

    /// The chunked primitive everything builds on: splits `0..n` into the
    /// fixed layout of [`chunk_size`] chunks, hands `(chunk_index, index
    /// range)` pairs to workers, and concatenates the per-chunk output
    /// vectors in chunk order.
    ///
    /// `f` must be chunk-local: its output for a chunk may depend on the
    /// chunk index (e.g. through [`seed_for_chunk`]) but not on which
    /// worker ran it or in what order. The chunk layout never depends on
    /// the thread count, so this is exactly as deterministic as running
    /// the chunks back-to-back serially — which is what a 1-thread pool
    /// does.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` (the scope joins all workers first).
    pub fn par_map_chunked<R, F>(&self, n: usize, f: F) -> Vec<R::Item>
    where
        R: IntoIterator + Send,
        R::Item: Send,
        F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
    {
        let chunk = chunk_size(n);
        let n_chunks = n.div_ceil(chunk);
        let workers = self.threads.min(n_chunks.max(1));
        note_pool_usage(n_chunks, workers);

        if workers <= 1 || n_chunks <= 1 {
            // Exact legacy serial path: same chunks, same order, no threads.
            let mut merged = Vec::with_capacity(n);
            for c in 0..n_chunks {
                let lo = c * chunk;
                merged.extend(f(c, lo..(lo + chunk).min(n)));
            }
            return merged;
        }

        let next = AtomicUsize::new(0);
        let parts: Mutex<Vec<(usize, Vec<R::Item>)>> = Mutex::new(Vec::with_capacity(n_chunks));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let out: Vec<R::Item> = f(c, lo..(lo + chunk).min(n)).into_iter().collect();
                    parts.lock().expect("worker panicked holding results lock").push((c, out));
                });
            }
        });

        let mut parts = parts.into_inner().expect("workers joined");
        parts.sort_unstable_by_key(|&(c, _)| c);
        debug_assert_eq!(parts.len(), n_chunks);
        let mut merged = Vec::with_capacity(n);
        for (_, mut part) in parts {
            merged.append(&mut part);
        }
        merged
    }

    /// Splits a flat row-major buffer (`stride` elements per logical item)
    /// into the same fixed chunk layout as [`ThreadPool::par_map_chunked`]
    /// and hands each worker `(chunk_index, item range, mutable sub-slice)`.
    /// The side-effect counterpart of the map primitives: batched kernels
    /// write results in place instead of returning vectors.
    ///
    /// Chunks are disjoint sub-slices, so as long as `f` is chunk-local
    /// (writes only through the slice it is handed, deriving nothing from
    /// worker identity or completion order) the buffer contents are
    /// bit-identical to running the chunks serially — which is what a
    /// 1-thread pool does, allocating nothing.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `stride` (with
    /// `stride == 0` only allowed for empty data); propagates panics from
    /// `f`.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], stride: usize, f: F)
    where
        T: Send,
        F: Fn(usize, std::ops::Range<usize>, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        assert!(stride > 0, "stride must be positive for nonempty data");
        assert_eq!(data.len() % stride, 0, "data length must be a multiple of stride");
        let n = data.len() / stride;
        let chunk = chunk_size(n);
        let n_chunks = n.div_ceil(chunk);
        let workers = self.threads.min(n_chunks);
        note_pool_usage(n_chunks, workers);

        if workers <= 1 || n_chunks <= 1 {
            // Exact serial path: same chunks, same order, zero allocation.
            let mut rest = data;
            for c in 0..n_chunks {
                let lo = c * chunk;
                let hi = (lo + chunk).min(n);
                let (head, tail) = rest.split_at_mut((hi - lo) * stride);
                f(c, lo..hi, head);
                rest = tail;
            }
            return;
        }

        let mut jobs: Vec<(usize, std::ops::Range<usize>, &mut [T])> = Vec::with_capacity(n_chunks);
        let mut rest = data;
        for c in 0..n_chunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let (head, tail) = rest.split_at_mut((hi - lo) * stride);
            jobs.push((c, lo..hi, head));
            rest = tail;
        }
        let jobs = Mutex::new(jobs);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let job = jobs.lock().expect("worker panicked holding job lock").pop();
                    match job {
                        Some((c, range, slice)) => f(c, range, slice),
                        None => break,
                    }
                });
            }
        });
    }
}

/// [`ThreadPool::par_map_indexed`] on a pool sized by [`max_threads`].
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    ThreadPool::new().par_map_indexed(items, f)
}

/// [`ThreadPool::par_map_range`] on a pool sized by [`max_threads`].
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    ThreadPool::new().par_map_range(n, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn serial_and_parallel_agree_on_simple_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let serial: Vec<u64> =
            items.iter().enumerate().map(|(i, x)| x.wrapping_mul(i as u64)).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let pool = ThreadPool::with_threads(threads);
            let par = pool.par_map_indexed(&items, |i, x| x.wrapping_mul(i as u64));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        // Per-item seeded RNG work: the archetypal workload of the repo.
        let work = |i: usize| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed_for_chunk(42, i as u64));
            (0..50).map(|_| rng.gen::<f64>().sin()).sum()
        };
        let serial: Vec<u64> = (0..3_000).map(|i| work(i).to_bits()).collect();
        for threads in [2, 4, 7] {
            let par = ThreadPool::with_threads(threads).par_map_range(3_000, work);
            let par_bits: Vec<u64> = par.iter().map(|x| x.to_bits()).collect();
            assert_eq!(par_bits, serial, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_layout_is_a_pure_function_of_n() {
        for n in [0, 1, 2, 63, 64, 65, 1_000, 65_536] {
            let a = chunk_size(n);
            let b = chunk_size(n);
            assert_eq!(a, b);
            assert!(a >= 1);
            if n > 0 {
                assert!(n.div_ceil(a) <= 64, "n = {n} makes {} chunks", n.div_ceil(a));
            }
        }
    }

    #[test]
    fn chunked_map_passes_fixed_chunk_indices() {
        // Chunk indices and ranges must tile 0..n exactly, independent of
        // thread count.
        for threads in [1, 4] {
            let pool = ThreadPool::with_threads(threads);
            let n = 1_000;
            let mut pairs = pool.par_map_chunked(n, |c, range| vec![(c, range.start, range.end)]);
            pairs.sort_unstable();
            let chunk = chunk_size(n);
            for (k, &(c, lo, hi)) in pairs.iter().enumerate() {
                assert_eq!(c, k);
                assert_eq!(lo, k * chunk);
                assert_eq!(hi, (lo + chunk).min(n));
            }
            assert_eq!(pairs.last().unwrap().2, n);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let pool = ThreadPool::with_threads(8);
        assert_eq!(pool.par_map_range(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.par_map_range(1, |i| i), vec![0]);
        let empty: Vec<u8> = Vec::new();
        assert_eq!(pool.par_map_indexed(&empty, |_, &x| x), Vec::<u8>::new());
    }

    #[test]
    fn seed_for_chunk_separates_streams() {
        let s: Vec<u64> = (0..100).map(|c| seed_for_chunk(7, c)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len(), "chunk seeds must not collide");
        assert_ne!(seed_for_chunk(7, 0), seed_for_chunk(8, 0));
    }

    #[test]
    fn override_takes_precedence() {
        set_thread_override(Some(3));
        assert_eq!(max_threads(), 3);
        assert_eq!(ThreadPool::new().threads(), 3);
        set_thread_override(None);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn env_parsing_rules() {
        assert_eq!(threads_from_parts(None, 6), 6);
        assert_eq!(threads_from_parts(Some("4"), 6), 4);
        assert_eq!(threads_from_parts(Some(" 2 "), 6), 2);
        assert_eq!(threads_from_parts(Some("0"), 6), 6, "0 is invalid, fall back");
        assert_eq!(threads_from_parts(Some("lots"), 6), 6);
        assert_eq!(threads_from_parts(None, 0), 1, "minimum is always 1");
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            ThreadPool::with_threads(4).par_map_range(500, |i| {
                assert!(i != 250, "boom");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_chunks_mut_writes_are_bit_identical_across_thread_counts() {
        let stride = 3;
        let n = 500;
        let fill = |c: usize, range: std::ops::Range<usize>, slice: &mut [f64]| {
            let mut rng = StdRng::seed_from_u64(seed_for_chunk(9, c as u64));
            for (k, i) in range.enumerate() {
                for j in 0..stride {
                    slice[k * stride + j] = (i * stride + j) as f64 + rng.gen::<f64>();
                }
            }
        };
        let mut serial = vec![0.0f64; n * stride];
        ThreadPool::with_threads(1).par_chunks_mut(&mut serial, stride, fill);
        let serial_bits: Vec<u64> = serial.iter().map(|x| x.to_bits()).collect();
        for threads in [2, 4, 9] {
            let mut par = vec![0.0f64; n * stride];
            ThreadPool::with_threads(threads).par_chunks_mut(&mut par, stride, fill);
            let par_bits: Vec<u64> = par.iter().map(|x| x.to_bits()).collect();
            assert_eq!(par_bits, serial_bits, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_mut_handles_empty_and_rejects_ragged_strides() {
        let pool = ThreadPool::with_threads(4);
        let mut empty: Vec<f64> = Vec::new();
        pool.par_chunks_mut(&mut empty, 0, |_, _, _| {});
        let ragged = std::panic::catch_unwind(|| {
            let mut data = vec![0.0f64; 7];
            ThreadPool::with_threads(1).par_chunks_mut(&mut data, 2, |_, _, _| {});
        });
        assert!(ragged.is_err());
    }

    proptest! {
        #[test]
        fn par_map_is_bit_identical_to_serial_map(
            n in 0usize..2_000,
            threads in 1usize..12,
            seed in 0u64..1_000,
        ) {
            let work = |i: usize| -> f64 {
                let mut rng = StdRng::seed_from_u64(seed_for_chunk(seed, i as u64));
                rng.gen_range(-1.0e6..1.0e6)
            };
            let serial: Vec<f64> = (0..n).map(work).collect();
            let par = ThreadPool::with_threads(threads).par_map_range(n, work);
            let serial_bits: Vec<u64> = serial.iter().map(|x| x.to_bits()).collect();
            let par_bits: Vec<u64> = par.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(par_bits, serial_bits);
        }

        #[test]
        fn chunked_rng_streams_are_thread_count_invariant(
            n in 1usize..1_500,
            t1 in 1usize..10,
            t2 in 1usize..10,
            seed in 0u64..500,
        ) {
            // Chunk-level RNG (one stream per chunk, not per item): the
            // strongest form of the determinism contract.
            let work = move |c: usize, range: std::ops::Range<usize>| -> Vec<u64> {
                let mut rng = StdRng::seed_from_u64(seed_for_chunk(seed, c as u64));
                range.map(|_| rng.gen::<u64>()).collect()
            };
            let a = ThreadPool::with_threads(t1).par_map_chunked(n, work);
            let b = ThreadPool::with_threads(t2).par_map_chunked(n, work);
            prop_assert_eq!(a, b);
        }
    }
}
