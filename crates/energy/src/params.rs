use rumba_predict::CheckerCost;

/// Per-cycle and per-operation energy constants (nanojoules) plus the core
/// clock.
///
/// Calibration: with these constants and the default accelerator timing
/// model, the *unchecked NPU* saves ≈3.2× energy at ≈2.2× speedup averaged
/// over the Table-1 suite, with `kmeans` slowing down — the paper's
/// baseline operating point. All Figure 14/15/16 comparisons are ratios on
/// top of this point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Core clock in GHz (used only to render cycle counts as time).
    pub cpu_freq_ghz: f64,
    /// Energy per cycle of the Table-2 core while executing.
    pub cpu_active_nj_per_cycle: f64,
    /// Energy per cycle of the core while it waits on the accelerator
    /// (clock gating is imperfect; McPAT attributes substantial static
    /// power).
    pub cpu_idle_nj_per_cycle: f64,
    /// Energy per cycle of the 8-PE NPU while evaluating.
    pub npu_nj_per_cycle: f64,
    /// Checker energy per multiply-accumulate.
    pub checker_mac_nj: f64,
    /// Checker energy per comparison.
    pub checker_cmp_nj: f64,
    /// Checker energy per coefficient-buffer read.
    pub checker_read_nj: f64,
    /// Energy per word moved through a core↔accelerator queue.
    pub queue_word_nj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            cpu_freq_ghz: 3.4,
            cpu_active_nj_per_cycle: 1.1,
            cpu_idle_nj_per_cycle: 0.3,
            npu_nj_per_cycle: 0.25,
            checker_mac_nj: 0.015,
            checker_cmp_nj: 0.008,
            checker_read_nj: 0.004,
            queue_word_nj: 0.02,
        }
    }
}

impl EnergyParams {
    /// Energy of one checker prediction.
    ///
    /// # Examples
    ///
    /// ```
    /// use rumba_energy::EnergyParams;
    /// use rumba_predict::CheckerCost;
    ///
    /// let p = EnergyParams::default();
    /// let free = p.checker_prediction_nj(CheckerCost::free());
    /// assert_eq!(free, 0.0);
    /// ```
    #[must_use]
    pub fn checker_prediction_nj(&self, cost: CheckerCost) -> f64 {
        cost.macs as f64 * self.checker_mac_nj
            + cost.comparisons as f64 * self.checker_cmp_nj
            + cost.table_reads as f64 * self.checker_read_nj
    }

    /// Renders a cycle count as milliseconds at the configured clock.
    #[must_use]
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.cpu_freq_ghz * 1e9) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_energy_is_linear_in_ops() {
        let p = EnergyParams::default();
        let one = p.checker_prediction_nj(CheckerCost { macs: 1, comparisons: 0, table_reads: 0 });
        let ten = p.checker_prediction_nj(CheckerCost { macs: 10, comparisons: 0, table_reads: 0 });
        assert!((ten - 10.0 * one).abs() < 1e-12);
    }

    #[test]
    fn npu_is_cheaper_per_cycle_than_cpu() {
        let p = EnergyParams::default();
        assert!(p.npu_nj_per_cycle < p.cpu_active_nj_per_cycle);
        assert!(p.cpu_idle_nj_per_cycle < p.cpu_active_nj_per_cycle);
    }

    #[test]
    fn cycles_to_ms_at_clock() {
        let p = EnergyParams::default();
        // 3.4e9 cycles = 1 second = 1000 ms.
        assert!((p.cycles_to_ms(3.4e9) - 1000.0).abs() < 1e-9);
    }
}
