//! The Table-2 x86-64 core description.

use std::fmt;

/// Microarchitectural parameters of the host CPU (the paper's Table 2).
///
/// The struct is purely descriptive — the energy model consumes only the
/// derived constants in [`crate::EnergyParams`] — but it is the canonical
/// record the `table2` harness binary prints and the defaults match the
/// paper field for field.
///
/// # Examples
///
/// ```
/// use rumba_energy::CoreConfig;
///
/// let core = CoreConfig::default();
/// assert_eq!(core.fetch_width, 4);
/// assert_eq!(core.l2_size_kb, 2048);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions issued per cycle.
    pub issue_width: usize,
    /// Integer ALUs / floating-point units.
    pub int_alus: usize,
    /// Floating-point units.
    pub fpus: usize,
    /// Load / store functional units.
    pub load_fus: usize,
    /// Store functional units.
    pub store_fus: usize,
    /// Issue queue entries.
    pub issue_queue_entries: usize,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Integer physical registers.
    pub int_regs: usize,
    /// Floating-point physical registers.
    pub fp_regs: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// Return address stack entries.
    pub ras_entries: usize,
    /// Load queue entries.
    pub load_queue_entries: usize,
    /// Store queue entries.
    pub store_queue_entries: usize,
    /// L1 instruction cache size in KB.
    pub l1_icache_kb: usize,
    /// L1 data cache size in KB.
    pub l1_dcache_kb: usize,
    /// L1 hit latency in cycles.
    pub l1_hit_cycles: usize,
    /// L2 hit latency in cycles.
    pub l2_hit_cycles: usize,
    /// L1/L2 associativity.
    pub cache_associativity: usize,
    /// Instruction TLB entries.
    pub itlb_entries: usize,
    /// Data TLB entries.
    pub dtlb_entries: usize,
    /// L2 cache size in KB.
    pub l2_size_kb: usize,
    /// Branch predictor family.
    pub branch_predictor: &'static str,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            fetch_width: 4,
            issue_width: 6,
            int_alus: 2,
            fpus: 2,
            load_fus: 1,
            store_fus: 1,
            issue_queue_entries: 32,
            rob_entries: 96,
            int_regs: 256,
            fp_regs: 256,
            btb_entries: 2048,
            ras_entries: 16,
            load_queue_entries: 48,
            store_queue_entries: 48,
            l1_icache_kb: 32,
            l1_dcache_kb: 32,
            l1_hit_cycles: 3,
            l2_hit_cycles: 12,
            cache_associativity: 8,
            itlb_entries: 128,
            dtlb_entries: 256,
            l2_size_kb: 2048,
            branch_predictor: "Tournament",
        }
    }
}

impl CoreConfig {
    /// The Table-2 rows as `(parameter, value)` strings, in the paper's
    /// layout order, for the `table2` harness.
    #[must_use]
    pub fn table_rows(&self) -> Vec<(String, String)> {
        vec![
            ("Fetch/Issue width".into(), format!("{}/{}", self.fetch_width, self.issue_width)),
            ("INT ALUs/FPUs".into(), format!("{}/{}", self.int_alus, self.fpus)),
            ("Load/Store FUs".into(), format!("{}/{}", self.load_fus, self.store_fus)),
            ("Issue Queue Entries".into(), self.issue_queue_entries.to_string()),
            ("ROB Entries".into(), self.rob_entries.to_string()),
            ("INT/FP Physical Registers".into(), format!("{}/{}", self.int_regs, self.fp_regs)),
            ("BTB Entries".into(), self.btb_entries.to_string()),
            ("RAS Entries".into(), self.ras_entries.to_string()),
            (
                "Load/Store Queue Entries".into(),
                format!("{}/{}", self.load_queue_entries, self.store_queue_entries),
            ),
            ("L1 iCache".into(), format!("{}KB", self.l1_icache_kb)),
            ("L1 dCache".into(), format!("{}KB", self.l1_dcache_kb)),
            (
                "L1/L2 Hit Latency".into(),
                format!("{}/{} cycles", self.l1_hit_cycles, self.l2_hit_cycles),
            ),
            ("L1/L2 Associativity".into(), self.cache_associativity.to_string()),
            ("ITLB/DTLB Entries".into(), format!("{}/{}", self.itlb_entries, self.dtlb_entries)),
            ("L2 Size".into(), format!("{} MB", self.l2_size_kb / 1024)),
            ("Branch Predictor".into(), self.branch_predictor.to_string()),
        ]
    }
}

impl fmt::Display for CoreConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.table_rows() {
            writeln!(f, "{name:<28} {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = CoreConfig::default();
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.rob_entries, 96);
        assert_eq!(c.btb_entries, 2048);
        assert_eq!(c.branch_predictor, "Tournament");
    }

    #[test]
    fn table_has_all_sixteen_rows() {
        assert_eq!(CoreConfig::default().table_rows().len(), 16);
    }

    #[test]
    fn display_mentions_key_values() {
        let text = CoreConfig::default().to_string();
        assert!(text.contains("4/6"));
        assert!(text.contains("2 MB"));
        assert!(text.contains("Tournament"));
    }
}
