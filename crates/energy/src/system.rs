//! Whole-application roll-up: composes the kernel region (accelerator,
//! checker, CPU re-execution) with the exact non-kernel region into total
//! cycles and energy per scheme.

use rumba_predict::CheckerCost;

use crate::EnergyParams;

/// Static description of one application's workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Number of kernel invocations (loop iterations) in one run.
    pub invocations: usize,
    /// Cycles one exact invocation costs on the host CPU.
    pub cpu_cycles_per_invocation: f64,
    /// Fraction of whole-application CPU time spent in the kernel.
    pub kernel_fraction: f64,
}

impl WorkloadProfile {
    /// Cycles the non-kernel (always exact, always on the CPU) region costs.
    #[must_use]
    pub fn non_kernel_cycles(&self) -> f64 {
        let f = self.kernel_fraction.clamp(1e-9, 1.0);
        self.invocations as f64 * self.cpu_cycles_per_invocation * (1.0 - f) / f
    }

    /// Cycles the kernel region costs when run exactly on the CPU.
    #[must_use]
    pub fn kernel_cycles(&self) -> f64 {
        self.invocations as f64 * self.cpu_cycles_per_invocation
    }
}

/// Dynamic activity one scheme generated while executing the workload.
///
/// A pure-CPU run is the default (all zeros); an unchecked NPU sets the
/// accelerator fields; Rumba schemes additionally set checker and
/// re-execution fields.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SchemeActivity {
    /// Invocations actually executed on the accelerator (may be fewer than
    /// the workload's under detector placement Configuration 1).
    pub accelerator_invocations: usize,
    /// Accelerator cycles per invocation.
    pub npu_cycles_per_invocation: u64,
    /// Words moved through the input+output queues per accelerator
    /// invocation.
    pub io_words_per_invocation: usize,
    /// Checker predictions issued.
    pub checker_invocations: usize,
    /// Hardware work per checker prediction.
    pub checker_cost: CheckerCost,
    /// Iterations re-executed exactly on the CPU.
    pub reexecutions: usize,
    /// Iterations repaired in place by subtracting the checker's signed
    /// error estimate (the predict-and-compensate path). Each costs one
    /// subtract per transferred word on the merger side — orders of
    /// magnitude below a CPU re-execution.
    pub compensations: usize,
    /// Extra cycles serialized into the kernel phase (e.g. detector latency
    /// under placement Configuration 1).
    pub serial_detector_cycles: f64,
    /// Total accelerator cycles across a model-zoo routed stream, where
    /// different invocations ran different-cost tiers. When positive it
    /// replaces `accelerator_invocations × npu_cycles_per_invocation` as
    /// the accelerator stream; zero (the default) keeps the uniform
    /// single-model arithmetic bit-for-bit.
    pub tiered_accelerator_cycles: f64,
}

/// Total cost of one application run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunCost {
    /// Whole-application cycles (wall-clock at the core frequency).
    pub cycles: f64,
    /// Whole-application energy in nanojoules.
    pub energy_nj: f64,
}

/// Where the energy of an accelerated run went, component by component.
///
/// Components always sum to [`EnergyBreakdown::total_nj`]; the invariant is
/// property-tested.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// CPU-active energy of the exact non-kernel region.
    pub non_kernel_nj: f64,
    /// Accelerator compute energy.
    pub accelerator_nj: f64,
    /// Core↔accelerator queue transfer energy.
    pub queue_nj: f64,
    /// Checker prediction energy.
    pub checker_nj: f64,
    /// CPU-active energy of exact re-executions.
    pub reexecution_nj: f64,
    /// Merger-side energy of in-place compensations (one subtract per
    /// transferred word, at checker-MAC energy).
    pub compensation_nj: f64,
    /// CPU wait energy while the accelerator runs uncovered by recovery.
    pub idle_nj: f64,
}

impl EnergyBreakdown {
    /// Sum of all components.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.non_kernel_nj
            + self.accelerator_nj
            + self.queue_nj
            + self.checker_nj
            + self.reexecution_nj
            + self.compensation_nj
            + self.idle_nj
    }

    /// The quality-management overhead: everything Rumba adds on top of an
    /// unchecked accelerator (checker + recovery energy, both the
    /// re-executed and the compensated kind).
    #[must_use]
    pub fn management_overhead_nj(&self) -> f64 {
        self.checker_nj + self.reexecution_nj + self.compensation_nj
    }
}

impl RunCost {
    /// Speedup of this run relative to a baseline (`baseline / self` in
    /// time).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &RunCost) -> f64 {
        baseline.cycles / self.cycles
    }

    /// Energy-reduction factor relative to a baseline (`baseline / self`).
    #[must_use]
    pub fn energy_reduction_vs(&self, baseline: &RunCost) -> f64 {
        baseline.energy_nj / self.energy_nj
    }
}

/// The analytical system model: turns workload + activity into [`RunCost`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SystemModel {
    params: EnergyParams,
}

impl SystemModel {
    /// Creates a model with the given energy constants.
    #[must_use]
    pub fn new(params: EnergyParams) -> Self {
        Self { params }
    }

    /// The energy constants in use.
    #[must_use]
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Cost of running the whole application exactly on the CPU.
    #[must_use]
    pub fn cpu_baseline(&self, workload: &WorkloadProfile) -> RunCost {
        let cycles = workload.non_kernel_cycles() + workload.kernel_cycles();
        RunCost { cycles, energy_nj: cycles * self.params.cpu_active_nj_per_cycle }
    }

    /// Cost of running the application with the kernel offloaded per the
    /// given activity.
    ///
    /// Timing: the accelerator stream and the CPU's re-execution stream
    /// overlap (the paper's Figure-8 pipeline), so the kernel phase takes
    /// `max(accelerator stream, re-execution stream)` plus any serialized
    /// detector cycles; the non-kernel region is unchanged.
    ///
    /// Energy: non-kernel and re-execution cycles at CPU-active energy, the
    /// accelerator stream at NPU energy, queue traffic per word, checker
    /// predictions per operation, and the CPU's wait gap (accelerator time
    /// not covered by re-execution) at CPU-idle energy.
    #[must_use]
    pub fn accelerated(&self, workload: &WorkloadProfile, activity: &SchemeActivity) -> RunCost {
        let (cost, _) = self.accelerated_detailed(workload, activity);
        cost
    }

    /// Like [`SystemModel::accelerated`], but also returns the per-component
    /// [`EnergyBreakdown`].
    #[must_use]
    pub fn accelerated_detailed(
        &self,
        workload: &WorkloadProfile,
        activity: &SchemeActivity,
    ) -> (RunCost, EnergyBreakdown) {
        let p = &self.params;
        let accel_stream = if activity.tiered_accelerator_cycles > 0.0 {
            activity.tiered_accelerator_cycles
        } else {
            activity.accelerator_invocations as f64 * activity.npu_cycles_per_invocation as f64
        };
        let reexec_stream = activity.reexecutions as f64 * workload.cpu_cycles_per_invocation;
        let kernel_phase = accel_stream.max(reexec_stream) + activity.serial_detector_cycles;
        let cycles = workload.non_kernel_cycles() + kernel_phase;

        let idle_gap = (accel_stream - reexec_stream).max(0.0);
        let breakdown = EnergyBreakdown {
            non_kernel_nj: workload.non_kernel_cycles() * p.cpu_active_nj_per_cycle,
            accelerator_nj: accel_stream * p.npu_nj_per_cycle,
            queue_nj: activity.accelerator_invocations as f64
                * activity.io_words_per_invocation as f64
                * p.queue_word_nj,
            checker_nj: activity.checker_invocations as f64
                * p.checker_prediction_nj(activity.checker_cost),
            reexecution_nj: reexec_stream * p.cpu_active_nj_per_cycle,
            // One subtract per transferred word per compensated iteration
            // (io_words is a conservative stand-in for the output width).
            // The work hides in the merger, so it costs energy but no time.
            compensation_nj: activity.compensations as f64
                * activity.io_words_per_invocation as f64
                * p.checker_mac_nj,
            idle_nj: (idle_gap + activity.serial_detector_cycles) * p.cpu_idle_nj_per_cycle,
        };
        (RunCost { cycles, energy_nj: breakdown.total_nj() }, breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn workload() -> WorkloadProfile {
        WorkloadProfile {
            invocations: 10_000,
            cpu_cycles_per_invocation: 300.0,
            kernel_fraction: 0.9,
        }
    }

    fn npu_activity(reexec: usize) -> SchemeActivity {
        SchemeActivity {
            accelerator_invocations: 10_000,
            npu_cycles_per_invocation: 50,
            io_words_per_invocation: 4,
            checker_invocations: 10_000,
            checker_cost: CheckerCost { macs: 4, comparisons: 1, table_reads: 4 },
            reexecutions: reexec,
            compensations: 0,
            serial_detector_cycles: 0.0,
            tiered_accelerator_cycles: 0.0,
        }
    }

    #[test]
    fn baseline_composition() {
        let m = SystemModel::new(EnergyParams::default());
        let b = m.cpu_baseline(&workload());
        // kernel 3e6 cycles, non-kernel 3e6/9 ≈ 0.333e6.
        assert!((b.cycles - (3.0e6 + 3.0e6 / 9.0)).abs() < 1.0);
        assert!((b.energy_nj - b.cycles * 1.1).abs() < 1e-6);
    }

    #[test]
    fn unchecked_npu_saves_time_and_energy() {
        let m = SystemModel::new(EnergyParams::default());
        let w = workload();
        let base = m.cpu_baseline(&w);
        let npu = m.accelerated(&w, &npu_activity(0));
        assert!(npu.speedup_vs(&base) > 2.0, "speedup {}", npu.speedup_vs(&base));
        assert!(npu.energy_reduction_vs(&base) > 2.0);
    }

    #[test]
    fn reexecution_costs_energy_but_hides_in_pipeline() {
        let m = SystemModel::new(EnergyParams::default());
        let w = workload();
        let clean = m.accelerated(&w, &npu_activity(0));
        // 50 npu cycles vs 300 cpu cycles per re-exec: the CPU keeps up
        // while fixing up to 1/6 of iterations.
        let light = m.accelerated(&w, &npu_activity(1_000));
        assert_eq!(light.cycles, clean.cycles, "overlapped recovery adds no time");
        assert!(light.energy_nj > clean.energy_nj);
    }

    #[test]
    fn excess_reexecution_stalls_the_pipeline() {
        let m = SystemModel::new(EnergyParams::default());
        let w = workload();
        let clean = m.accelerated(&w, &npu_activity(0));
        let heavy = m.accelerated(&w, &npu_activity(5_000));
        assert!(heavy.cycles > clean.cycles, "CPU became the bottleneck");
    }

    #[test]
    fn compensation_is_orders_of_magnitude_cheaper_than_reexecution() {
        let m = SystemModel::new(EnergyParams::default());
        let w = workload();
        let clean = m.accelerated(&w, &npu_activity(0));
        let mut a = npu_activity(0);
        a.compensations = 1_000;
        let (compensated, breakdown) = m.accelerated_detailed(&w, &a);
        let reexecuted = m.accelerated(&w, &npu_activity(1_000));
        assert_eq!(compensated.cycles, clean.cycles, "compensation adds no time");
        assert!(breakdown.compensation_nj > 0.0);
        let comp_cost = compensated.energy_nj - clean.energy_nj;
        let reexec_cost = reexecuted.energy_nj - clean.energy_nj;
        assert!(
            comp_cost * 100.0 < reexec_cost,
            "per-fix: compensation {comp_cost} vs re-execution {reexec_cost}"
        );
    }

    #[test]
    fn tiered_cycles_replace_the_uniform_accelerator_stream() {
        let m = SystemModel::new(EnergyParams::default());
        let w = workload();
        let uniform = m.accelerated(&w, &npu_activity(0));
        let mut a = npu_activity(0);
        // Half the stream rode a tier a fifth the cost of the top model.
        a.tiered_accelerator_cycles = 5_000.0 * 50.0 + 5_000.0 * 10.0;
        let routed = m.accelerated(&w, &a);
        assert!(routed.energy_nj < uniform.energy_nj, "cheap tiers must save energy");
        assert!(routed.cycles <= uniform.cycles, "a shorter stream never takes longer");
        // An explicit tier total equal to the uniform product is identical.
        a.tiered_accelerator_cycles = 10_000.0 * 50.0;
        assert_eq!(m.accelerated(&w, &a), uniform);
    }

    #[test]
    fn serial_detector_cycles_add_latency() {
        let m = SystemModel::new(EnergyParams::default());
        let w = workload();
        let mut a = npu_activity(0);
        let parallel = m.accelerated(&w, &a);
        a.serial_detector_cycles = 100_000.0;
        let serialized = m.accelerated(&w, &a);
        assert!(serialized.cycles > parallel.cycles);
        assert!(serialized.energy_nj > parallel.energy_nj);
    }

    proptest! {
        #[test]
        fn energy_monotone_in_reexecutions(r1 in 0usize..5_000, r2 in 0usize..5_000) {
            let m = SystemModel::new(EnergyParams::default());
            let w = workload();
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            let e_lo = m.accelerated(&w, &npu_activity(lo)).energy_nj;
            let e_hi = m.accelerated(&w, &npu_activity(hi)).energy_nj;
            // Re-execution swaps idle cycles (0.3 nJ) for active ones
            // (1.1 nJ), so energy can never decrease.
            prop_assert!(e_hi >= e_lo - 1e-9);
        }

        #[test]
        fn breakdown_components_sum_to_total(reexec in 0usize..20_000) {
            let m = SystemModel::new(EnergyParams::default());
            let w = workload();
            let a = npu_activity(reexec.min(w.invocations));
            let (cost, breakdown) = m.accelerated_detailed(&w, &a);
            prop_assert!((cost.energy_nj - breakdown.total_nj()).abs() < 1e-6);
            prop_assert!(breakdown.management_overhead_nj() <= cost.energy_nj + 1e-9);
        }

        #[test]
        fn time_never_below_accelerator_stream(reexec in 0usize..20_000) {
            let m = SystemModel::new(EnergyParams::default());
            let w = workload();
            let a = npu_activity(reexec.min(w.invocations));
            let run = m.accelerated(&w, &a);
            let accel_stream = a.accelerator_invocations as f64 * a.npu_cycles_per_invocation as f64;
            prop_assert!(run.cycles >= w.non_kernel_cycles() + accel_stream - 1e-9);
        }
    }
}
