//! Analytical timing and energy models replacing the paper's GEM5 + McPAT
//! toolchain.
//!
//! The paper feeds microarchitectural activity from GEM5 into McPAT to get
//! whole-application energy, using the Table-2 x86-64 core and an 8-PE NPU.
//! Neither tool is reproducible here, so this crate provides a calibrated
//! analytical substitute:
//!
//! - [`CoreConfig`]: the Table-2 core parameters (printed by the `table2`
//!   harness binary),
//! - [`EnergyParams`]: per-cycle / per-operation energy constants chosen so
//!   the *unchecked NPU* lands near the paper's averages (≈3.2× energy
//!   saving at ≈2.2× speedup, with `kmeans` showing a slowdown),
//! - [`WorkloadProfile`] + [`SchemeActivity`] → [`SystemModel`]: Amdahl
//!   composition of the kernel and non-kernel regions into
//!   whole-application [`RunCost`]s, including checker energy and CPU
//!   re-execution energy for Rumba schemes.
//!
//! Because every paper claim is a *ratio* between schemes on identical
//! workloads, an analytical model preserves the orderings and approximate
//! magnitudes the reproduction targets (see DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! use rumba_energy::{EnergyParams, SchemeActivity, SystemModel, WorkloadProfile};
//!
//! let model = SystemModel::new(EnergyParams::default());
//! let workload = WorkloadProfile {
//!     invocations: 10_000,
//!     cpu_cycles_per_invocation: 300.0,
//!     kernel_fraction: 0.9,
//! };
//! let baseline = model.cpu_baseline(&workload);
//! let npu_only = model.accelerated(&workload, &SchemeActivity {
//!     accelerator_invocations: 10_000,
//!     npu_cycles_per_invocation: 60,
//!     io_words_per_invocation: 4,
//!     ..SchemeActivity::default()
//! });
//! assert!(npu_only.energy_nj < baseline.energy_nj);
//! assert!(npu_only.cycles < baseline.cycles);
//! ```

mod core_model;
mod params;
mod system;

pub use core_model::CoreConfig;
pub use params::EnergyParams;
pub use system::{EnergyBreakdown, RunCost, SchemeActivity, SystemModel, WorkloadProfile};
