//! Open-world drift workloads + online checker re-fit: the proptest and
//! regression sweep pinning the determinism and recovery contracts of
//! `rumba_core::openworld` and the runtime's `Recalibrated` refit rung.
//!
//! Lives in its own integration-test binary because several tests
//! override the process-wide worker-thread count and SIMD mode.

use std::sync::OnceLock;

use proptest::prelude::*;
use rumba_accel::CheckerUnit;
use rumba_apps::{kernel_by_name, Split};
use rumba_core::openworld::{scenarios, Scenario, ScenarioStream};
use rumba_core::runtime::{DegradeStage, RefitConfig, RumbaSystem, RuntimeConfig, WatchdogConfig};
use rumba_core::trainer::{train_app, OfflineConfig, TrainedApp};
use rumba_core::tuner::{Tuner, TuningMode};
use rumba_faults::FaultModel;
use rumba_nn::NnDataset;

fn trained() -> &'static TrainedApp {
    static APP: OnceLock<TrainedApp> = OnceLock::new();
    APP.get_or_init(|| {
        let kernel = kernel_by_name("gaussian").unwrap();
        train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap()
    })
}

fn pool() -> &'static NnDataset {
    static DATA: OnceLock<NnDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        let kernel = kernel_by_name("gaussian").unwrap();
        kernel.generate(Split::Test, 42)
    })
}

const WINDOW: usize = 128;
const STREAM_LEN: usize = 1408; // 11 windows

fn watchdog() -> WatchdogConfig {
    WatchdogConfig { quality_limit: 0.12, patience: 2, fallback_patience: 8 }
}

fn refit_config() -> RefitConfig {
    RefitConfig { capacity: 192, min_rows: 24, audit_period: 8, quality_budget: 0.05 }
}

fn build_system(refit: bool) -> RumbaSystem {
    let app = trained();
    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(Box::new(app.tree.clone())),
        Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, 0.05).unwrap(),
        RuntimeConfig { window: WINDOW, watchdog: Some(watchdog()), ..RuntimeConfig::default() },
    )
    .unwrap();
    if refit {
        system.arm_refit(refit_config()).unwrap();
    }
    system
}

/// What one streamed open-world run produced (everything the
/// determinism and recovery assertions compare).
#[derive(Debug, Clone, PartialEq)]
struct StreamedRun {
    merged: Vec<f64>,
    fired: Vec<bool>,
    stage: DegradeStage,
    threshold_history: Vec<f64>,
    recalibrations: u64,
    fallbacks: u64,
    refit_epoch: u64,
    reservoir_words: Vec<u64>,
    /// Mean exact-vs-merged error over the drifted half of the stream.
    tail_error: f64,
}

/// Streams `n` invocations of `scenario` through `system`, with the
/// scenario's fault plan (drift) attached.
fn stream_run(system: &mut RumbaSystem, scenario: Scenario, seed: u64, n: usize) -> StreamedRun {
    let kernel = kernel_by_name("gaussian").unwrap();
    let stream = ScenarioStream::new(pool(), seed, scenario);
    system.set_fault_plan(stream.fault_plan());
    system.begin_stream();
    let out_dim = kernel.output_dim();
    let mut out = vec![0.0; out_dim];
    let mut merged = Vec::with_capacity(n * out_dim);
    let mut fired = Vec::with_capacity(n);
    for i in 0..n {
        let input = stream.input(i);
        let outcome = system.process(kernel.as_ref(), &input, &mut out).unwrap();
        fired.push(outcome.fired);
        merged.extend_from_slice(&out);
    }
    system.end_stream(kernel.as_ref());

    // Measured merged quality over the back half (fully drifted regime).
    let metric = kernel.metric();
    let mut exact = vec![0.0; out_dim];
    let tail = n / 2;
    let tail_error = (tail..n)
        .map(|i| {
            kernel.compute(&stream.input(i), &mut exact);
            metric.invocation_error(&exact, &merged[i * out_dim..(i + 1) * out_dim])
        })
        .sum::<f64>()
        / (n - tail) as f64;

    let mut reservoir_words = Vec::new();
    if let Some(r) = system.refit_reservoir() {
        r.to_words(&mut reservoir_words);
    }
    StreamedRun {
        merged,
        fired,
        stage: system.degrade_stage(),
        threshold_history: system.tuner().history().to_vec(),
        recalibrations: system.fault_stats().recalibrations,
        fallbacks: system.fault_stats().fallbacks,
        refit_epoch: system.refit_epoch(),
        reservoir_words,
        tail_error,
    }
}

fn drift_scenario() -> Scenario {
    // Ramp completes by invocation 384 (window 3 of 128), magnitude half
    // the dataset's input scale — far outside the trained regime.
    scenarios().into_iter().find(|s| s.name == "drift").unwrap()
}

#[test]
fn ladder_under_drift_recalibrates_refits_and_recovers_where_reset_only_fails() {
    // Satellite 3: with refit armed, ramped InputDrift must walk the
    // ladder Normal → Recalibrated (refit commits) and back to Normal
    // ("recovered") once the refit clears the dirty windows — without
    // ever abandoning the accelerator.
    let mut on = build_system(true);
    let run_on = stream_run(&mut on, drift_scenario(), 7, STREAM_LEN);
    eprintln!(
        "refit-on: stage={:?} recals={} fallbacks={} epoch={} tail_err={:.4} fires={}",
        run_on.stage,
        run_on.recalibrations,
        run_on.fallbacks,
        run_on.refit_epoch,
        run_on.tail_error,
        run_on.fired.iter().filter(|&&f| f).count(),
    );
    assert!(run_on.recalibrations >= 1, "drift must trip the Recalibrated rung");
    assert_eq!(run_on.fallbacks, 0, "refit must fire before CpuFallback");
    assert!(run_on.refit_epoch >= 1, "the rung must commit an actual refit");
    assert_eq!(
        run_on.stage,
        DegradeStage::Normal,
        "a clean window after the refit must transition back (recovered)"
    );

    // The old reset-only behavior demonstrably fails this: without the
    // refit's audit channel the stale checker under-predicts the drifted
    // errors, the watchdog never even goes dirty, and the tenant silently
    // eats the drift-inflated error.
    let mut off = build_system(false);
    let run_off = stream_run(&mut off, drift_scenario(), 7, STREAM_LEN);
    eprintln!(
        "refit-off: stage={:?} recals={} tail_err={:.4} fires={}",
        run_off.stage,
        run_off.recalibrations,
        run_off.tail_error,
        run_off.fired.iter().filter(|&&f| f).count(),
    );
    assert_eq!(run_off.recalibrations, 0, "reset-only watchdog stays blind to drift");
    assert!(
        run_off.tail_error > 2.0 * run_on.tail_error,
        "reset-only merged error {:.4} must be far worse than refit-on {:.4}",
        run_off.tail_error,
        run_on.tail_error
    );
}

#[test]
fn refit_on_streams_are_bit_identical_across_threads_and_simd() {
    // Satellite 1a: the full refit-on open-world run — merged outputs,
    // firing pattern, threshold trajectory, reservoir content, epoch —
    // must be bit-identical at threads {1, 4} × SIMD {off, on}. One test
    // function drives all four combos serially because the overrides are
    // process-wide.
    let mut reference: Option<StreamedRun> = None;
    for threads in [1usize, 4] {
        for simd in [rumba_nn::SimdMode::Off, rumba_nn::SimdMode::On] {
            rumba_parallel::set_thread_override(Some(threads));
            rumba_nn::set_simd_override(Some(simd));
            let mut system = build_system(true);
            let run = stream_run(&mut system, drift_scenario(), 7, STREAM_LEN);
            rumba_parallel::set_thread_override(None);
            rumba_nn::set_simd_override(None);
            match &reference {
                None => reference = Some(run),
                Some(want) => {
                    assert_eq!(
                        bits(&run.merged),
                        bits(&want.merged),
                        "threads {threads} simd {simd:?}: merged outputs diverged"
                    );
                    assert_eq!(run.fired, want.fired, "threads {threads} simd {simd:?}");
                    assert_eq!(
                        bits(&run.threshold_history),
                        bits(&want.threshold_history),
                        "threads {threads} simd {simd:?}: threshold trajectory diverged"
                    );
                    assert_eq!(
                        run.reservoir_words, want.reservoir_words,
                        "threads {threads} simd {simd:?}: reservoir diverged"
                    );
                    assert_eq!(run.refit_epoch, want.refit_epoch);
                    assert_eq!(run.stage, want.stage);
                }
            }
        }
    }
    let reference = reference.unwrap();
    assert!(reference.refit_epoch >= 1, "the matrix must actually exercise a refit");
}

#[test]
fn refit_on_with_zero_drift_is_byte_identical_to_refit_off() {
    // Satellite 1c: arming the refit must not perturb a clean stream by
    // even one bit — the audit channel measures, the reservoir
    // accumulates, but no refit fires and no decision changes.
    for scenario in scenarios() {
        if scenario.name == "drift" {
            continue; // regime change by construction
        }
        let mut on = build_system(true);
        let run_on = stream_run(&mut on, scenario, 11, STREAM_LEN);
        let mut off = build_system(false);
        let run_off = stream_run(&mut off, scenario, 11, STREAM_LEN);
        if run_on.refit_epoch > 0 {
            continue; // scenario dirty enough to refit — not a clean stream
        }
        assert_eq!(
            bits(&run_on.merged),
            bits(&run_off.merged),
            "{}: armed-but-idle refit must not change the merged stream",
            scenario.name
        );
        assert_eq!(run_on.fired, run_off.fired, "{}", scenario.name);
        assert_eq!(
            bits(&run_on.threshold_history),
            bits(&run_off.threshold_history),
            "{}: armed-but-idle refit must not move the tuner",
            scenario.name
        );
    }
}

#[test]
fn poisoned_reservoir_rows_never_train_the_refit() {
    // Satellite 4: with the checker blinded on every invocation, every
    // captured row carries the poisoned provenance tag, so even though
    // drift drives the watchdog dirty and the `Recalibrated` rung fires,
    // no refit ever commits — the reservoir holds rows, but none are
    // eligible.
    let mut system = build_system(true);
    let kernel = kernel_by_name("gaussian").unwrap();
    let stream = ScenarioStream::new(pool(), 7, drift_scenario());
    let mut plan = stream.fault_plan().expect("drift scenario carries a plan");
    plan = plan.with(FaultModel::CheckerBlind { rate: 1.0 });
    system.set_fault_plan(Some(plan));
    system.begin_stream();
    let mut out = vec![0.0; kernel.output_dim()];
    for i in 0..STREAM_LEN {
        system.process(kernel.as_ref(), &stream.input(i), &mut out).unwrap();
    }
    system.end_stream(kernel.as_ref());
    let reservoir = system.refit_reservoir().unwrap();
    assert!(!reservoir.is_empty(), "capture must still hold the rows");
    assert!(
        reservoir.rows().iter().all(|r| r.poisoned),
        "a fully blinded stream taints every captured row"
    );
    assert!(reservoir.clean_indices().is_empty());
    assert!(
        system.fault_stats().recalibrations >= 1,
        "the audit channel must still drive the rung"
    );
    assert_eq!(
        system.refit_epoch(),
        0,
        "no refit may ever train on poisoned rows — with zero clean rows, none commits"
    );

    // Control: the same drift without blinding leaves clean rows and the
    // refit commits.
    let mut clean = build_system(true);
    let run = stream_run(&mut clean, drift_scenario(), 7, STREAM_LEN);
    assert!(run.refit_epoch >= 1);
}

#[test]
fn mid_refit_snapshot_restores_bit_for_bit_and_continues_identically() {
    // Core half of satellite 2: split a refit-on drift stream at an
    // arbitrary point past the first refit (reservoir partially filled,
    // epoch nonzero), export, restore onto a freshly built system, and
    // continue both — every subsequent output and the final reservoir
    // must match bit for bit.
    let kernel = kernel_by_name("gaussian").unwrap();
    let stream = ScenarioStream::new(pool(), 7, drift_scenario());
    let split = 700; // mid-window, past the first refit commit

    let mut origin = build_system(true);
    origin.set_fault_plan(stream.fault_plan());
    origin.begin_stream();
    let mut out = vec![0.0; kernel.output_dim()];
    for i in 0..split {
        origin.process(kernel.as_ref(), &stream.input(i), &mut out).unwrap();
    }
    assert!(origin.refit_epoch() >= 1, "split point must land mid-refit");
    let reservoir_len = origin.refit_reservoir().unwrap().len();
    assert!(
        reservoir_len > 0 && reservoir_len < refit_config().capacity,
        "split point must catch the reservoir partially filled, got {reservoir_len}"
    );
    let words = origin.export_state();

    let mut resumed = build_system(true);
    resumed.set_fault_plan(stream.fault_plan());
    resumed.begin_stream();
    resumed.import_state(&words).unwrap();
    assert_eq!(resumed.refit_epoch(), origin.refit_epoch());
    assert_eq!(resumed.export_state(), words, "re-export must be bit-identical");

    let mut tail_origin = Vec::new();
    let mut tail_resumed = Vec::new();
    for i in split..STREAM_LEN {
        let input = stream.input(i);
        origin.process(kernel.as_ref(), &input, &mut out).unwrap();
        tail_origin.extend_from_slice(&out);
        resumed.process(kernel.as_ref(), &input, &mut out).unwrap();
        tail_resumed.extend_from_slice(&out);
    }
    origin.end_stream(kernel.as_ref());
    resumed.end_stream(kernel.as_ref());
    assert_eq!(bits(&tail_origin), bits(&tail_resumed));
    assert_eq!(origin.export_state(), resumed.export_state());
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    // Satellite 1b: refit decisions — whether an epoch committed, and the
    // threshold trajectory it produced — are a pure function of
    // (seed, window): replaying a seed reproduces them bit for bit, for
    // every scenario.
    #[test]
    fn refit_decisions_are_pure_in_seed_and_window(seed in 0u64..10_000, idx in 0usize..4) {
        let scenario = scenarios()[idx];
        let mut a = build_system(true);
        let run_a = stream_run(&mut a, scenario, seed, STREAM_LEN);
        let mut b = build_system(true);
        let run_b = stream_run(&mut b, scenario, seed, STREAM_LEN);
        prop_assert_eq!(run_a.refit_epoch, run_b.refit_epoch);
        prop_assert_eq!(bits(&run_a.threshold_history), bits(&run_b.threshold_history));
        prop_assert_eq!(bits(&run_a.merged), bits(&run_b.merged));
        prop_assert_eq!(run_a.reservoir_words, run_b.reservoir_words);
        prop_assert_eq!(run_a.stage, run_b.stage);
    }
}
