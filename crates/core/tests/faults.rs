//! Property tests for the fault-injection + graceful-degradation contract:
//! under *every* fault model the runtime's merged outputs stay finite,
//! fixes never exceed invocations, and an injected run is bit-identical
//! across thread counts (the `rumba-parallel` determinism contract
//! extends to corrupted datapaths).
//!
//! Lives in its own integration-test binary because it overrides the
//! process-wide worker-thread count.

use std::sync::OnceLock;

use proptest::prelude::*;
use rumba_accel::CheckerUnit;
use rumba_apps::{kernel_by_name, Split};
use rumba_core::runtime::{RumbaSystem, RunOutcome, RuntimeConfig, WatchdogConfig};
use rumba_core::trainer::{train_app, OfflineConfig, TrainedApp};
use rumba_core::tuner::{Tuner, TuningMode};
use rumba_faults::{FaultModel, FaultPlan};
use rumba_nn::NnDataset;

fn trained() -> &'static TrainedApp {
    static APP: OnceLock<TrainedApp> = OnceLock::new();
    APP.get_or_init(|| {
        let kernel = kernel_by_name("gaussian").unwrap();
        train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap()
    })
}

fn workload() -> &'static NnDataset {
    static DATA: OnceLock<NnDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        let kernel = kernel_by_name("gaussian").unwrap();
        let full = kernel.generate(Split::Test, 42);
        // A few windows' worth keeps 96 proptest cases fast while still
        // exercising the tuner and the watchdog across window boundaries.
        let indices: Vec<usize> = (0..full.len().min(640)).collect();
        full.subset(&indices)
    })
}

/// One managed run over the shared workload with the given plan and
/// worker-thread count.
fn run_with(plan: &FaultPlan, threads: usize) -> RunOutcome {
    let kernel = kernel_by_name("gaussian").unwrap();
    let app = trained();
    let mut system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(Box::new(app.tree.clone())),
        Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, 0.05).unwrap(),
        RuntimeConfig {
            window: 128,
            watchdog: Some(WatchdogConfig::default()),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    system.set_fault_plan(Some(plan.clone()));
    rumba_parallel::set_thread_override(Some(threads));
    let outcome = system.run(kernel.as_ref(), workload());
    rumba_parallel::set_thread_override(None);
    outcome.unwrap()
}

/// Every fault model the plan can compose, parameterized by the proptest
/// case so the space is actually explored.
fn model_for(selector: usize, seed: u64) -> FaultModel {
    let rate = 1e-3 + (seed % 50) as f64 * 2e-4; // 1e-3 ..= ~1.1e-2
    let start = (seed % 400) as usize;
    match selector % 6 {
        0 => FaultModel::BitFlip { rate },
        1 => FaultModel::NonFinite { rate },
        2 => FaultModel::StuckAt { start, value: f64::NAN },
        3 => FaultModel::InputDrift { start, ramp: 64, magnitude: 0.3 },
        4 => FaultModel::CheckerBlind { rate: 0.2 },
        _ => FaultModel::QueuePressure { start, slots: 48 },
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #[test]
    fn every_fault_model_keeps_outputs_finite_and_runs_thread_invariant(
        seed in 0u64..100_000,
        selector in 0usize..6,
    ) {
        let plan = FaultPlan::new(seed).with(model_for(selector, seed));
        let single = run_with(&plan, 1);
        prop_assert!(
            single.merged_outputs.iter().all(|v| v.is_finite()),
            "model {selector} seed {seed}: merged stream must stay finite"
        );
        prop_assert!(single.fixes <= workload().len());

        let parallel = run_with(&plan, 4);
        // RUMBA_THREADS=1 vs 4 must be bit-identical under injection.
        prop_assert_eq!(bits(&single.merged_outputs), bits(&parallel.merged_outputs));
        prop_assert_eq!(single.fixes, parallel.fixes);
        prop_assert_eq!(single.fault_stats, parallel.fault_stats);
        prop_assert_eq!(single.degrade_stage, parallel.degrade_stage);
    }

    #[test]
    fn composed_plans_keep_outputs_finite(seed in 0u64..100_000) {
        let plan = FaultPlan::new(seed)
            .with(FaultModel::NonFinite { rate: 2e-3 })
            .with(FaultModel::BitFlip { rate: 2e-3 })
            .with(FaultModel::CheckerBlind { rate: 0.1 });
        let outcome = run_with(&plan, 1);
        prop_assert!(outcome.merged_outputs.iter().all(|v| v.is_finite()));
        prop_assert!(outcome.fixes <= workload().len());
        prop_assert!(
            outcome.fault_stats.quarantined <= outcome.fixes as u64,
            "every quarantine is a fix"
        );
    }
}
