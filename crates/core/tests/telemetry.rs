//! End-to-end telemetry contract tests.
//!
//! The global sink is process-wide state, so every test here serializes on
//! one mutex and restores the disabled [`NullSink`] before releasing it;
//! they live in their own integration-test binary so no unrelated
//! concurrent test can emit into (or observe) an installed sink.

use std::sync::{Arc, Mutex, MutexGuard};

use rumba_accel::CheckerUnit;
use rumba_apps::{kernel_by_name, Split};
use rumba_core::cache::TrainedModelCache;
use rumba_core::runtime::{RumbaSystem, RunOutcome, RuntimeConfig};
use rumba_core::trainer::{nn_params_for, train_app, train_app_with_cache, OfflineConfig};
use rumba_core::tuner::{calibrate_threshold, calibrate_threshold_detailed, Tuner, TuningMode};
use rumba_obs::{Event, MemorySink, NullSink};
use rumba_predict::ErrorEstimator;

static SINK_LOCK: Mutex<()> = Mutex::new(());

/// Installs a fresh [`MemorySink`] for the duration of `f`, then restores
/// the disabled default. The returned guard's lock serializes the tests.
fn with_memory_sink<R>(f: impl FnOnce() -> R) -> (Vec<Event>, R) {
    let _guard: MutexGuard<'_, ()> =
        SINK_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let sink = Arc::new(MemorySink::new());
    rumba_obs::set_global_sink(sink.clone());
    let result = f();
    rumba_obs::set_global_sink(Arc::new(NullSink));
    (sink.events(), result)
}

fn build_system(mode: TuningMode) -> (Box<dyn rumba_apps::Kernel>, RumbaSystem) {
    let kernel = kernel_by_name("gaussian").unwrap();
    let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
    let train = kernel.generate(Split::Train, 42);
    let mut probe = app.tree.clone();
    let predicted: Vec<f64> =
        (0..train.len()).map(|i| probe.estimate(train.input(i), &[])).collect();
    let threshold = calibrate_threshold(&predicted, &app.train_errors, 0.02);
    let system = RumbaSystem::new(
        app.rumba_npu.clone(),
        CheckerUnit::new(Box::new(app.tree)),
        Tuner::new(mode, threshold).unwrap(),
        RuntimeConfig::default(),
    )
    .unwrap();
    (kernel, system)
}

#[test]
fn run_emits_one_window_end_per_window_and_accounts_every_fix() {
    // Train outside the instrumented section so cache probes from the
    // offline pipeline don't mix into the stream under test.
    let (kernel, mut system) = build_system(TuningMode::TargetQuality { toq: 0.95 });
    let test = kernel.generate(Split::Test, 42);
    let window = RuntimeConfig::default().window;

    let (events, outcome) = with_memory_sink(|| system.run(kernel.as_ref(), &test).unwrap());

    let windows: Vec<&Event> =
        events.iter().filter(|e| matches!(e, Event::WindowEnd { .. })).collect();
    assert_eq!(windows.len(), test.len().div_ceil(window), "one window_end per tuning window");

    let mut fired_sum = 0u64;
    for (i, event) in windows.iter().enumerate() {
        let Event::WindowEnd { window, threshold, fired, mean_unfixed_pred, cpu_capacity, .. } =
            event
        else {
            unreachable!()
        };
        assert_eq!(*window, i as u64, "window indices are sequential");
        assert!(threshold.is_finite() && *threshold > 0.0);
        assert!(mean_unfixed_pred.is_finite());
        assert!(*cpu_capacity > 0);
        fired_sum += fired;
    }
    assert_eq!(fired_sum, outcome.fixes as u64, "every fix shows up in exactly one window");

    let runs: Vec<&Event> =
        events.iter().filter(|e| matches!(e, Event::RunSummary { .. })).collect();
    assert_eq!(runs.len(), 1);
    let Event::RunSummary { kernel: name, invocations, fixes, output_error, windows: w, .. } =
        runs[0]
    else {
        unreachable!()
    };
    assert_eq!(name, "gaussian");
    assert_eq!(*invocations, test.len() as u64);
    assert_eq!(*fixes, outcome.fixes as u64);
    assert_eq!(*output_error, outcome.output_error);
    assert_eq!(*w, windows.len() as u64);

    // Every emitted event survives the JSONL round trip (schema contract).
    for event in &events {
        assert_eq!(&Event::parse(&event.to_jsonl()).unwrap(), event);
    }
}

#[test]
fn telemetry_never_perturbs_the_run_outcome() {
    let (kernel, mut observed_system) = build_system(TuningMode::TargetQuality { toq: 0.95 });
    let (_, mut silent_system) = build_system(TuningMode::TargetQuality { toq: 0.95 });
    let test = kernel.generate(Split::Test, 42);

    let silent: RunOutcome = silent_system.run(kernel.as_ref(), &test).unwrap();
    let (_, observed) = with_memory_sink(|| observed_system.run(kernel.as_ref(), &test).unwrap());
    assert_eq!(observed, silent, "sink must be purely observational");
}

#[test]
fn calibration_emits_a_sanitization_event() {
    let (events, cal) =
        with_memory_sink(|| calibrate_threshold_detailed(&[0.4, f64::NAN], &[0.4, 0.4], 0.05));
    assert_eq!(cal.sanitized, 1);
    let matching = events
        .iter()
        .filter(|e| matches!(e, Event::Calibration { samples: 2, sanitized: 1, .. }))
        .count();
    assert_eq!(matching, 1);
}

#[test]
fn cache_probes_emit_hit_and_miss_events() {
    let kernel = kernel_by_name("gaussian").unwrap();
    let dir = std::env::temp_dir().join(format!("rumba-obs-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = TrainedModelCache::with_dir(&dir);
    let cfg = OfflineConfig::default();
    let rumba_topo = kernel.rumba_topology();
    let npu_topo = kernel.npu_topology();
    let topologies = (rumba_topo.as_slice(), npu_topo.as_slice());
    let nn_params = nn_params_for(kernel.as_ref());

    let (events, loaded) = with_memory_sink(|| {
        // First training probes the empty cache (miss), then stores; the
        // explicit load afterwards hits.
        let _ = train_app_with_cache(kernel.as_ref(), &cfg, &cache).unwrap();
        cache.load(kernel.name(), topologies, &cfg, &nn_params)
    });
    assert!(loaded.is_some(), "entry stored by training must load");

    // Other tests' training (outside the sink lock) can interleave its own
    // probes into this stream, so assert existence, not position: the miss
    // comes from training against the empty temp cache, the hit from the
    // explicit load.
    let probes: Vec<&Event> = events.iter().filter(|e| matches!(e, Event::Cache { .. })).collect();
    let miss = probes
        .iter()
        .any(|e| matches!(e, Event::Cache { hit: false, key } if key.starts_with("gaussian-s")));
    let hit = probes
        .iter()
        .any(|e| matches!(e, Event::Cache { hit: true, key } if key.starts_with("gaussian-s")));
    assert!(miss && hit, "expected a miss and a hit in {probes:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
