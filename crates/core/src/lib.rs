//! Rumba: online quality management for approximate accelerators.
//!
//! This crate implements the paper's contribution — the detection and
//! recovery runtime of Figure 4 — on top of the workspace substrates:
//!
//! - **Offline** ([`trainer`]): the accelerator trainer (fits the Table-1
//!   topology on the train split) and the error-predictor trainer (fits the
//!   linear/tree/EVP checkers on the accelerator's observed training
//!   errors).
//! - **Online detection** ([`runtime`]): every accelerator invocation is
//!   scored by a light-weight checker; scores above the tuning threshold
//!   set a recovery bit in the recovery queue.
//! - **Online recovery** ([`runtime`], [`pipeline`]): the CPU drains the
//!   recovery queue and re-executes flagged iterations exactly, overlapped
//!   with accelerator execution (Figure 8); the output merger commits exact
//!   results over approximate ones.
//! - **Online tuning** ([`tuner`]): the threshold adapts per invocation
//!   window under one of three modes — target output quality, energy
//!   budget, or best-effort quality (§3.4).
//! - **Evaluation** ([`scheme`], [`analysis`], [`context`]): the
//!   Ideal/Random/Uniform/EMA/linearErrors/treeErrors comparison machinery
//!   behind every figure of §5.
//!
//! # Examples
//!
//! End-to-end: train offline, run the managed system online, compare with
//! the unchecked accelerator:
//!
//! ```no_run
//! use rumba_apps::kernel_by_name;
//! use rumba_core::context::AppContext;
//! use rumba_core::scheme::SchemeKind;
//!
//! let kernel = kernel_by_name("inversek2j").expect("known benchmark");
//! let ctx = AppContext::build(kernel.as_ref(), 42).expect("training succeeds");
//! let unchecked = ctx.unchecked_output_error();
//! let at_toq = ctx.fixes_for_target_error(SchemeKind::TreeErrors, 0.10);
//! println!("unchecked error {unchecked:.3}, tree fixes {:?}", at_toq);
//! ```

pub mod analysis;
pub mod cache;
pub mod context;
pub mod event_sim;
pub mod openworld;
pub mod pipeline;
pub mod report;
pub mod runtime;
pub mod scheme;
pub mod trainer;
pub mod tuner;
pub mod zoo;

mod error;

pub use error::RumbaError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, RumbaError>;
