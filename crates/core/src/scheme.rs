//! The fix-selection schemes §5 compares.
//!
//! Every scheme reduces to a *score per test invocation*: to fix `K`
//! elements, fix the `K` highest-scoring ones. This unifies the oracle
//! (Ideal scores with the true error), the baselines (Random scores with
//! seeded noise, Uniform with an equidistributed sequence), and Rumba's
//! checkers (scores are predicted errors) behind one analysis pipeline.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumba_predict::CheckerCost;

/// Which fix-selection scheme to evaluate (the legend of Figures 10–15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Oracle: fixes the truly largest errors first. Zero false positives
    /// by construction.
    Ideal,
    /// Fixes a random subset (no detection at all).
    Random,
    /// Fixes an evenly spaced subset (no detection at all).
    Uniform,
    /// Output-based exponential-moving-average checker (§3.2.3).
    Ema,
    /// Input-based linear error model (§3.2.1).
    LinearErrors,
    /// Input-based decision-tree error model (§3.2.2).
    TreeErrors,
    /// Errors-by-value-prediction alternative (§3.2, evaluated by the
    /// `evp_eep` harness; not part of the headline figures).
    Evp,
    /// Predict-and-compensate split on the linear checker: flagged
    /// invocations inside the compensation band get the signed estimate
    /// subtracted in place, the worst offenders re-execute on the CPU
    /// (evaluated by `rumba compensate`; not part of the headline figures).
    CompensateLinear,
    /// Predict-and-compensate split on the tree checker.
    CompensateTree,
}

impl SchemeKind {
    /// The six schemes shown in Figures 10–15, in the paper's legend order.
    #[must_use]
    pub fn paper_set() -> [SchemeKind; 6] {
        [
            SchemeKind::Ideal,
            SchemeKind::Random,
            SchemeKind::Uniform,
            SchemeKind::Ema,
            SchemeKind::LinearErrors,
            SchemeKind::TreeErrors,
        ]
    }

    /// The paper's label for this scheme.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Ideal => "Ideal",
            SchemeKind::Random => "Random",
            SchemeKind::Uniform => "Uniform",
            SchemeKind::Ema => "EMA",
            SchemeKind::LinearErrors => "linearErrors",
            SchemeKind::TreeErrors => "treeErrors",
            SchemeKind::Evp => "EVP",
            SchemeKind::CompensateLinear => "compensateLinear",
            SchemeKind::CompensateTree => "compensateTree",
        }
    }

    /// Whether the scheme involves an actual online checker (and therefore
    /// checker hardware energy).
    #[must_use]
    pub fn has_checker(self) -> bool {
        matches!(
            self,
            SchemeKind::Ema
                | SchemeKind::LinearErrors
                | SchemeKind::TreeErrors
                | SchemeKind::Evp
                | SchemeKind::CompensateLinear
                | SchemeKind::CompensateTree
        )
    }

    /// The detection scheme whose scores a compensate variant flags with
    /// (identity for the plain schemes).
    #[must_use]
    pub fn detection_base(self) -> SchemeKind {
        match self {
            SchemeKind::CompensateLinear => SchemeKind::LinearErrors,
            SchemeKind::CompensateTree => SchemeKind::TreeErrors,
            other => other,
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Scores for one scheme over one test set, plus the scheme's checker cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeScores {
    kind: SchemeKind,
    scores: Vec<f64>,
    checker_cost: CheckerCost,
    /// Invocation indices sorted by descending score (ties broken by
    /// index), precomputed once.
    order: Vec<usize>,
}

impl SchemeScores {
    /// Bundles a score vector with its scheme identity.
    ///
    /// # Panics
    ///
    /// Panics if any score is NaN.
    #[must_use]
    pub fn new(kind: SchemeKind, scores: Vec<f64>, checker_cost: CheckerCost) -> Self {
        assert!(scores.iter().all(|s| !s.is_nan()), "scores must not be NaN");
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).expect("NaN excluded").then(a.cmp(&b))
        });
        Self { kind, scores, checker_cost, order }
    }

    /// The scheme these scores belong to.
    #[must_use]
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// Per-invocation scores (higher = fix first).
    #[must_use]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Hardware cost of one checker prediction under this scheme.
    #[must_use]
    pub fn checker_cost(&self) -> CheckerCost {
        self.checker_cost
    }

    /// Number of scored invocations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the score set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Invocation indices in fix-first order.
    #[must_use]
    pub fn fix_order(&self) -> &[usize] {
        &self.order
    }

    /// The indices fixed when repairing `k` elements.
    #[must_use]
    pub fn top_k(&self, k: usize) -> &[usize] {
        &self.order[..k.min(self.order.len())]
    }

    /// The indices whose score strictly exceeds `threshold` — the set the
    /// online detector would flag.
    ///
    /// This is *the* boundary rule, pinned codebase-wide: a check fires iff
    /// `score > threshold` (strictly). The runtime's firing decision uses
    /// the same comparison, and `calibrate_threshold` places its cut
    /// strictly below the smallest score it intends to fire, so duplicated
    /// scores at the cut all fire together.
    #[must_use]
    pub fn fired(&self, threshold: f64) -> Vec<usize> {
        (0..self.scores.len()).filter(|&i| self.scores[i] > threshold).collect()
    }
}

/// Scores for the Random baseline: seeded uniform noise.
#[must_use]
pub fn random_scores(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00c0_ffee);
    (0..n).map(|_| rng.gen()).collect()
}

/// Scores for the Uniform baseline: the van der Corput radical-inverse
/// sequence in base 2, whose top-`f` fraction is evenly spaced over the
/// index range for every `f`.
#[must_use]
pub fn uniform_scores(n: usize) -> Vec<f64> {
    (0..n).map(van_der_corput).collect()
}

fn van_der_corput(mut i: usize) -> f64 {
    let mut result = 0.0;
    let mut frac = 0.5;
    while i > 0 {
        if i & 1 == 1 {
            result += frac;
        }
        frac *= 0.5;
        i >>= 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_order_matches_legend() {
        let labels: Vec<_> = SchemeKind::paper_set().iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["Ideal", "Random", "Uniform", "EMA", "linearErrors", "treeErrors"]);
    }

    #[test]
    fn top_k_orders_by_score_desc() {
        let s = SchemeScores::new(SchemeKind::Ideal, vec![0.1, 0.9, 0.5, 0.9], CheckerCost::free());
        assert_eq!(s.top_k(2), &[1, 3]); // tie broken by index
        assert_eq!(s.top_k(3), &[1, 3, 2]);
        assert_eq!(s.top_k(99).len(), 4);
    }

    #[test]
    fn fired_uses_strict_threshold() {
        let s = SchemeScores::new(SchemeKind::Ema, vec![0.1, 0.3, 0.3], CheckerCost::free());
        assert_eq!(s.fired(0.3), vec![]);
        assert_eq!(s.fired(0.2), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_rejected() {
        let _ = SchemeScores::new(SchemeKind::Ideal, vec![f64::NAN], CheckerCost::free());
    }

    #[test]
    fn random_scores_are_seeded() {
        assert_eq!(random_scores(16, 7), random_scores(16, 7));
        assert_ne!(random_scores(16, 7), random_scores(16, 8));
    }

    #[test]
    fn uniform_top_fraction_is_evenly_spread() {
        let n = 1024;
        let scores = uniform_scores(n);
        let s = SchemeScores::new(SchemeKind::Uniform, scores, CheckerCost::free());
        // Top 1/4 of indices: gaps between sorted indices should all be ~4.
        let mut top: Vec<usize> = s.top_k(n / 4).to_vec();
        top.sort_unstable();
        for w in top.windows(2) {
            let gap = w[1] - w[0];
            assert!((3..=5).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn checker_flags() {
        assert!(!SchemeKind::Ideal.has_checker());
        assert!(!SchemeKind::Random.has_checker());
        assert!(SchemeKind::TreeErrors.has_checker());
        assert!(SchemeKind::Ema.has_checker());
        assert!(SchemeKind::CompensateLinear.has_checker());
        assert!(SchemeKind::CompensateTree.has_checker());
    }

    #[test]
    fn compensate_variants_flag_with_their_detection_base() {
        assert_eq!(SchemeKind::CompensateLinear.detection_base(), SchemeKind::LinearErrors);
        assert_eq!(SchemeKind::CompensateTree.detection_base(), SchemeKind::TreeErrors);
        assert_eq!(SchemeKind::Ema.detection_base(), SchemeKind::Ema);
        assert_eq!(SchemeKind::CompensateLinear.label(), "compensateLinear");
        // The paper's legend is untouched by the new variants.
        assert_eq!(SchemeKind::paper_set().len(), 6);
    }

    #[test]
    fn negative_and_mixed_sign_scores_order_and_fire_correctly() {
        // Signed estimates make negative scores legal; the descending
        // order and the strict-> rule must hold without any silent abs().
        let s = SchemeScores::new(
            SchemeKind::CompensateLinear,
            vec![-0.1, 0.4, -0.3, 0.0, -0.1],
            CheckerCost::free(),
        );
        assert_eq!(s.fix_order(), &[1, 3, 0, 4, 2], "descending, ties by index");
        assert_eq!(s.fired(-0.1), vec![1, 3], "strictly above the cut");
        assert_eq!(s.fired(-0.4).len(), 5, "a cut below every score fires all");
        assert_eq!(s.top_k(2), &[1, 3]);
    }
}
