//! The offline half of Figure 4: the accelerator trainer and the error
//! predictor trainer.
//!
//! Given a benchmark kernel, [`train_app`] fits two accelerators (the
//! Rumba topology and the unchecked-NPU topology from Table 1), replays the
//! Rumba accelerator over the training split to observe its per-invocation
//! errors, and fits the three trainable checkers on those errors. The
//! resulting [`TrainedApp`] is everything the online system (and every
//! evaluation figure) needs; its parameters are what the paper embeds in
//! the application binary.

use rumba_accel::{Npu, NpuParams};
use rumba_apps::Kernel;
use rumba_nn::{Activation, Matrix, NnDataset, Scratch, TrainParams, TrainedModel};
use rumba_predict::{DecisionTree, EvpErrors, LinearErrors, LinearModel, TreeErrors, TreeParams};

use crate::cache::TrainedModelCache;
use crate::{Result, RumbaError};

/// Settings for the offline pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineConfig {
    /// Master seed for dataset generation and network initialization.
    pub seed: u64,
    /// Accelerator microarchitecture.
    pub npu_params: NpuParams,
    /// Decision-tree hyper-parameters (paper: depth ≤ 7).
    pub tree_params: TreeParams,
    /// Ridge damping for the linear trainers.
    pub ridge: f64,
    /// EMA history length `N` (§3.2.3).
    pub ema_window: usize,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            npu_params: NpuParams::default(),
            tree_params: TreeParams::default(),
            ridge: 1e-6,
            ema_window: 8,
        }
    }
}

/// Everything the offline trainers produce for one benchmark.
#[derive(Debug)]
pub struct TrainedApp {
    /// Benchmark name (Table 1).
    pub name: String,
    /// Accelerator configured with the Rumba topology.
    pub rumba_npu: Npu,
    /// Accelerator configured with the unchecked-NPU topology (the §5
    /// baseline).
    pub baseline_npu: Npu,
    /// Trained linear error checker (magnitude model for detection, plus a
    /// signed-error fit for the compensation path).
    pub linear: LinearErrors,
    /// Trained decision-tree error checker (magnitude tree plus a signed
    /// fit, as for `linear`).
    pub tree: TreeErrors,
    /// Trained value-prediction (EVP) checker.
    pub evp: EvpErrors,
    /// EMA history length to instantiate online EMA detectors with.
    pub ema_window: usize,
    /// Per-invocation errors of the Rumba accelerator on the train split
    /// (the predictor-trainer's targets; kept for threshold calibration).
    pub train_errors: Vec<f64>,
}

/// Neural-network training hyper-parameters per benchmark.
///
/// Epoch counts are deliberately modest: the paper's accelerators are
/// *approximate* (their unchecked output error averages ≈20 %), so the
/// goal is a faithful — not a maximally accurate — surrogate.
#[must_use]
pub fn nn_params_for(kernel: &dyn Kernel) -> TrainParams {
    match kernel.name() {
        // Classification over 18 inputs: bigger batches, gentler steps.
        "jmeint" => TrainParams {
            epochs: 120,
            learning_rate: 0.15,
            batch_size: 32,
            ..TrainParams::default()
        },
        // 64->16->64 autoencoder shape: few epochs suffice and keep the
        // harness fast.
        "jpeg" => {
            TrainParams { epochs: 2, learning_rate: 0.05, batch_size: 32, ..TrainParams::default() }
        }
        // The image kernels converge fast on their own training images;
        // modest epoch counts land the accelerators in the paper's
        // approximate-but-useful regime.
        "sobel" => TrainParams { epochs: 2, ..TrainParams::default() },
        "kmeans" => TrainParams { epochs: 6, ..TrainParams::default() },
        // The arm kernel's loss surface is noisy under the harness init
        // stream; this point keeps the surrogate in the paper's ~15-20 %
        // unchecked-error regime with a well-ranked tree checker.
        "inversek2j" => TrainParams { epochs: 40, learning_rate: 0.11, ..TrainParams::default() },
        _ => TrainParams { epochs: 60, ..TrainParams::default() },
    }
}

/// Runs the full offline pipeline for one kernel, consulting the
/// environment-configured [`TrainedModelCache`] so repeated harness
/// binaries train each kernel at most once (set `RUMBA_CACHE=0` to force
/// retraining).
///
/// # Errors
///
/// Propagates network-training and checker-training failures; an empty
/// generated train split yields [`RumbaError::EmptyWorkload`].
pub fn train_app(kernel: &dyn Kernel, cfg: &OfflineConfig) -> Result<TrainedApp> {
    train_app_with_cache(kernel, cfg, &TrainedModelCache::from_env())
}

/// [`train_app`] with an explicit cache (tests inject temp directories and
/// [`TrainedModelCache::disabled`]).
///
/// # Errors
///
/// Propagates network-training and checker-training failures; an empty
/// generated train split yields [`RumbaError::EmptyWorkload`].
pub fn train_app_with_cache(
    kernel: &dyn Kernel,
    cfg: &OfflineConfig,
    cache: &TrainedModelCache,
) -> Result<TrainedApp> {
    let train = kernel.generate(rumba_apps::Split::Train, cfg.seed);
    if train.is_empty() {
        return Err(RumbaError::EmptyWorkload);
    }
    let nn_params = nn_params_for(kernel);
    let rumba_topo = kernel.rumba_topology();
    let npu_topo = kernel.npu_topology();
    let topologies = (rumba_topo.as_slice(), npu_topo.as_slice());

    if let Some(cached) = cache.load(kernel.name(), topologies, cfg, &nn_params) {
        // The cached config-words are bit-exact, so everything derived
        // from them below matches a fresh training run exactly. Signed
        // fits are not part of the cache codec: they are refit here, which
        // is deterministic because the batched replay is bit-exact.
        let rumba_npu = Npu::new(cached.rumba_model, cfg.npu_params);
        let baseline_npu = Npu::new(cached.baseline_model, cfg.npu_params);
        let (linear, tree) =
            attach_signed_fits(&rumba_npu, &train, cfg, cached.linear, cached.tree)?;
        return Ok(TrainedApp {
            name: kernel.name().to_owned(),
            rumba_npu,
            baseline_npu,
            linear,
            tree,
            evp: cached.evp,
            ema_window: cfg.ema_window,
            train_errors: cached.train_errors,
        });
    }

    let rumba_model = TrainedModel::fit(
        &kernel.rumba_topology(),
        Activation::Sigmoid,
        &train,
        &nn_params,
        cfg.seed ^ 0xace1,
    )?;
    let baseline_model = TrainedModel::fit(
        &kernel.npu_topology(),
        Activation::Sigmoid,
        &train,
        &nn_params,
        cfg.seed ^ 0xace2,
    )?;
    let rumba_npu = Npu::new(rumba_model, cfg.npu_params);
    let baseline_npu = Npu::new(baseline_model, cfg.npu_params);

    let train_errors = invocation_errors(kernel, &rumba_npu, &train)?;
    let rows: Vec<&[f64]> = (0..train.len()).map(|i| train.input(i)).collect();
    let exact_rows: Vec<&[f64]> = (0..train.len()).map(|i| train.target(i)).collect();

    let linear = LinearErrors::train(&rows, &train_errors, cfg.ridge)?;
    let tree = TreeErrors::train(&rows, &train_errors, &cfg.tree_params)?;
    let evp = EvpErrors::train(&rows, &exact_rows, cfg.ridge)?;
    // The magnitude models above go in the cache; signed fits ride outside
    // it (see the cache-hit path) so stored entries stay format-stable.
    let (linear, tree) = attach_signed_fits(&rumba_npu, &train, cfg, linear, tree)?;

    cache.store(
        kernel.name(),
        topologies,
        cfg,
        &nn_params,
        &crate::cache::CachedModels {
            rumba_model: rumba_npu.model().clone(),
            baseline_model: baseline_npu.model().clone(),
            linear: linear.clone(),
            tree: tree.clone(),
            evp: evp.clone(),
            train_errors: train_errors.clone(),
        },
    );

    Ok(TrainedApp {
        name: kernel.name().to_owned(),
        rumba_npu,
        baseline_npu,
        linear,
        tree,
        evp,
        ema_window: cfg.ema_window,
        train_errors,
    })
}

/// Fits the *signed* error models the compensation path subtracts and
/// attaches them to the magnitude checkers. The target is the per-row mean
/// signed output error, `mean_j(approx[j] − exact[j])`, observed by
/// replaying the accelerator over the train split — the same replay the
/// magnitude targets came from, so the fit is deterministic on both the
/// fresh and cache-hit paths.
fn attach_signed_fits(
    rumba_npu: &Npu,
    train: &NnDataset,
    cfg: &OfflineConfig,
    linear: LinearErrors,
    tree: TreeErrors,
) -> Result<(LinearErrors, TreeErrors)> {
    let approx = approximate_outputs(rumba_npu, train)?;
    let out_dim = rumba_npu.output_dim();
    let signed: Vec<f64> = (0..train.len())
        .map(|i| {
            let row = &approx[i * out_dim..(i + 1) * out_dim];
            let exact = train.target(i);
            row.iter().zip(exact).map(|(a, e)| a - e).sum::<f64>() / out_dim as f64
        })
        .collect();
    let rows: Vec<&[f64]> = (0..train.len()).map(|i| train.input(i)).collect();
    let signed_linear = LinearModel::fit(&rows, &signed, cfg.ridge)?;
    let signed_tree = DecisionTree::fit(&rows, &signed, &cfg.tree_params)?;
    Ok((linear.with_signed_model(signed_linear), tree.with_signed_tree(signed_tree)))
}

/// Replays an accelerator over a dataset and scores each invocation with
/// the kernel's metric against the exact targets.
///
/// # Errors
///
/// Propagates accelerator dimension errors.
pub fn invocation_errors(kernel: &dyn Kernel, npu: &Npu, data: &NnDataset) -> Result<Vec<f64>> {
    let metric = kernel.metric();
    // One batched invocation replaces the per-row loop; each row is
    // bit-identical to `Npu::invoke` at any thread count.
    let mut scratch = Scratch::new();
    let mut approx = Matrix::default();
    npu.invoke_batch(data.inputs_view(), &mut scratch, &mut approx)?;
    Ok((0..data.len()).map(|i| metric.invocation_error(data.target(i), approx.row(i))).collect())
}

/// Replays an accelerator over a dataset, returning the flat approximate
/// output stream.
///
/// # Errors
///
/// Propagates accelerator dimension errors.
pub fn approximate_outputs(npu: &Npu, data: &NnDataset) -> Result<Vec<f64>> {
    let mut scratch = Scratch::new();
    let mut out = Matrix::default();
    npu.invoke_batch(data.inputs_view(), &mut scratch, &mut out)?;
    Ok(out.into_flat())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumba_apps::kernel_by_name;

    #[test]
    fn trains_the_gaussian_kernel_end_to_end() {
        let kernel = kernel_by_name("gaussian").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        assert_eq!(app.name, "gaussian");
        assert_eq!(app.rumba_npu.input_dim(), 1);
        assert_eq!(app.train_errors.len(), 2_000);
        // The tiny 1->2->1 network cannot be exact: some train error exists.
        let mean: f64 = app.train_errors.iter().sum::<f64>() / app.train_errors.len() as f64;
        assert!(mean > 1e-4, "mean train error {mean}");
    }

    #[test]
    fn rumba_accelerator_is_never_slower_than_baseline() {
        let kernel = kernel_by_name("inversek2j").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        assert!(app.rumba_npu.cycles_per_invocation() <= app.baseline_npu.cycles_per_invocation());
    }

    #[test]
    fn training_is_deterministic() {
        let kernel = kernel_by_name("gaussian").unwrap();
        let a = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let b = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        assert_eq!(a.train_errors, b.train_errors);
    }

    #[test]
    fn signed_fits_are_attached_on_fresh_and_cached_paths() {
        use crate::cache::TrainedModelCache;
        use rumba_predict::ErrorEstimator;
        let kernel = kernel_by_name("gaussian").unwrap();
        let dir =
            std::env::temp_dir().join(format!("rumba-signed-fit-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TrainedModelCache::with_dir(&dir);
        let cfg = OfflineConfig::default();

        let fresh = train_app_with_cache(kernel.as_ref(), &cfg, &cache).unwrap();
        assert!(fresh.linear.signed_model().is_some());
        assert!(fresh.tree.signed_tree().is_some());

        // The cache-hit path refits the signed models deterministically.
        let cached = train_app_with_cache(kernel.as_ref(), &cfg, &cache).unwrap();
        let probe = kernel.generate(rumba_apps::Split::Test, 42);
        for i in (0..probe.len()).step_by(97) {
            let input = probe.input(i);
            assert_eq!(
                fresh.linear.estimate_signed(input, &[], 0.0).to_bits(),
                cached.linear.estimate_signed(input, &[], 0.0).to_bits(),
            );
            assert_eq!(
                fresh.tree.estimate_signed(input, &[], 0.0).to_bits(),
                cached.tree.estimate_signed(input, &[], 0.0).to_bits(),
            );
        }
        // The signed fit carries sign information the magnitude model
        // cannot: over the train split at least one estimate is negative.
        let train = kernel.generate(rumba_apps::Split::Train, 42);
        let any_negative =
            (0..train.len()).any(|i| fresh.linear.estimate_signed(train.input(i), &[], 0.0) < 0.0);
        assert!(any_negative, "a signed fit must be able to go negative");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_nonnegative() {
        let kernel = kernel_by_name("fft").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        assert!(app.train_errors.iter().all(|&e| e >= 0.0));
    }
}
