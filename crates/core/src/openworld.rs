//! Open-world streaming workloads and the online-refit reservoir.
//!
//! Every evaluation path elsewhere in the workspace replays a fixed
//! Table-1 dataset. This module closes the remaining gap to the paper's
//! *online* claim: seeded generative streams whose input distribution
//! changes mid-run — ramped drift, diurnal load curves, correlated
//! multi-tenant bursts — layered atop the existing `InputDrift` fault
//! model, plus the bounded [`Reservoir`] of ground-truth triples the
//! watchdog's `Recalibrated` rung re-fits the checker from.
//!
//! # Determinism contract
//!
//! Every sample a [`ScenarioStream`] emits is a **pure function** of
//! `(seed, scenario, tenant, invocation)` — the same hash discipline as
//! `rumba-faults` (`decision`/`splitmix64`), with the scenario name
//! FNV-folded into the seed. No shared RNG stream exists, so a scenario
//! stream is bit-identical at any threads × SIMD × shards combination,
//! and any invocation can be regenerated in isolation.
//!
//! The reservoir keeps the same discipline: whether the *k*-th offered
//! row is kept (and which slot it evicts) depends only on *k*, never on
//! row content or visit timing, so two runs that offer the same row
//! sequence hold identical reservoirs — which is what makes a mid-refit
//! session snapshot migratable bit-for-bit.

use rumba_faults::{decision, splitmix64, FaultModel, FaultPlan};
use rumba_nn::NnDataset;

/// How a scenario's input distribution moves over the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Regime {
    /// No regime change: i.i.d. draws from the dataset (the clean-stream
    /// baseline every drift scenario is scored against).
    Steady,
    /// Ramped additive input drift, injected through
    /// [`rumba_faults::FaultModel::InputDrift`] so the accelerator sees
    /// drifted rows while exact re-executions read pristine inputs. The
    /// magnitude is *relative* to the dataset's input scale.
    Drift {
        /// First drifted invocation.
        start: usize,
        /// Invocations over which the shift ramps to full magnitude.
        ramp: usize,
        /// Full shift as a fraction of the dataset's max |input|.
        relative_magnitude: f64,
    },
    /// A diurnal load curve: input amplitude swings by ±`amplitude`
    /// around 1 on a triangle wave of `period` invocations, carrying the
    /// distribution in and out of the training envelope twice per cycle.
    Diurnal {
        /// Invocations per full swing (day length).
        period: usize,
        /// Peak relative amplitude deviation.
        amplitude: f64,
    },
    /// Correlated multi-tenant bursts: for the first `width` invocations
    /// of every `period`, *all* tenants replay the same burst-keyed row,
    /// amplified by `1 + magnitude` — the thundering-herd shape where one
    /// hot item floods every session at once.
    Burst {
        /// Invocations per burst cycle.
        period: usize,
        /// Burst length at the head of each cycle.
        width: usize,
        /// Relative amplification of burst rows.
        magnitude: f64,
    },
}

/// A named regime — the unit of the `rumba drift` sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Stable scenario label (folded into every sample hash).
    pub name: &'static str,
    /// The distribution change this scenario applies.
    pub regime: Regime,
}

/// The canonical open-world sweep: the clean baseline plus one scenario
/// per regime family, with shapes sized for multi-window CLI/CI streams.
#[must_use]
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario { name: "steady", regime: Regime::Steady },
        Scenario {
            name: "drift",
            regime: Regime::Drift { start: 256, ramp: 256, relative_magnitude: 0.5 },
        },
        Scenario { name: "diurnal", regime: Regime::Diurnal { period: 512, amplitude: 0.6 } },
        Scenario {
            name: "burst",
            regime: Regime::Burst { period: 256, width: 64, magnitude: 0.8 },
        },
    ]
}

/// FNV-1a over a scenario name — folds the scenario identity into the
/// sample hashes so two scenarios sharing a seed emit unrelated streams.
#[must_use]
pub fn scenario_tag(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A seeded generative stream over one kernel's dataset under one
/// [`Scenario`]. See the module docs for the determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioStream<'a> {
    data: &'a NnDataset,
    seed: u64,
    tag: u64,
    scenario: Scenario,
    input_scale: f64,
}

impl<'a> ScenarioStream<'a> {
    /// Builds a stream over `data` (the draw pool — typically the test
    /// split). The dataset's input scale (max |element|) is folded in
    /// once so relative drift magnitudes mean the same thing on a [0, 1]
    /// image kernel and a ±π robotics kernel.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    #[must_use]
    pub fn new(data: &'a NnDataset, seed: u64, scenario: Scenario) -> Self {
        assert!(!data.is_empty(), "scenario stream needs a nonempty draw pool");
        let mut scale = 0.0f64;
        for i in 0..data.len() {
            for &v in data.input(i) {
                scale = scale.max(v.abs());
            }
        }
        Self {
            data,
            seed,
            tag: scenario_tag(scenario.name),
            scenario,
            input_scale: scale.max(1e-12),
        }
    }

    /// The scenario this stream plays.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The dataset's max |input| — the unit for relative drift magnitudes.
    #[must_use]
    pub fn input_scale(&self) -> f64 {
        self.input_scale
    }

    /// The input row tenant 0 sees at `invocation` (pure).
    #[must_use]
    pub fn input(&self, invocation: usize) -> Vec<f64> {
        self.tenant_input(0, invocation)
    }

    /// The input row one tenant sees at `invocation` — a pure function of
    /// `(seed, scenario, tenant, invocation)`. Outside bursts, tenants
    /// draw independently; inside a burst window every tenant replays the
    /// same burst-keyed row (that is the correlation under test).
    #[must_use]
    pub fn tenant_input(&self, tenant: usize, invocation: usize) -> Vec<f64> {
        let n = self.data.len() as u64;
        let pick = |slot: u64, key: u64| {
            let idx = (decision(self.seed ^ self.tag, slot, key, tenant as u64) % n) as usize;
            self.data.input(idx).to_vec()
        };
        match self.scenario.regime {
            // Drift rides the fault plan (the accelerator's input hook),
            // so the draw itself is the steady stream.
            Regime::Steady | Regime::Drift { .. } => pick(0, invocation as u64),
            Regime::Diurnal { period, amplitude } => {
                let mut row = pick(1, invocation as u64);
                let phase = (invocation % period.max(1)) as f64 / period.max(1) as f64;
                let swing = 1.0 + amplitude * 4.0f64.mul_add(-(phase - 0.5).abs(), 1.0);
                for v in &mut row {
                    *v *= swing;
                }
                row
            }
            Regime::Burst { period, width, magnitude } => {
                let period = period.max(1);
                if invocation % period < width {
                    // Burst-ordinal key, tenant lane zeroed: correlated.
                    let burst = (invocation / period) as u64;
                    let idx = (decision(self.seed ^ self.tag, 2, burst, 0) % n) as usize;
                    let mut row = self.data.input(idx).to_vec();
                    for v in &mut row {
                        *v *= 1.0 + magnitude;
                    }
                    row
                } else {
                    pick(3, invocation as u64)
                }
            }
        }
    }

    /// The first `n` rows of tenant 0's stream, fanned over the
    /// deterministic pool (bit-identical to a serial loop at any thread
    /// count — each row is regenerated from its index alone).
    #[must_use]
    pub fn inputs(&self, n: usize) -> Vec<Vec<f64>> {
        rumba_parallel::par_map_range(n, |i| self.input(i))
    }

    /// The fault plan this scenario layers onto the runtime (`None` for
    /// regimes that change only the drawn inputs): drift scenarios become
    /// an [`rumba_faults::FaultModel::InputDrift`] whose absolute
    /// magnitude is the relative magnitude times the dataset input scale.
    #[must_use]
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        match self.scenario.regime {
            Regime::Drift { start, ramp, relative_magnitude } => {
                Some(FaultPlan::new(self.seed ^ self.tag).with(FaultModel::InputDrift {
                    start,
                    ramp,
                    magnitude: relative_magnitude * self.input_scale,
                }))
            }
            _ => None,
        }
    }
}

/// One ground-truth triple held by the refit [`Reservoir`]: the input the
/// runtime saw, the exact CPU result it paid for (quarantine or fired
/// re-execution), and the accelerator's approximate row.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservoirRow {
    /// Accelerator input row (post-drift — the distribution the checker
    /// must learn).
    pub input: Vec<f64>,
    /// Exact CPU output for that input.
    pub exact: Vec<f64>,
    /// Approximate accelerator output (non-finite for quarantined rows).
    pub approx: Vec<f64>,
    /// Provenance tag: `true` when a `CheckerBlind` or `NonFinite` fault
    /// was active on the producing invocation — such rows are *held* (for
    /// accounting and byte-exact migration) but never trained on.
    pub poisoned: bool,
}

/// Salt folded into every reservoir keep/evict decision.
const RESERVOIR_SALT: u64 = 0x5eed_0fd1_5c0b_ee55;

/// A bounded deterministic reservoir of [`ReservoirRow`]s — classic
/// reservoir sampling with the random draw replaced by a pure hash of the
/// offer ordinal, so reservoir content is a function of the offered row
/// sequence alone (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir {
    capacity: usize,
    offered: u64,
    rows: Vec<ReservoirRow>,
}

impl Reservoir {
    /// An empty reservoir holding at most `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be nonzero");
        Self { capacity, offered: 0, rows: Vec::new() }
    }

    /// Maximum rows held.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total rows ever offered (kept or not).
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// The held rows, in slot order.
    #[must_use]
    pub fn rows(&self) -> &[ReservoirRow] {
        &self.rows
    }

    /// Offers one row. The first `capacity` offers always stick; offer
    /// `k > capacity` replaces a hash-chosen slot with probability
    /// `capacity / k` — uniform reservoir sampling, decided purely by the
    /// offer ordinal.
    pub fn offer(&mut self, row: ReservoirRow) {
        self.offered += 1;
        if self.rows.len() < self.capacity {
            self.rows.push(row);
            return;
        }
        let j = splitmix64(RESERVOIR_SALT ^ self.offered) % self.offered;
        if (j as usize) < self.capacity {
            self.rows[j as usize] = row;
        }
    }

    /// Indices of rows eligible for refit training (not poisoned).
    #[must_use]
    pub fn clean_indices(&self) -> Vec<usize> {
        (0..self.rows.len()).filter(|&i| !self.rows[i].poisoned).collect()
    }

    /// Drops every row and the offer count (stream restart).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.offered = 0;
    }

    /// Appends the reservoir as self-describing `u64` config-words:
    /// `[offered, row_count, then per row: poisoned, input_len, input
    /// bits…, exact_len, exact bits…, approx_len, approx bits…]`.
    pub fn to_words(&self, out: &mut Vec<u64>) {
        out.push(self.offered);
        out.push(self.rows.len() as u64);
        for row in &self.rows {
            out.push(u64::from(row.poisoned));
            for vec in [&row.input, &row.exact, &row.approx] {
                out.push(vec.len() as u64);
                out.extend(vec.iter().map(|v| v.to_bits()));
            }
        }
    }

    /// Parses words written by [`Reservoir::to_words`] starting at `pos`
    /// (advanced past the reservoir block) into a reservoir of the given
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed word; `pos` is
    /// unspecified on error.
    pub fn from_words(
        capacity: usize,
        words: &[u64],
        pos: &mut usize,
    ) -> std::result::Result<Self, String> {
        fn take(words: &[u64], pos: &mut usize, what: &str) -> std::result::Result<u64, String> {
            let w = words.get(*pos).copied().ok_or(format!("reservoir words ended at {what}"))?;
            *pos += 1;
            Ok(w)
        }
        let offered = take(words, pos, "offered")?;
        let count = take(words, pos, "row count")? as usize;
        if count > capacity {
            return Err(format!("reservoir carries {count} rows over capacity {capacity}"));
        }
        let mut rows = Vec::with_capacity(count);
        for r in 0..count {
            let poisoned = match take(words, pos, "poison flag")? {
                0 => false,
                1 => true,
                flag => return Err(format!("row {r} poison flag must be 0|1, got {flag}")),
            };
            let mut vecs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            for vec in &mut vecs {
                let len = take(words, pos, "vector length")? as usize;
                if len > words.len().saturating_sub(*pos) {
                    return Err(format!("row {r} claims {len} elements, words ran out"));
                }
                vec.extend(words[*pos..*pos + len].iter().map(|&w| f64::from_bits(w)));
                *pos += len;
            }
            let [input, exact, approx] = vecs;
            rows.push(ReservoirRow { input, exact, approx, poisoned });
        }
        Ok(Self { capacity, offered, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumba_nn::NnDataset;

    fn pool(n: usize, dim: usize) -> NnDataset {
        NnDataset::from_fn(dim, 1, n, |i, x, y| {
            for (d, v) in x.iter_mut().enumerate() {
                *v = ((i * dim + d) as f64).sin();
            }
            y[0] = i as f64 / n as f64;
        })
        .unwrap()
    }

    fn row(tag: u64, poisoned: bool) -> ReservoirRow {
        ReservoirRow {
            input: vec![tag as f64, 0.5],
            exact: vec![tag as f64 * 2.0],
            approx: vec![tag as f64 * 2.0 + 0.125],
            poisoned,
        }
    }

    #[test]
    fn samples_are_pure_in_seed_scenario_and_invocation() {
        let data = pool(64, 3);
        for scenario in scenarios() {
            let a = ScenarioStream::new(&data, 7, scenario);
            let b = ScenarioStream::new(&data, 7, scenario);
            for inv in [0usize, 1, 100, 4096] {
                let bits = |v: Vec<f64>| v.into_iter().map(f64::to_bits).collect::<Vec<_>>();
                assert_eq!(
                    bits(a.input(inv)),
                    bits(b.input(inv)),
                    "{} invocation {inv}",
                    scenario.name
                );
            }
            // Different seeds fork the stream.
            let c = ScenarioStream::new(&data, 8, scenario);
            assert!((0..64).any(|i| a.input(i) != c.input(i)), "{}", scenario.name);
        }
    }

    #[test]
    fn scenarios_with_one_seed_emit_distinct_streams() {
        let data = pool(64, 2);
        let s = scenarios();
        let steady = ScenarioStream::new(&data, 11, s[0]);
        let diurnal = ScenarioStream::new(&data, 11, s[2]);
        assert!((0..64).any(|i| steady.input(i) != diurnal.input(i)));
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let data = pool(128, 2);
        for scenario in scenarios() {
            let stream = ScenarioStream::new(&data, 3, scenario);
            let fanned = stream.inputs(500);
            let serial: Vec<Vec<f64>> = (0..500).map(|i| stream.input(i)).collect();
            assert_eq!(fanned, serial, "{}", scenario.name);
        }
    }

    #[test]
    fn bursts_are_correlated_across_tenants_and_quiet_periods_are_not() {
        let data = pool(256, 2);
        let scenario = Scenario {
            name: "burst",
            regime: Regime::Burst { period: 16, width: 4, magnitude: 0.5 },
        };
        let stream = ScenarioStream::new(&data, 5, scenario);
        // Inside the burst window every tenant sees the same row.
        assert_eq!(stream.tenant_input(0, 0), stream.tenant_input(7, 0));
        assert_eq!(stream.tenant_input(1, 18 * 16 + 3), stream.tenant_input(4, 18 * 16 + 3));
        // Outside it, tenants draw independently (some invocation differs).
        assert!((4..16).any(|i| stream.tenant_input(0, i) != stream.tenant_input(1, i)));
    }

    #[test]
    fn drift_scenarios_carry_an_input_drift_plan_scaled_to_the_pool() {
        let data = pool(64, 2);
        let scenario = Scenario {
            name: "drift",
            regime: Regime::Drift { start: 10, ramp: 5, relative_magnitude: 0.5 },
        };
        let stream = ScenarioStream::new(&data, 7, scenario);
        let plan = stream.fault_plan().unwrap();
        let mut x = vec![0.0, 0.0];
        assert!(plan.drift_input(100, &mut x));
        assert!((x[0] - 0.5 * stream.input_scale()).abs() < 1e-12);
        let steady = ScenarioStream::new(&data, 7, scenarios()[0]);
        assert!(steady.fault_plan().is_none());
    }

    #[test]
    fn reservoir_keeps_everything_until_capacity_then_samples() {
        let mut r = Reservoir::new(4);
        for k in 0..4 {
            r.offer(row(k, false));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.offered(), 4);
        let before = r.rows().to_vec();
        for k in 4..1000 {
            r.offer(row(k, false));
        }
        assert_eq!(r.len(), 4, "bounded");
        assert_ne!(r.rows(), before.as_slice(), "late rows do get sampled in");
        // Late offers still have a chance: some held row has a high tag.
        assert!(r.rows().iter().any(|row| row.input[0] >= 500.0));
    }

    #[test]
    fn reservoir_content_is_a_pure_function_of_the_offer_sequence() {
        let mut a = Reservoir::new(8);
        let mut b = Reservoir::new(8);
        for k in 0..300 {
            a.offer(row(k, k % 7 == 0));
        }
        for k in 0..300 {
            b.offer(row(k, k % 7 == 0));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn clean_indices_exclude_poisoned_rows() {
        let mut r = Reservoir::new(8);
        r.offer(row(0, false));
        r.offer(row(1, true));
        r.offer(row(2, false));
        assert_eq!(r.clean_indices(), vec![0, 2]);
    }

    #[test]
    fn words_round_trip_bit_for_bit() {
        let mut r = Reservoir::new(6);
        for k in 0..40 {
            r.offer(row(k, k % 5 == 0));
        }
        let mut words = Vec::new();
        r.to_words(&mut words);
        let mut pos = 0usize;
        let back = Reservoir::from_words(6, &words, &mut pos).unwrap();
        assert_eq!(pos, words.len(), "whole block consumed");
        assert_eq!(back, r);
        let mut rewords = Vec::new();
        back.to_words(&mut rewords);
        assert_eq!(rewords, words);

        // Truncated and corrupt blocks are rejected.
        let mut pos = 0usize;
        assert!(Reservoir::from_words(6, &words[..words.len() - 1], &mut pos).is_err());
        let mut corrupt = words.clone();
        corrupt[2] = 9; // poison flag of row 0
        let mut pos = 0usize;
        assert!(Reservoir::from_words(6, &corrupt, &mut pos).is_err());
        // Over-capacity decode is rejected (capacity is construction
        // config, not part of the words).
        let mut pos = 0usize;
        assert!(Reservoir::from_words(2, &words, &mut pos).is_err());
    }
}
