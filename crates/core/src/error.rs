use std::error::Error;
use std::fmt;

use rumba_nn::NnError;
use rumba_predict::PredictError;

/// Errors produced by the Rumba runtime and its offline trainers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RumbaError {
    /// The neural substrate failed (topology, training, or evaluation).
    Nn(NnError),
    /// A checker trainer failed.
    Predict(PredictError),
    /// A configuration value was out of range.
    InvalidConfig {
        /// Name of the offending setting.
        name: &'static str,
        /// Offending value rendered as text.
        value: String,
    },
    /// A dataset was empty where invocations are required.
    EmptyWorkload,
}

impl fmt::Display for RumbaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RumbaError::Nn(e) => write!(f, "neural substrate error: {e}"),
            RumbaError::Predict(e) => write!(f, "checker training error: {e}"),
            RumbaError::InvalidConfig { name, value } => {
                write!(f, "invalid configuration {name} = {value}")
            }
            RumbaError::EmptyWorkload => write!(f, "workload contains no invocations"),
        }
    }
}

impl Error for RumbaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RumbaError::Nn(e) => Some(e),
            RumbaError::Predict(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for RumbaError {
    fn from(e: NnError) -> Self {
        RumbaError::Nn(e)
    }
}

impl From<PredictError> for RumbaError {
    fn from(e: PredictError) -> Self {
        RumbaError::Predict(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e = RumbaError::from(NnError::EmptyDataset);
        assert!(e.source().is_some());
        let e = RumbaError::from(PredictError::EmptyTrainingSet);
        assert!(e.to_string().contains("checker"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<RumbaError>();
    }
}
