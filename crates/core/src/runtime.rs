//! The online Rumba system (Figure 4's execution subsystem): accelerator +
//! checker + recovery queue + output merger + online tuner, processing an
//! invocation stream end to end.

use rumba_accel::queue::{Fifo, OrderedF64, RecoveryBit};
use rumba_accel::{CheckerUnit, Npu, Placement};
use rumba_apps::Kernel;
use rumba_energy::SchemeActivity;
use rumba_faults::{FaultKind, FaultPlan, FaultStats};
use rumba_nn::{Matrix, MatrixView, NnDataset, Scratch};

use crate::openworld::{Reservoir, ReservoirRow};
use crate::pipeline::{simulate, PipelineRun};
use crate::tuner::{calibrate_threshold, Tuner, WindowStats};
use crate::zoo::ModelZoo;
use crate::{Result, RumbaError};

/// How a fired check is repaired.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FixPolicy {
    /// Every fired check re-executes the invocation exactly on the CPU
    /// (the paper's recovery path, and the default).
    #[default]
    Reexecute,
    /// Predict-and-compensate: a fired check whose predicted error is at
    /// most `band` is repaired in place by subtracting the checker's
    /// *signed* error estimate from the approximate output — no recovery-
    /// queue slot, no CPU re-execution. Predictions above the band still
    /// re-execute. The band co-adapts with the firing threshold (the
    /// tuner's second knob) and is clamped to stay at or above it.
    Compensate {
        /// Upper edge of the compensable |error| band.
        band: f64,
    },
}

/// Configuration of the online system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Iterations per tuning window (one "accelerator invocation" in the
    /// paper's sense — e.g. one image's worth of pixels).
    pub window: usize,
    /// Recovery-queue capacity in iterations.
    pub recovery_queue_capacity: usize,
    /// Detector placement (§3.5). Output-based checkers always behave as
    /// serialized-after-accelerator regardless of this setting.
    pub placement: Placement,
    /// Quality watchdog for graceful degradation under sustained drift;
    /// `None` (the default) disables the watchdog entirely, keeping the
    /// fault-off control loop byte-identical to builds without it.
    pub watchdog: Option<WatchdogConfig>,
    /// Recovery mix for fired checks. [`FixPolicy::Reexecute`] (the
    /// default) keeps the control loop byte-identical to builds without
    /// the compensation path.
    pub fix_policy: FixPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            window: 256,
            recovery_queue_capacity: 64,
            placement: Placement::Parallel,
            watchdog: None,
            fix_policy: FixPolicy::Reexecute,
        }
    }
}

/// Thresholds of the degradation watchdog. A window is *dirty* when its
/// online quality estimate exceeds `quality_limit` or at least a quarter
/// of its invocations were quarantined for non-finite accelerator output.
/// `patience` consecutive dirty windows trigger a recalibration (checker
/// state cleared, threshold snapped back to its calibrated starting
/// point); if the streak continues to `fallback_patience` the accelerator
/// is abandoned and every remaining invocation runs on the CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Mean-unfixed-prediction level above which a window counts as dirty.
    pub quality_limit: f64,
    /// Consecutive dirty windows before recalibration.
    pub patience: u32,
    /// Consecutive dirty windows before full-CPU fallback.
    pub fallback_patience: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self { quality_limit: 0.2, patience: 3, fallback_patience: 6 }
    }
}

/// Configuration of the online checker re-fit armed by
/// [`RumbaSystem::arm_refit`] — the machinery that makes the watchdog's
/// `Recalibrated` rung *adapt* instead of merely resetting.
///
/// When armed, the runtime audits every `audit_period`-th invocation by
/// also computing the exact result (measurement only — the merged output
/// is untouched), folds the measured merged-stream error into the
/// watchdog's dirty signal, and accumulates the audited and re-executed
/// `(input, exact, approx)` triples in a bounded deterministic
/// [`Reservoir`]. At the `Recalibrated` rung the checker — and its signed
/// companion — is re-fitted on the reservoir's clean rows and the firing
/// threshold re-calibrated on the refreshed fit, so a checker trained
/// before an input-distribution shift re-learns the drifted regime
/// online. Rows captured while a `checker_blind` or `non_finite` fault
/// was active are held with a poisoned provenance tag and never trained
/// on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefitConfig {
    /// Reservoir capacity in rows.
    pub capacity: usize,
    /// Clean (non-poisoned) rows required before a refit replaces the
    /// reset-only recalibration.
    pub min_rows: usize,
    /// Every `audit_period`-th invocation is audited: the exact result is
    /// computed alongside the approximate one to measure true merged
    /// quality and feed the reservoir.
    pub audit_period: usize,
    /// Target error the refreshed threshold is calibrated for (the
    /// session's error budget, `1 − TOQ`).
    pub quality_budget: f64,
}

impl Default for RefitConfig {
    fn default() -> Self {
        Self { capacity: 256, min_rows: 32, audit_period: 16, quality_budget: 0.1 }
    }
}

/// Streaming state of the armed online re-fit.
#[derive(Debug)]
struct RefitState {
    cfg: RefitConfig,
    reservoir: Reservoir,
    // Committed refits since `begin_stream` (stamps telemetry and the
    // session snapshot, so a restored stream resumes the same epoch).
    epoch: u64,
    // Measured merged-stream error over this window's audited rows — the
    // ground-truth dirty signal a stale (under-predicting) checker cannot
    // fake, unlike the prediction mass the base watchdog watches.
    window_audit_sum: f64,
    window_audit_count: usize,
}

/// Where the degradation ladder currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeStage {
    /// Accelerator in use, no intervention.
    Normal,
    /// Checker state and threshold were reset after sustained drift.
    Recalibrated,
    /// Accelerator abandoned; every invocation runs exactly on the CPU.
    CpuFallback,
}

/// Everything one online run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Final merged outputs (approximate, with fixed iterations replaced by
    /// exact re-computations), flat row-major.
    pub merged_outputs: Vec<f64>,
    /// Which iterations fired (and, budget permitting, were re-executed).
    pub fired: Vec<bool>,
    /// Number of iterations actually re-executed.
    pub fixes: usize,
    /// Number of iterations repaired in place by subtracting the signed
    /// error estimate (always 0 under [`FixPolicy::Reexecute`]).
    pub compensated: usize,
    /// Measured output error of the merged stream against the exact
    /// targets.
    pub output_error: f64,
    /// Measured error of every merged invocation (telemetry for quality-
    /// tracking plots; its mean is `output_error`).
    pub invocation_errors: Vec<f64>,
    /// Activity summary for the energy model.
    pub activity: SchemeActivity,
    /// Timing of the kernel phase under the Figure-8 overlap.
    pub pipeline: PipelineRun,
    /// Threshold after each window (tuner telemetry).
    pub threshold_history: Vec<f64>,
    /// Invocations quarantined for non-finite accelerator output.
    pub quarantined: usize,
    /// Fault-injection/degradation accounting (all zeros when no
    /// [`FaultPlan`] is attached and the watchdog never acted).
    pub fault_stats: FaultStats,
    /// Degradation stage at end of run.
    pub degrade_stage: DegradeStage,
}

/// What [`RumbaSystem::process`] did for one streamed invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOutcome {
    /// Whether the check fired and the iteration was re-executed exactly.
    pub fired: bool,
    /// Whether the iteration was repaired in place with the signed
    /// estimate instead of re-executing (mutually exclusive with `fired`).
    pub compensated: bool,
    /// The checker's predicted error for this invocation.
    pub predicted_error: f64,
}

impl RunOutcome {
    /// Mean measured output error per tuning window of length `window` —
    /// the quality trace a TOQ deployment would chart over time.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn window_errors(&self, window: usize) -> Vec<f64> {
        assert!(window > 0, "window must be nonzero");
        let n = self.invocation_errors.len();
        let mut errors = Vec::with_capacity(n.div_ceil(window));
        let mut start = 0;
        while start < n {
            // Clamp the final partial window instead of indexing past the
            // end: a 7-element stream with window 4 has windows [0,4) and
            // [4,7), never [4,8).
            let end = (start + window).min(n);
            let slice = &self.invocation_errors[start..end];
            errors.push(slice.iter().sum::<f64>() / slice.len() as f64);
            start = end;
        }
        errors
    }
}

/// The online system: drives one kernel's invocation stream through
/// detection, recovery, merging, and tuning.
#[derive(Debug)]
pub struct RumbaSystem {
    npu: Npu,
    checker: CheckerUnit,
    tuner: Tuner,
    config: RuntimeConfig,
    // The runtime's view of the fault plan (mirrors the NPU's copy) for
    // checker blinding, queue pressure, and fault-event attribution.
    fault_plan: Option<FaultPlan>,
    // Calibrated starting threshold, the recalibration target.
    initial_threshold: f64,
    // Streaming window state (reset by `begin_stream`).
    window_fired: usize,
    window_suppressed: usize,
    window_pred_sum: f64,
    window_len: usize,
    window_queue_depth: u64,
    window_quarantined: usize,
    window_compensated: usize,
    windows_flushed: u64,
    stream_fixes: usize,
    stream_compensations: usize,
    stream_invocations: usize,
    // Degradation-ladder state.
    stage: DegradeStage,
    dirty_windows: u32,
    fault_stats: FaultStats,
    // Reusable scratch for replaying the plan's per-invocation strikes.
    fault_log: Vec<rumba_faults::InjectedFault>,
    // Serving-session label stamped on every emitted telemetry event;
    // empty (the default) keeps single-tenant streams on the pre-serving
    // wire format exactly.
    session_label: String,
    // Model-zoo routing state (None = the pre-zoo single-model path,
    // byte-identical to builds without the zoo compiled in).
    zoo_state: Option<ZooState>,
    // Online-refit state (None = the reset-only recalibration path,
    // byte-identical to builds without the refit machinery compiled in).
    refit_state: Option<RefitState>,
}

/// Cap on the queue-pressure exponent: each degradation step doubles the
/// routing bar, and five doublings already push any sane budget past the
/// widest tier.
pub const MAX_ZOO_PRESSURE: u32 = 5;

/// Streaming state of the attached model zoo.
#[derive(Debug)]
struct ZooState {
    zoo: ModelZoo,
    // The session's error budget (1 - TOQ); the routing bar is this times
    // the tuner's tier scale, widened by queue-pressure degradation.
    quality_budget: f64,
    // Serving-layer degradation rung: each step doubles the routing bar so
    // traffic slides to cheaper tiers before any request is shed.
    pressure: u32,
    // Widest bar queue-pressure degradation may reach (infinite until the
    // serving layer installs its calibrated ceiling); the rung widening
    // saturates here so degraded routing stays inside what the
    // checker/recovery loop can vouch for.
    pressure_ceiling: f64,
    // Per-tier invocation counts, `zoo.len() + 1` long (last = exact CPU).
    window_tiers: Vec<u64>,
    stream_tiers: Vec<u64>,
    // Accelerator cycles actually spent across routed model-tier rows —
    // what the energy model uses instead of `invocations × top cycles`.
    tier_cycles_total: f64,
}

impl RumbaSystem {
    /// Assembles a system.
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::InvalidConfig`] for a zero window or queue
    /// capacity.
    pub fn new(
        npu: Npu,
        checker: CheckerUnit,
        tuner: Tuner,
        config: RuntimeConfig,
    ) -> Result<Self> {
        if config.window == 0 {
            return Err(RumbaError::InvalidConfig { name: "window", value: "0".into() });
        }
        if config.recovery_queue_capacity == 0 {
            return Err(RumbaError::InvalidConfig {
                name: "recovery_queue_capacity",
                value: "0".into(),
            });
        }
        // The compensation band lives in the tuner (it co-adapts with the
        // threshold); a degenerate band is rejected here, at assembly.
        let tuner = match config.fix_policy {
            FixPolicy::Reexecute => tuner,
            FixPolicy::Compensate { band } => tuner.with_compensation_band(band)?,
        };
        let initial_threshold = tuner.threshold();
        let fault_plan = npu.fault_plan().cloned();
        Ok(Self {
            npu,
            checker,
            tuner,
            config,
            fault_plan,
            initial_threshold,
            window_fired: 0,
            window_suppressed: 0,
            window_pred_sum: 0.0,
            window_len: 0,
            window_queue_depth: 0,
            window_quarantined: 0,
            window_compensated: 0,
            windows_flushed: 0,
            stream_fixes: 0,
            stream_compensations: 0,
            stream_invocations: 0,
            stage: DegradeStage::Normal,
            dirty_windows: 0,
            fault_stats: FaultStats::default(),
            fault_log: Vec::new(),
            session_label: String::new(),
            zoo_state: None,
            refit_state: None,
        })
    }

    /// Arms the online checker re-fit (see [`RefitConfig`]). Opt-in: an
    /// unarmed system keeps the reset-only `Recalibrated` rung and its
    /// exported state layout byte-identical to pre-refit builds.
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::InvalidConfig`] for a zero capacity or audit
    /// period, fewer than two minimum rows (a one-row fit is degenerate),
    /// a minimum exceeding the capacity, or a non-finite/non-positive
    /// quality budget.
    pub fn arm_refit(&mut self, cfg: RefitConfig) -> Result<()> {
        if cfg.capacity == 0 {
            return Err(RumbaError::InvalidConfig { name: "refit capacity", value: "0".into() });
        }
        if cfg.min_rows < 2 || cfg.min_rows > cfg.capacity {
            return Err(RumbaError::InvalidConfig {
                name: "refit min_rows",
                value: cfg.min_rows.to_string(),
            });
        }
        if cfg.audit_period == 0 {
            return Err(RumbaError::InvalidConfig {
                name: "refit audit_period",
                value: "0".into(),
            });
        }
        if !(cfg.quality_budget > 0.0 && cfg.quality_budget.is_finite()) {
            return Err(RumbaError::InvalidConfig {
                name: "refit quality_budget",
                value: cfg.quality_budget.to_string(),
            });
        }
        self.refit_state = Some(RefitState {
            reservoir: Reservoir::new(cfg.capacity),
            cfg,
            epoch: 0,
            window_audit_sum: 0.0,
            window_audit_count: 0,
        });
        Ok(())
    }

    /// Whether the online re-fit is armed.
    #[must_use]
    pub fn refit_armed(&self) -> bool {
        self.refit_state.is_some()
    }

    /// Committed refits since [`RumbaSystem::begin_stream`] (0 when the
    /// refit is unarmed or has not fired).
    #[must_use]
    pub fn refit_epoch(&self) -> u64 {
        self.refit_state.as_ref().map_or(0, |rs| rs.epoch)
    }

    /// The refit reservoir, when armed (tests and telemetry).
    #[must_use]
    pub fn refit_reservoir(&self) -> Option<&Reservoir> {
        self.refit_state.as_ref().map(|rs| &rs.reservoir)
    }

    /// Arms per-invocation model-zoo routing: every invocation is
    /// dispatched to the cheapest tier whose predicted error meets the
    /// routing bar (`quality_budget × tier scale`, doubled per
    /// queue-pressure rung), with exact CPU as the final tier. Also arms
    /// the tuner's tier knob at scale 1.0, so the bar co-adapts with the
    /// threshold between windows. The checker/recovery loop still guards
    /// every model-tier row, so the TOQ contract is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::InvalidConfig`] for a non-finite or
    /// nonpositive quality budget, or a zoo whose top tier does not match
    /// this system's accelerator dimensions.
    pub fn attach_zoo(&mut self, zoo: ModelZoo, quality_budget: f64) -> Result<()> {
        if !(quality_budget > 0.0 && quality_budget.is_finite()) {
            return Err(RumbaError::InvalidConfig {
                name: "zoo quality_budget",
                value: quality_budget.to_string(),
            });
        }
        let top = &zoo.tier(zoo.len() - 1).npu;
        if top.input_dim() != self.npu.input_dim() || top.output_dim() != self.npu.output_dim() {
            return Err(RumbaError::InvalidConfig {
                name: "zoo dimensions",
                value: format!("{}x{}", top.input_dim(), top.output_dim()),
            });
        }
        self.tuner.set_tier_scale_raw(Some(1.0));
        let counts = zoo.len() + 1;
        self.zoo_state = Some(ZooState {
            zoo,
            quality_budget,
            pressure: 0,
            pressure_ceiling: f64::INFINITY,
            window_tiers: vec![0; counts],
            stream_tiers: vec![0; counts],
            tier_cycles_total: 0.0,
        });
        Ok(())
    }

    /// The attached model zoo, if routing is armed.
    #[must_use]
    pub fn zoo(&self) -> Option<&ModelZoo> {
        self.zoo_state.as_ref().map(|z| &z.zoo)
    }

    /// The current queue-pressure degradation rung (0 = no degradation).
    #[must_use]
    pub fn zoo_pressure(&self) -> u32 {
        self.zoo_state.as_ref().map_or(0, |z| z.pressure)
    }

    /// Sets the degradation rung (clamped to [`MAX_ZOO_PRESSURE`]). The
    /// serving layer raises it under queue pressure — each rung doubles
    /// the routing bar so traffic slides toward cheaper tiers before any
    /// request is shed — and lowers it as the queue drains. No-op without
    /// an attached zoo.
    pub fn set_zoo_pressure(&mut self, pressure: u32) {
        if let Some(zs) = self.zoo_state.as_mut() {
            zs.pressure = pressure.min(MAX_ZOO_PRESSURE);
        }
    }

    /// Caps how far queue-pressure degradation may widen the routing bar.
    /// The rung widening saturates at `ceiling` (never below the base
    /// budget — a ceiling under the base bar would invert the routing
    /// semantics), so degraded traffic stays inside the widest bar the
    /// caller's calibration can still vouch for. Non-finite or
    /// non-positive ceilings are ignored; no-op without an attached zoo.
    pub fn set_zoo_pressure_ceiling(&mut self, ceiling: f64) {
        if let Some(zs) = self.zoo_state.as_mut() {
            if ceiling.is_finite() && ceiling > 0.0 {
                zs.pressure_ceiling = ceiling.max(zs.quality_budget);
            }
        }
    }

    /// Per-tier invocation counts since [`RumbaSystem::begin_stream`]
    /// (`zoo.len() + 1` entries, last = exact CPU); empty without a zoo.
    #[must_use]
    pub fn stream_tiers(&self) -> &[u64] {
        self.zoo_state.as_ref().map_or(&[], |z| &z.stream_tiers)
    }

    /// The current routing bar — the predicted-error cut a tier must meet
    /// to take an invocation — or `None` when no zoo is attached. Pure in
    /// the tuner/pressure state: it only moves at window flushes and
    /// explicit pressure changes, never mid-window.
    #[must_use]
    pub fn routing_bar(&self) -> Option<f64> {
        let zs = self.zoo_state.as_ref()?;
        let scale = self.tuner.tier_scale().unwrap_or(1.0);
        let widened = zs.quality_budget * f64::from(1u32 << zs.pressure.min(MAX_ZOO_PRESSURE));
        Some(widened.min(zs.pressure_ceiling) * scale)
    }

    /// Labels every telemetry event this system emits with a serving
    /// session name (the multi-tenant attribution the serving layer needs
    /// to keep per-tenant event streams separable). An empty label — the
    /// default — leaves the wire format byte-identical to the
    /// single-tenant schema.
    pub fn set_session_label(&mut self, label: impl Into<String>) {
        self.session_label = label.into();
    }

    /// The serving-session label (empty outside the serving layer).
    #[must_use]
    pub fn session_label(&self) -> &str {
        &self.session_label
    }

    /// The accelerator this system drives — the serving scheduler invokes
    /// it directly for mid-stream drain batches.
    #[must_use]
    pub fn npu(&self) -> &Npu {
        &self.npu
    }

    /// Attaches or detaches a fault-injection plan, arming both the
    /// accelerator's datapath hooks and the runtime's detection
    /// attribution. Passing `None` (or an empty plan) restores the
    /// fault-off path exactly.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        let plan = plan.filter(|p| !p.is_empty());
        self.npu.set_fault_plan(plan.clone());
        self.fault_plan = plan;
    }

    /// Cumulative fault/degradation accounting since
    /// [`RumbaSystem::begin_stream`].
    #[must_use]
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Where the degradation ladder currently stands.
    #[must_use]
    pub fn degrade_stage(&self) -> DegradeStage {
        self.stage
    }

    /// The tuner (for inspecting threshold history after a run).
    #[must_use]
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    /// Serializes the system's *streaming* state — tuner threshold,
    /// calibration anchor, window counters, degradation-ladder position,
    /// fault accounting, and the checker's online words — as plain `u64`
    /// config-words. Together with the construction-time configuration
    /// (which the serving layer's snapshot records separately) this is
    /// everything needed to resume a stream bit-for-bit on a freshly
    /// built system.
    #[must_use]
    pub fn export_state(&self) -> Vec<u64> {
        let stage = match self.stage {
            DegradeStage::Normal => 0,
            DegradeStage::Recalibrated => 1,
            DegradeStage::CpuFallback => 2,
        };
        let checker = self.checker.export_state();
        let (band_flag, band_bits) = match self.tuner.compensation_band() {
            Some(band) => (1, band.to_bits()),
            None => (0, 0),
        };
        let mut words = vec![
            self.tuner.threshold().to_bits(),
            self.initial_threshold.to_bits(),
            self.window_fired as u64,
            self.window_suppressed as u64,
            self.window_pred_sum.to_bits(),
            self.window_len as u64,
            self.window_queue_depth,
            self.window_quarantined as u64,
            self.windows_flushed,
            self.stream_fixes as u64,
            self.stream_invocations as u64,
            stage,
            u64::from(self.dirty_windows),
            self.fault_stats.injected_outputs,
            self.fault_stats.drifted_inputs,
            self.fault_stats.checker_blinded,
            self.fault_stats.quarantined,
            self.fault_stats.detected,
            self.fault_stats.escaped,
            self.fault_stats.recalibrations,
            self.fault_stats.fallbacks,
            band_flag,
            band_bits,
            self.window_compensated as u64,
            self.stream_compensations as u64,
            checker.len() as u64,
        ];
        words.extend(checker);
        // Zoo routing state rides after the checker words, only when a zoo
        // is attached — the legacy word layout is byte-identical otherwise.
        if let Some(zs) = &self.zoo_state {
            words.push(self.tuner.tier_scale().unwrap_or(1.0).to_bits());
            words.push(u64::from(zs.pressure));
            words.push(zs.window_tiers.len() as u64);
            words.extend_from_slice(&zs.window_tiers);
            words.extend_from_slice(&zs.stream_tiers);
            words.push(zs.tier_cycles_total.to_bits());
        }
        // Refit state rides last, only when armed. The checker's trained
        // model travels with it: after the first online refit the model
        // is no longer reproducible from the offline pipeline, so a
        // restore must transplant the coefficients, not retrain them.
        if let Some(rs) = &self.refit_state {
            words.push(rs.epoch);
            words.push(rs.window_audit_sum.to_bits());
            words.push(rs.window_audit_count as u64);
            let model = self.checker.export_model().unwrap_or_default();
            words.push(model.len() as u64);
            words.extend(model);
            rs.reservoir.to_words(&mut words);
        }
        words
    }

    /// Restores streaming state exported by [`RumbaSystem::export_state`]
    /// onto an identically configured system (same kernel, checker kind,
    /// tuning mode, window, and queue configuration). The tuner is rebuilt
    /// at the exported threshold, so the next `process_approx` behaves
    /// exactly as it would have on the exporting system.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed word when the state
    /// does not decode for this system's configuration.
    pub fn import_state(&mut self, words: &[u64]) -> std::result::Result<(), String> {
        const HEAD: usize = 26;
        if words.len() < HEAD {
            return Err(format!("runtime state wants at least {HEAD} words, got {}", words.len()));
        }
        let checker_len = words[25] as usize;
        // A zoo-armed system expects the routing words after the checker's;
        // a legacy system expects none. Either mismatch is a hard error —
        // silently dropping or inventing routing state would fork the
        // stream from the exporting system.
        let tier_counts = self.zoo_state.as_ref().map(|zs| zs.window_tiers.len());
        let zoo_len = tier_counts.map_or(0, |t| 4 + 2 * t);
        // A refit-armed system expects a variable-length refit tail after
        // the zoo words; an unarmed one expects the stream to end there.
        let refit_armed = self.refit_state.is_some();
        if (refit_armed && words.len() < HEAD + checker_len + zoo_len)
            || (!refit_armed && words.len() != HEAD + checker_len + zoo_len)
        {
            return Err(format!(
                "runtime state declares {checker_len} checker words (+{zoo_len} zoo words) \
                 but carries {}",
                words.len() - HEAD
            ));
        }
        let zoo_restore = match tier_counts {
            Some(counts) => {
                let base = HEAD + checker_len;
                let scale = f64::from_bits(words[base]);
                if !(scale > 0.0 && scale.is_finite()) {
                    return Err(format!("restored tier scale rejected: {scale}"));
                }
                let pressure = u32::try_from(words[base + 1])
                    .map_err(|_| format!("zoo pressure overflows u32: {}", words[base + 1]))?;
                if words[base + 2] as usize != counts {
                    return Err(format!(
                        "zoo tier count mismatch: state has {}, system has {counts}",
                        words[base + 2]
                    ));
                }
                let window_tiers = words[base + 3..base + 3 + counts].to_vec();
                let stream_tiers = words[base + 3 + counts..base + 3 + 2 * counts].to_vec();
                let tier_cycles_total = f64::from_bits(words[base + 3 + 2 * counts]);
                if !tier_cycles_total.is_finite() || tier_cycles_total < 0.0 {
                    return Err(format!("restored tier cycles rejected: {tier_cycles_total}"));
                }
                Some((scale, pressure, window_tiers, stream_tiers, tier_cycles_total))
            }
            None => None,
        };
        let threshold = f64::from_bits(words[0]);
        let mut tuner = Tuner::new(self.tuner.mode(), threshold)
            .map_err(|e| format!("restored threshold rejected: {e}"))?;
        let band = match words[21] {
            0 => None,
            1 => Some(f64::from_bits(words[22])),
            flag => return Err(format!("compensation-band flag must be 0|1, got {flag}")),
        };
        // Restored verbatim, not re-validated/re-clamped: the exporting
        // tuner already evolved this band, and re-clamping would change it.
        tuner.set_compensation_band_raw(band);
        if let Some((scale, _, _, _, _)) = &zoo_restore {
            tuner.set_tier_scale_raw(Some(*scale));
        }
        let stage = match words[11] {
            0 => DegradeStage::Normal,
            1 => DegradeStage::Recalibrated,
            2 => DegradeStage::CpuFallback,
            tag => return Err(format!("degrade stage tag must be 0|1|2, got {tag}")),
        };
        let dirty_windows = u32::try_from(words[12])
            .map_err(|_| format!("dirty_windows overflows u32: {}", words[12]))?;
        let refit_restore = match &self.refit_state {
            Some(rs) => {
                let mut pos = HEAD + checker_len + zoo_len;
                let take = |words: &[u64], pos: &mut usize, what: &str| {
                    let w =
                        words.get(*pos).copied().ok_or(format!("refit words ended at {what}"))?;
                    *pos += 1;
                    Ok::<u64, String>(w)
                };
                let epoch = take(words, &mut pos, "epoch")?;
                let audit_sum = f64::from_bits(take(words, &mut pos, "audit sum")?);
                if !audit_sum.is_finite() {
                    return Err(format!("restored audit sum rejected: {audit_sum}"));
                }
                let audit_count = take(words, &mut pos, "audit count")? as usize;
                let model_len = take(words, &mut pos, "model length")? as usize;
                if model_len > words.len().saturating_sub(pos) {
                    return Err(format!("refit model claims {model_len} words, stream ran out"));
                }
                let model = words[pos..pos + model_len].to_vec();
                pos += model_len;
                let reservoir = Reservoir::from_words(rs.cfg.capacity, words, &mut pos)?;
                if pos != words.len() {
                    return Err(format!(
                        "{} trailing words after the refit tail",
                        words.len() - pos
                    ));
                }
                Some((epoch, audit_sum, audit_count, model, reservoir))
            }
            None => None,
        };
        // The trained model must land before the checker's online words:
        // a refitted tree/signed pair changes the state-config
        // fingerprint, and import_state verifies it.
        if let Some((_, _, _, model, _)) = &refit_restore {
            if !model.is_empty() {
                self.checker.import_model(model)?;
            }
        }
        self.checker.import_state(&words[HEAD..HEAD + checker_len])?;
        self.tuner = tuner;
        self.initial_threshold = f64::from_bits(words[1]);
        self.window_fired = words[2] as usize;
        self.window_suppressed = words[3] as usize;
        self.window_pred_sum = f64::from_bits(words[4]);
        self.window_len = words[5] as usize;
        self.window_queue_depth = words[6];
        self.window_quarantined = words[7] as usize;
        self.windows_flushed = words[8];
        self.stream_fixes = words[9] as usize;
        self.stream_invocations = words[10] as usize;
        self.window_compensated = words[23] as usize;
        self.stream_compensations = words[24] as usize;
        self.stage = stage;
        self.dirty_windows = dirty_windows;
        self.fault_stats = FaultStats {
            injected_outputs: words[13],
            drifted_inputs: words[14],
            checker_blinded: words[15],
            quarantined: words[16],
            detected: words[17],
            escaped: words[18],
            recalibrations: words[19],
            fallbacks: words[20],
        };
        if let Some((_, pressure, window_tiers, stream_tiers, tier_cycles_total)) = zoo_restore {
            let zs = self.zoo_state.as_mut().expect("tier_counts came from zoo_state");
            zs.pressure = pressure.min(MAX_ZOO_PRESSURE);
            zs.window_tiers = window_tiers;
            zs.stream_tiers = stream_tiers;
            zs.tier_cycles_total = tier_cycles_total;
        }
        if let Some((epoch, audit_sum, audit_count, _, reservoir)) = refit_restore {
            let rs = self.refit_state.as_mut().expect("refit_restore came from refit_state");
            rs.epoch = epoch;
            rs.window_audit_sum = audit_sum;
            rs.window_audit_count = audit_count;
            rs.reservoir = reservoir;
        }
        Ok(())
    }

    /// Resets streaming state for a fresh invocation stream (clears the
    /// checker's online history and the tuning-window counters).
    pub fn begin_stream(&mut self) {
        self.checker.reset();
        self.window_fired = 0;
        self.window_suppressed = 0;
        self.window_pred_sum = 0.0;
        self.window_len = 0;
        self.window_queue_depth = 0;
        self.window_quarantined = 0;
        self.window_compensated = 0;
        self.windows_flushed = 0;
        self.stream_fixes = 0;
        self.stream_compensations = 0;
        self.stream_invocations = 0;
        self.stage = DegradeStage::Normal;
        self.dirty_windows = 0;
        self.fault_stats = FaultStats::default();
        if let Some(zs) = self.zoo_state.as_mut() {
            zs.window_tiers.fill(0);
            zs.stream_tiers.fill(0);
            zs.tier_cycles_total = 0.0;
        }
        if let Some(rs) = self.refit_state.as_mut() {
            rs.reservoir.clear();
            rs.epoch = 0;
            rs.window_audit_sum = 0.0;
            rs.window_audit_count = 0;
        }
    }

    /// Processes one invocation in streaming mode: runs the accelerator and
    /// the checker, re-executes exactly on a fired check, writes the merged
    /// result into `output`, and advances the tuning window.
    ///
    /// Call [`RumbaSystem::begin_stream`] before the first invocation of a
    /// stream. Use this interface to slot the managed accelerator into a
    /// whole application (see `rumba_apps::pipelines`).
    ///
    /// # Errors
    ///
    /// Propagates accelerator dimension errors.
    ///
    /// # Panics
    ///
    /// Panics if `output` is narrower than the kernel's output width.
    pub fn process(
        &mut self,
        kernel: &dyn Kernel,
        input: &[f64],
        output: &mut [f64],
    ) -> Result<StreamOutcome> {
        if self.zoo_state.is_some() {
            let bar = self.routing_bar().expect("zoo attached");
            let zs = self.zoo_state.as_ref().expect("zoo attached");
            let tier = zs.zoo.route(input, bar);
            let approx = if tier == zs.zoo.cpu_tier() {
                None
            } else {
                Some(zs.zoo.tier(tier).npu.invoke_at(self.stream_invocations, input)?.outputs)
            };
            return self.process_routed(kernel, input, tier, approx.as_deref(), output);
        }
        // The stream index keys the fault decisions, so a streaming run is
        // corrupted bit-identically to a batched `run` over the same rows.
        let result = self.npu.invoke_at(self.stream_invocations, input)?;
        self.process_approx(kernel, input, &result.outputs, output)
    }

    /// The routed half of a zoo-armed [`RumbaSystem::process`]: accounts
    /// the tier decision, then either replays the normal checked path on
    /// the tier's approximate output, or — for the exact-CPU tier
    /// (`approx_output == None`) — computes the row exactly with no
    /// checker involvement (scheduled exact execution is not recovery: it
    /// consumes no re-execution budget and contributes nothing to the
    /// tuner's unfixed-prediction mass).
    ///
    /// The serving scheduler calls this directly with tier decisions and
    /// per-tier sub-batch outputs computed at drain time; `tier` must be
    /// the decision [`ModelZoo::route`] makes for this row under the bar
    /// in force when the row was dispatched.
    ///
    /// # Errors
    ///
    /// Mirrors [`RumbaSystem::process_approx`].
    ///
    /// # Panics
    ///
    /// Panics if no zoo is attached, the tier index is out of range, or
    /// `output` is narrower than the kernel's output width.
    pub fn process_routed(
        &mut self,
        kernel: &dyn Kernel,
        input: &[f64],
        tier: usize,
        approx_output: Option<&[f64]>,
        output: &mut [f64],
    ) -> Result<StreamOutcome> {
        {
            let zs = self.zoo_state.as_mut().expect("process_routed requires an attached zoo");
            zs.window_tiers[tier] += 1;
            zs.stream_tiers[tier] += 1;
            if tier < zs.zoo.len() {
                zs.tier_cycles_total += zs.zoo.tier_cycles(tier) as f64;
            }
        }
        match approx_output {
            Some(approx) => self.process_approx(kernel, input, approx, output),
            None => {
                kernel.compute(input, output);
                let (cpu_capacity, capacity_clamped) = self.cpu_capacity_per_window(kernel);
                self.window_len += 1;
                self.stream_invocations += 1;
                if self.window_len == self.config.window {
                    self.flush_window(kernel, cpu_capacity, capacity_clamped);
                }
                Ok(StreamOutcome { fired: false, compensated: false, predicted_error: 0.0 })
            }
        }
    }

    /// The stateful half of [`RumbaSystem::process`], taking an already-
    /// computed approximate output row. [`RumbaSystem::run`] precomputes
    /// the pure accelerator outputs in one batched invocation and replays
    /// this decision path serially over the rows, which keeps the
    /// checker/tuner state evolution — and therefore the output —
    /// identical to streaming. The serving scheduler uses the same split:
    /// it batches many sessions' pending requests through shared
    /// [`Npu::invoke_batch_at`] calls and replays each session's rows
    /// serially here, so multiplexed outputs are bit-identical to running
    /// each session alone.
    ///
    /// `approx_output` must be the accelerator's output for stream
    /// position [`RumbaSystem::stream_invocations`] (i.e. rows are
    /// replayed in arrival order with no gaps), or fault attribution and
    /// the determinism contract break.
    ///
    /// # Errors
    ///
    /// This path itself cannot fail today; the `Result` mirrors
    /// [`RumbaSystem::process`] so callers handle both identically.
    ///
    /// # Panics
    ///
    /// Panics if `output` is narrower than the kernel's output width.
    pub fn process_approx(
        &mut self,
        kernel: &dyn Kernel,
        input: &[f64],
        approx_output: &[f64],
        output: &mut [f64],
    ) -> Result<StreamOutcome> {
        let invocation = self.stream_invocations;
        let (cpu_capacity_per_window, capacity_clamped) = self.cpu_capacity_per_window(kernel);

        // Non-finite screen, *before* the checker runs: a NaN/Inf row must
        // never reach the checker state, the tuner mean, or the merged
        // stream. Quarantine forces an exact CPU re-execution outside the
        // re-execution budget (correctness is not negotiable on overflow).
        let quarantined = !approx_output.iter().all(|v| v.is_finite());
        // Past the fallback rung of the ladder, the accelerator is
        // abandoned entirely.
        let cpu_forced = quarantined || self.stage == DegradeStage::CpuFallback;

        let (fired, compensated, predicted) = if cpu_forced {
            kernel.compute(input, output);
            self.stream_fixes += 1;
            if quarantined {
                self.window_quarantined += 1;
                self.fault_stats.quarantined += 1;
            }
            (true, false, f64::INFINITY)
        } else {
            let mut predicted = self.checker.predict(input, approx_output);
            let blinded =
                self.fault_plan.as_ref().is_some_and(|plan| plan.blind_checker(invocation));
            if blinded {
                self.fault_stats.checker_blinded += 1;
                predicted = 0.0;
            }
            let cap = self.tuner.reexec_cap(cpu_capacity_per_window);
            let budget_left = cap.is_none_or(|c| self.window_fired < c);
            let wants_fire = predicted > self.tuner.threshold();
            // Predict-and-compensate split: a fired check inside the band
            // (threshold < predicted <= band) is repaired in place; only
            // the worst offenders above the band still re-execute. The
            // decision is a pure function of (predicted, tuner state), so
            // it replays bit-identically at any threads × shards × SIMD.
            let compensable =
                wants_fire && self.tuner.compensation_band().is_some_and(|band| predicted <= band);
            let fired = wants_fire && !compensable && budget_left;
            if fired {
                kernel.compute(input, output);
                self.window_fired += 1;
                self.stream_fixes += 1;
            } else if compensable {
                // Same quarantine discipline as forced-exact rows: the
                // repaired row contributes nothing to `window_pred_sum`
                // (its residual is not the prediction), consumes no
                // re-execution budget, and takes no recovery-queue slot.
                // The paired `predict` call above already advanced any
                // online checker state; `predict_signed` is pure.
                let signed = self.checker.predict_signed(input, approx_output, predicted);
                let signed = if signed.is_finite() { signed } else { 0.0 };
                for (out, &approx) in output[..approx_output.len()].iter_mut().zip(approx_output) {
                    *out = approx - signed;
                }
                self.window_compensated += 1;
                self.stream_compensations += 1;
            } else {
                if wants_fire {
                    // Check fired but the re-execution budget for this window
                    // is spent (§3.4's hard cap) — telemetry only.
                    self.window_suppressed += 1;
                }
                output[..approx_output.len()].copy_from_slice(approx_output);
                self.window_pred_sum += predicted;
            }
            (fired, compensable, predicted)
        };

        self.capture_refit_row(
            kernel,
            invocation,
            input,
            approx_output,
            output,
            quarantined,
            fired,
        );
        self.note_faults(invocation, approx_output.len(), quarantined, fired);
        self.window_len += 1;
        self.stream_invocations += 1;

        if self.window_len == self.config.window {
            self.flush_window(kernel, cpu_capacity_per_window, capacity_clamped);
        }
        Ok(StreamOutcome { fired, compensated, predicted_error: predicted })
    }

    /// The armed refit's ground-truth capture for one processed row:
    /// audited rows (every `audit_period`-th invocation) and rows whose
    /// exact result was paid for anyway (quarantined or fired) are offered
    /// to the reservoir, and audited rows fold their measured
    /// merged-stream error into the watchdog's dirty signal. Pure in the
    /// stream position, so capture replays bit-identically at any
    /// threads × SIMD × shards — and a no-op (not even a branch into the
    /// kernel) when the refit is unarmed or the ladder has abandoned the
    /// accelerator.
    #[allow(clippy::too_many_arguments)]
    fn capture_refit_row(
        &mut self,
        kernel: &dyn Kernel,
        invocation: usize,
        input: &[f64],
        approx_output: &[f64],
        merged: &[f64],
        quarantined: bool,
        fired: bool,
    ) {
        if self.refit_state.is_none() || self.stage == DegradeStage::CpuFallback {
            return;
        }
        let audit =
            invocation.is_multiple_of(self.refit_state.as_ref().expect("checked").cfg.audit_period);
        // Quarantined and fired rows already computed the exact result
        // into the merged output; only an audited soft row pays for one.
        let exact_known = quarantined || fired;
        if !audit && !exact_known {
            return;
        }
        let out_w = approx_output.len();
        let exact: Vec<f64> = if exact_known {
            merged[..out_w].to_vec()
        } else {
            let mut exact = vec![0.0; out_w];
            kernel.compute(input, &mut exact);
            exact
        };
        // Provenance: a row produced while the checker was blinded or the
        // datapath emitted non-finite values must never train the refit.
        let poisoned = quarantined
            || self.fault_plan.as_ref().is_some_and(|plan| plan.blind_checker(invocation));
        let rs = self.refit_state.as_mut().expect("checked");
        if audit {
            // The audit measures the *merged* stream (what the tenant
            // receives): rows fixed exactly contribute zero, unfixed and
            // compensated rows their true residual error.
            let merged_err = if exact_known {
                0.0
            } else {
                kernel.metric().invocation_error(&exact, &merged[..out_w])
            };
            rs.window_audit_sum += merged_err;
            rs.window_audit_count += 1;
        }
        rs.reservoir.offer(ReservoirRow {
            input: input.to_vec(),
            exact,
            approx: approx_output.to_vec(),
            poisoned,
        });
    }

    /// Replays the plan's decisions for one invocation to attribute every
    /// injected fault to a detection outcome and emit `fault` telemetry.
    /// Runs only on the serial decision path, so event order is
    /// deterministic.
    fn note_faults(&mut self, invocation: usize, out_dim: usize, quarantined: bool, fired: bool) {
        let Some(plan) = self.fault_plan.take() else {
            return;
        };
        let mut log = std::mem::take(&mut self.fault_log);
        let injected = plan.output_fault_events(invocation, out_dim, &mut log);
        if plan.drift_input(invocation, &mut []) {
            self.fault_stats.drifted_inputs += 1;
        }
        if injected > 0 {
            self.fault_stats.injected_outputs += injected as u64;
            if quarantined {
                // Counted once per quarantined invocation in `process_result`.
            } else if fired {
                self.fault_stats.detected += 1;
            } else {
                self.fault_stats.escaped += 1;
            }
        }
        if rumba_obs::enabled() {
            let outcome = if quarantined {
                "quarantined"
            } else if fired {
                "detected"
            } else {
                "escaped"
            };
            let sink = rumba_obs::global_sink();
            for fault in &log {
                sink.emit(&rumba_obs::Event::Fault {
                    invocation: invocation as u64,
                    kind: fault.kind.label().to_owned(),
                    element: fault.element as u64,
                    outcome: outcome.to_owned(),
                    session: self.session_label.clone(),
                });
            }
            if !quarantined
                && self.stage != DegradeStage::CpuFallback
                && plan.blind_checker(invocation)
            {
                sink.emit(&rumba_obs::Event::Fault {
                    invocation: invocation as u64,
                    kind: FaultKind::CheckerBlind.label().to_owned(),
                    element: 0,
                    outcome: "injected".to_owned(),
                    session: self.session_label.clone(),
                });
            }
        }
        self.fault_log = log;
        self.fault_plan = Some(plan);
    }

    /// Total re-executions since [`RumbaSystem::begin_stream`].
    #[must_use]
    pub fn stream_fixes(&self) -> usize {
        self.stream_fixes
    }

    /// Total in-place compensations since [`RumbaSystem::begin_stream`].
    #[must_use]
    pub fn stream_compensations(&self) -> usize {
        self.stream_compensations
    }

    /// Total invocations since [`RumbaSystem::begin_stream`].
    #[must_use]
    pub fn stream_invocations(&self) -> usize {
        self.stream_invocations
    }

    /// Re-executions the CPU can overlap with one window of accelerator
    /// time, and whether the raw figure floored to zero. A zero capacity
    /// would permanently suppress all recovery in the capacity-driven
    /// modes with no signal, so it is clamped up to 1 (one fix per window
    /// always fits — the invocation simply waits) and the clamp is
    /// surfaced in `window_end` telemetry.
    fn cpu_capacity_per_window(&self, kernel: &dyn Kernel) -> (usize, bool) {
        let raw = ((self.config.window as f64 * self.npu.cycles_per_invocation() as f64)
            / kernel.cpu_cycles())
        .floor() as usize;
        (raw.max(1), raw == 0)
    }

    /// Folds the recovery-queue depth observed after an enqueue into the
    /// current window's telemetry high-water mark.
    fn note_queue_depth(&mut self, depth: usize) {
        self.window_queue_depth = self.window_queue_depth.max(depth as u64);
    }

    /// Tuning windows completed since [`RumbaSystem::begin_stream`].
    #[must_use]
    pub fn windows_flushed(&self) -> u64 {
        self.windows_flushed
    }

    /// Ends a streaming run: flushes the final partial tuning window (if
    /// any), exactly as [`RumbaSystem::run`] does for batch runs. Long-
    /// running streaming deployments (the serving layer's session close)
    /// call this so the tail of the stream still reaches the tuner and the
    /// `window_end` telemetry.
    pub fn end_stream(&mut self, kernel: &dyn Kernel) {
        let (cpu_capacity, capacity_clamped) = self.cpu_capacity_per_window(kernel);
        self.flush_window(kernel, cpu_capacity, capacity_clamped);
    }

    fn flush_window(&mut self, kernel: &dyn Kernel, cpu_capacity: usize, capacity_clamped: bool) {
        if self.window_len == 0 {
            return;
        }
        // Window quality estimate: fixed iterations are exact, so the
        // window's predicted output error is the unfixed prediction mass
        // over the whole window. Quarantined iterations were re-executed
        // exactly and never contributed to `window_pred_sum`.
        let mean_unfixed_pred = self.window_pred_sum / self.window_len as f64;
        self.tuner.observe_window(WindowStats {
            window_len: self.window_len,
            fired: self.window_fired,
            mean_unfixed_predicted_error: mean_unfixed_pred,
            cpu_capacity,
        });
        if rumba_obs::enabled() {
            // The threshold reported is the post-adjustment one, matching
            // the entries `Tuner::history` records per window.
            rumba_obs::global_sink().emit(&rumba_obs::Event::WindowEnd {
                window: self.windows_flushed,
                threshold: self.tuner.threshold(),
                fired: self.window_fired as u64,
                suppressed_by_budget: self.window_suppressed as u64,
                mean_unfixed_pred,
                cpu_capacity: cpu_capacity as u64,
                queue_depth_max: self.window_queue_depth,
                quarantined: self.window_quarantined as u64,
                capacity_clamped,
                compensated: self.window_compensated as u64,
                tiers: self.zoo_state.as_ref().map(|z| z.window_tiers.clone()).unwrap_or_default(),
                session: self.session_label.clone(),
            });
        }
        self.observe_watchdog(kernel, mean_unfixed_pred);
        self.windows_flushed += 1;
        self.window_fired = 0;
        self.window_suppressed = 0;
        self.window_pred_sum = 0.0;
        self.window_len = 0;
        self.window_queue_depth = 0;
        self.window_quarantined = 0;
        self.window_compensated = 0;
        if let Some(zs) = self.zoo_state.as_mut() {
            zs.window_tiers.fill(0);
        }
        if let Some(rs) = self.refit_state.as_mut() {
            rs.window_audit_sum = 0.0;
            rs.window_audit_count = 0;
        }
    }

    /// The degradation ladder, evaluated once per completed window:
    /// `patience` consecutive dirty windows → recalibrate (clear checker
    /// state, snap the threshold back to its calibrated start); a streak
    /// reaching `fallback_patience` → abandon the accelerator for the rest
    /// of the stream; one clean window after a recalibration → recovered.
    fn observe_watchdog(&mut self, kernel: &dyn Kernel, mean_unfixed_pred: f64) {
        let Some(wd) = self.config.watchdog else {
            return;
        };
        if self.stage == DegradeStage::CpuFallback {
            return;
        }
        // The armed refit's audit channel measures the *true* merged
        // error of sampled rows, so a stale checker that under-predicts a
        // drifted regime (and therefore keeps the prediction mass low)
        // still drives the window dirty.
        let audit_dirty = self.refit_state.as_ref().is_some_and(|rs| {
            rs.window_audit_count > 0
                && rs.window_audit_sum / rs.window_audit_count as f64 > wd.quality_limit
        });
        let dirty = mean_unfixed_pred > wd.quality_limit
            || self.window_quarantined * 4 >= self.window_len
            || audit_dirty;
        if !dirty {
            if self.stage == DegradeStage::Recalibrated {
                self.stage = DegradeStage::Normal;
                self.emit_degrade("recovered", "clean window after recalibration");
            }
            self.dirty_windows = 0;
            return;
        }
        self.dirty_windows += 1;
        let detail = format!(
            "{} consecutive dirty windows, quality est {:.4}, quarantined {}/{}",
            self.dirty_windows, mean_unfixed_pred, self.window_quarantined, self.window_len
        );
        if self.stage == DegradeStage::Normal && self.dirty_windows >= wd.patience {
            self.checker.reset();
            self.tuner.reset_to(self.initial_threshold);
            self.stage = DegradeStage::Recalibrated;
            self.fault_stats.recalibrations += 1;
            self.emit_degrade("recalibrate", &detail);
            self.try_refit(kernel);
        } else if self.stage == DegradeStage::Recalibrated
            && self.dirty_windows >= wd.fallback_patience
        {
            self.stage = DegradeStage::CpuFallback;
            self.fault_stats.fallbacks += 1;
            self.emit_degrade("cpu_fallback", &detail);
        } else if self.stage == DegradeStage::Recalibrated {
            // Still dirty but not yet at the fallback rung: keep adapting
            // — each window's audits add drifted-regime rows, so a refit
            // that missed the moving target gets another shot before the
            // accelerator is abandoned.
            self.try_refit(kernel);
        }
    }

    /// The `Recalibrated` rung's online re-fit: trains the checker (and
    /// its signed companion) on the reservoir's clean rows and
    /// re-calibrates the firing threshold on the refreshed fit. The
    /// per-row targets fan out over the deterministic `rumba-parallel`
    /// pool; the model swap and threshold commit happen serially here, at
    /// the window boundary, so the stream's decision sequence stays a
    /// pure function of (seed, window). A no-op when the refit is
    /// unarmed, the reservoir holds too few clean rows, or the checker
    /// kind does not support refit (the reset-only recalibration already
    /// performed then stands).
    fn try_refit(&mut self, kernel: &dyn Kernel) {
        let Some(rs) = self.refit_state.as_ref() else {
            return;
        };
        let clean = rs.reservoir.clean_indices();
        let excluded = rs.reservoir.len() - clean.len();
        if clean.len() < rs.cfg.min_rows {
            return;
        }
        let quality_budget = rs.cfg.quality_budget;
        let (inputs, approxes): (Vec<Vec<f64>>, Vec<Vec<f64>>) = clean
            .iter()
            .map(|&i| {
                let row = &rs.reservoir.rows()[i];
                (row.input.clone(), row.approx.clone())
            })
            .unzip();
        let metric = kernel.metric();
        let rows = &rs.reservoir.rows();
        let clean_ref = &clean;
        // (magnitude, signed) targets per clean row, fanned over the
        // deterministic pool — bit-identical at any thread count.
        let targets: Vec<(f64, f64)> = rumba_parallel::par_map_range(clean.len(), |i| {
            let row = &rows[clean_ref[i]];
            let magnitude = metric.invocation_error(&row.exact, &row.approx);
            let signed = row.approx.iter().zip(&row.exact).map(|(a, e)| a - e).sum::<f64>()
                / row.exact.len().max(1) as f64;
            (magnitude, signed)
        });
        let magnitudes: Vec<f64> = targets.iter().map(|t| t.0).collect();
        let signed: Vec<f64> = targets.iter().map(|t| t.1).collect();
        let row_refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        if self.checker.refit(&row_refs, &magnitudes, &signed).is_err() {
            // Unsupported checker kind (EMA, ensembles): the reset-only
            // recalibration already applied is the whole remedy.
            return;
        }
        // Re-run the offline calibration recipe on the refreshed fit:
        // probe (counter-free) predictions over the reservoir vs its
        // measured errors.
        let predictions: Vec<f64> = inputs
            .iter()
            .zip(&approxes)
            .map(|(input, approx)| self.checker.probe(input, approx))
            .collect();
        let threshold = calibrate_threshold(&predictions, &magnitudes, quality_budget);
        self.tuner.reset_to(threshold);
        let rs = self.refit_state.as_mut().expect("refit state checked above");
        rs.epoch += 1;
        if rumba_obs::enabled() {
            rumba_obs::global_sink().emit(&rumba_obs::Event::Refit {
                window: self.windows_flushed,
                epoch: rs.epoch,
                rows: inputs.len() as u64,
                excluded: excluded as u64,
                threshold,
                session: self.session_label.clone(),
            });
        }
    }

    fn emit_degrade(&self, action: &str, detail: &str) {
        if rumba_obs::enabled() {
            rumba_obs::global_sink().emit(&rumba_obs::Event::Degrade {
                window: self.windows_flushed,
                action: action.to_owned(),
                detail: detail.to_owned(),
                session: self.session_label.clone(),
            });
        }
    }

    /// Processes every invocation in `data`, returning the merged outputs
    /// and full telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::EmptyWorkload`] for an empty dataset and
    /// propagates accelerator dimension errors.
    pub fn run(&mut self, kernel: &dyn Kernel, data: &NnDataset) -> Result<RunOutcome> {
        if data.is_empty() {
            return Err(RumbaError::EmptyWorkload);
        }
        if self.zoo_state.is_some() {
            return self.run_zoo(kernel, data);
        }
        let _span = rumba_obs::span("core.run");
        let n = data.len();
        let out_dim = self.npu.output_dim();
        let metric = kernel.metric();
        let cpu_cycles = kernel.cpu_cycles();
        let npu_cycles = self.npu.cycles_per_invocation() as f64;
        let (cpu_capacity_per_window, capacity_clamped) = self.cpu_capacity_per_window(kernel);

        self.begin_stream();
        // The accelerator is pure, so its outputs for the whole stream are
        // precomputed as one cache-blocked batched invocation (rows fan
        // out over the deterministic pool); the stateful decision loop
        // below (checker history, tuner, recovery queue) then replays
        // serially over the rows, which keeps every decision — and the
        // merged stream — bit-identical to streaming the invocations one
        // at a time.
        let mut scratch = Scratch::new();
        let mut approx = Matrix::default();
        self.npu.invoke_batch(data.inputs_view(), &mut scratch, &mut approx)?;

        let mut recovery_queue: Fifo<RecoveryBit> = Fifo::new(self.config.recovery_queue_capacity);
        let mut merged = Vec::with_capacity(n * out_dim);
        let mut fired = vec![false; n];
        let mut fixes = 0usize;
        let mut out_buf = vec![0.0; out_dim];

        for (i, fired_flag) in fired.iter_mut().enumerate() {
            let outcome =
                self.process_approx(kernel, data.input(i), approx.row(i), &mut out_buf)?;
            if outcome.fired {
                // Model the recovery queue the CPU drains: the recovery bit
                // flows through the bounded FIFO (timing cost is accounted
                // by the pipeline simulation below). A queue-pressure fault
                // model shrinks the effective capacity with phantom-occupied
                // slots, forcing earlier back-pressure.
                let pressure = self.fault_plan.as_ref().map_or(0, |plan| plan.queue_pressure(i));
                let effective_cap =
                    self.config.recovery_queue_capacity.saturating_sub(pressure).max(1);
                let bit = RecoveryBit {
                    iteration: i,
                    predicted_error: OrderedF64::new(outcome.predicted_error),
                };
                while recovery_queue.len() >= effective_cap {
                    // Queue full: drain (CPU consumes in FIFO order) before
                    // enqueueing — models back-pressure without deadlock.
                    let _ = recovery_queue.pop();
                }
                recovery_queue.push(bit).expect("drained below capacity");
                self.note_queue_depth(recovery_queue.len() + pressure);
                let _ = recovery_queue.pop().expect("just pushed");
                *fired_flag = true;
                fixes += 1;
            }
            merged.extend_from_slice(&out_buf);
        }
        // Flush the final partial window.
        self.flush_window(kernel, cpu_capacity_per_window, capacity_clamped);

        // Measured quality of the merged stream (pure per invocation, so
        // the scoring also fans out).
        let merged_ref = &merged;
        let invocation_errors: Vec<f64> = rumba_parallel::par_map_range(n, |i| {
            metric.invocation_error(data.target(i), &merged_ref[i * out_dim..(i + 1) * out_dim])
        });
        let output_error = invocation_errors.iter().sum::<f64>() / n as f64;

        let serial_detector_cycles = match (self.config.placement, self.checker.is_input_based()) {
            (Placement::BeforeAccelerator, true) => {
                n as f64 * self.checker.cycles_per_prediction() as f64
            }
            _ => 0.0,
        };
        let pipeline = simulate(n, npu_cycles, cpu_cycles, &fired);
        if rumba_obs::enabled() {
            rumba_obs::global_sink().emit(&rumba_obs::Event::RunSummary {
                kernel: kernel.name().to_owned(),
                invocations: n as u64,
                fixes: fixes as u64,
                compensated: self.stream_compensations as u64,
                output_error,
                windows: self.windows_flushed,
                cpu_utilization: pipeline.cpu_utilization,
                final_threshold: self.tuner.threshold(),
                tiers: Vec::new(),
                session: self.session_label.clone(),
            });
        }
        let activity = SchemeActivity {
            accelerator_invocations: n,
            npu_cycles_per_invocation: self.npu.cycles_per_invocation(),
            io_words_per_invocation: self.npu.input_dim() + self.npu.output_dim(),
            checker_invocations: n,
            checker_cost: self.checker.cost(),
            reexecutions: fixes,
            compensations: self.stream_compensations,
            serial_detector_cycles,
            tiered_accelerator_cycles: 0.0,
        };

        Ok(RunOutcome {
            merged_outputs: merged,
            fired,
            fixes,
            compensated: self.stream_compensations,
            output_error,
            invocation_errors,
            activity,
            pipeline,
            threshold_history: self.tuner.history().to_vec(),
            quarantined: self.fault_stats.quarantined as usize,
            fault_stats: self.fault_stats,
            degrade_stage: self.stage,
        })
    }

    /// The zoo-armed batch path. Work proceeds in window-aligned chunks:
    /// within a chunk the routing bar is constant (the tuner's tier scale
    /// only moves at window flushes), so every row's tier is a pure
    /// function of its input and the chunk's bar — identical to streaming
    /// the rows one at a time. Per chunk, rows are grouped into per-tier
    /// sub-batches and gathered through [`Npu::invoke_rows_at`], so the
    /// SIMD/flat-matrix batch paths still run and still produce the exact
    /// bits of per-row invocations; the stateful decision loop then
    /// replays serially in row order, exactly like [`RumbaSystem::run`].
    fn run_zoo(&mut self, kernel: &dyn Kernel, data: &NnDataset) -> Result<RunOutcome> {
        let _span = rumba_obs::span("core.run_zoo");
        let n = data.len();
        let out_dim = self.npu.output_dim();
        let in_dim = self.npu.input_dim();
        let metric = kernel.metric();
        let cpu_cycles = kernel.cpu_cycles();
        let npu_cycles = self.npu.cycles_per_invocation() as f64;
        let (cpu_capacity_per_window, capacity_clamped) = self.cpu_capacity_per_window(kernel);

        self.begin_stream();
        let window = self.config.window;
        let mut recovery_queue: Fifo<RecoveryBit> = Fifo::new(self.config.recovery_queue_capacity);
        let mut merged = Vec::with_capacity(n * out_dim);
        let mut fired = vec![false; n];
        // Rows the CPU executes exactly — checker-fired recoveries plus
        // rows routed to the exact tier; this is what the pipeline overlap
        // and the energy model's re-execution stream must see.
        let mut cpu_rows = vec![false; n];
        let mut fixes = 0usize;
        let mut out_buf = vec![0.0; out_dim];
        let mut scratch = Scratch::new();
        let mut tier_out = Matrix::default();

        let mut start = 0usize;
        while start < n {
            let end = (start + window).min(n);
            let bar = self.routing_bar().expect("zoo attached");
            let zs = self.zoo_state.as_ref().expect("zoo attached");
            let routes: Vec<usize> =
                (start..end).map(|i| zs.zoo.route(data.input(i), bar)).collect();
            let mut approx_rows: Vec<Option<Vec<f64>>> = vec![None; end - start];
            for t in 0..zs.zoo.len() {
                let positions: Vec<usize> =
                    (start..end).filter(|&i| routes[i - start] == t).collect();
                if positions.is_empty() {
                    continue;
                }
                let mut flat = Vec::with_capacity(positions.len() * in_dim);
                for &i in &positions {
                    flat.extend_from_slice(data.input(i));
                }
                let view = MatrixView::new(&flat, positions.len(), in_dim);
                zs.zoo.tier(t).npu.invoke_rows_at(&positions, view, &mut scratch, &mut tier_out)?;
                for (r, &i) in positions.iter().enumerate() {
                    approx_rows[i - start] = Some(tier_out.row(r).to_vec());
                }
            }
            for i in start..end {
                let tier = routes[i - start];
                let approx = approx_rows[i - start].as_deref();
                if approx.is_none() {
                    cpu_rows[i] = true;
                }
                let outcome =
                    self.process_routed(kernel, data.input(i), tier, approx, &mut out_buf)?;
                if outcome.fired {
                    let pressure =
                        self.fault_plan.as_ref().map_or(0, |plan| plan.queue_pressure(i));
                    let effective_cap =
                        self.config.recovery_queue_capacity.saturating_sub(pressure).max(1);
                    let bit = RecoveryBit {
                        iteration: i,
                        predicted_error: OrderedF64::new(outcome.predicted_error),
                    };
                    while recovery_queue.len() >= effective_cap {
                        let _ = recovery_queue.pop();
                    }
                    recovery_queue.push(bit).expect("drained below capacity");
                    self.note_queue_depth(recovery_queue.len() + pressure);
                    let _ = recovery_queue.pop().expect("just pushed");
                    fired[i] = true;
                    cpu_rows[i] = true;
                    fixes += 1;
                }
                merged.extend_from_slice(&out_buf);
            }
            start = end;
        }
        self.flush_window(kernel, cpu_capacity_per_window, capacity_clamped);

        let merged_ref = &merged;
        let invocation_errors: Vec<f64> = rumba_parallel::par_map_range(n, |i| {
            metric.invocation_error(data.target(i), &merged_ref[i * out_dim..(i + 1) * out_dim])
        });
        let output_error = invocation_errors.iter().sum::<f64>() / n as f64;

        let serial_detector_cycles = match (self.config.placement, self.checker.is_input_based()) {
            (Placement::BeforeAccelerator, true) => {
                n as f64 * self.checker.cycles_per_prediction() as f64
            }
            _ => 0.0,
        };
        let pipeline = simulate(n, npu_cycles, cpu_cycles, &cpu_rows);
        let zs = self.zoo_state.as_ref().expect("zoo attached");
        let cpu_routed = *zs.stream_tiers.last().expect("tier counts non-empty") as usize;
        let model_rows = n - cpu_routed;
        if rumba_obs::enabled() {
            rumba_obs::global_sink().emit(&rumba_obs::Event::RunSummary {
                kernel: kernel.name().to_owned(),
                invocations: n as u64,
                fixes: fixes as u64,
                compensated: self.stream_compensations as u64,
                output_error,
                windows: self.windows_flushed,
                cpu_utilization: pipeline.cpu_utilization,
                final_threshold: self.tuner.threshold(),
                tiers: zs.stream_tiers.clone(),
                session: self.session_label.clone(),
            });
        }
        // Exact-tier rows cost the CPU what a re-execution costs, but only
        // model-tier rows touch the accelerator, its I/O, or the checker;
        // the accelerator stream's cycle total is the routed per-tier sum.
        let activity = SchemeActivity {
            accelerator_invocations: model_rows,
            npu_cycles_per_invocation: self.npu.cycles_per_invocation(),
            io_words_per_invocation: self.npu.input_dim() + self.npu.output_dim(),
            checker_invocations: model_rows,
            checker_cost: self.checker.cost(),
            reexecutions: fixes + cpu_routed,
            compensations: self.stream_compensations,
            serial_detector_cycles,
            tiered_accelerator_cycles: zs.tier_cycles_total,
        };

        Ok(RunOutcome {
            merged_outputs: merged,
            fired,
            fixes,
            compensated: self.stream_compensations,
            output_error,
            invocation_errors,
            activity,
            pipeline,
            threshold_history: self.tuner.history().to_vec(),
            quarantined: self.fault_stats.quarantined as usize,
            fault_stats: self.fault_stats,
            degrade_stage: self.stage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_app, OfflineConfig};
    use crate::tuner::{calibrate_threshold, TuningMode};
    use rumba_apps::{kernel_by_name, Split};
    use rumba_predict::ErrorEstimator;

    fn build_system(mode: TuningMode) -> (Box<dyn Kernel>, RumbaSystem, NnDataset) {
        let kernel = kernel_by_name("gaussian").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let train = kernel.generate(Split::Train, 42);
        // One probe serves the whole sweep: the tree checker is stateless,
        // and cloning per row would rebuild the boxed checker each time.
        let mut probe = app.tree.clone();
        let predicted: Vec<f64> =
            (0..train.len()).map(|i| probe.estimate(train.input(i), &[])).collect();
        let threshold = calibrate_threshold(&predicted, &app.train_errors, 0.02);
        let system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(mode, threshold).unwrap(),
            RuntimeConfig::default(),
        )
        .unwrap();
        let test = kernel.generate(Split::Test, 42);
        (kernel, system, test)
    }

    #[test]
    fn managed_run_beats_unchecked_error() {
        let (kernel, mut system, test) = build_system(TuningMode::TargetQuality { toq: 0.98 });
        let outcome = system.run(kernel.as_ref(), &test).unwrap();

        // Unchecked error of the same accelerator.
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let unchecked = crate::trainer::invocation_errors(kernel.as_ref(), &app.rumba_npu, &test)
            .unwrap()
            .iter()
            .sum::<f64>()
            / test.len() as f64;

        assert!(outcome.fixes > 0, "some checks must fire");
        assert!(
            outcome.output_error < unchecked,
            "managed {} vs unchecked {unchecked}",
            outcome.output_error
        );
    }

    #[test]
    fn merged_outputs_are_exact_where_fired() {
        let (kernel, mut system, test) = build_system(TuningMode::TargetQuality { toq: 0.98 });
        let outcome = system.run(kernel.as_ref(), &test).unwrap();
        let out_dim = kernel.output_dim();
        for (i, &f) in outcome.fired.iter().enumerate() {
            if f {
                let merged = &outcome.merged_outputs[i * out_dim..(i + 1) * out_dim];
                assert_eq!(merged, test.target(i), "iteration {i} must be exact");
            }
        }
    }

    #[test]
    fn energy_mode_respects_budget_per_window() {
        let (kernel, _, test) = build_system(TuningMode::BestQuality);
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let budget = 5usize;
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(TuningMode::EnergyBudget { budget }, 1e-6).unwrap(),
            RuntimeConfig { window: 100, ..RuntimeConfig::default() },
        )
        .unwrap();
        let outcome = system.run(kernel.as_ref(), &test).unwrap();
        let windows = test.len().div_ceil(100);
        assert!(
            outcome.fixes <= budget * windows,
            "fixes {} exceed budget {budget} x {windows}",
            outcome.fixes
        );
    }

    #[test]
    fn rejects_degenerate_config() {
        let kernel = kernel_by_name("gaussian").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let bad = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(TuningMode::BestQuality, 0.1).unwrap(),
            RuntimeConfig { window: 0, ..RuntimeConfig::default() },
        );
        assert!(bad.is_err());
    }

    #[test]
    fn window_errors_average_back_to_output_error() {
        let (kernel, mut system, test) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        let outcome = system.run(kernel.as_ref(), &test).unwrap();
        assert_eq!(outcome.invocation_errors.len(), test.len());
        let windows = outcome.window_errors(256);
        assert_eq!(windows.len(), test.len().div_ceil(256));
        // Weighted mean of window means equals the overall error.
        let weighted: f64 = outcome
            .invocation_errors
            .chunks(256)
            .zip(&windows)
            .map(|(c, &w)| w * c.len() as f64)
            .sum::<f64>()
            / test.len() as f64;
        assert!((weighted - outcome.output_error).abs() < 1e-12);
    }

    #[test]
    fn window_errors_clamps_the_final_partial_window() {
        // Regression: a 7-element stream with window 4 must yield exactly
        // two windows — [0,4) and the clamped [4,7) — instead of reading
        // past the end of the stream.
        let outcome = RunOutcome {
            merged_outputs: vec![0.0; 7],
            fired: vec![false; 7],
            fixes: 0,
            compensated: 0,
            output_error: 4.0,
            invocation_errors: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            activity: SchemeActivity::default(),
            pipeline: simulate(7, 1.0, 1.0, &[false; 7]),
            threshold_history: vec![0.1],
            quarantined: 0,
            fault_stats: FaultStats::default(),
            degrade_stage: DegradeStage::Normal,
        };
        let windows = outcome.window_errors(4);
        assert_eq!(windows.len(), 2);
        assert!((windows[0] - 2.5).abs() < 1e-12, "{windows:?}");
        assert!((windows[1] - 6.0).abs() < 1e-12, "mean of the 3-element tail: {windows:?}");
        // Window longer than the stream: one clamped window, the plain mean.
        let whole = outcome.window_errors(100);
        assert_eq!(whole.len(), 1);
        assert!((whole[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_matches_batch_run() {
        // `run` is built on `process`; an external streaming loop must
        // reproduce it exactly.
        let (kernel, mut batch_system, test) =
            build_system(TuningMode::TargetQuality { toq: 0.95 });
        let batch = batch_system.run(kernel.as_ref(), &test).unwrap();

        let (_, mut stream_system, _) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        stream_system.begin_stream();
        let out_dim = kernel.output_dim();
        let mut merged = Vec::with_capacity(test.len() * out_dim);
        let mut buf = vec![0.0; out_dim];
        let mut fixes = 0usize;
        for i in 0..test.len() {
            let outcome = stream_system.process(kernel.as_ref(), test.input(i), &mut buf).unwrap();
            if outcome.fired {
                fixes += 1;
            }
            merged.extend_from_slice(&buf);
        }
        assert_eq!(merged, batch.merged_outputs);
        assert_eq!(fixes, batch.fixes);
        assert_eq!(stream_system.stream_fixes(), batch.fixes);
    }

    #[test]
    fn exported_state_resumes_a_stream_bit_for_bit() {
        // Run the reference stream start to finish, then replay it with a
        // mid-stream export onto a freshly built system: the resumed tail
        // must reproduce the reference outputs and counters exactly.
        let (kernel, mut reference, test) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        reference.begin_stream();
        let out_dim = kernel.output_dim();
        let mut buf = vec![0.0; out_dim];
        let mut expected = Vec::with_capacity(test.len() * out_dim);
        for i in 0..test.len() {
            reference.process(kernel.as_ref(), test.input(i), &mut buf).unwrap();
            expected.extend_from_slice(&buf);
        }
        reference.end_stream(kernel.as_ref());

        let cut = test.len() / 2;
        let (_, mut head, _) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        head.begin_stream();
        let mut merged = Vec::with_capacity(test.len() * out_dim);
        for i in 0..cut {
            head.process(kernel.as_ref(), test.input(i), &mut buf).unwrap();
            merged.extend_from_slice(&buf);
        }
        let words = head.export_state();

        let (_, mut tail, _) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        tail.begin_stream();
        tail.import_state(&words).unwrap();
        // The NPU's fault stream is keyed on stream position, which
        // `import_state` restored via `stream_invocations`; continue.
        for i in cut..test.len() {
            tail.process(kernel.as_ref(), test.input(i), &mut buf).unwrap();
            merged.extend_from_slice(&buf);
        }
        tail.end_stream(kernel.as_ref());

        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&merged), bits(&expected));
        assert_eq!(tail.stream_fixes(), reference.stream_fixes());
        assert_eq!(tail.windows_flushed(), reference.windows_flushed());
        assert_eq!(tail.tuner().threshold().to_bits(), reference.tuner().threshold().to_bits());
    }

    #[test]
    fn import_state_rejects_malformed_words() {
        let (_, mut system, _) = build_system(TuningMode::BestQuality);
        assert!(system.import_state(&[0; 5]).is_err());
        let mut words = system.export_state();
        words[11] = 9; // invalid degrade-stage tag
        assert!(system.import_state(&words).is_err());
        let mut truncated = system.export_state();
        truncated.pop();
        assert!(system.import_state(&truncated).is_err());
    }

    #[test]
    fn empty_workload_rejected() {
        let (kernel, mut system, _) = build_system(TuningMode::BestQuality);
        let empty = NnDataset::new(kernel.input_dim(), kernel.output_dim()).unwrap();
        assert!(matches!(system.run(kernel.as_ref(), &empty), Err(RumbaError::EmptyWorkload)));
    }

    #[test]
    fn cpu_capacity_never_floors_to_zero() {
        // Regression: gaussian's CPU kernel costs ~90 cycles and its NPU
        // ~35, so a 2-iteration window has a raw capacity of
        // floor(2*35/90) = 0 — before the clamp, capacity-driven modes
        // could then never re-execute anything, silently, forever.
        let kernel = kernel_by_name("gaussian").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree.clone())),
            Tuner::new(TuningMode::BestQuality, 0.1).unwrap(),
            RuntimeConfig { window: 2, ..RuntimeConfig::default() },
        )
        .unwrap();
        let (capacity, clamped) = system.cpu_capacity_per_window(kernel.as_ref());
        assert_eq!(capacity, 1, "zero capacity must clamp to one fix per window");
        assert!(clamped, "the clamp must be surfaced for telemetry");

        // A fired check can therefore actually fix something: with a
        // near-zero threshold every check wants to fire, and the clamped
        // capacity admits one fix per 2-iteration window.
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(TuningMode::BestQuality, 1e-6).unwrap(),
            RuntimeConfig { window: 2, ..RuntimeConfig::default() },
        )
        .unwrap();
        let test = kernel.generate(Split::Test, 42);
        let outcome = system.run(kernel.as_ref(), &test).unwrap();
        assert!(outcome.fixes > 0, "clamped capacity must permit recovery");
    }

    #[test]
    fn non_finite_outputs_are_quarantined_and_merged_stream_stays_finite() {
        use rumba_faults::{FaultModel, FaultPlan};
        let (kernel, mut system, test) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        system
            .set_fault_plan(Some(FaultPlan::new(0xbad).with(FaultModel::NonFinite { rate: 1e-2 })));
        let outcome = system.run(kernel.as_ref(), &test).unwrap();
        assert!(outcome.quarantined > 0, "1% NaN rate over {} rows must strike", test.len());
        assert!(
            outcome.merged_outputs.iter().all(|v| v.is_finite()),
            "every quarantined row must be re-executed exactly"
        );
        assert_eq!(outcome.fault_stats.quarantined as usize, outcome.quarantined);
        assert!(outcome.fixes <= test.len());
    }

    #[test]
    fn quarantine_outranks_the_energy_budget() {
        // Even with a zero-fire budget the non-finite screen must force
        // CPU re-execution: correctness is not subject to the energy cap.
        let kernel = kernel_by_name("gaussian").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(TuningMode::EnergyBudget { budget: 0 }, 1e6).unwrap(),
            RuntimeConfig::default(),
        )
        .unwrap();
        system.set_fault_plan(Some(
            rumba_faults::FaultPlan::new(7)
                .with(rumba_faults::FaultModel::NonFinite { rate: 5e-3 }),
        ));
        let test = kernel.generate(Split::Test, 42);
        let outcome = system.run(kernel.as_ref(), &test).unwrap();
        assert!(outcome.quarantined > 0);
        assert!(outcome.merged_outputs.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn watchdog_escalates_recalibration_then_cpu_fallback() {
        use rumba_faults::{FaultModel, FaultPlan};
        let (kernel, _, test) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let watchdog = WatchdogConfig { quality_limit: 0.05, patience: 2, fallback_patience: 4 };
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, 0.05).unwrap(),
            RuntimeConfig { window: 64, watchdog: Some(watchdog), ..RuntimeConfig::default() },
        )
        .unwrap();
        // Saturate every window with quarantines: all-NaN outputs make
        // every window dirty, so the ladder must walk Normal →
        // Recalibrated → CpuFallback.
        system.set_fault_plan(Some(FaultPlan::new(1).with(FaultModel::NonFinite { rate: 1.0 })));
        let outcome = system.run(kernel.as_ref(), &test).unwrap();
        assert_eq!(outcome.degrade_stage, DegradeStage::CpuFallback);
        assert_eq!(outcome.fault_stats.recalibrations, 1);
        assert_eq!(outcome.fault_stats.fallbacks, 1);
        assert_eq!(outcome.fixes, test.len(), "fallback runs everything on the CPU");
        assert!(outcome.merged_outputs.iter().all(|v| v.is_finite()));
        assert!((outcome.output_error).abs() < 1e-12, "all-CPU stream is exact");
    }

    #[test]
    fn compensation_band_at_threshold_is_bitwise_reexecute_only() {
        // Satellite (4a) as a unit test: a band clamped down to the firing
        // threshold makes the compensable set empty (threshold < p <= band
        // has no solutions), so the whole run — outputs, fixes, threshold
        // trajectory — must be bit-identical to the re-execution-only path.
        let (kernel, mut plain, test) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        let reference = plain.run(kernel.as_ref(), &test).unwrap();

        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let threshold = plain.initial_threshold;
        let mut banded = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, threshold).unwrap(),
            RuntimeConfig {
                fix_policy: FixPolicy::Compensate { band: threshold * 1e-3 },
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        // The degenerate band clamps up to the threshold and stays there.
        assert_eq!(banded.tuner().compensation_band(), Some(threshold));
        let outcome = banded.run(kernel.as_ref(), &test).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&outcome.merged_outputs), bits(&reference.merged_outputs));
        assert_eq!(outcome.fixes, reference.fixes);
        assert_eq!(outcome.compensated, 0);
        assert_eq!(outcome.threshold_history, reference.threshold_history);
    }

    #[test]
    fn wide_band_trades_reexecutions_for_compensations() {
        let (kernel, mut plain, test) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        let reference = plain.run(kernel.as_ref(), &test).unwrap();
        let threshold = plain.initial_threshold;

        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let mut banded = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, threshold).unwrap(),
            RuntimeConfig {
                fix_policy: FixPolicy::Compensate { band: 1e6 },
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let outcome = banded.run(kernel.as_ref(), &test).unwrap();
        assert!(outcome.compensated > 0, "a wide band must compensate something");
        assert!(
            outcome.fixes < reference.fixes,
            "compensated rows must come out of the re-execution count: {} vs {}",
            outcome.fixes,
            reference.fixes
        );
        assert_eq!(outcome.activity.compensations, outcome.compensated);
        assert!(outcome.merged_outputs.iter().all(|v| v.is_finite()));
        // The unchecked accelerator's error is the bar compensation must
        // still clear: subtracting the predicted error must help, not hurt.
        let unchecked = crate::trainer::invocation_errors(kernel.as_ref(), &app.rumba_npu, &test)
            .unwrap()
            .iter()
            .sum::<f64>()
            / test.len() as f64;
        assert!(
            outcome.output_error < unchecked,
            "compensated {} vs unchecked {unchecked}",
            outcome.output_error
        );
    }

    #[test]
    fn exported_state_with_a_band_resumes_bit_for_bit() {
        // The satellite-4c shape as a unit test: snapshot mid-stream with a
        // nonzero compensation band and live compensation counters, restore
        // onto a fresh system, and the tail must match the uncut reference.
        let kernel = kernel_by_name("gaussian").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let config = RuntimeConfig {
            window: 64,
            fix_policy: FixPolicy::Compensate { band: 0.5 },
            ..RuntimeConfig::default()
        };
        let build = || {
            RumbaSystem::new(
                app.rumba_npu.clone(),
                CheckerUnit::new(Box::new(app.tree.clone())),
                Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, 0.02).unwrap(),
                config,
            )
            .unwrap()
        };
        let test = kernel.generate(Split::Test, 42);
        let out_dim = kernel.output_dim();
        let mut buf = vec![0.0; out_dim];

        let mut reference = build();
        reference.begin_stream();
        let mut expected = Vec::with_capacity(test.len() * out_dim);
        for i in 0..test.len() {
            reference.process(kernel.as_ref(), test.input(i), &mut buf).unwrap();
            expected.extend_from_slice(&buf);
        }
        reference.end_stream(kernel.as_ref());
        assert!(reference.stream_compensations() > 0, "band 0.5 must compensate");

        let cut = test.len() / 3;
        let mut head = build();
        head.begin_stream();
        let mut merged = Vec::with_capacity(test.len() * out_dim);
        for i in 0..cut {
            head.process(kernel.as_ref(), test.input(i), &mut buf).unwrap();
            merged.extend_from_slice(&buf);
        }
        let words = head.export_state();

        let mut tail = build();
        tail.begin_stream();
        tail.import_state(&words).unwrap();
        assert_eq!(tail.tuner().compensation_band(), head.tuner().compensation_band());
        for i in cut..test.len() {
            tail.process(kernel.as_ref(), test.input(i), &mut buf).unwrap();
            merged.extend_from_slice(&buf);
        }
        tail.end_stream(kernel.as_ref());

        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&merged), bits(&expected));
        assert_eq!(tail.stream_fixes(), reference.stream_fixes());
        assert_eq!(tail.stream_compensations(), reference.stream_compensations());
        assert_eq!(tail.tuner().threshold().to_bits(), reference.tuner().threshold().to_bits());
        assert_eq!(tail.tuner().compensation_band(), reference.tuner().compensation_band());
    }

    #[test]
    fn rejects_degenerate_compensation_band() {
        let kernel = kernel_by_name("gaussian").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        for band in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let bad = RumbaSystem::new(
                app.rumba_npu.clone(),
                CheckerUnit::new(Box::new(app.tree.clone())),
                Tuner::new(TuningMode::BestQuality, 0.1).unwrap(),
                RuntimeConfig {
                    fix_policy: FixPolicy::Compensate { band },
                    ..RuntimeConfig::default()
                },
            );
            assert!(bad.is_err(), "band {band} must be rejected");
        }
    }

    #[test]
    fn fault_off_run_is_bit_identical_with_hooks_armed_then_disarmed() {
        let (kernel, mut baseline, test) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        let clean = baseline.run(kernel.as_ref(), &test).unwrap();
        let (_, mut hooked, _) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        hooked.set_fault_plan(Some(rumba_faults::FaultPlan::new(9)));
        assert!(hooked.fault_plan.is_none(), "empty plan must normalize to off");
        let rerun = hooked.run(kernel.as_ref(), &test).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&clean.merged_outputs), bits(&rerun.merged_outputs));
        assert_eq!(clean.fixes, rerun.fixes);
        assert!(!rerun.fault_stats.any());
    }

    #[test]
    fn pressure_widening_saturates_at_the_calibrated_ceiling() {
        use crate::cache::TrainedModelCache;
        use crate::zoo::train_zoo_with_cache;

        let (kernel, mut system, _) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let zoo = train_zoo_with_cache(
            kernel.as_ref(),
            &app,
            &OfflineConfig::default(),
            2,
            &TrainedModelCache::disabled(),
        )
        .unwrap();
        system.attach_zoo(zoo, 0.05).unwrap();
        let bar = |s: &RumbaSystem| s.routing_bar().unwrap();
        assert_eq!(bar(&system), 0.05);

        // Unbounded by default: each rung doubles the bar.
        system.set_zoo_pressure(MAX_ZOO_PRESSURE);
        assert_eq!(bar(&system), 0.05 * 32.0);

        // The ceiling caps the widening, not the base bar.
        system.set_zoo_pressure_ceiling(0.2);
        assert_eq!(bar(&system), 0.2);
        system.set_zoo_pressure(1);
        assert_eq!(bar(&system), 0.1);
        system.set_zoo_pressure(0);
        assert_eq!(bar(&system), 0.05);

        // A ceiling below the base budget clamps up to it (it would
        // invert the routing semantics), and degenerate ceilings are
        // ignored outright.
        system.set_zoo_pressure_ceiling(0.01);
        system.set_zoo_pressure(MAX_ZOO_PRESSURE);
        assert_eq!(bar(&system), 0.05);
        system.set_zoo_pressure_ceiling(f64::NAN);
        system.set_zoo_pressure_ceiling(f64::INFINITY);
        system.set_zoo_pressure_ceiling(-1.0);
        assert_eq!(bar(&system), 0.05, "degenerate ceilings must leave the cap untouched");
    }
}
