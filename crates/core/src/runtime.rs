//! The online Rumba system (Figure 4's execution subsystem): accelerator +
//! checker + recovery queue + output merger + online tuner, processing an
//! invocation stream end to end.

use rumba_accel::queue::{Fifo, OrderedF64, RecoveryBit};
use rumba_accel::{CheckerUnit, Npu, Placement};
use rumba_apps::Kernel;
use rumba_energy::SchemeActivity;
use rumba_nn::{Matrix, NnDataset, Scratch};

use crate::pipeline::{simulate, PipelineRun};
use crate::tuner::{Tuner, WindowStats};
use crate::{Result, RumbaError};

/// Configuration of the online system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Iterations per tuning window (one "accelerator invocation" in the
    /// paper's sense — e.g. one image's worth of pixels).
    pub window: usize,
    /// Recovery-queue capacity in iterations.
    pub recovery_queue_capacity: usize,
    /// Detector placement (§3.5). Output-based checkers always behave as
    /// serialized-after-accelerator regardless of this setting.
    pub placement: Placement,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self { window: 256, recovery_queue_capacity: 64, placement: Placement::Parallel }
    }
}

/// Everything one online run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Final merged outputs (approximate, with fixed iterations replaced by
    /// exact re-computations), flat row-major.
    pub merged_outputs: Vec<f64>,
    /// Which iterations fired (and, budget permitting, were re-executed).
    pub fired: Vec<bool>,
    /// Number of iterations actually re-executed.
    pub fixes: usize,
    /// Measured output error of the merged stream against the exact
    /// targets.
    pub output_error: f64,
    /// Measured error of every merged invocation (telemetry for quality-
    /// tracking plots; its mean is `output_error`).
    pub invocation_errors: Vec<f64>,
    /// Activity summary for the energy model.
    pub activity: SchemeActivity,
    /// Timing of the kernel phase under the Figure-8 overlap.
    pub pipeline: PipelineRun,
    /// Threshold after each window (tuner telemetry).
    pub threshold_history: Vec<f64>,
}

/// What [`RumbaSystem::process`] did for one streamed invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOutcome {
    /// Whether the check fired and the iteration was re-executed exactly.
    pub fired: bool,
    /// The checker's predicted error for this invocation.
    pub predicted_error: f64,
}

impl RunOutcome {
    /// Mean measured output error per tuning window of length `window` —
    /// the quality trace a TOQ deployment would chart over time.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn window_errors(&self, window: usize) -> Vec<f64> {
        assert!(window > 0, "window must be nonzero");
        self.invocation_errors
            .chunks(window)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect()
    }
}

/// The online system: drives one kernel's invocation stream through
/// detection, recovery, merging, and tuning.
#[derive(Debug)]
pub struct RumbaSystem {
    npu: Npu,
    checker: CheckerUnit,
    tuner: Tuner,
    config: RuntimeConfig,
    // Streaming window state (reset by `begin_stream`).
    window_fired: usize,
    window_suppressed: usize,
    window_pred_sum: f64,
    window_len: usize,
    window_queue_depth: u64,
    windows_flushed: u64,
    stream_fixes: usize,
    stream_invocations: usize,
}

impl RumbaSystem {
    /// Assembles a system.
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::InvalidConfig`] for a zero window or queue
    /// capacity.
    pub fn new(
        npu: Npu,
        checker: CheckerUnit,
        tuner: Tuner,
        config: RuntimeConfig,
    ) -> Result<Self> {
        if config.window == 0 {
            return Err(RumbaError::InvalidConfig { name: "window", value: "0".into() });
        }
        if config.recovery_queue_capacity == 0 {
            return Err(RumbaError::InvalidConfig {
                name: "recovery_queue_capacity",
                value: "0".into(),
            });
        }
        Ok(Self {
            npu,
            checker,
            tuner,
            config,
            window_fired: 0,
            window_suppressed: 0,
            window_pred_sum: 0.0,
            window_len: 0,
            window_queue_depth: 0,
            windows_flushed: 0,
            stream_fixes: 0,
            stream_invocations: 0,
        })
    }

    /// The tuner (for inspecting threshold history after a run).
    #[must_use]
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    /// Resets streaming state for a fresh invocation stream (clears the
    /// checker's online history and the tuning-window counters).
    pub fn begin_stream(&mut self) {
        self.checker.reset();
        self.window_fired = 0;
        self.window_suppressed = 0;
        self.window_pred_sum = 0.0;
        self.window_len = 0;
        self.window_queue_depth = 0;
        self.windows_flushed = 0;
        self.stream_fixes = 0;
        self.stream_invocations = 0;
    }

    /// Processes one invocation in streaming mode: runs the accelerator and
    /// the checker, re-executes exactly on a fired check, writes the merged
    /// result into `output`, and advances the tuning window.
    ///
    /// Call [`RumbaSystem::begin_stream`] before the first invocation of a
    /// stream. Use this interface to slot the managed accelerator into a
    /// whole application (see `rumba_apps::pipelines`).
    ///
    /// # Errors
    ///
    /// Propagates accelerator dimension errors.
    ///
    /// # Panics
    ///
    /// Panics if `output` is narrower than the kernel's output width.
    pub fn process(
        &mut self,
        kernel: &dyn Kernel,
        input: &[f64],
        output: &mut [f64],
    ) -> Result<StreamOutcome> {
        let result = self.npu.invoke(input)?;
        self.process_result(kernel, input, &result.outputs, output)
    }

    /// The stateful half of [`RumbaSystem::process`], taking an already-
    /// computed approximate output row. [`RumbaSystem::run`] precomputes
    /// the pure accelerator outputs in one batched invocation and replays
    /// this decision path serially over the rows, which keeps the
    /// checker/tuner state evolution — and therefore the output —
    /// identical to streaming.
    fn process_result(
        &mut self,
        kernel: &dyn Kernel,
        input: &[f64],
        approx_output: &[f64],
        output: &mut [f64],
    ) -> Result<StreamOutcome> {
        let cpu_capacity_per_window = self.cpu_capacity_per_window(kernel);
        let predicted = self.checker.predict(input, approx_output);
        let cap = self.tuner.reexec_cap(cpu_capacity_per_window);
        let budget_left = cap.is_none_or(|c| self.window_fired < c);
        let wants_fire = predicted > self.tuner.threshold();
        let fired = wants_fire && budget_left;

        if fired {
            kernel.compute(input, output);
            self.window_fired += 1;
            self.stream_fixes += 1;
        } else {
            if wants_fire {
                // Check fired but the re-execution budget for this window
                // is spent (§3.4's hard cap) — telemetry only.
                self.window_suppressed += 1;
            }
            output[..approx_output.len()].copy_from_slice(approx_output);
            self.window_pred_sum += predicted;
        }
        self.window_len += 1;
        self.stream_invocations += 1;

        if self.window_len == self.config.window {
            self.flush_window(cpu_capacity_per_window);
        }
        Ok(StreamOutcome { fired, predicted_error: predicted })
    }

    /// Total re-executions since [`RumbaSystem::begin_stream`].
    #[must_use]
    pub fn stream_fixes(&self) -> usize {
        self.stream_fixes
    }

    /// Total invocations since [`RumbaSystem::begin_stream`].
    #[must_use]
    pub fn stream_invocations(&self) -> usize {
        self.stream_invocations
    }

    fn cpu_capacity_per_window(&self, kernel: &dyn Kernel) -> usize {
        ((self.config.window as f64 * self.npu.cycles_per_invocation() as f64)
            / kernel.cpu_cycles())
        .floor() as usize
    }

    /// Folds the recovery-queue depth observed after an enqueue into the
    /// current window's telemetry high-water mark.
    fn note_queue_depth(&mut self, depth: usize) {
        self.window_queue_depth = self.window_queue_depth.max(depth as u64);
    }

    /// Tuning windows completed since [`RumbaSystem::begin_stream`].
    #[must_use]
    pub fn windows_flushed(&self) -> u64 {
        self.windows_flushed
    }

    fn flush_window(&mut self, cpu_capacity: usize) {
        if self.window_len == 0 {
            return;
        }
        // Window quality estimate: fixed iterations are exact, so the
        // window's predicted output error is the unfixed prediction mass
        // over the whole window.
        let mean_unfixed_pred = self.window_pred_sum / self.window_len as f64;
        self.tuner.observe_window(WindowStats {
            window_len: self.window_len,
            fired: self.window_fired,
            mean_unfixed_predicted_error: mean_unfixed_pred,
            cpu_capacity,
        });
        if rumba_obs::enabled() {
            // The threshold reported is the post-adjustment one, matching
            // the entries `Tuner::history` records per window.
            rumba_obs::global_sink().emit(&rumba_obs::Event::WindowEnd {
                window: self.windows_flushed,
                threshold: self.tuner.threshold(),
                fired: self.window_fired as u64,
                suppressed_by_budget: self.window_suppressed as u64,
                mean_unfixed_pred,
                cpu_capacity: cpu_capacity as u64,
                queue_depth_max: self.window_queue_depth,
            });
        }
        self.windows_flushed += 1;
        self.window_fired = 0;
        self.window_suppressed = 0;
        self.window_pred_sum = 0.0;
        self.window_len = 0;
        self.window_queue_depth = 0;
    }

    /// Processes every invocation in `data`, returning the merged outputs
    /// and full telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::EmptyWorkload`] for an empty dataset and
    /// propagates accelerator dimension errors.
    pub fn run(&mut self, kernel: &dyn Kernel, data: &NnDataset) -> Result<RunOutcome> {
        if data.is_empty() {
            return Err(RumbaError::EmptyWorkload);
        }
        let _span = rumba_obs::span("core.run");
        let n = data.len();
        let out_dim = self.npu.output_dim();
        let metric = kernel.metric();
        let cpu_cycles = kernel.cpu_cycles();
        let npu_cycles = self.npu.cycles_per_invocation() as f64;
        let cpu_capacity_per_window = self.cpu_capacity_per_window(kernel);

        self.begin_stream();
        // The accelerator is pure, so its outputs for the whole stream are
        // precomputed as one cache-blocked batched invocation (rows fan
        // out over the deterministic pool); the stateful decision loop
        // below (checker history, tuner, recovery queue) then replays
        // serially over the rows, which keeps every decision — and the
        // merged stream — bit-identical to streaming the invocations one
        // at a time.
        let mut scratch = Scratch::new();
        let mut approx = Matrix::default();
        self.npu.invoke_batch(data.inputs_view(), &mut scratch, &mut approx)?;

        let mut recovery_queue: Fifo<RecoveryBit> = Fifo::new(self.config.recovery_queue_capacity);
        let mut merged = Vec::with_capacity(n * out_dim);
        let mut fired = vec![false; n];
        let mut fixes = 0usize;
        let mut out_buf = vec![0.0; out_dim];

        for (i, fired_flag) in fired.iter_mut().enumerate() {
            let outcome =
                self.process_result(kernel, data.input(i), approx.row(i), &mut out_buf)?;
            if outcome.fired {
                // Model the recovery queue the CPU drains: the recovery bit
                // flows through the bounded FIFO (timing cost is accounted
                // by the pipeline simulation below).
                let bit = RecoveryBit {
                    iteration: i,
                    predicted_error: OrderedF64::new(outcome.predicted_error),
                };
                if recovery_queue.push(bit).is_err() {
                    // Queue full: drain one (CPU consumes in FIFO order)
                    // and retry — models back-pressure without deadlock.
                    let _ = recovery_queue.pop();
                    let _ = recovery_queue.push(bit);
                }
                self.note_queue_depth(recovery_queue.len());
                let _ = recovery_queue.pop().expect("just pushed");
                *fired_flag = true;
                fixes += 1;
            }
            merged.extend_from_slice(&out_buf);
        }
        // Flush the final partial window.
        self.flush_window(cpu_capacity_per_window);

        // Measured quality of the merged stream (pure per invocation, so
        // the scoring also fans out).
        let merged_ref = &merged;
        let invocation_errors: Vec<f64> = rumba_parallel::par_map_range(n, |i| {
            metric.invocation_error(data.target(i), &merged_ref[i * out_dim..(i + 1) * out_dim])
        });
        let output_error = invocation_errors.iter().sum::<f64>() / n as f64;

        let serial_detector_cycles = match (self.config.placement, self.checker.is_input_based()) {
            (Placement::BeforeAccelerator, true) => {
                n as f64 * self.checker.cycles_per_prediction() as f64
            }
            _ => 0.0,
        };
        let pipeline = simulate(n, npu_cycles, cpu_cycles, &fired);
        if rumba_obs::enabled() {
            rumba_obs::global_sink().emit(&rumba_obs::Event::RunSummary {
                kernel: kernel.name().to_owned(),
                invocations: n as u64,
                fixes: fixes as u64,
                output_error,
                windows: self.windows_flushed,
                cpu_utilization: pipeline.cpu_utilization,
                final_threshold: self.tuner.threshold(),
            });
        }
        let activity = SchemeActivity {
            accelerator_invocations: n,
            npu_cycles_per_invocation: self.npu.cycles_per_invocation(),
            io_words_per_invocation: self.npu.input_dim() + self.npu.output_dim(),
            checker_invocations: n,
            checker_cost: self.checker.cost(),
            reexecutions: fixes,
            serial_detector_cycles,
        };

        Ok(RunOutcome {
            merged_outputs: merged,
            fired,
            fixes,
            output_error,
            invocation_errors,
            activity,
            pipeline,
            threshold_history: self.tuner.history().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_app, OfflineConfig};
    use crate::tuner::{calibrate_threshold, TuningMode};
    use rumba_apps::{kernel_by_name, Split};
    use rumba_predict::ErrorEstimator;

    fn build_system(mode: TuningMode) -> (Box<dyn Kernel>, RumbaSystem, NnDataset) {
        let kernel = kernel_by_name("gaussian").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let train = kernel.generate(Split::Train, 42);
        // One probe serves the whole sweep: the tree checker is stateless,
        // and cloning per row would rebuild the boxed checker each time.
        let mut probe = app.tree.clone();
        let predicted: Vec<f64> =
            (0..train.len()).map(|i| probe.estimate(train.input(i), &[])).collect();
        let threshold = calibrate_threshold(&predicted, &app.train_errors, 0.02);
        let system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(mode, threshold).unwrap(),
            RuntimeConfig::default(),
        )
        .unwrap();
        let test = kernel.generate(Split::Test, 42);
        (kernel, system, test)
    }

    #[test]
    fn managed_run_beats_unchecked_error() {
        let (kernel, mut system, test) = build_system(TuningMode::TargetQuality { toq: 0.98 });
        let outcome = system.run(kernel.as_ref(), &test).unwrap();

        // Unchecked error of the same accelerator.
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let unchecked = crate::trainer::invocation_errors(kernel.as_ref(), &app.rumba_npu, &test)
            .unwrap()
            .iter()
            .sum::<f64>()
            / test.len() as f64;

        assert!(outcome.fixes > 0, "some checks must fire");
        assert!(
            outcome.output_error < unchecked,
            "managed {} vs unchecked {unchecked}",
            outcome.output_error
        );
    }

    #[test]
    fn merged_outputs_are_exact_where_fired() {
        let (kernel, mut system, test) = build_system(TuningMode::TargetQuality { toq: 0.98 });
        let outcome = system.run(kernel.as_ref(), &test).unwrap();
        let out_dim = kernel.output_dim();
        for (i, &f) in outcome.fired.iter().enumerate() {
            if f {
                let merged = &outcome.merged_outputs[i * out_dim..(i + 1) * out_dim];
                assert_eq!(merged, test.target(i), "iteration {i} must be exact");
            }
        }
    }

    #[test]
    fn energy_mode_respects_budget_per_window() {
        let (kernel, _, test) = build_system(TuningMode::BestQuality);
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let budget = 5usize;
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(TuningMode::EnergyBudget { budget }, 1e-6).unwrap(),
            RuntimeConfig { window: 100, ..RuntimeConfig::default() },
        )
        .unwrap();
        let outcome = system.run(kernel.as_ref(), &test).unwrap();
        let windows = test.len().div_ceil(100);
        assert!(
            outcome.fixes <= budget * windows,
            "fixes {} exceed budget {budget} x {windows}",
            outcome.fixes
        );
    }

    #[test]
    fn rejects_degenerate_config() {
        let kernel = kernel_by_name("gaussian").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let bad = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(TuningMode::BestQuality, 0.1).unwrap(),
            RuntimeConfig { window: 0, ..RuntimeConfig::default() },
        );
        assert!(bad.is_err());
    }

    #[test]
    fn window_errors_average_back_to_output_error() {
        let (kernel, mut system, test) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        let outcome = system.run(kernel.as_ref(), &test).unwrap();
        assert_eq!(outcome.invocation_errors.len(), test.len());
        let windows = outcome.window_errors(256);
        assert_eq!(windows.len(), test.len().div_ceil(256));
        // Weighted mean of window means equals the overall error.
        let weighted: f64 = outcome
            .invocation_errors
            .chunks(256)
            .zip(&windows)
            .map(|(c, &w)| w * c.len() as f64)
            .sum::<f64>()
            / test.len() as f64;
        assert!((weighted - outcome.output_error).abs() < 1e-12);
    }

    #[test]
    fn streaming_matches_batch_run() {
        // `run` is built on `process`; an external streaming loop must
        // reproduce it exactly.
        let (kernel, mut batch_system, test) =
            build_system(TuningMode::TargetQuality { toq: 0.95 });
        let batch = batch_system.run(kernel.as_ref(), &test).unwrap();

        let (_, mut stream_system, _) = build_system(TuningMode::TargetQuality { toq: 0.95 });
        stream_system.begin_stream();
        let out_dim = kernel.output_dim();
        let mut merged = Vec::with_capacity(test.len() * out_dim);
        let mut buf = vec![0.0; out_dim];
        let mut fixes = 0usize;
        for i in 0..test.len() {
            let outcome = stream_system.process(kernel.as_ref(), test.input(i), &mut buf).unwrap();
            if outcome.fired {
                fixes += 1;
            }
            merged.extend_from_slice(&buf);
        }
        assert_eq!(merged, batch.merged_outputs);
        assert_eq!(fixes, batch.fixes);
        assert_eq!(stream_system.stream_fixes(), batch.fixes);
    }

    #[test]
    fn empty_workload_rejected() {
        let (kernel, mut system, _) = build_system(TuningMode::BestQuality);
        let empty = NnDataset::new(kernel.input_dim(), kernel.output_dim()).unwrap();
        assert!(matches!(system.run(kernel.as_ref(), &empty), Err(RumbaError::EmptyWorkload)));
    }
}
