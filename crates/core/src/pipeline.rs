//! The Figure-8 execution pipeline: the accelerator streams iterations
//! while the CPU re-executes flagged ones in parallel, fed by the recovery
//! queue. This model produces total time, CPU utilization, and the
//! Figure-18 activity trace.

/// One iteration's worth of trace (Figure 18's two aligned plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Iteration index (x-axis of Figure 18).
    pub iteration: usize,
    /// Whether the detector fired for this iteration.
    pub fired: bool,
    /// Cycle at which the accelerator finished this iteration.
    pub accel_end: f64,
    /// Whether the CPU was busy re-executing at that cycle.
    pub cpu_busy: bool,
}

/// Result of simulating one accelerated region invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRun {
    /// Cycles until both the accelerator stream and all re-executions are
    /// done.
    pub total_cycles: f64,
    /// Cycles the accelerator was busy.
    pub accel_busy_cycles: f64,
    /// Cycles the CPU spent re-executing.
    pub cpu_busy_cycles: f64,
    /// CPU busy time as a fraction of the total kernel phase.
    pub cpu_utilization: f64,
    /// Cycles by which recovery outlasted the accelerator stream (0 when
    /// the CPU keeps up — the "same speedup as the NPU" condition).
    pub overrun_cycles: f64,
    /// Per-iteration trace.
    pub trace: Vec<TraceSample>,
}

impl PipelineRun {
    /// Whether the CPU kept up with the accelerator (no overrun).
    #[must_use]
    pub fn cpu_kept_up(&self) -> bool {
        self.overrun_cycles <= 0.0
    }
}

/// Simulates the pipelined overlap of Figure 8.
///
/// The accelerator completes iteration `i` at `(i+1) * npu_cycles`. A fired
/// iteration enters the recovery queue at that moment; the CPU serves the
/// queue FIFO, each re-execution taking `cpu_cycles`. The run ends when
/// both streams drain.
///
/// # Panics
///
/// Panics if `fired.len() != n` or either cycle cost is nonpositive.
#[must_use]
pub fn simulate(n: usize, npu_cycles: f64, cpu_cycles: f64, fired: &[bool]) -> PipelineRun {
    assert_eq!(fired.len(), n, "one fired flag per iteration");
    assert!(npu_cycles > 0.0 && cpu_cycles > 0.0, "cycle costs must be positive");

    let accel_busy_cycles = n as f64 * npu_cycles;
    let mut cpu_free = 0.0_f64;
    let mut cpu_busy_cycles = 0.0;
    let mut intervals: Vec<(f64, f64)> = Vec::new();

    for (i, &f) in fired.iter().enumerate() {
        if f {
            let ready = (i + 1) as f64 * npu_cycles;
            let start = cpu_free.max(ready);
            cpu_free = start + cpu_cycles;
            cpu_busy_cycles += cpu_cycles;
            intervals.push((start, cpu_free));
        }
    }

    let total_cycles = accel_busy_cycles.max(cpu_free);
    let overrun_cycles = (cpu_free - accel_busy_cycles).max(0.0);

    // Busy lookup per accelerator completion point, via a merged sweep.
    let mut trace = Vec::with_capacity(n);
    let mut interval_idx = 0usize;
    for (i, &f) in fired.iter().enumerate() {
        let t = (i + 1) as f64 * npu_cycles;
        while interval_idx < intervals.len() && intervals[interval_idx].1 <= t {
            interval_idx += 1;
        }
        let cpu_busy = interval_idx < intervals.len()
            && intervals[interval_idx].0 <= t
            && t < intervals[interval_idx].1;
        trace.push(TraceSample { iteration: i, fired: f, accel_end: t, cpu_busy });
    }

    let cpu_utilization = if total_cycles > 0.0 { cpu_busy_cycles / total_cycles } else { 0.0 };
    if rumba_obs::enabled() {
        let m = rumba_obs::metrics();
        m.set_gauge("pipeline.cpu_utilization", cpu_utilization);
        m.set_gauge("pipeline.total_cycles", total_cycles);
        m.set_gauge("pipeline.overrun_cycles", overrun_cycles);
    }
    PipelineRun {
        total_cycles,
        accel_busy_cycles,
        cpu_busy_cycles,
        cpu_utilization,
        overrun_cycles,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_fires_means_accelerator_bound() {
        let run = simulate(10, 50.0, 300.0, &[false; 10]);
        assert_eq!(run.total_cycles, 500.0);
        assert_eq!(run.cpu_busy_cycles, 0.0);
        assert!(run.cpu_kept_up());
        assert!(run.trace.iter().all(|t| !t.cpu_busy));
    }

    #[test]
    fn light_recovery_hides_behind_the_accelerator() {
        // 1 fix of 300 cycles over a 10 * 50 = 500-cycle stream, fired at
        // iteration 0 → CPU busy [50, 350) ⊂ [0, 500).
        let mut fired = [false; 10];
        fired[0] = true;
        let run = simulate(10, 50.0, 300.0, &fired);
        assert_eq!(run.total_cycles, 500.0);
        assert!(run.cpu_kept_up());
        // Iterations completing between cycles 50 and 350 see a busy CPU.
        assert!(run.trace[1].cpu_busy);
        assert!(run.trace[5].cpu_busy);
        assert!(!run.trace[7].cpu_busy);
    }

    #[test]
    fn heavy_recovery_overruns() {
        let fired = [true; 10];
        let run = simulate(10, 50.0, 300.0, &fired);
        // CPU: first start at 50, then 10 * 300 back-to-back.
        assert_eq!(run.total_cycles, 50.0 + 3000.0);
        assert!(!run.cpu_kept_up());
        assert_eq!(run.overrun_cycles, 2550.0);
    }

    #[test]
    fn figure8_example_interleaving() {
        // The paper's example: checks fire for iterations 0, 2, 5, 6 with a
        // 2x accelerator gain; the CPU keeps up.
        let mut fired = [false; 8];
        for i in [0usize, 2, 5, 6] {
            fired[i] = true;
        }
        let run = simulate(8, 100.0, 200.0, &fired);
        // 4 fixes of 200 cycles inside an 800-cycle stream: the CPU is
        // exactly saturated; only the pipeline-fill delay of the first fix
        // (it can't start before iteration 0 completes at cycle 100) spills
        // past the accelerator stream.
        assert_eq!(run.cpu_busy_cycles, 800.0);
        assert!(run.overrun_cycles <= 200.0, "overrun {}", run.overrun_cycles);
        assert!(run.trace[3].cpu_busy, "CPU busy mid-stream");
    }

    #[test]
    #[should_panic(expected = "one fired flag")]
    fn fired_length_checked() {
        let _ = simulate(3, 10.0, 10.0, &[true]);
    }

    proptest! {
        #[test]
        fn total_bounds_hold(
            n in 1usize..200,
            npu in 1.0f64..100.0,
            cpu in 1.0f64..500.0,
            seed in 0u64..100,
        ) {
            let fired: Vec<bool> = (0..n).map(|i| (i as u64 * 2654435761 + seed).is_multiple_of(3)).collect();
            let fixes = fired.iter().filter(|&&f| f).count() as f64;
            let run = simulate(n, npu, cpu, &fired);
            let accel = n as f64 * npu;
            // Lower bound: both streams must fit.
            prop_assert!(run.total_cycles + 1e-9 >= accel.max(fixes * cpu));
            // Upper bound: worst case is fully serialized after the first
            // fire becomes ready.
            prop_assert!(run.total_cycles <= accel + fixes * cpu + 1e-9);
            // Utilization is a fraction.
            prop_assert!((0.0..=1.0 + 1e-9).contains(&run.cpu_utilization));
        }
    }
}
