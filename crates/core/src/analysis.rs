//! The §5 evaluation computations: error CDFs, error-vs-fixed curves,
//! false positives, fix counts, and large-error coverage.
//!
//! All functions are pure over slices so they are trivially testable; the
//! harness binaries in `rumba-bench` wire them to [`crate::context::AppContext`].

use crate::scheme::SchemeScores;

/// One point of an error-vs-fixed curve (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Fraction of output elements fixed, in `[0, 1]`.
    pub fixed_fraction: f64,
    /// Whole-output error (in percent) after those fixes.
    pub output_error_percent: f64,
}

/// Output error (mean invocation error) after fixing a set of invocations.
///
/// # Panics
///
/// Panics if any fixed index is out of bounds.
#[must_use]
pub fn output_error_after_fixes(true_errors: &[f64], fixed: &[usize]) -> f64 {
    if true_errors.is_empty() {
        return 0.0;
    }
    let fixed_mass: f64 = fixed.iter().map(|&i| true_errors[i]).sum();
    let total: f64 = true_errors.iter().sum();
    // Guard against a float-cancellation -0.0 when everything is fixed.
    ((total - fixed_mass) / true_errors.len() as f64).max(0.0)
}

/// The Figure-10 curve for one scheme: output error at each requested fix
/// fraction.
#[must_use]
pub fn error_vs_fixed_curve(
    scores: &SchemeScores,
    true_errors: &[f64],
    fractions: &[f64],
) -> Vec<CurvePoint> {
    let n = true_errors.len();
    // Each grid point is independent and pure, so the sweep fans out over
    // the deterministic pool with output identical to the serial map.
    rumba_parallel::par_map_indexed(fractions, |_i, &f| {
        let k = ((f * n as f64).round() as usize).min(n);
        let err = output_error_after_fixes(true_errors, scores.top_k(k));
        CurvePoint { fixed_fraction: f, output_error_percent: err * 100.0 }
    })
}

/// Empirical CDF of element errors (Figure 1): for each of `points`
/// evenly spaced error levels up to the maximum, the fraction of elements
/// at or below that level.
#[must_use]
pub fn error_cdf(errors: &[f64], points: usize) -> Vec<(f64, f64)> {
    if errors.is_empty() || points == 0 {
        return Vec::new();
    }
    let mut sorted = errors.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
    let max = *sorted.last().expect("nonempty");
    let n = sorted.len() as f64;
    let sorted = &sorted;
    rumba_parallel::par_map_range(points + 1, |k| {
        let level = max * k as f64 / points as f64;
        let below = sorted.partition_point(|&e| e <= level) as f64;
        (level, below / n)
    })
}

/// Figure 11's false positives, as a fraction of *all* output elements.
///
/// "Actually large" is defined relative to the operating point: the top-
/// `k_ideal` true errors (the set the oracle would fix to reach the target
/// quality). A scheme's false positives are the elements it fixes that are
/// not in that set; Ideal therefore scores exactly zero.
#[must_use]
pub fn false_positive_fraction(
    scores: &SchemeScores,
    true_errors: &[f64],
    k_scheme: usize,
    k_ideal: usize,
) -> f64 {
    let n = true_errors.len();
    if n == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        true_errors[b].partial_cmp(&true_errors[a]).expect("finite").then(a.cmp(&b))
    });
    let large: std::collections::HashSet<usize> = order[..k_ideal.min(n)].iter().copied().collect();
    let fp = scores.top_k(k_scheme).iter().filter(|i| !large.contains(i)).count();
    fp as f64 / n as f64
}

/// Figure 13's relative coverage of large errors.
///
/// Coverage ratio of a scheme = (number of fixed elements whose true error
/// exceeds `large_threshold`) / (total fixes). The returned value is that
/// ratio normalized by the Ideal scheme's ratio at its own operating point
/// `k_ideal`, in percent.
#[must_use]
pub fn relative_coverage(
    scores: &SchemeScores,
    true_errors: &[f64],
    k_scheme: usize,
    k_ideal: usize,
    large_threshold: f64,
) -> f64 {
    let covered = |fixed: &[usize], k: usize| -> f64 {
        if k == 0 {
            return 0.0;
        }
        let hits = fixed.iter().take(k).filter(|&&i| true_errors[i] > large_threshold).count();
        hits as f64 / k as f64
    };

    let n = true_errors.len();
    let mut ideal_order: Vec<usize> = (0..n).collect();
    ideal_order.sort_by(|&a, &b| {
        true_errors[b].partial_cmp(&true_errors[a]).expect("finite").then(a.cmp(&b))
    });

    let ideal_ratio = covered(&ideal_order, k_ideal.min(n));
    if ideal_ratio == 0.0 {
        return 0.0;
    }
    let scheme_ratio = covered(scores.fix_order(), k_scheme.min(n));
    scheme_ratio / ideal_ratio * 100.0
}

/// Mean absolute distance between predicted and true errors — the §3.2
/// statistic the paper uses to conclude EEP beats EVP (average distances 1
/// vs 2.5 on the Gaussian example).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn mean_estimate_distance(predicted: &[f64], true_errors: &[f64]) -> f64 {
    assert_eq!(predicted.len(), true_errors.len(), "parallel slices required");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted.iter().zip(true_errors).map(|(p, t)| (p - t).abs()).sum::<f64>()
        / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{SchemeKind, SchemeScores};
    use rumba_predict::CheckerCost;

    fn scores_of(v: Vec<f64>) -> SchemeScores {
        SchemeScores::new(SchemeKind::Ideal, v, CheckerCost::free())
    }

    #[test]
    fn output_error_after_fixes_removes_mass() {
        let errors = [0.4, 0.0, 0.2, 0.2];
        assert!((output_error_after_fixes(&errors, &[]) - 0.2).abs() < 1e-12);
        assert!((output_error_after_fixes(&errors, &[0]) - 0.1).abs() < 1e-12);
        assert_eq!(output_error_after_fixes(&errors, &[0, 1, 2, 3]), 0.0);
        assert_eq!(output_error_after_fixes(&[], &[]), 0.0);
    }

    #[test]
    fn curve_starts_at_unchecked_and_ends_at_zero() {
        let errors = vec![0.5, 0.1, 0.3, 0.1];
        let scores = scores_of(errors.clone());
        let curve = error_vs_fixed_curve(&scores, &errors, &[0.0, 0.5, 1.0]);
        assert!((curve[0].output_error_percent - 25.0).abs() < 1e-9);
        assert!(curve[2].output_error_percent.abs() < 1e-9);
        assert!(curve[1].output_error_percent < curve[0].output_error_percent);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let errors = vec![0.1, 0.2, 0.05, 0.9, 0.3];
        let cdf = error_cdf(&errors, 10);
        assert_eq!(cdf.len(), 11);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_of_empty_is_empty() {
        assert!(error_cdf(&[], 10).is_empty());
    }

    #[test]
    fn ideal_has_zero_false_positives() {
        let errors = vec![0.5, 0.1, 0.3, 0.2];
        let ideal = scores_of(errors.clone());
        assert_eq!(false_positive_fraction(&ideal, &errors, 2, 2), 0.0);
    }

    #[test]
    fn bad_scheme_has_false_positives() {
        let errors = vec![0.5, 0.0, 0.4, 0.0];
        // Scores inverted: fixes the *smallest* errors first.
        let bad = scores_of(vec![0.0, 0.5, 0.1, 0.4]);
        let fp = false_positive_fraction(&bad, &errors, 2, 2);
        assert!((fp - 0.5).abs() < 1e-12, "both fixes wrong over 4 elements");
    }

    #[test]
    fn ideal_coverage_is_100_percent() {
        let errors = vec![0.5, 0.1, 0.3, 0.05, 0.25];
        let ideal = scores_of(errors.clone());
        let c = relative_coverage(&ideal, &errors, 3, 3, 0.2);
        assert!((c - 100.0).abs() < 1e-9);
    }

    #[test]
    fn anti_correlated_scheme_covers_less() {
        let errors = vec![0.5, 0.0, 0.4, 0.0, 0.3, 0.0];
        let bad = scores_of(vec![0.0, 0.9, 0.1, 0.8, 0.2, 0.7]);
        let c = relative_coverage(&bad, &errors, 3, 3, 0.2);
        assert!(c < 50.0, "coverage {c}");
    }

    #[test]
    fn estimate_distance_basics() {
        assert_eq!(mean_estimate_distance(&[], &[]), 0.0);
        let d = mean_estimate_distance(&[0.1, 0.5], &[0.2, 0.2]);
        assert!((d - 0.2).abs() < 1e-12);
    }
}
