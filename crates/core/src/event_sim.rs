//! Event-driven simulation of the Figure-4 execution subsystem.
//!
//! The analytic [`crate::pipeline`] model assumes the recovery queue never
//! back-pressures the accelerator. This module checks that assumption with
//! a discrete-event simulation of the full datapath — input queue,
//! accelerator, checker, output queue, recovery queue, and the CPU's
//! recovery loop — in which every queue is finite and a full queue stalls
//! its producer. `ablate_queue_capacity` uses it to size the recovery
//! queue; the test suite uses it to validate the analytic model (the two
//! agree exactly when queues are deep enough).

use rumba_accel::queue::Fifo;
use rumba_faults::FaultPlan;

/// Finite capacities of the Figure-4 queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Input data queue (CPU → accelerator), in invocations.
    pub input_capacity: usize,
    /// Output data queue (accelerator → CPU), in invocations.
    pub output_capacity: usize,
    /// Recovery queue (checker → CPU), in recovery bits.
    pub recovery_capacity: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self { input_capacity: 16, output_capacity: 16, recovery_capacity: 64 }
    }
}

/// Result of one event-driven run.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedRun {
    /// Cycle at which everything (accelerator stream, output drain, and all
    /// re-executions) completed.
    pub total_cycles: f64,
    /// Cycles the accelerator spent stalled because the recovery queue was
    /// full when one of its iterations fired.
    pub accel_stall_cycles: f64,
    /// Cycles the CPU spent re-executing.
    pub cpu_busy_cycles: f64,
    /// Highest recovery-queue occupancy observed.
    pub recovery_high_water: usize,
    /// Number of iterations that were re-executed.
    pub fixes: usize,
}

impl DetailedRun {
    /// Whether recovery back-pressure ever slowed the accelerator.
    #[must_use]
    pub fn back_pressured(&self) -> bool {
        self.accel_stall_cycles > 0.0
    }
}

/// Simulates the pipelined system event by event.
///
/// The accelerator processes iterations back to back unless a fired
/// iteration finds the recovery queue full, in which case it stalls until
/// the CPU frees a slot (the hardware cannot drop a recovery bit — that
/// would silently forfeit quality). The CPU serves recovery bits FIFO,
/// each costing `cpu_cycles`.
///
/// # Panics
///
/// Panics if `fired.len() != n`, any cycle cost is nonpositive, or the
/// queue configuration has a zero capacity.
#[must_use]
pub fn simulate_detailed(
    n: usize,
    npu_cycles: f64,
    cpu_cycles: f64,
    fired: &[bool],
    queues: QueueConfig,
) -> DetailedRun {
    simulate_detailed_with_faults(n, npu_cycles, cpu_cycles, fired, queues, None)
}

/// [`simulate_detailed`] with an optional fault plan: `QueuePressure`
/// models make `slots` recovery-queue entries behave as permanently
/// occupied from their start iteration (a stuck consumer), so the
/// accelerator hits back-pressure earlier. Other fault models do not
/// affect timing and are ignored here.
///
/// # Panics
///
/// Same contract as [`simulate_detailed`].
#[must_use]
pub fn simulate_detailed_with_faults(
    n: usize,
    npu_cycles: f64,
    cpu_cycles: f64,
    fired: &[bool],
    queues: QueueConfig,
    plan: Option<&FaultPlan>,
) -> DetailedRun {
    assert_eq!(fired.len(), n, "one fired flag per iteration");
    assert!(npu_cycles > 0.0 && cpu_cycles > 0.0, "cycle costs must be positive");

    // The recovery queue is the only queue that can stall the accelerator
    // in configuration 2 (input is produced far faster than it is consumed
    // and output drains at CPU speed); we still model its occupancy.
    let mut recovery: Fifo<f64> = Fifo::new(queues.recovery_capacity);
    let _ = queues.input_capacity; // producers are never the bottleneck here
    let _ = queues.output_capacity;

    let mut now = 0.0_f64; // accelerator clock
    let mut cpu_free = 0.0_f64; // when the CPU finishes its current fix
    let mut accel_stall_cycles = 0.0;
    let mut cpu_busy_cycles = 0.0;
    let mut fixes = 0usize;

    // Pending recovery completion times, kept implicitly: the CPU serves
    // FIFO, so each bit's service start is max(enqueue time, cpu_free).
    for (i, &f) in fired.iter().enumerate() {
        // Drain every recovery bit the CPU has finished by `now`.
        while let Some(&done_at) = recovery.peek() {
            if done_at <= now {
                let _ = recovery.pop();
            } else {
                break;
            }
        }

        // Accelerator computes this iteration.
        let mut finish = now + npu_cycles;

        if f {
            // Phantom-occupied slots from a queue-pressure fault shrink
            // the capacity the producer can actually use.
            let pressure = plan.map_or(0, |p| p.queue_pressure(i));
            let usable = queues.recovery_capacity.saturating_sub(pressure).max(1);
            // The recovery bit must be enqueued at completion; stall the
            // accelerator until a slot frees if the queue is full.
            while recovery.len() >= usable {
                let head_done = *recovery.peek().expect("full queue has a head");
                let stall = (head_done - finish).max(0.0);
                accel_stall_cycles += stall;
                finish = finish.max(head_done);
                let _ = recovery.pop();
            }
            // CPU serves this bit after the ones already queued.
            let start = cpu_free.max(finish);
            cpu_free = start + cpu_cycles;
            cpu_busy_cycles += cpu_cycles;
            fixes += 1;
            recovery.push(cpu_free).expect("slot was freed above");
        }
        now = finish;
    }

    DetailedRun {
        total_cycles: now.max(cpu_free),
        accel_stall_cycles,
        cpu_busy_cycles,
        recovery_high_water: recovery.high_water(),
        fixes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate;
    use proptest::prelude::*;

    fn pattern(n: usize, every: usize) -> Vec<bool> {
        (0..n).map(|i| every != 0 && i % every == 0).collect()
    }

    #[test]
    fn no_fires_is_accelerator_bound() {
        let run = simulate_detailed(20, 50.0, 300.0, &[false; 20], QueueConfig::default());
        assert_eq!(run.total_cycles, 1000.0);
        assert_eq!(run.fixes, 0);
        assert!(!run.back_pressured());
    }

    #[test]
    fn deep_queues_match_the_analytic_model() {
        // With an effectively unbounded recovery queue, the event-driven
        // simulation must agree with `pipeline::simulate` exactly.
        for every in [2usize, 3, 5, 7] {
            let fired = pattern(200, every);
            let detailed = simulate_detailed(
                200,
                50.0,
                280.0,
                &fired,
                QueueConfig { recovery_capacity: 10_000, ..QueueConfig::default() },
            );
            let analytic = simulate(200, 50.0, 280.0, &fired);
            assert!(
                (detailed.total_cycles - analytic.total_cycles).abs() < 1e-6,
                "every={every}: {} vs {}",
                detailed.total_cycles,
                analytic.total_cycles
            );
            assert_eq!(detailed.cpu_busy_cycles, analytic.cpu_busy_cycles);
            assert!(!detailed.back_pressured());
        }
    }

    #[test]
    fn tiny_recovery_queue_back_pressures_a_hot_stream() {
        // Every iteration fires and each fix takes 6x an accelerator slot:
        // a 2-entry queue must throttle the accelerator to CPU speed.
        let fired = vec![true; 100];
        let tight = simulate_detailed(
            100,
            50.0,
            300.0,
            &fired,
            QueueConfig { recovery_capacity: 2, ..QueueConfig::default() },
        );
        assert!(tight.back_pressured());
        // Steady state: one iteration completes per 300-cycle fix.
        assert!(tight.total_cycles >= 100.0 * 300.0, "total {}", tight.total_cycles);

        // The same stream with a deep queue hides nothing either (the CPU
        // is the true bottleneck), but the *accelerator* never stalls.
        let deep = simulate_detailed(
            100,
            50.0,
            300.0,
            &fired,
            QueueConfig { recovery_capacity: 10_000, ..QueueConfig::default() },
        );
        assert!(!deep.back_pressured());
        assert!(deep.total_cycles <= tight.total_cycles + 1e-9);
    }

    #[test]
    fn queue_pressure_forces_earlier_back_pressure() {
        use rumba_faults::FaultModel;
        // A hot stream against an 8-deep queue: squeezing 6 of the 8 slots
        // with a stuck consumer must stall the accelerator harder, while
        // the work done (fixes) is unchanged.
        let fired = vec![true; 200];
        let queues = QueueConfig { recovery_capacity: 8, ..QueueConfig::default() };
        let clean = simulate_detailed_with_faults(200, 50.0, 300.0, &fired, queues, None);
        let plan = FaultPlan::new(5).with(FaultModel::QueuePressure { start: 0, slots: 6 });
        let squeezed = simulate_detailed_with_faults(200, 50.0, 300.0, &fired, queues, Some(&plan));
        assert!(squeezed.accel_stall_cycles >= clean.accel_stall_cycles);
        assert!(squeezed.recovery_high_water <= 2, "only 2 usable slots remain");
        assert_eq!(squeezed.fixes, clean.fixes, "pressure delays, never drops, recovery");
        assert!(squeezed.total_cycles >= clean.total_cycles - 1e-9);
    }

    #[test]
    fn pressure_to_zero_slots_still_makes_progress() {
        use rumba_faults::FaultModel;
        let fired = vec![true; 50];
        let plan =
            FaultPlan::new(2).with(FaultModel::QueuePressure { start: 0, slots: usize::MAX });
        let run = simulate_detailed_with_faults(
            50,
            50.0,
            300.0,
            &fired,
            QueueConfig::default(),
            Some(&plan),
        );
        assert_eq!(run.fixes, 50, "the clamp to one usable slot avoids deadlock");
    }

    #[test]
    fn high_water_respects_capacity() {
        let fired = pattern(500, 2);
        let run = simulate_detailed(
            500,
            50.0,
            280.0,
            &fired,
            QueueConfig { recovery_capacity: 8, ..QueueConfig::default() },
        );
        assert!(run.recovery_high_water <= 8);
    }

    proptest! {
        #[test]
        fn deeper_queues_never_slow_the_system(
            n in 10usize..150,
            every in 1usize..6,
            small in 1usize..8,
        ) {
            let fired = pattern(n, every);
            let tight = simulate_detailed(n, 40.0, 200.0, &fired,
                QueueConfig { recovery_capacity: small, ..QueueConfig::default() });
            let deep = simulate_detailed(n, 40.0, 200.0, &fired,
                QueueConfig { recovery_capacity: small * 100, ..QueueConfig::default() });
            prop_assert!(deep.total_cycles <= tight.total_cycles + 1e-9);
            prop_assert_eq!(tight.fixes, deep.fixes);
        }

        #[test]
        fn total_time_lower_bounds_hold(n in 10usize..150, every in 1usize..6) {
            let fired = pattern(n, every);
            let fixes = fired.iter().filter(|&&f| f).count() as f64;
            let run = simulate_detailed(n, 40.0, 200.0, &fired, QueueConfig::default());
            prop_assert!(run.total_cycles + 1e-9 >= (n as f64 * 40.0).max(fixes * 200.0));
            prop_assert!((run.cpu_busy_cycles - fixes * 200.0).abs() < 1e-9);
        }
    }
}
