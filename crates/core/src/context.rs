//! [`AppContext`] — one benchmark, fully trained and replayed on its test
//! split, with the scores of every comparison scheme precomputed.
//!
//! This is the shared entry point of the evaluation harness: every figure
//! binary builds one context per benchmark and asks it questions.

use rumba_apps::{ErrorMetric, Kernel, Split};
use rumba_energy::{SchemeActivity, WorkloadProfile};
use rumba_nn::NnDataset;
use rumba_predict::{CheckerCost, EmaDetector, ErrorEstimator};

use crate::scheme::{random_scores, uniform_scores, SchemeKind, SchemeScores};
use crate::trainer::{
    approximate_outputs, invocation_errors, train_app, OfflineConfig, TrainedApp,
};
use crate::Result;

/// One benchmark's trained system plus its test-split evaluation state.
#[derive(Debug)]
pub struct AppContext {
    kernel_name: String,
    metric: ErrorMetric,
    cpu_cycles: f64,
    kernel_fraction: f64,
    input_dim: usize,
    output_dim: usize,
    trained: TrainedApp,
    test: NnDataset,
    approx_outputs: Vec<f64>,
    true_errors: Vec<f64>,
    baseline_errors: Vec<f64>,
    schemes: Vec<SchemeScores>,
}

impl AppContext {
    /// Trains the full system for `kernel` and replays the test split.
    ///
    /// # Errors
    ///
    /// Propagates offline-training and accelerator errors.
    pub fn build(kernel: &dyn Kernel, seed: u64) -> Result<Self> {
        Self::build_with_config(kernel, &OfflineConfig { seed, ..OfflineConfig::default() })
    }

    /// [`AppContext::build`] with full control over the offline settings.
    ///
    /// # Errors
    ///
    /// Propagates offline-training and accelerator errors.
    pub fn build_with_config(kernel: &dyn Kernel, cfg: &OfflineConfig) -> Result<Self> {
        let trained = train_app(kernel, cfg)?;
        let test = kernel.generate(Split::Test, cfg.seed);
        let approx_outputs = approximate_outputs(&trained.rumba_npu, &test)?;
        let true_errors = invocation_errors(kernel, &trained.rumba_npu, &test)?;
        let baseline_errors = invocation_errors(kernel, &trained.baseline_npu, &test)?;

        let n = test.len();
        let out_dim = kernel.output_dim();
        let mut schemes = Vec::new();

        schemes.push(SchemeScores::new(
            SchemeKind::Ideal,
            true_errors.clone(),
            CheckerCost::free(),
        ));
        schemes.push(SchemeScores::new(
            SchemeKind::Random,
            random_scores(n, cfg.seed),
            CheckerCost::free(),
        ));
        schemes.push(SchemeScores::new(
            SchemeKind::Uniform,
            uniform_scores(n),
            CheckerCost::free(),
        ));

        let flat_inputs = test.inputs_view();
        let in_dim = kernel.input_dim();

        // The EMA detector is genuinely stateful (its estimate depends on
        // the history of previous invocations), so it scores the whole
        // stream as one serial batch over the flat buffers.
        let mut ema = EmaDetector::new(trained.ema_window, out_dim)
            .expect("window and output width are nonzero");
        let ema_cost = ema.cost();
        let mut ema_scores = Vec::new();
        ema.estimate_batch(
            n,
            flat_inputs.as_slice(),
            in_dim,
            &approx_outputs,
            out_dim,
            &mut ema_scores,
        );
        schemes.push(SchemeScores::new(SchemeKind::Ema, ema_scores, ema_cost));

        // The trained checkers take `&mut self` for trait uniformity but
        // their estimates are pure functions of their row, so each chunk
        // batch-scores its window of the flat input buffer on its own
        // clone and the output is bit-identical to the serial loop at any
        // thread count.
        let pool = rumba_parallel::ThreadPool::new();
        let linear_cost = trained.linear.cost();
        let linear_scores: Vec<f64> = pool.par_map_chunked(n, |_c, range| {
            let mut linear = trained.linear.clone();
            let rows = flat_inputs.rows_range(range.start, range.end);
            let mut scores = Vec::new();
            linear.estimate_batch(rows.rows(), rows.as_slice(), in_dim, &[], 0, &mut scores);
            scores
        });
        schemes.push(SchemeScores::new(SchemeKind::LinearErrors, linear_scores, linear_cost));

        let tree_cost = trained.tree.cost();
        let tree_scores: Vec<f64> = pool.par_map_chunked(n, |_c, range| {
            let mut tree = trained.tree.clone();
            let rows = flat_inputs.rows_range(range.start, range.end);
            let mut scores = Vec::new();
            tree.estimate_batch(rows.rows(), rows.as_slice(), in_dim, &[], 0, &mut scores);
            scores
        });
        schemes.push(SchemeScores::new(SchemeKind::TreeErrors, tree_scores, tree_cost));

        let evp_cost = trained.evp.cost();
        let evp_scores: Vec<f64> = pool.par_map_chunked(n, |_c, range| {
            let mut evp = trained.evp.clone();
            let rows = flat_inputs.rows_range(range.start, range.end);
            let approx = &approx_outputs[range.start * out_dim..range.end * out_dim];
            let mut scores = Vec::new();
            evp.estimate_batch(rows.rows(), rows.as_slice(), in_dim, approx, out_dim, &mut scores);
            scores
        });
        schemes.push(SchemeScores::new(SchemeKind::Evp, evp_scores, evp_cost));

        Ok(Self {
            kernel_name: kernel.name().to_owned(),
            metric: kernel.metric(),
            cpu_cycles: kernel.cpu_cycles(),
            kernel_fraction: kernel.kernel_fraction(),
            input_dim: kernel.input_dim(),
            output_dim: kernel.output_dim(),
            trained,
            test,
            approx_outputs,
            true_errors,
            baseline_errors,
            schemes,
        })
    }

    /// Benchmark name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.kernel_name
    }

    /// Number of test invocations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.true_errors.len()
    }

    /// Whether the test split is empty (never true for the shipped
    /// benchmarks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.true_errors.is_empty()
    }

    /// The application's error metric.
    #[must_use]
    pub fn metric(&self) -> ErrorMetric {
        self.metric
    }

    /// The trained accelerators and checkers.
    #[must_use]
    pub fn trained(&self) -> &TrainedApp {
        &self.trained
    }

    /// The test split (inputs and exact outputs).
    #[must_use]
    pub fn test_data(&self) -> &NnDataset {
        &self.test
    }

    /// Flat approximate output stream of the Rumba accelerator on the test
    /// split.
    #[must_use]
    pub fn approx_outputs(&self) -> &[f64] {
        &self.approx_outputs
    }

    /// True per-invocation errors of the Rumba accelerator.
    #[must_use]
    pub fn true_errors(&self) -> &[f64] {
        &self.true_errors
    }

    /// True per-invocation errors of the unchecked-NPU-topology accelerator.
    #[must_use]
    pub fn baseline_errors(&self) -> &[f64] {
        &self.baseline_errors
    }

    /// Scores for one scheme.
    ///
    /// # Panics
    ///
    /// Panics if the scheme was not precomputed (all seven are).
    #[must_use]
    pub fn scores(&self, kind: SchemeKind) -> &SchemeScores {
        self.schemes
            .iter()
            .find(|s| s.kind() == kind)
            .expect("every SchemeKind is precomputed at build time")
    }

    /// Output error of the Rumba accelerator with nothing fixed.
    #[must_use]
    pub fn unchecked_output_error(&self) -> f64 {
        mean(&self.true_errors)
    }

    /// Output error of the unchecked NPU baseline (its own topology).
    #[must_use]
    pub fn baseline_output_error(&self) -> f64 {
        mean(&self.baseline_errors)
    }

    /// Output error after fixing the scheme's top-`k` invocations (fixed
    /// invocations become exact, i.e. zero error).
    #[must_use]
    pub fn error_after_fixing(&self, kind: SchemeKind, k: usize) -> f64 {
        let scores = self.scores(kind);
        let fixed_mass: f64 = scores.top_k(k).iter().map(|&i| self.true_errors[i]).sum();
        let total: f64 = self.true_errors.iter().sum();
        // Guard against a float-cancellation -0.0 when everything is fixed.
        ((total - fixed_mass) / self.true_errors.len() as f64).max(0.0)
    }

    /// Minimum number of fixes (in the scheme's own order) that brings
    /// output error to `target` or below; `None` if even fixing everything
    /// falls short (impossible for finite targets ≥ 0, kept for safety).
    #[must_use]
    pub fn fixes_for_target_error(&self, kind: SchemeKind, target: f64) -> Option<usize> {
        let scores = self.scores(kind);
        let n = self.true_errors.len();
        let total: f64 = self.true_errors.iter().sum();
        let mut remaining = total;
        if remaining / n as f64 <= target {
            return Some(0);
        }
        for (k, &i) in scores.fix_order().iter().enumerate() {
            remaining -= self.true_errors[i];
            if remaining / n as f64 <= target {
                return Some(k + 1);
            }
        }
        None
    }

    /// The workload profile the energy model consumes.
    #[must_use]
    pub fn workload(&self) -> WorkloadProfile {
        WorkloadProfile {
            invocations: self.len(),
            cpu_cycles_per_invocation: self.cpu_cycles,
            kernel_fraction: self.kernel_fraction,
        }
    }

    /// Activity of one scheme repairing `fixes` invocations, for the energy
    /// model. `SchemeKind::Ideal`, `Random`, and `Uniform` carry no checker
    /// hardware.
    #[must_use]
    pub fn scheme_activity(&self, kind: SchemeKind, fixes: usize) -> SchemeActivity {
        let n = self.len();
        SchemeActivity {
            accelerator_invocations: n,
            npu_cycles_per_invocation: self.trained.rumba_npu.cycles_per_invocation(),
            io_words_per_invocation: self.input_dim + self.output_dim,
            checker_invocations: if kind.has_checker() { n } else { 0 },
            checker_cost: self.scores(kind).checker_cost(),
            reexecutions: fixes.min(n),
            compensations: 0,
            serial_detector_cycles: 0.0,
            tiered_accelerator_cycles: 0.0,
        }
    }

    /// Activity of the unchecked NPU baseline (its own topology, no checker,
    /// no recovery).
    #[must_use]
    pub fn unchecked_npu_activity(&self) -> SchemeActivity {
        SchemeActivity {
            accelerator_invocations: self.len(),
            npu_cycles_per_invocation: self.trained.baseline_npu.cycles_per_invocation(),
            io_words_per_invocation: self.input_dim + self.output_dim,
            checker_invocations: 0,
            checker_cost: CheckerCost::free(),
            reexecutions: 0,
            compensations: 0,
            serial_detector_cycles: 0.0,
            tiered_accelerator_cycles: 0.0,
        }
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumba_apps::kernel_by_name;

    fn gaussian_ctx() -> AppContext {
        let kernel = kernel_by_name("gaussian").unwrap();
        AppContext::build(kernel.as_ref(), 7).unwrap()
    }

    #[test]
    fn context_has_all_schemes() {
        let ctx = gaussian_ctx();
        for kind in SchemeKind::paper_set() {
            assert_eq!(ctx.scores(kind).len(), ctx.len());
        }
        assert_eq!(ctx.scores(SchemeKind::Evp).len(), ctx.len());
    }

    #[test]
    fn ideal_dominates_random_at_every_budget() {
        let ctx = gaussian_ctx();
        for k in [10, 100, 500, 1000] {
            let ideal = ctx.error_after_fixing(SchemeKind::Ideal, k);
            let random = ctx.error_after_fixing(SchemeKind::Random, k);
            assert!(ideal <= random + 1e-12, "k={k}: ideal {ideal} random {random}");
        }
    }

    #[test]
    fn fixing_everything_zeroes_the_error() {
        let ctx = gaussian_ctx();
        let e = ctx.error_after_fixing(SchemeKind::Uniform, ctx.len());
        assert!(e.abs() < 1e-12);
    }

    #[test]
    fn error_after_fixing_is_monotone_in_k() {
        let ctx = gaussian_ctx();
        let mut prev = f64::INFINITY;
        for k in (0..=ctx.len()).step_by(200) {
            let e = ctx.error_after_fixing(SchemeKind::TreeErrors, k);
            assert!(e <= prev + 1e-12);
            prev = e;
        }
    }

    #[test]
    fn fixes_for_target_error_matches_error_after_fixing() {
        let ctx = gaussian_ctx();
        let target = ctx.unchecked_output_error() * 0.5;
        let k = ctx.fixes_for_target_error(SchemeKind::Ideal, target).unwrap();
        assert!(ctx.error_after_fixing(SchemeKind::Ideal, k) <= target);
        if k > 0 {
            assert!(ctx.error_after_fixing(SchemeKind::Ideal, k - 1) > target);
        }
    }

    #[test]
    fn ideal_needs_fewest_fixes() {
        let ctx = gaussian_ctx();
        let target = ctx.unchecked_output_error() * 0.5;
        let ideal = ctx.fixes_for_target_error(SchemeKind::Ideal, target).unwrap();
        for kind in [SchemeKind::Random, SchemeKind::Uniform, SchemeKind::TreeErrors] {
            let k = ctx.fixes_for_target_error(kind, target).unwrap();
            assert!(k >= ideal, "{kind}: {k} < ideal {ideal}");
        }
    }

    #[test]
    fn workload_and_activity_are_consistent() {
        let ctx = gaussian_ctx();
        let w = ctx.workload();
        assert_eq!(w.invocations, ctx.len());
        let a = ctx.scheme_activity(SchemeKind::TreeErrors, 100);
        assert_eq!(a.reexecutions, 100);
        assert!(a.checker_invocations > 0);
        let ideal = ctx.scheme_activity(SchemeKind::Ideal, 100);
        assert_eq!(ideal.checker_invocations, 0);
    }
}
