//! §3.4 — online tuning of the detection threshold.
//!
//! The tuning threshold decides which predicted errors fire the check. A
//! larger threshold re-executes fewer iterations (more energy saving, lower
//! quality); a smaller one the reverse. The tuner moves the threshold
//! between invocation windows under one of three user-selected modes.

use crate::{Result, RumbaError};

/// The user's tuning objective (§3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TuningMode {
    /// TOQ mode: keep (estimated) output quality at or above the target.
    /// `toq = 0.9` means 90 % quality, i.e. a 10 % error budget.
    TargetQuality {
        /// Target output quality in `(0, 1]`.
        toq: f64,
    },
    /// Energy mode: never re-execute more than `budget` iterations per
    /// window; use less if quality allows.
    EnergyBudget {
        /// Re-execution budget per invocation window.
        budget: usize,
    },
    /// Quality mode: re-execute as much as the CPU can overlap with the
    /// accelerator (maximize quality at zero performance cost).
    BestQuality,
}

/// What [`Tuner::observe_window`] did to the threshold (telemetry; the
/// runtime folds it into the `window_end` event stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdAction {
    /// Threshold moved up (fix fewer, save energy).
    Raised,
    /// Threshold moved down (fix more, protect quality).
    Lowered,
    /// Feedback landed inside the dead-band; the threshold held still.
    Held,
}

/// Per-window feedback the tuner adapts on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStats {
    /// Iterations in the window.
    pub window_len: usize,
    /// Iterations whose check fired (and were re-executed).
    pub fired: usize,
    /// Mean predicted error of the iterations that were *not* fixed — the
    /// tuner's online quality estimate (it never sees exact results).
    pub mean_unfixed_predicted_error: f64,
    /// How many re-executions the CPU could have overlapped with the
    /// accelerator in this window (capacity for [`TuningMode::BestQuality`]).
    pub cpu_capacity: usize,
}

/// How the threshold moves on each adjustment.
///
/// The paper uses symmetric multiplicative steps; the AIMD alternative
/// (additive relax, multiplicative protect — TCP's congestion shape) reacts
/// faster to quality violations while creeping slowly back toward energy
/// savings. `ablate_tuner_policy` compares the two.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepPolicy {
    /// Symmetric geometric steps: raise multiplies by `1 + step`, lower by
    /// `1 - step`.
    Multiplicative {
        /// Relative step in `(0, 1)`.
        step: f64,
    },
    /// Additive-increase (raise adds `increase × current`, capped small),
    /// multiplicative-decrease (lower multiplies by `1 - decrease`).
    Aimd {
        /// Additive raise fraction per window.
        increase: f64,
        /// Multiplicative backoff in `(0, 1)`.
        decrease: f64,
    },
}

impl Default for StepPolicy {
    fn default() -> Self {
        StepPolicy::Multiplicative { step: 0.15 }
    }
}

impl StepPolicy {
    fn validate(&self) -> Result<()> {
        let ok = match *self {
            StepPolicy::Multiplicative { step } => 0.0 < step && step < 1.0,
            StepPolicy::Aimd { increase, decrease } => {
                increase > 0.0 && 0.0 < decrease && decrease < 1.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(RumbaError::InvalidConfig { name: "step_policy", value: format!("{self:?}") })
        }
    }

    /// Threshold after a "fix fewer / save energy" adjustment.
    fn raise(&self, threshold: f64) -> f64 {
        match *self {
            StepPolicy::Multiplicative { step } => threshold * (1.0 + step),
            StepPolicy::Aimd { increase, .. } => threshold * (1.0 + increase),
        }
    }

    /// Threshold after a "fix more / protect quality" adjustment.
    fn lower(&self, threshold: f64) -> f64 {
        match *self {
            StepPolicy::Multiplicative { step } => threshold * (1.0 - step),
            StepPolicy::Aimd { decrease, .. } => threshold * (1.0 - decrease),
        }
    }
}

/// The online threshold controller.
///
/// # Examples
///
/// ```
/// use rumba_core::tuner::{Tuner, TuningMode, WindowStats};
///
/// let mut tuner = Tuner::new(TuningMode::TargetQuality { toq: 0.9 }, 0.2).unwrap();
/// let before = tuner.threshold();
/// // Quality estimate far above the 10% budget → threshold must drop.
/// tuner.observe_window(WindowStats {
///     window_len: 100, fired: 5, mean_unfixed_predicted_error: 0.4, cpu_capacity: 20,
/// });
/// assert!(tuner.threshold() < before);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tuner {
    mode: TuningMode,
    threshold: f64,
    history: Vec<f64>,
    history_capacity: usize,
    history_evictions: u64,
    policy: StepPolicy,
    min_threshold: f64,
    max_threshold: f64,
    // Upper cut of the compensation band (None = compensation disabled).
    // Flagged invocations predicted in `(threshold, comp_band]` are
    // compensated in place; above the band they re-execute on the CPU.
    comp_band: Option<f64>,
    // Multiplier on the model-zoo routing bar (None = zoo disabled). Like
    // the band, it tracks the threshold's verdict: a quality violation
    // shrinks it (traffic escalates to better tiers / exact CPU), and
    // headroom relaxes it back toward the calibrated base.
    tier_scale: Option<f64>,
}

/// Bounds on [`Tuner::tier_scale`]: the routing bar never collapses below
/// a quarter of its calibrated base, and never stretches past it. The
/// offline calibration already fixed the *widest* bar whose routed mean
/// train error fits the quality budget, so online adaptation may only
/// tighten the bar and relax it back — an input-based checker cannot see
/// a cheap tier's extra error, so its "headroom" verdict must never widen
/// routing past what calibration proved safe.
pub const TIER_SCALE_BOUNDS: (f64, f64) = (0.25, 1.0);

/// Default bound on [`Tuner::history`]. Before this cap existed the
/// history grew one `f64` per window forever — an unbounded leak in the
/// long-running streaming deployment path (`rumba_apps::pipelines`); the
/// bounded figure-sweep runs never come close, so their
/// `RunOutcome::threshold_history` keeps full fidelity.
pub const DEFAULT_HISTORY_CAPACITY: usize = 4096;

impl Tuner {
    /// Creates a tuner starting from `initial_threshold` (typically the
    /// offline calibration from [`calibrate_threshold`]) with the default
    /// multiplicative step policy.
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::InvalidConfig`] for nonpositive thresholds or
    /// an out-of-range TOQ.
    pub fn new(mode: TuningMode, initial_threshold: f64) -> Result<Self> {
        Self::with_policy(mode, initial_threshold, StepPolicy::default())
    }

    /// [`Tuner::new`] with an explicit [`StepPolicy`].
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::InvalidConfig`] for nonpositive thresholds, an
    /// out-of-range TOQ, or a degenerate policy.
    pub fn with_policy(
        mode: TuningMode,
        initial_threshold: f64,
        policy: StepPolicy,
    ) -> Result<Self> {
        if !(initial_threshold > 0.0 && initial_threshold.is_finite()) {
            return Err(RumbaError::InvalidConfig {
                name: "initial_threshold",
                value: initial_threshold.to_string(),
            });
        }
        if let TuningMode::TargetQuality { toq } = mode {
            if !(0.0 < toq && toq <= 1.0) {
                return Err(RumbaError::InvalidConfig { name: "toq", value: toq.to_string() });
            }
        }
        policy.validate()?;
        Ok(Self {
            mode,
            threshold: initial_threshold,
            history: vec![initial_threshold],
            history_capacity: DEFAULT_HISTORY_CAPACITY,
            history_evictions: 0,
            policy,
            min_threshold: 1e-6,
            max_threshold: 1e6,
            comp_band: None,
            tier_scale: None,
        })
    }

    /// Enables the predict-and-compensate split: flagged invocations whose
    /// predicted error lies in `(threshold, band]` are compensated in place
    /// instead of re-executed. The band is the tuner's second knob — it
    /// widens when the threshold relaxes (quality headroom → cheaper fixes)
    /// and shrinks toward the threshold when quality is violated, so the
    /// worst offenders always fall back to exact CPU re-execution.
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::InvalidConfig`] for a non-finite or
    /// nonpositive band.
    pub fn with_compensation_band(mut self, band: f64) -> Result<Self> {
        if !(band > 0.0 && band.is_finite()) {
            return Err(RumbaError::InvalidConfig {
                name: "compensation_band",
                value: band.to_string(),
            });
        }
        self.comp_band = Some(band.clamp(self.threshold, self.max_threshold));
        Ok(self)
    }

    /// Restores the compensation band verbatim (snapshot import).
    pub fn set_compensation_band_raw(&mut self, band: Option<f64>) {
        self.comp_band = band;
    }

    /// The current compensation-band upper cut (`None` = compensation
    /// disabled).
    #[must_use]
    pub fn compensation_band(&self) -> Option<f64> {
        self.comp_band
    }

    /// Arms the model-zoo tier knob: the routing bar becomes
    /// `quality budget × tier_scale`, and the scale co-adapts with the
    /// threshold (headroom widens it toward cheap tiers, violations
    /// shrink it toward exact execution), clamped to
    /// [`TIER_SCALE_BOUNDS`].
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::InvalidConfig`] for a non-finite or
    /// nonpositive scale.
    pub fn with_tier_scale(mut self, scale: f64) -> Result<Self> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(RumbaError::InvalidConfig { name: "tier_scale", value: scale.to_string() });
        }
        self.tier_scale = Some(scale.clamp(TIER_SCALE_BOUNDS.0, TIER_SCALE_BOUNDS.1));
        Ok(self)
    }

    /// Restores the tier scale verbatim (snapshot import).
    pub fn set_tier_scale_raw(&mut self, scale: Option<f64>) {
        self.tier_scale = scale;
    }

    /// The current routing-bar multiplier (`None` = zoo routing disabled).
    #[must_use]
    pub fn tier_scale(&self) -> Option<f64> {
        self.tier_scale
    }

    /// Bounds the retained threshold history to the most recent `capacity`
    /// entries (minimum 1). Older entries are evicted oldest-first and
    /// counted in [`Tuner::history_evictions`] and the
    /// `tuner.history_evictions` metrics counter.
    #[must_use]
    pub fn with_history_capacity(mut self, capacity: usize) -> Self {
        self.history_capacity = capacity.max(1);
        self.trim_history();
        self
    }

    /// The current firing threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The tuning objective.
    #[must_use]
    pub fn mode(&self) -> TuningMode {
        self.mode
    }

    /// Threshold after each observed window, starting with the initial
    /// one — bounded to the most recent
    /// [`Tuner::history_capacity`](Self::history_capacity) entries.
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// The bound on retained history entries.
    #[must_use]
    pub fn history_capacity(&self) -> usize {
        self.history_capacity
    }

    /// How many history entries have been evicted by the capacity bound.
    #[must_use]
    pub fn history_evictions(&self) -> u64 {
        self.history_evictions
    }

    /// Iterations the current mode allows to be re-executed in a window
    /// (`None` = unbounded). Energy mode enforces a hard cap (§3.4: once
    /// over budget, re-execution stops for the rest of the invocation).
    #[must_use]
    pub fn reexec_cap(&self, stats_cpu_capacity: usize) -> Option<usize> {
        match self.mode {
            TuningMode::TargetQuality { .. } => None,
            TuningMode::EnergyBudget { budget } => Some(budget),
            TuningMode::BestQuality => Some(stats_cpu_capacity),
        }
    }

    /// Feeds one completed window back; the threshold moves for the next
    /// window. Returns what happened, for telemetry.
    ///
    /// The count-driven modes keep a hysteresis dead-band of at least one
    /// fire on the lowering side: lowering the threshold fires *more*
    /// checks, so a zero-width band (the pre-fix integer-division margin
    /// `fired / 4`, which vanishes whenever `fired < 4`) made the
    /// threshold raise and lower on alternating windows without ever
    /// settling.
    pub fn observe_window(&mut self, stats: WindowStats) -> ThresholdAction {
        if stats.window_len == 0 {
            return ThresholdAction::Held;
        }
        let before = self.threshold;
        match self.mode {
            TuningMode::TargetQuality { toq } => {
                let budget = 1.0 - toq;
                if stats.mean_unfixed_predicted_error > budget {
                    self.threshold = self.policy.lower(self.threshold); // fix more
                } else if stats.mean_unfixed_predicted_error < 0.5 * budget {
                    self.threshold = self.policy.raise(self.threshold); // save energy
                }
            }
            TuningMode::EnergyBudget { budget } => {
                if stats.fired > budget {
                    self.threshold = self.policy.raise(self.threshold);
                } else if stats.fired + (stats.fired / 4).max(1) < budget {
                    self.threshold = self.policy.lower(self.threshold);
                }
            }
            TuningMode::BestQuality => {
                if stats.fired > stats.cpu_capacity {
                    // CPU fell behind: fix fewer next invocation.
                    self.threshold = self.policy.raise(self.threshold);
                } else if stats.fired + (stats.fired / 4).max(1) < stats.cpu_capacity {
                    // CPU meaningfully under-utilized: it can fix more.
                    // (Chasing capacity exactly — any `fired !=
                    // cpu_capacity` — oscillated whenever no threshold
                    // produced the exact count.)
                    self.threshold = self.policy.lower(self.threshold);
                }
            }
        }
        self.threshold = self.threshold.clamp(self.min_threshold, self.max_threshold);
        self.push_history(self.threshold);
        let action = if self.threshold > before {
            ThresholdAction::Raised
        } else if self.threshold < before {
            ThresholdAction::Lowered
        } else {
            ThresholdAction::Held
        };
        if let Some(band) = self.comp_band {
            // The band tracks the threshold's verdict: quality headroom
            // (threshold raised) admits more near-free compensations, a
            // quality violation (threshold lowered) shrinks the band toward
            // the threshold so more of the flagged traffic re-executes
            // exactly. The clamp keeps the band a valid upper cut.
            let moved = match action {
                ThresholdAction::Raised => self.policy.raise(band),
                ThresholdAction::Lowered => self.policy.lower(band),
                ThresholdAction::Held => band,
            };
            self.comp_band = Some(moved.clamp(self.threshold, self.max_threshold));
        }
        if let Some(scale) = self.tier_scale {
            // The zoo's tier knob moves with the same verdict: a raised
            // threshold means quality headroom, so the routing bar widens
            // and more invocations ride cheap tiers; a lowered threshold
            // means the budget was violated, so the bar shrinks and
            // traffic escalates toward the full model and exact CPU.
            let moved = match action {
                ThresholdAction::Raised => self.policy.raise(scale),
                ThresholdAction::Lowered => self.policy.lower(scale),
                ThresholdAction::Held => scale,
            };
            self.tier_scale = Some(moved.clamp(TIER_SCALE_BOUNDS.0, TIER_SCALE_BOUNDS.1));
        }
        action
    }

    /// Snaps the threshold back to `threshold` (clamped to the tuner's
    /// bounds), recording the jump in the history. The degradation
    /// watchdog uses this to recalibrate after sustained drift: the
    /// adapted threshold may have walked arbitrarily far from a sane
    /// operating point while the checker was being fed corrupted outputs.
    pub fn reset_to(&mut self, threshold: f64) {
        let sane =
            if threshold.is_finite() && threshold > 0.0 { threshold } else { self.min_threshold };
        self.threshold = sane.clamp(self.min_threshold, self.max_threshold);
        self.comp_band = self.comp_band.map(|b| b.clamp(self.threshold, self.max_threshold));
        self.push_history(self.threshold);
    }

    fn push_history(&mut self, threshold: f64) {
        self.history.push(threshold);
        self.trim_history();
    }

    fn trim_history(&mut self) {
        if self.history.len() > self.history_capacity {
            let excess = self.history.len() - self.history_capacity;
            self.history.drain(..excess);
            self.history_evictions += excess as u64;
            if rumba_obs::enabled() {
                rumba_obs::metrics().add("tuner.history_evictions", excess as u64);
            }
        }
    }
}

/// What [`calibrate_threshold_detailed`] produced, including the
/// sanitization telemetry the `calibration` event carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// The calibrated initial threshold (always finite and positive).
    pub threshold: f64,
    /// Training samples calibrated over.
    pub samples: usize,
    /// Predictions that were non-finite (NaN/±inf) and were ranked as
    /// "always fire" instead of crashing the calibration sort.
    pub sanitized: usize,
}

/// Offline threshold calibration: the smallest threshold on *predicted*
/// errors such that fixing every training invocation predicted above it
/// brings training output error within `target_error`.
///
/// Boundary rule (pinned for the whole codebase): a check **fires iff its
/// score is strictly greater than the threshold** — see
/// [`crate::SchemeScores::fired`] and the runtime's firing decision.
/// Calibration therefore always places the threshold strictly *below* the
/// smallest prediction it intends to fire, so duplicated score values at
/// the cut all fire together and the calibrated set is never smaller than
/// promised.
///
/// Falls back to the smallest positive predicted error (fix everything
/// predictable) when even that cannot reach the target.
///
/// Non-finite predictions (a degenerate checker emitting NaN/inf — this
/// used to panic the whole CLI through a `partial_cmp(..).expect`) are
/// treated as +∞, i.e. ranked as the first invocations to fix; the
/// returned threshold is always finite. For the usual nonnegative
/// magnitude predictions it is also positive, a valid [`Tuner::new`]
/// starting point; signed prediction vectors (legal since checkers grew
/// `estimate_signed`) may calibrate to a negative cut.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn calibrate_threshold(predicted: &[f64], true_errors: &[f64], target_error: f64) -> f64 {
    calibrate_threshold_detailed(predicted, true_errors, target_error).threshold
}

/// [`calibrate_threshold`] with the full [`Calibration`] record; emits a
/// `calibration` telemetry event to the global sink when telemetry is
/// enabled.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn calibrate_threshold_detailed(
    predicted: &[f64],
    true_errors: &[f64],
    target_error: f64,
) -> Calibration {
    assert_eq!(predicted.len(), true_errors.len(), "parallel slices required");
    let n = predicted.len();
    let mut sanitized = 0usize;
    let sane: Vec<f64> = predicted
        .iter()
        .map(|&p| {
            if p.is_finite() {
                p
            } else {
                sanitized += 1;
                f64::INFINITY
            }
        })
        .collect();
    let threshold = finite_threshold(raw_threshold(&sane, true_errors, target_error), &sane);
    let calibration = Calibration { threshold, samples: n, sanitized };
    if rumba_obs::enabled() {
        rumba_obs::global_sink().emit(&rumba_obs::Event::Calibration {
            samples: n as u64,
            sanitized: sanitized as u64,
            threshold,
        });
    }
    calibration
}

/// A threshold strictly above prediction `x` under the strict-`>` firing
/// rule, so `x` itself does *not* fire. Nonnegative predictions keep the
/// historical `(x * 1.01).max(1e-6)` form bit-for-bit; negative ones
/// (legal since checkers grew signed estimates) move toward zero — the old
/// `max(1e-6)` silently clobbered them, and `* 1.01` walks a negative
/// value the wrong way.
fn just_above(x: f64) -> f64 {
    if x >= 0.0 {
        (x * 1.01).max(1e-6)
    } else {
        x * 0.99
    }
}

/// A threshold strictly below prediction `x`, so `x` (and any duplicate of
/// it) fires. Nonnegative predictions keep the historical
/// `x.max(1e-6) * 0.999` form bit-for-bit; negative ones move away from
/// zero.
fn just_below(x: f64) -> f64 {
    if x >= 0.0 {
        x.max(1e-6) * 0.999
    } else {
        x * 1.001
    }
}

/// The calibration scan over sanitized (NaN-free) predictions; may return
/// +∞ when the decisive prediction was itself sanitized.
fn raw_threshold(sane: &[f64], true_errors: &[f64], target_error: f64) -> f64 {
    let n = sane.len();
    if n == 0 {
        return target_error.max(1e-6);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| sane[b].partial_cmp(&sane[a]).expect("sanitized").then(a.cmp(&b)));
    let total: f64 = true_errors.iter().sum();
    let mut remaining = total;
    if remaining / n as f64 <= target_error {
        // Already within budget: fire only above the largest prediction.
        return just_above(sane[order[0]]);
    }
    for &i in &order {
        remaining -= true_errors[i];
        if remaining / n as f64 <= target_error {
            return just_below(sane[i]);
        }
    }
    // Fallback: fix everything predictable. The historical positive-only
    // cut is kept verbatim; with no positive prediction the cut must sit
    // below the smallest (possibly negative) finite one instead of being
    // clamped to 1e-6, which would fire nothing.
    let min_pos =
        sane.iter().copied().filter(|&p| p > 0.0 && p.is_finite()).fold(f64::INFINITY, f64::min);
    if min_pos.is_finite() {
        min_pos * 0.999
    } else {
        let min_fin = sane.iter().copied().filter(|p| p.is_finite()).fold(f64::INFINITY, f64::min);
        if min_fin.is_finite() && min_fin < 0.0 {
            min_fin * 1.001
        } else {
            1e-6
        }
    }
}

/// Clamps a possibly-infinite calibration result back to a usable finite
/// threshold: just above the largest *finite* prediction (the sanitized
/// always-fire entries sit above any threshold by definition), or the
/// 1e-6 floor when no finite prediction exists.
fn finite_threshold(threshold: f64, sane: &[f64]) -> f64 {
    if threshold.is_finite() {
        return threshold;
    }
    let max_finite =
        sane.iter().copied().filter(|p| p.is_finite()).fold(f64::NEG_INFINITY, f64::max);
    if max_finite.is_finite() {
        just_above(max_finite)
    } else {
        1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_configs() {
        assert!(Tuner::new(TuningMode::BestQuality, 0.0).is_err());
        assert!(Tuner::new(TuningMode::TargetQuality { toq: 1.5 }, 0.1).is_err());
        assert!(Tuner::new(TuningMode::TargetQuality { toq: 0.9 }, f64::NAN).is_err());
    }

    #[test]
    fn toq_mode_raises_threshold_when_quality_is_good() {
        let mut t = Tuner::new(TuningMode::TargetQuality { toq: 0.9 }, 0.2).unwrap();
        t.observe_window(WindowStats {
            window_len: 100,
            fired: 30,
            mean_unfixed_predicted_error: 0.01,
            cpu_capacity: 50,
        });
        assert!(t.threshold() > 0.2);
    }

    #[test]
    fn energy_mode_tracks_budget() {
        let mut t = Tuner::new(TuningMode::EnergyBudget { budget: 10 }, 0.2).unwrap();
        t.observe_window(WindowStats { window_len: 100, fired: 40, ..WindowStats::default() });
        assert!(t.threshold() > 0.2, "over budget → raise");
        let th = t.threshold();
        t.observe_window(WindowStats { window_len: 100, fired: 2, ..WindowStats::default() });
        assert!(t.threshold() < th, "under budget → lower");
        assert_eq!(t.reexec_cap(99), Some(10));
    }

    #[test]
    fn quality_mode_chases_cpu_capacity() {
        let mut t = Tuner::new(TuningMode::BestQuality, 0.2).unwrap();
        t.observe_window(WindowStats {
            window_len: 100,
            fired: 5,
            cpu_capacity: 20,
            ..WindowStats::default()
        });
        assert!(t.threshold() < 0.2, "capacity spare → fix more");
        assert_eq!(t.reexec_cap(20), Some(20));
    }

    #[test]
    fn threshold_stays_clamped_and_history_grows() {
        let mut t = Tuner::new(TuningMode::EnergyBudget { budget: 0 }, 1.0).unwrap();
        for _ in 0..200 {
            t.observe_window(WindowStats { window_len: 10, fired: 10, ..WindowStats::default() });
        }
        assert!(t.threshold() <= 1e6);
        assert_eq!(t.history().len(), 201);
    }

    #[test]
    fn empty_window_is_ignored() {
        let mut t = Tuner::new(TuningMode::BestQuality, 0.5).unwrap();
        t.observe_window(WindowStats::default());
        assert_eq!(t.threshold(), 0.5);
        assert_eq!(t.history().len(), 1);
    }

    #[test]
    fn aimd_policy_backs_off_harder_than_it_relaxes() {
        let policy = StepPolicy::Aimd { increase: 0.05, decrease: 0.4 };
        let mut t =
            Tuner::with_policy(TuningMode::TargetQuality { toq: 0.9 }, 0.2, policy).unwrap();
        // Quality violation: strong multiplicative backoff.
        t.observe_window(WindowStats {
            window_len: 100,
            fired: 0,
            mean_unfixed_predicted_error: 0.5,
            cpu_capacity: 10,
        });
        assert!((t.threshold() - 0.2 * 0.6).abs() < 1e-12);
        // Headroom: gentle additive-style relax.
        let before = t.threshold();
        t.observe_window(WindowStats {
            window_len: 100,
            fired: 0,
            mean_unfixed_predicted_error: 0.0,
            cpu_capacity: 10,
        });
        assert!((t.threshold() - before * 1.05).abs() < 1e-12);
    }

    #[test]
    fn degenerate_policies_rejected() {
        for policy in [
            StepPolicy::Multiplicative { step: 0.0 },
            StepPolicy::Multiplicative { step: 1.0 },
            StepPolicy::Aimd { increase: 0.0, decrease: 0.2 },
            StepPolicy::Aimd { increase: 0.1, decrease: 1.0 },
        ] {
            assert!(Tuner::with_policy(TuningMode::BestQuality, 0.1, policy).is_err());
        }
    }

    #[test]
    fn calibration_reaches_the_target_on_train() {
        // Predicted == true errors (a perfect checker).
        let errors = vec![0.5, 0.05, 0.4, 0.02, 0.3, 0.01];
        let th = calibrate_threshold(&errors, &errors, 0.05);
        // Fixing everything above th must bring mean error ≤ 0.05.
        let remaining: f64 = errors.iter().filter(|&&e| e <= th).sum();
        assert!(remaining / errors.len() as f64 <= 0.05, "threshold {th}");
    }

    #[test]
    fn calibration_when_already_within_budget() {
        let errors = vec![0.01, 0.02];
        let th = calibrate_threshold(&errors, &errors, 0.5);
        assert!(th > 0.02, "nothing should fire");
    }

    #[test]
    fn calibration_handles_empty() {
        assert!(calibrate_threshold(&[], &[], 0.1) > 0.0);
    }

    /// Drives a tuner against a steady synthetic stream where the fired
    /// count is a pure function of the threshold over a fixed prediction
    /// population, and returns the threshold after each window.
    fn steady_stream(mut tuner: Tuner, preds: &[f64], capacity: usize, windows: usize) -> Vec<f64> {
        let mut trace = Vec::with_capacity(windows);
        for _ in 0..windows {
            let fired = preds.iter().filter(|&&p| p > tuner.threshold()).count();
            tuner.observe_window(WindowStats {
                window_len: preds.len(),
                fired,
                mean_unfixed_predicted_error: 0.0,
                cpu_capacity: capacity,
            });
            trace.push(tuner.threshold());
        }
        trace
    }

    #[test]
    fn energy_mode_reaches_a_fixed_point_on_a_steady_stream() {
        // Regression for the zero-width hysteresis dead-band: predictions
        // are spaced so that no threshold fires exactly `budget` checks —
        // the count jumps 4 -> 2 across every candidate threshold. The
        // old `fired + fired / 4 < budget` margin is zero for fired < 4,
        // so the tuner raised and lowered on alternating windows forever.
        let preds = [0.1, 0.1, 0.3, 0.3, 0.5, 0.5];
        let budget = 3;
        let tuner = Tuner::new(TuningMode::EnergyBudget { budget }, 0.2).unwrap();
        let trace = steady_stream(tuner, &preds, 0, 300);
        let fixed_point = trace[trace.len() - 1];
        assert!(
            trace[trace.len() - 50..].iter().all(|&t| t == fixed_point),
            "threshold still moving at the tail: {:?}",
            &trace[trace.len() - 6..],
        );
        // And the settled point respects the budget on the firing side.
        assert!(preds.iter().filter(|&&p| p > fixed_point).count() <= budget + 1);
    }

    #[test]
    fn quality_mode_reaches_a_fixed_point_on_a_steady_stream() {
        // Same oscillation through the BestQuality branch: the old code
        // moved on *any* `fired != cpu_capacity`, so a capacity no
        // threshold can hit exactly (counts jump 4 -> 2) never settled.
        let preds = [0.1, 0.1, 0.3, 0.3, 0.5, 0.5];
        let tuner = Tuner::new(TuningMode::BestQuality, 0.2).unwrap();
        let trace = steady_stream(tuner, &preds, 3, 300);
        let fixed_point = trace[trace.len() - 1];
        assert!(
            trace[trace.len() - 50..].iter().all(|&t| t == fixed_point),
            "threshold still moving at the tail: {:?}",
            &trace[trace.len() - 6..],
        );
    }

    #[test]
    fn observe_window_reports_its_action() {
        let mut t = Tuner::new(TuningMode::EnergyBudget { budget: 10 }, 0.2).unwrap();
        let raised =
            t.observe_window(WindowStats { window_len: 10, fired: 40, ..WindowStats::default() });
        assert_eq!(raised, ThresholdAction::Raised);
        let lowered =
            t.observe_window(WindowStats { window_len: 10, fired: 0, ..WindowStats::default() });
        assert_eq!(lowered, ThresholdAction::Lowered);
        let held =
            t.observe_window(WindowStats { window_len: 10, fired: 10, ..WindowStats::default() });
        assert_eq!(held, ThresholdAction::Held);
        assert_eq!(
            t.observe_window(WindowStats::default()),
            ThresholdAction::Held,
            "empty window is ignored"
        );
    }

    #[test]
    fn history_is_bounded_with_eviction_accounting() {
        let mut t = Tuner::new(TuningMode::EnergyBudget { budget: 0 }, 1.0)
            .unwrap()
            .with_history_capacity(8);
        assert_eq!(t.history_capacity(), 8);
        for _ in 0..100 {
            t.observe_window(WindowStats { window_len: 10, fired: 10, ..WindowStats::default() });
        }
        // 1 initial entry + 100 windows = 101 recorded, 8 kept.
        assert_eq!(t.history().len(), 8);
        assert_eq!(t.history_evictions(), 93);
        // The retained tail is the most recent run of thresholds.
        assert_eq!(t.history()[7], t.threshold());
    }

    #[test]
    fn default_history_capacity_preserves_fig_sweep_fidelity() {
        let t = Tuner::new(TuningMode::BestQuality, 0.5).unwrap();
        assert_eq!(t.history_capacity(), DEFAULT_HISTORY_CAPACITY);
        assert_eq!(t.history_evictions(), 0);
    }

    #[test]
    fn calibration_sanitizes_nan_and_inf_predictions() {
        // A degenerate checker: half the predictions are NaN/inf. The old
        // `.partial_cmp(..).expect("finite")` panicked here.
        let predicted = [f64::NAN, 0.5, f64::INFINITY, 0.05, f64::NEG_INFINITY, 0.3];
        let true_errors = [0.5, 0.5, 0.4, 0.02, 0.3, 0.01];
        let cal = calibrate_threshold_detailed(&predicted, &true_errors, 0.05);
        assert_eq!(cal.samples, 6);
        assert_eq!(cal.sanitized, 3);
        assert!(cal.threshold.is_finite() && cal.threshold > 0.0, "threshold {}", cal.threshold);
    }

    #[test]
    fn calibration_with_all_non_finite_predictions_fires_everything() {
        let predicted = [f64::NAN, f64::INFINITY, f64::NAN];
        let true_errors = [0.9, 0.9, 0.9];
        let cal = calibrate_threshold_detailed(&predicted, &true_errors, 0.05);
        assert_eq!(cal.sanitized, 3);
        // No finite prediction to anchor on: the floor threshold means
        // every prediction above it fires.
        assert_eq!(cal.threshold, 1e-6);
    }

    #[test]
    fn calibration_with_negative_scores_is_sign_correct() {
        // Signed estimates make negative scores legal. The old scan
        // clamped every negative cut to 1e-6 (firing nothing) and the
        // already-within-budget branch multiplied by 1.01, which moves a
        // negative bound the wrong way.
        let scores = [-0.5, -0.05, -0.4, -0.02, -0.3, -0.01];
        let errors = [0.5, 0.05, 0.4, 0.02, 0.3, 0.01];
        let th = calibrate_threshold(&scores, &errors, 0.05);
        // Everything must still be fixable: the threshold sits below the
        // scores the scan selected, not clamped above all of them.
        let remaining: f64 =
            scores.iter().zip(&errors).filter(|(&s, _)| s <= th).map(|(_, &e)| e).sum();
        assert!(remaining / errors.len() as f64 <= 0.05, "threshold {th}");
        assert!(th < 0.0, "negative scores need a negative cut, got {th}");

        // Already within budget: nothing may fire, including the largest
        // (negative) score.
        let easy = calibrate_threshold(&[-0.2, -0.1], &[0.01, 0.01], 0.5);
        assert!(easy > -0.1 && easy < 0.0, "cut {easy} must sit just above -0.1");

        // Mixed-sign vector: the selected positive scores keep the
        // historical cut, negatives fire below it.
        let mixed_scores = [0.4, -0.3, 0.2, -0.1];
        let mixed_errors = [0.4, 0.3, 0.2, 0.1];
        let th = calibrate_threshold(&mixed_scores, &mixed_errors, 0.0);
        let remaining: f64 =
            mixed_scores.iter().zip(&mixed_errors).filter(|(&s, _)| s <= th).map(|(_, &e)| e).sum();
        assert!(remaining <= 1e-12, "threshold {th} must fire everything");
    }

    #[test]
    fn calibration_fires_duplicated_scores_together() {
        // Duplicates straddling the cut: four invocations share the score
        // 0.3, and fixing at least three of them is required. Under the
        // strict-> rule the threshold must land below 0.3 so all four
        // fire — firing fewer than promised broke the TOQ contract.
        let scores = [0.3, 0.3, 0.3, 0.3, 0.1, 0.1];
        let errors = [0.4, 0.4, 0.4, 0.4, 0.0, 0.0];
        let th = calibrate_threshold(&scores, &errors, 0.1);
        let fired = scores.iter().filter(|&&s| s > th).count();
        assert!(th < 0.3, "threshold {th}");
        assert_eq!(fired, 4, "every duplicate at the cut fires");
        let remaining: f64 =
            scores.iter().zip(&errors).filter(|(&s, _)| s <= th).map(|(_, &e)| e).sum();
        assert!(remaining / errors.len() as f64 <= 0.1);
    }

    #[test]
    fn compensation_band_tracks_the_threshold() {
        let mut t = Tuner::new(TuningMode::TargetQuality { toq: 0.9 }, 0.2)
            .unwrap()
            .with_compensation_band(0.5)
            .unwrap();
        assert_eq!(t.compensation_band(), Some(0.5));
        // Quality headroom: threshold raises, band widens.
        t.observe_window(WindowStats {
            window_len: 100,
            fired: 5,
            mean_unfixed_predicted_error: 0.01,
            cpu_capacity: 50,
        });
        let widened = t.compensation_band().unwrap();
        assert!(widened > 0.5, "band {widened}");
        // Quality violation: threshold lowers, band shrinks but never
        // below the threshold.
        for _ in 0..200 {
            t.observe_window(WindowStats {
                window_len: 100,
                fired: 5,
                mean_unfixed_predicted_error: 0.9,
                cpu_capacity: 50,
            });
        }
        let band = t.compensation_band().unwrap();
        assert!(band < widened);
        assert!(band >= t.threshold(), "band {band} vs threshold {}", t.threshold());
    }

    #[test]
    fn compensation_band_rejects_degenerate_values_and_survives_reset() {
        assert!(Tuner::new(TuningMode::BestQuality, 0.1)
            .unwrap()
            .with_compensation_band(f64::NAN)
            .is_err());
        assert!(Tuner::new(TuningMode::BestQuality, 0.1)
            .unwrap()
            .with_compensation_band(0.0)
            .is_err());
        // A band below the threshold clamps up to it (empty band).
        let t =
            Tuner::new(TuningMode::BestQuality, 0.3).unwrap().with_compensation_band(0.1).unwrap();
        assert_eq!(t.compensation_band(), Some(0.3));
        // Watchdog recalibration keeps the band a valid upper cut.
        let mut t =
            Tuner::new(TuningMode::BestQuality, 0.2).unwrap().with_compensation_band(0.4).unwrap();
        t.reset_to(0.9);
        assert_eq!(t.compensation_band(), Some(0.9));
    }

    #[test]
    fn tier_scale_co_adapts_with_the_threshold_inside_bounds() {
        let mut t = Tuner::new(TuningMode::TargetQuality { toq: 0.9 }, 0.2)
            .unwrap()
            .with_tier_scale(1.0)
            .unwrap();
        assert_eq!(t.tier_scale(), Some(1.0));
        // Quality headroom never widens the bar past its calibrated base:
        // the offline calibration already proved the widest safe bar, and
        // the checker cannot vouch for a cheap tier's extra error.
        t.observe_window(WindowStats {
            window_len: 100,
            fired: 5,
            mean_unfixed_predicted_error: 0.01,
            cpu_capacity: 50,
        });
        assert_eq!(t.tier_scale(), Some(TIER_SCALE_BOUNDS.1));
        // Sustained violations: bar shrinks but never below the floor.
        for _ in 0..200 {
            t.observe_window(WindowStats {
                window_len: 100,
                fired: 5,
                mean_unfixed_predicted_error: 0.9,
                cpu_capacity: 50,
            });
        }
        let scale = t.tier_scale().unwrap();
        assert!(scale < 1.0);
        assert!(scale >= TIER_SCALE_BOUNDS.0, "scale {scale}");
        // Sustained headroom: bar relaxes back up, capping at the base.
        for _ in 0..200 {
            t.observe_window(WindowStats {
                window_len: 100,
                fired: 5,
                mean_unfixed_predicted_error: 0.0,
                cpu_capacity: 50,
            });
        }
        assert_eq!(t.tier_scale(), Some(TIER_SCALE_BOUNDS.1));
    }

    #[test]
    fn tier_scale_rejects_degenerate_values_and_defaults_off() {
        assert!(Tuner::new(TuningMode::BestQuality, 0.1).unwrap().with_tier_scale(0.0).is_err());
        assert!(Tuner::new(TuningMode::BestQuality, 0.1)
            .unwrap()
            .with_tier_scale(f64::NAN)
            .is_err());
        let t = Tuner::new(TuningMode::BestQuality, 0.1).unwrap();
        assert_eq!(t.tier_scale(), None, "zoo routing is opt-in");
        // Out-of-range scales clamp into the bounds rather than erroring.
        let t = Tuner::new(TuningMode::BestQuality, 0.1).unwrap().with_tier_scale(99.0).unwrap();
        assert_eq!(t.tier_scale(), Some(TIER_SCALE_BOUNDS.1));
    }

    #[test]
    fn finite_inputs_calibrate_identically_to_the_pre_sanitization_path() {
        // The sanitization pass must be a no-op for finite inputs: same
        // ordering semantics, same tiebreak, bit-identical threshold.
        let errors = vec![0.5, 0.05, 0.4, 0.02, 0.3, 0.01];
        let th = calibrate_threshold(&errors, &errors, 0.05);
        let remaining: f64 = errors.iter().filter(|&&e| e <= th).sum();
        assert!(remaining / errors.len() as f64 <= 0.05, "threshold {th}");
        let detailed = calibrate_threshold_detailed(&errors, &errors, 0.05);
        assert_eq!(detailed.threshold.to_bits(), th.to_bits());
        assert_eq!(detailed.sanitized, 0);
    }
}
