//! §3.4 — online tuning of the detection threshold.
//!
//! The tuning threshold decides which predicted errors fire the check. A
//! larger threshold re-executes fewer iterations (more energy saving, lower
//! quality); a smaller one the reverse. The tuner moves the threshold
//! between invocation windows under one of three user-selected modes.

use crate::{Result, RumbaError};

/// The user's tuning objective (§3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TuningMode {
    /// TOQ mode: keep (estimated) output quality at or above the target.
    /// `toq = 0.9` means 90 % quality, i.e. a 10 % error budget.
    TargetQuality {
        /// Target output quality in `(0, 1]`.
        toq: f64,
    },
    /// Energy mode: never re-execute more than `budget` iterations per
    /// window; use less if quality allows.
    EnergyBudget {
        /// Re-execution budget per invocation window.
        budget: usize,
    },
    /// Quality mode: re-execute as much as the CPU can overlap with the
    /// accelerator (maximize quality at zero performance cost).
    BestQuality,
}

/// Per-window feedback the tuner adapts on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStats {
    /// Iterations in the window.
    pub window_len: usize,
    /// Iterations whose check fired (and were re-executed).
    pub fired: usize,
    /// Mean predicted error of the iterations that were *not* fixed — the
    /// tuner's online quality estimate (it never sees exact results).
    pub mean_unfixed_predicted_error: f64,
    /// How many re-executions the CPU could have overlapped with the
    /// accelerator in this window (capacity for [`TuningMode::BestQuality`]).
    pub cpu_capacity: usize,
}

/// How the threshold moves on each adjustment.
///
/// The paper uses symmetric multiplicative steps; the AIMD alternative
/// (additive relax, multiplicative protect — TCP's congestion shape) reacts
/// faster to quality violations while creeping slowly back toward energy
/// savings. `ablate_tuner_policy` compares the two.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepPolicy {
    /// Symmetric geometric steps: raise multiplies by `1 + step`, lower by
    /// `1 - step`.
    Multiplicative {
        /// Relative step in `(0, 1)`.
        step: f64,
    },
    /// Additive-increase (raise adds `increase × current`, capped small),
    /// multiplicative-decrease (lower multiplies by `1 - decrease`).
    Aimd {
        /// Additive raise fraction per window.
        increase: f64,
        /// Multiplicative backoff in `(0, 1)`.
        decrease: f64,
    },
}

impl Default for StepPolicy {
    fn default() -> Self {
        StepPolicy::Multiplicative { step: 0.15 }
    }
}

impl StepPolicy {
    fn validate(&self) -> Result<()> {
        let ok = match *self {
            StepPolicy::Multiplicative { step } => 0.0 < step && step < 1.0,
            StepPolicy::Aimd { increase, decrease } => {
                increase > 0.0 && 0.0 < decrease && decrease < 1.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(RumbaError::InvalidConfig { name: "step_policy", value: format!("{self:?}") })
        }
    }

    /// Threshold after a "fix fewer / save energy" adjustment.
    fn raise(&self, threshold: f64) -> f64 {
        match *self {
            StepPolicy::Multiplicative { step } => threshold * (1.0 + step),
            StepPolicy::Aimd { increase, .. } => threshold * (1.0 + increase),
        }
    }

    /// Threshold after a "fix more / protect quality" adjustment.
    fn lower(&self, threshold: f64) -> f64 {
        match *self {
            StepPolicy::Multiplicative { step } => threshold * (1.0 - step),
            StepPolicy::Aimd { decrease, .. } => threshold * (1.0 - decrease),
        }
    }
}

/// The online threshold controller.
///
/// # Examples
///
/// ```
/// use rumba_core::tuner::{Tuner, TuningMode, WindowStats};
///
/// let mut tuner = Tuner::new(TuningMode::TargetQuality { toq: 0.9 }, 0.2).unwrap();
/// let before = tuner.threshold();
/// // Quality estimate far above the 10% budget → threshold must drop.
/// tuner.observe_window(WindowStats {
///     window_len: 100, fired: 5, mean_unfixed_predicted_error: 0.4, cpu_capacity: 20,
/// });
/// assert!(tuner.threshold() < before);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tuner {
    mode: TuningMode,
    threshold: f64,
    history: Vec<f64>,
    policy: StepPolicy,
    min_threshold: f64,
    max_threshold: f64,
}

impl Tuner {
    /// Creates a tuner starting from `initial_threshold` (typically the
    /// offline calibration from [`calibrate_threshold`]) with the default
    /// multiplicative step policy.
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::InvalidConfig`] for nonpositive thresholds or
    /// an out-of-range TOQ.
    pub fn new(mode: TuningMode, initial_threshold: f64) -> Result<Self> {
        Self::with_policy(mode, initial_threshold, StepPolicy::default())
    }

    /// [`Tuner::new`] with an explicit [`StepPolicy`].
    ///
    /// # Errors
    ///
    /// Returns [`RumbaError::InvalidConfig`] for nonpositive thresholds, an
    /// out-of-range TOQ, or a degenerate policy.
    pub fn with_policy(
        mode: TuningMode,
        initial_threshold: f64,
        policy: StepPolicy,
    ) -> Result<Self> {
        if !(initial_threshold > 0.0 && initial_threshold.is_finite()) {
            return Err(RumbaError::InvalidConfig {
                name: "initial_threshold",
                value: initial_threshold.to_string(),
            });
        }
        if let TuningMode::TargetQuality { toq } = mode {
            if !(0.0 < toq && toq <= 1.0) {
                return Err(RumbaError::InvalidConfig { name: "toq", value: toq.to_string() });
            }
        }
        policy.validate()?;
        Ok(Self {
            mode,
            threshold: initial_threshold,
            history: vec![initial_threshold],
            policy,
            min_threshold: 1e-6,
            max_threshold: 1e6,
        })
    }

    /// The current firing threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The tuning objective.
    #[must_use]
    pub fn mode(&self) -> TuningMode {
        self.mode
    }

    /// Threshold after each observed window, starting with the initial one.
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Iterations the current mode allows to be re-executed in a window
    /// (`None` = unbounded). Energy mode enforces a hard cap (§3.4: once
    /// over budget, re-execution stops for the rest of the invocation).
    #[must_use]
    pub fn reexec_cap(&self, stats_cpu_capacity: usize) -> Option<usize> {
        match self.mode {
            TuningMode::TargetQuality { .. } => None,
            TuningMode::EnergyBudget { budget } => Some(budget),
            TuningMode::BestQuality => Some(stats_cpu_capacity),
        }
    }

    /// Feeds one completed window back; the threshold moves for the next
    /// window.
    pub fn observe_window(&mut self, stats: WindowStats) {
        if stats.window_len == 0 {
            return;
        }
        match self.mode {
            TuningMode::TargetQuality { toq } => {
                let budget = 1.0 - toq;
                if stats.mean_unfixed_predicted_error > budget {
                    self.threshold = self.policy.lower(self.threshold); // fix more
                } else if stats.mean_unfixed_predicted_error < 0.5 * budget {
                    self.threshold = self.policy.raise(self.threshold); // save energy
                }
            }
            TuningMode::EnergyBudget { budget } => {
                if stats.fired > budget {
                    self.threshold = self.policy.raise(self.threshold);
                } else if stats.fired + stats.fired / 4 < budget {
                    self.threshold = self.policy.lower(self.threshold);
                }
            }
            TuningMode::BestQuality => {
                if stats.fired > stats.cpu_capacity {
                    // CPU fell behind: fix fewer next invocation.
                    self.threshold = self.policy.raise(self.threshold);
                } else if stats.fired < stats.cpu_capacity {
                    // CPU under-utilized: it can fix more.
                    self.threshold = self.policy.lower(self.threshold);
                }
            }
        }
        self.threshold = self.threshold.clamp(self.min_threshold, self.max_threshold);
        self.history.push(self.threshold);
    }
}

/// Offline threshold calibration: the smallest threshold on *predicted*
/// errors such that fixing every training invocation predicted above it
/// brings training output error within `target_error`.
///
/// Falls back to the smallest positive predicted error (fix everything
/// predictable) when even that cannot reach the target.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn calibrate_threshold(predicted: &[f64], true_errors: &[f64], target_error: f64) -> f64 {
    assert_eq!(predicted.len(), true_errors.len(), "parallel slices required");
    let n = predicted.len();
    if n == 0 {
        return target_error.max(1e-6);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order
        .sort_by(|&a, &b| predicted[b].partial_cmp(&predicted[a]).expect("finite").then(a.cmp(&b)));
    let total: f64 = true_errors.iter().sum();
    let mut remaining = total;
    if remaining / n as f64 <= target_error {
        // Already within budget: fire only above the largest prediction.
        return (predicted[order[0]] * 1.01).max(1e-6);
    }
    for &i in &order {
        remaining -= true_errors[i];
        if remaining / n as f64 <= target_error {
            return predicted[i].max(1e-6) * 0.999;
        }
    }
    let min_pos = predicted.iter().copied().filter(|&p| p > 0.0).fold(f64::INFINITY, f64::min);
    if min_pos.is_finite() {
        min_pos * 0.999
    } else {
        1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_configs() {
        assert!(Tuner::new(TuningMode::BestQuality, 0.0).is_err());
        assert!(Tuner::new(TuningMode::TargetQuality { toq: 1.5 }, 0.1).is_err());
        assert!(Tuner::new(TuningMode::TargetQuality { toq: 0.9 }, f64::NAN).is_err());
    }

    #[test]
    fn toq_mode_raises_threshold_when_quality_is_good() {
        let mut t = Tuner::new(TuningMode::TargetQuality { toq: 0.9 }, 0.2).unwrap();
        t.observe_window(WindowStats {
            window_len: 100,
            fired: 30,
            mean_unfixed_predicted_error: 0.01,
            cpu_capacity: 50,
        });
        assert!(t.threshold() > 0.2);
    }

    #[test]
    fn energy_mode_tracks_budget() {
        let mut t = Tuner::new(TuningMode::EnergyBudget { budget: 10 }, 0.2).unwrap();
        t.observe_window(WindowStats { window_len: 100, fired: 40, ..WindowStats::default() });
        assert!(t.threshold() > 0.2, "over budget → raise");
        let th = t.threshold();
        t.observe_window(WindowStats { window_len: 100, fired: 2, ..WindowStats::default() });
        assert!(t.threshold() < th, "under budget → lower");
        assert_eq!(t.reexec_cap(99), Some(10));
    }

    #[test]
    fn quality_mode_chases_cpu_capacity() {
        let mut t = Tuner::new(TuningMode::BestQuality, 0.2).unwrap();
        t.observe_window(WindowStats {
            window_len: 100,
            fired: 5,
            cpu_capacity: 20,
            ..WindowStats::default()
        });
        assert!(t.threshold() < 0.2, "capacity spare → fix more");
        assert_eq!(t.reexec_cap(20), Some(20));
    }

    #[test]
    fn threshold_stays_clamped_and_history_grows() {
        let mut t = Tuner::new(TuningMode::EnergyBudget { budget: 0 }, 1.0).unwrap();
        for _ in 0..200 {
            t.observe_window(WindowStats { window_len: 10, fired: 10, ..WindowStats::default() });
        }
        assert!(t.threshold() <= 1e6);
        assert_eq!(t.history().len(), 201);
    }

    #[test]
    fn empty_window_is_ignored() {
        let mut t = Tuner::new(TuningMode::BestQuality, 0.5).unwrap();
        t.observe_window(WindowStats::default());
        assert_eq!(t.threshold(), 0.5);
        assert_eq!(t.history().len(), 1);
    }

    #[test]
    fn aimd_policy_backs_off_harder_than_it_relaxes() {
        let policy = StepPolicy::Aimd { increase: 0.05, decrease: 0.4 };
        let mut t =
            Tuner::with_policy(TuningMode::TargetQuality { toq: 0.9 }, 0.2, policy).unwrap();
        // Quality violation: strong multiplicative backoff.
        t.observe_window(WindowStats {
            window_len: 100,
            fired: 0,
            mean_unfixed_predicted_error: 0.5,
            cpu_capacity: 10,
        });
        assert!((t.threshold() - 0.2 * 0.6).abs() < 1e-12);
        // Headroom: gentle additive-style relax.
        let before = t.threshold();
        t.observe_window(WindowStats {
            window_len: 100,
            fired: 0,
            mean_unfixed_predicted_error: 0.0,
            cpu_capacity: 10,
        });
        assert!((t.threshold() - before * 1.05).abs() < 1e-12);
    }

    #[test]
    fn degenerate_policies_rejected() {
        for policy in [
            StepPolicy::Multiplicative { step: 0.0 },
            StepPolicy::Multiplicative { step: 1.0 },
            StepPolicy::Aimd { increase: 0.0, decrease: 0.2 },
            StepPolicy::Aimd { increase: 0.1, decrease: 1.0 },
        ] {
            assert!(Tuner::with_policy(TuningMode::BestQuality, 0.1, policy).is_err());
        }
    }

    #[test]
    fn calibration_reaches_the_target_on_train() {
        // Predicted == true errors (a perfect checker).
        let errors = vec![0.5, 0.05, 0.4, 0.02, 0.3, 0.01];
        let th = calibrate_threshold(&errors, &errors, 0.05);
        // Fixing everything above th must bring mean error ≤ 0.05.
        let remaining: f64 = errors.iter().filter(|&&e| e <= th).sum();
        assert!(remaining / errors.len() as f64 <= 0.05, "threshold {th}");
    }

    #[test]
    fn calibration_when_already_within_budget() {
        let errors = vec![0.01, 0.02];
        let th = calibrate_threshold(&errors, &errors, 0.5);
        assert!(th > 0.02, "nothing should fire");
    }

    #[test]
    fn calibration_handles_empty() {
        assert!(calibrate_threshold(&[], &[], 0.1) > 0.0);
    }
}
