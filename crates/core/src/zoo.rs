//! The invocation-driven model zoo and quality/energy router.
//!
//! A single trained accelerator gives the tuner exactly one quality/energy
//! operating point per kernel; the whole trade space is the firing
//! threshold. Following the invocation-driven zoo line of work (and the
//! autoAx-style offline sweep), [`ModelZoo`] trains *several* approximators
//! per kernel at distinct quality/energy points — smaller hidden layers
//! found by [`TopologySearch`], lowered to the true fixed-point datapath
//! with fewer fractional bits — and a cheap per-tier linear **router**
//! predicts, from the input features alone, each tier's invocation error.
//! Per invocation the runtime then picks the cheapest tier predicted to
//! meet the session's quality budget, with exact CPU execution as the
//! final tier when even the full-quality model is predicted to miss.
//!
//! Every routing decision is a pure function of `(input, routing bar)`:
//! the runtime replays decisions serially (the same discipline as the
//! checker/tuner loop), so routed streams are bit-identical at any
//! threads × SIMD × shards combination.

use rumba_accel::{Npu, NpuParams};
use rumba_apps::Kernel;
use rumba_nn::TopologySearch;
use rumba_predict::LinearModel;

use crate::cache::TrainedModelCache;
use crate::trainer::{invocation_errors, nn_params_for, OfflineConfig, TrainedApp};
use crate::{Result, RumbaError};

/// One quality/energy point of the zoo: an accelerator plus the router's
/// error predictor for it.
#[derive(Debug, Clone)]
pub struct ZooTier {
    /// The accelerator evaluating this tier's model.
    pub npu: Npu,
    /// Linear fit `input features -> this tier's invocation error` — the
    /// router's per-tier quality forecast (pure, stateless).
    pub router: LinearModel,
    /// Mean invocation error of this tier on the train split.
    pub train_error: f64,
}

/// The per-kernel menu of approximators, cheapest first; the last model
/// tier is always the full-quality Rumba accelerator, and index
/// [`ModelZoo::cpu_tier`] denotes exact CPU execution.
#[derive(Debug, Clone)]
pub struct ModelZoo {
    tiers: Vec<ZooTier>,
}

impl ModelZoo {
    /// Builds a zoo from pre-trained tiers (cheapest first). Used by the
    /// cache decode path; [`train_zoo`] is the normal constructor.
    ///
    /// # Errors
    ///
    /// Rejects an empty tier list.
    pub fn from_tiers(tiers: Vec<ZooTier>) -> Result<Self> {
        if tiers.is_empty() {
            return Err(RumbaError::InvalidConfig { name: "zoo tiers", value: "0".into() });
        }
        Ok(Self { tiers })
    }

    /// Number of model tiers (excluding the exact-CPU tier).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// A zoo always has at least one tier.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The model tiers, cheapest first.
    #[must_use]
    pub fn tiers(&self) -> &[ZooTier] {
        &self.tiers
    }

    /// One tier by index.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a model-tier index.
    #[must_use]
    pub fn tier(&self, t: usize) -> &ZooTier {
        &self.tiers[t]
    }

    /// The index denoting exact CPU execution (one past the model tiers).
    #[must_use]
    pub fn cpu_tier(&self) -> usize {
        self.tiers.len()
    }

    /// Routes one invocation: the cheapest model tier whose predicted
    /// invocation error is at or under `bar`, falling back to exact CPU
    /// execution ([`ModelZoo::cpu_tier`]) when every model tier is
    /// predicted to miss. Pure — safe to evaluate from any thread, and
    /// bit-identical wherever it is evaluated.
    ///
    /// A single-tier zoo has no routing choice: it always dispatches its
    /// one model, which makes a zoo of size 1 decision-for-decision
    /// identical to the pre-zoo single-model path (the checker/recovery
    /// loop remains the quality guard, exactly as before).
    #[must_use]
    pub fn route(&self, input: &[f64], bar: f64) -> usize {
        if self.tiers.len() == 1 {
            return 0;
        }
        for (t, tier) in self.tiers.iter().enumerate() {
            if tier.router.predict(input) <= bar {
                return t;
            }
        }
        self.cpu_tier()
    }

    /// Accelerator cycles one invocation of tier `t` costs (the per-tier
    /// figure the energy model aggregates).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a model-tier index.
    #[must_use]
    pub fn tier_cycles(&self, t: usize) -> u64 {
        self.tiers[t].npu.cycles_per_invocation()
    }

    /// Calibrates the session's base routing bar on the train split: the
    /// widest bar (drawn from the per-tier router predictions on `rows`)
    /// whose routed **mean** true invocation error still fits `budget`.
    /// `tier_errors[t][r]` is model tier `t`'s measured error on row `r`
    /// (exact-CPU rows contribute zero error). This is the same
    /// mean-error contract [`crate::tuner::calibrate_threshold`] uses for
    /// the firing threshold — a per-invocation cut of `budget` itself
    /// would be far stricter than the TOQ (which bounds the mean),
    /// starving the cheap tiers on easy kernels and over-routing to exact
    /// CPU on hard ones. Calibrating against the measured errors rather
    /// than the routers' own predictions keeps an optimistic router from
    /// widening the bar past what the tiers actually deliver.
    ///
    /// Falls back to `budget` for a single-tier zoo (no routing choice),
    /// empty rows, or mismatched `tier_errors`.
    #[must_use]
    pub fn calibrate_bar(&self, rows: &[&[f64]], tier_errors: &[Vec<f64>], budget: f64) -> f64 {
        let n = rows.len();
        if self.tiers.len() == 1
            || n == 0
            || tier_errors.len() != self.tiers.len()
            || tier_errors.iter().any(|e| e.len() != n)
        {
            return budget;
        }
        let preds: Vec<Vec<f64>> = rows
            .iter()
            .map(|row| self.tiers.iter().map(|t| t.router.predict(row)).collect())
            .collect();
        let mut candidates: Vec<f64> =
            preds.iter().flatten().copied().filter(|p| p.is_finite() && *p > 0.0).collect();
        candidates.sort_by(f64::total_cmp);
        candidates.dedup();
        // The routed mean is evaluated on a quantile grid of the
        // prediction set (the mean is not exactly monotone in the bar once
        // true errors replace predictions, so every candidate is scored).
        // A bar is feasible only when BOTH halves of the split fit the
        // budget independently: the routers were fit on these same rows,
        // so a bar whose budget only balances across the full split is a
        // router-overfit artifact that will not survive unseen inputs.
        const GRID: usize = 512;
        let step = candidates.len().div_ceil(GRID).max(1);
        let half = n / 2;
        let mean_over = |bar: f64, range: std::ops::Range<usize>| -> f64 {
            let len = range.len().max(1);
            range
                .map(|r| match preds[r].iter().position(|&p| p <= bar) {
                    Some(t) => tier_errors[t][r],
                    None => 0.0,
                })
                .sum::<f64>()
                / len as f64
        };
        let fits = |bar: f64| -> bool {
            mean_over(bar, 0..half) <= budget && mean_over(bar, half..n) <= budget
        };
        let mut best = 0.0f64;
        for bar in candidates.iter().copied().step_by(step).chain(std::iter::once(budget)) {
            if bar > best && fits(bar) {
                best = bar;
            }
        }
        // No feasible positive bar: an (effectively) all-CPU bar is always
        // quality-safe.
        if best > 0.0 {
            best
        } else {
            f64::MIN_POSITIVE
        }
    }

    /// [`ModelZoo::calibrate_bar`] with the per-tier train errors measured
    /// in place: runs every model tier over `train` and calibrates against
    /// the observed invocation errors.
    ///
    /// # Errors
    ///
    /// Propagates accelerator invocation failures.
    pub fn calibrate_bar_on(
        &self,
        kernel: &dyn Kernel,
        train: &rumba_nn::NnDataset,
        budget: f64,
    ) -> Result<f64> {
        if self.tiers.len() == 1 || train.is_empty() {
            return Ok(budget);
        }
        let rows: Vec<&[f64]> = (0..train.len()).map(|i| train.input(i)).collect();
        let tier_errors: Vec<Vec<f64>> = self
            .tiers
            .iter()
            .map(|t| invocation_errors(kernel, &t.npu, train))
            .collect::<Result<_>>()?;
        Ok(self.calibrate_bar(&rows, &tier_errors, budget))
    }
}

/// Trains an `n_tiers` zoo for one kernel, consulting the
/// environment-configured [`TrainedModelCache`].
///
/// # Errors
///
/// Rejects `n_tiers == 0`; propagates training failures.
pub fn train_zoo(
    kernel: &dyn Kernel,
    app: &TrainedApp,
    cfg: &OfflineConfig,
    n_tiers: usize,
) -> Result<ModelZoo> {
    train_zoo_with_cache(kernel, app, cfg, n_tiers, &TrainedModelCache::from_env())
}

/// [`train_zoo`] with an explicit cache (tests inject temp directories).
///
/// The top tier reuses the app's already-trained Rumba accelerator
/// verbatim, so a zoo of size 1 carries bit-identical weights to the
/// single-model path. Each cheaper tier runs a [`TopologySearch`] over
/// halved hidden sizes with a relaxed error cap and is lowered onto the
/// fixed-point datapath with fewer fractional bits; per tier, a linear
/// router fit maps input features to that tier's observed invocation
/// error on the train split.
///
/// # Errors
///
/// Rejects `n_tiers == 0`; propagates training failures.
pub fn train_zoo_with_cache(
    kernel: &dyn Kernel,
    app: &TrainedApp,
    cfg: &OfflineConfig,
    n_tiers: usize,
    cache: &TrainedModelCache,
) -> Result<ModelZoo> {
    if n_tiers == 0 {
        return Err(RumbaError::InvalidConfig { name: "zoo tiers", value: "0".into() });
    }
    let nn_params = nn_params_for(kernel);
    if let Some(zoo) = cache.load_zoo(kernel.name(), cfg, n_tiers, &nn_params) {
        return Ok(zoo);
    }
    let train = kernel.generate(rumba_apps::Split::Train, cfg.seed);
    if train.is_empty() {
        return Err(RumbaError::EmptyWorkload);
    }
    let rows: Vec<&[f64]> = (0..train.len()).map(|i| train.input(i)).collect();
    let fit_tier = |npu: Npu| -> Result<ZooTier> {
        let errors = invocation_errors(kernel, &npu, &train)?;
        let train_error = errors.iter().sum::<f64>() / errors.len() as f64;
        let router = LinearModel::fit(&rows, &errors, cfg.ridge)?;
        Ok(ZooTier { npu, router, train_error })
    };

    let top = fit_tier(app.rumba_npu.clone())?;
    let topology = kernel.rumba_topology();
    let hidden = &topology[1..topology.len() - 1];
    let mut cheap: Vec<ZooTier> = Vec::new();
    // Level 1 is one step below the full model, level `n_tiers - 1` the
    // cheapest; candidates shrink the full topology's hidden widths by
    // 2^level and the datapath loses two fractional bits per level.
    for level in 1..n_tiers {
        let mut sizes: Vec<usize> = hidden.iter().map(|&h| (h >> level).max(1)).collect();
        sizes.push(1);
        sizes.sort_unstable();
        sizes.dedup();
        // The cap relaxes with the level: each step down tolerates twice
        // the full model's training error, so the search can actually pick
        // a smaller network instead of falling back to the biggest one.
        let cap = (top.train_error.max(1e-6)) * (1u64 << level) as f64;
        let search = TopologySearch::new(cap)
            .with_hidden_sizes(&sizes)
            .with_max_hidden_layers(1)
            .with_train_params(nn_params.clone());
        let (model, _report) = search.run(&train, cfg.seed ^ (0x5a00 + level as u64))?;
        let frac_bits = 12u32.saturating_sub(2 * level as u32).max(4);
        let params =
            NpuParams { precision_bits: Some(frac_bits), fixed_point: true, ..cfg.npu_params };
        cheap.push(fit_tier(Npu::new(model, params))?);
    }
    // Cheapest first; a "cheap" tier that came out at least as expensive as
    // the full model is off the Pareto front and is dropped.
    cheap.retain(|t| t.npu.cycles_per_invocation() < top.npu.cycles_per_invocation());
    cheap.sort_by_key(|t| t.npu.cycles_per_invocation());
    let mut tiers = cheap;
    tiers.push(top);
    let zoo = ModelZoo::from_tiers(tiers)?;
    cache.store_zoo(kernel.name(), cfg, n_tiers, &nn_params, &zoo);
    Ok(zoo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_app;
    use rumba_apps::kernel_by_name;

    fn gaussian_zoo(n: usize) -> (Box<dyn Kernel>, TrainedApp, ModelZoo) {
        let kernel = kernel_by_name("gaussian").unwrap();
        let cfg = OfflineConfig::default();
        let app = train_app(kernel.as_ref(), &cfg).unwrap();
        let zoo =
            train_zoo_with_cache(kernel.as_ref(), &app, &cfg, n, &TrainedModelCache::disabled())
                .unwrap();
        (kernel, app, zoo)
    }

    #[test]
    fn zoo_of_one_is_the_rumba_accelerator_verbatim() {
        let (_, app, zoo) = gaussian_zoo(1);
        assert_eq!(zoo.len(), 1);
        assert_eq!(zoo.tier(0).npu, app.rumba_npu);
        // No routing choice exists, so every input routes to tier 0 even
        // with an impossible bar.
        assert_eq!(zoo.route(&[0.5], -1.0), 0);
    }

    #[test]
    fn tiers_are_cheapest_first_and_top_is_the_full_model() {
        let (_, app, zoo) = gaussian_zoo(3);
        assert!(zoo.len() >= 2, "gaussian must yield at least one cheaper tier");
        let cycles: Vec<u64> = (0..zoo.len()).map(|t| zoo.tier_cycles(t)).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "{cycles:?}");
        assert_eq!(zoo.tier(zoo.len() - 1).npu, app.rumba_npu);
        assert!(
            cycles[0] < *cycles.last().unwrap(),
            "the cheapest tier must actually be cheaper: {cycles:?}"
        );
    }

    #[test]
    fn routing_is_monotone_in_the_bar() {
        let (kernel, _, zoo) = gaussian_zoo(3);
        let test = kernel.generate(rumba_apps::Split::Test, 42);
        let mut saw_cheap = false;
        let mut saw_cpu = false;
        for i in (0..test.len()).step_by(41) {
            let input = test.input(i);
            // An infinite bar always admits the cheapest tier; an
            // impossible bar always falls through to exact CPU.
            assert_eq!(zoo.route(input, f64::INFINITY), 0);
            assert_eq!(zoo.route(input, -1.0), zoo.cpu_tier());
            let mid = zoo.route(input, 0.1);
            assert!(mid <= zoo.cpu_tier());
            saw_cheap |= mid < zoo.len() - 1;
            saw_cpu |= mid == zoo.cpu_tier();
            // Widening the bar can only move the decision cheaper.
            assert!(zoo.route(input, 0.4) <= mid);
        }
        assert!(saw_cheap || saw_cpu, "a 0.1 bar must exercise some routing spread");
    }

    #[test]
    fn calibrated_bar_keeps_the_routed_mean_train_error_inside_the_budget() {
        let (kernel, _, zoo) = gaussian_zoo(3);
        let train = kernel.generate(rumba_apps::Split::Train, 42);
        let rows: Vec<&[f64]> = (0..train.len()).map(|i| train.input(i)).collect();
        let tier_errors: Vec<Vec<f64>> = (0..zoo.len())
            .map(|t| invocation_errors(kernel.as_ref(), &zoo.tier(t).npu, &train).unwrap())
            .collect();
        for budget in [0.01, 0.05, 0.2] {
            let bar = zoo.calibrate_bar(&rows, &tier_errors, budget);
            assert!(bar > 0.0, "bar must stay positive (budget {budget})");
            // The routed mean measured error at the calibrated bar fits
            // the budget (CPU rows contribute zero).
            let mean = rows
                .iter()
                .enumerate()
                .map(|(r, row)| {
                    let t = zoo.route(row, bar);
                    if t == zoo.cpu_tier() {
                        0.0
                    } else {
                        tier_errors[t][r]
                    }
                })
                .sum::<f64>()
                / rows.len() as f64;
            assert!(mean <= budget + 1e-12, "mean {mean} over budget {budget} at bar {bar}");
        }
        // Wider budgets can only widen the bar.
        let narrow = zoo.calibrate_bar(&rows, &tier_errors, 0.01);
        let wide = zoo.calibrate_bar(&rows, &tier_errors, 0.2);
        assert!(wide >= narrow, "{wide} < {narrow}");
        // The measured-error convenience wrapper agrees with the explicit
        // call bit-for-bit.
        let on = zoo.calibrate_bar_on(kernel.as_ref(), &train, 0.05).unwrap();
        assert_eq!(on.to_bits(), zoo.calibrate_bar(&rows, &tier_errors, 0.05).to_bits());
        // Degenerate shapes fall back to the budget: a single-tier zoo has
        // no routing choice, and mismatched inputs never calibrate.
        let (_, _, solo) = gaussian_zoo(1);
        assert_eq!(solo.calibrate_bar(&rows, &tier_errors[..1], 0.05), 0.05);
        assert_eq!(zoo.calibrate_bar(&[], &[], 0.05), 0.05);
        assert_eq!(zoo.calibrate_bar(&rows, &[], 0.05), 0.05);
    }

    #[test]
    fn zero_tier_zoo_is_rejected() {
        let kernel = kernel_by_name("gaussian").unwrap();
        let cfg = OfflineConfig::default();
        let app = train_app(kernel.as_ref(), &cfg).unwrap();
        assert!(train_zoo_with_cache(
            kernel.as_ref(),
            &app,
            &cfg,
            0,
            &TrainedModelCache::disabled()
        )
        .is_err());
        assert!(ModelZoo::from_tiers(Vec::new()).is_err());
    }

    #[test]
    fn zoo_cache_round_trip_is_bit_exact() {
        let kernel = kernel_by_name("gaussian").unwrap();
        let cfg = OfflineConfig::default();
        let app = train_app(kernel.as_ref(), &cfg).unwrap();
        let dir = std::env::temp_dir().join(format!("rumba-zoo-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TrainedModelCache::with_dir(&dir);
        let fresh = train_zoo_with_cache(kernel.as_ref(), &app, &cfg, 3, &cache).unwrap();
        let reloaded = train_zoo_with_cache(kernel.as_ref(), &app, &cfg, 3, &cache).unwrap();
        assert_eq!(fresh.len(), reloaded.len());
        let test = kernel.generate(rumba_apps::Split::Test, 42);
        for t in 0..fresh.len() {
            assert_eq!(fresh.tier_cycles(t), reloaded.tier_cycles(t));
            assert_eq!(fresh.tier(t).train_error.to_bits(), reloaded.tier(t).train_error.to_bits());
            for i in (0..test.len()).step_by(97) {
                let input = test.input(i);
                assert_eq!(
                    fresh.tier(t).router.predict(input).to_bits(),
                    reloaded.tier(t).router.predict(input).to_bits(),
                    "tier {t} row {i}"
                );
                let a = fresh.tier(t).npu.invoke(input).unwrap().outputs;
                let b = reloaded.tier(t).npu.invoke(input).unwrap().outputs;
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&a), bits(&b), "tier {t} row {i}");
            }
        }
        // A different tier count must miss (distinct entries).
        let nn_params = nn_params_for(kernel.as_ref());
        assert!(cache.load_zoo(kernel.name(), &cfg, 2, &nn_params).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
