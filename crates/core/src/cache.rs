//! [`TrainedModelCache`] — persistent storage for offline training results.
//!
//! Every figure binary in the evaluation harness trains the same per-kernel
//! accelerators and checkers from scratch. Since the offline pipeline is a
//! pure function of the kernel and the [`OfflineConfig`](crate::trainer::OfflineConfig),
//! its outputs can be cached on disk and shared across binaries: the first
//! run trains and stores, every later run decodes.
//!
//! The cache stores exactly what the paper embeds in an application binary —
//! the accelerator and checker **config-words** — as plain text, with each
//! `f64` word written as the hex of its bit pattern so a round-trip is
//! bit-exact. A cache hit therefore produces byte-identical downstream
//! results to a fresh training run.
//!
//! Keys combine the kernel name, its accelerator topologies, the full
//! offline configuration (seed included), and the per-kernel training
//! hyper-parameters; changing any of these — most importantly the seed —
//! misses the cache and retrains.
//!
//! Controls:
//! - `RUMBA_CACHE=0` disables the cache entirely.
//! - `RUMBA_CACHE_DIR` overrides the default `target/rumba-cache` location.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use rumba_accel::{Npu, NpuParams};
use rumba_nn::{decode_model, encode_model, TrainParams, TrainedModel};
use rumba_predict::{
    decode_evp, decode_linear, decode_tree, encode_evp, encode_linear, encode_tree, EvpErrors,
    LinearErrors, LinearModel, TreeErrors,
};

use crate::trainer::OfflineConfig;
use crate::zoo::{ModelZoo, ZooTier};

const FORMAT_HEADER: &str = "rumba-trained-model-cache v1";

/// The decoded contents of one cache entry: everything `train_app` fits
/// with a neural network or a closed-form solver. Entries written before
/// the EVP section existed simply miss (a missing section is a malformed
/// entry) and retrain.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedModels {
    /// The Rumba-topology accelerator model.
    pub rumba_model: TrainedModel,
    /// The unchecked-NPU-topology baseline model.
    pub baseline_model: TrainedModel,
    /// The trained linear checker.
    pub linear: LinearErrors,
    /// The trained decision-tree checker.
    pub tree: TreeErrors,
    /// The trained value-prediction (EVP) checker.
    pub evp: EvpErrors,
    /// Per-invocation accelerator errors on the train split.
    pub train_errors: Vec<f64>,
}

/// A directory of plain-text config-word files keyed by kernel, topology,
/// seed, and training configuration.
#[derive(Debug, Clone)]
pub struct TrainedModelCache {
    dir: PathBuf,
    enabled: bool,
}

impl TrainedModelCache {
    /// The environment-configured cache: `<workspace root>/target/rumba-cache`
    /// (or `RUMBA_CACHE_DIR`), disabled entirely by `RUMBA_CACHE=0`.
    ///
    /// The default directory used to be the *cwd-relative* path
    /// `target/rumba-cache`, so every binary invoked from a different
    /// working directory silently kept its own cold cache (and `rumba` run
    /// from `/tmp` would scatter `target/` directories around the
    /// filesystem). It is now anchored to the workspace root — the nearest
    /// ancestor of the executable, the build-time manifest directory, or
    /// the cwd that contains a `Cargo.lock` — falling back to the old
    /// cwd-relative behavior only when no root is found.
    #[must_use]
    pub fn from_env() -> Self {
        let enabled = std::env::var("RUMBA_CACHE").map_or(true, |v| v.trim() != "0");
        let dir =
            std::env::var("RUMBA_CACHE_DIR").map_or_else(|_| default_cache_dir(), PathBuf::from);
        Self { dir, enabled }
    }

    /// A cache rooted at an explicit directory (used by tests).
    #[must_use]
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), enabled: true }
    }

    /// A cache that never hits and never stores.
    #[must_use]
    pub fn disabled() -> Self {
        Self { dir: PathBuf::new(), enabled: false }
    }

    /// Whether this cache participates at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The file a given training problem would be cached under.
    #[must_use]
    pub fn entry_path(
        &self,
        kernel_name: &str,
        topologies: (&[usize], &[usize]),
        cfg: &OfflineConfig,
        nn_params: &TrainParams,
    ) -> PathBuf {
        let key = cache_key(kernel_name, topologies, cfg, nn_params);
        self.dir.join(format!("{kernel_name}-s{}-{key:016x}.words", cfg.seed))
    }

    /// Loads and decodes the entry for this training problem, if present
    /// and well-formed. Any malformed or stale file reads as a miss.
    #[must_use]
    pub fn load(
        &self,
        kernel_name: &str,
        topologies: (&[usize], &[usize]),
        cfg: &OfflineConfig,
        nn_params: &TrainParams,
    ) -> Option<CachedModels> {
        if !self.enabled {
            return None;
        }
        let path = self.entry_path(kernel_name, topologies, cfg, nn_params);
        // `entry_path` always produces a well-formed name, so the key is
        // always present — but going through `entry_key` (instead of the
        // old `file_stem().unwrap_or_default()`) guarantees a degenerate
        // path can never masquerade as the empty-string key.
        let key = entry_key(&path).expect("entry_path produces a keyed .words name");
        let models = fs::read_to_string(&path).ok().as_deref().and_then(parse_entry);
        emit_cache_event(models.is_some(), &key);
        if models.is_some() {
            eprintln!("[cache] hit: {kernel_name} (seed {}) from {}", cfg.seed, path.display());
        }
        models
    }

    /// Enumerates the cache directory: entry keys for every well-formed
    /// `.words` file, and a count of stray files that were skipped.
    ///
    /// Before `entry_key` existed, a stemless file (e.g. a literal
    /// `.words`, or an editor's dotfile) mapped to the empty-string key via
    /// `unwrap_or_default`, so any number of strays silently collided onto
    /// one phantom entry. Strays are now skipped, counted here, and
    /// reported on the `cache.skipped_files` metrics counter.
    #[must_use]
    pub fn scan(&self) -> CacheScan {
        let mut scan = CacheScan::default();
        if !self.enabled {
            return scan;
        }
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return scan;
        };
        for entry in dir.flatten() {
            match entry_key(&entry.path()) {
                Some(key) => scan.entries.push(key),
                None => scan.skipped += 1,
            }
        }
        scan.entries.sort_unstable();
        if scan.skipped > 0 && rumba_obs::enabled() {
            rumba_obs::metrics().add("cache.skipped_files", scan.skipped as u64);
        }
        scan
    }

    /// Encodes and persists one training result. Failures (e.g. a read-only
    /// disk) are reported on stderr but never fail the caller: the cache is
    /// an accelerator, not a dependency.
    pub fn store(
        &self,
        kernel_name: &str,
        topologies: (&[usize], &[usize]),
        cfg: &OfflineConfig,
        nn_params: &TrainParams,
        models: &CachedModels,
    ) {
        if !self.enabled {
            return;
        }
        let path = self.entry_path(kernel_name, topologies, cfg, nn_params);
        if let Err(e) = write_entry(&path, kernel_name, models) {
            eprintln!("[cache] store failed for {kernel_name}: {e}");
        }
    }

    /// The file a model zoo for this training problem would be cached
    /// under. The requested tier count is part of both the visible name
    /// and the key, so zoos of different depth never collide.
    #[must_use]
    pub fn zoo_entry_path(
        &self,
        kernel_name: &str,
        cfg: &OfflineConfig,
        n_tiers: usize,
        nn_params: &TrainParams,
    ) -> PathBuf {
        let key = cache_key(kernel_name, (&[n_tiers], &[]), cfg, nn_params);
        self.dir.join(format!("{kernel_name}-zoo{n_tiers}-s{}-{key:016x}.words", cfg.seed))
    }

    /// Loads and decodes a cached model zoo, if present and well-formed.
    /// Any malformed or stale file reads as a miss (and retrains).
    #[must_use]
    pub fn load_zoo(
        &self,
        kernel_name: &str,
        cfg: &OfflineConfig,
        n_tiers: usize,
        nn_params: &TrainParams,
    ) -> Option<ModelZoo> {
        if !self.enabled {
            return None;
        }
        let path = self.zoo_entry_path(kernel_name, cfg, n_tiers, nn_params);
        let key = entry_key(&path).expect("zoo_entry_path produces a keyed .words name");
        let zoo = fs::read_to_string(&path)
            .ok()
            .as_deref()
            .and_then(|text| parse_zoo_entry(text, &cfg.npu_params));
        emit_cache_event(zoo.is_some(), &key);
        if zoo.is_some() {
            eprintln!("[cache] hit: {kernel_name} zoo (seed {}) from {}", cfg.seed, path.display());
        }
        zoo
    }

    /// Encodes and persists a trained model zoo. Like [`Self::store`],
    /// failures are reported but never propagate.
    pub fn store_zoo(
        &self,
        kernel_name: &str,
        cfg: &OfflineConfig,
        n_tiers: usize,
        nn_params: &TrainParams,
        zoo: &ModelZoo,
    ) {
        if !self.enabled {
            return;
        }
        let path = self.zoo_entry_path(kernel_name, cfg, n_tiers, nn_params);
        if let Err(e) = write_zoo_entry(&path, kernel_name, zoo) {
            eprintln!("[cache] zoo store failed for {kernel_name}: {e}");
        }
    }
}

/// What [`TrainedModelCache::scan`] found in the cache directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheScan {
    /// Keys (file stems) of well-formed `.words` entries, sorted.
    pub entries: Vec<String>,
    /// Files skipped for not being keyed `.words` entries (wrong
    /// extension, or no stem to key on).
    pub skipped: usize,
}

/// The cache key a file would be loaded under: its non-empty stem, and
/// only for `.words` files. Everything else — a stemless `.words` dotfile
/// (whose "stem" is the literal `.words`), temp files, READMEs — is not a
/// cache entry and yields `None` instead of a colliding default key.
fn entry_key(path: &Path) -> Option<String> {
    if path.extension()?.to_str()? != "words" {
        return None;
    }
    let stem = path.file_stem()?.to_str()?;
    if stem.is_empty() {
        return None;
    }
    Some(stem.to_owned())
}

/// The default cache directory: `target/rumba-cache` under the workspace
/// root when one can be found, otherwise the legacy cwd-relative path.
fn default_cache_dir() -> PathBuf {
    workspace_root().unwrap_or_else(|| PathBuf::from(".")).join("target").join("rumba-cache")
}

/// Locates the workspace root as the nearest `Cargo.lock`-bearing ancestor
/// of (in priority order) the running executable, the compile-time
/// manifest directory, and the current working directory.
fn workspace_root() -> Option<PathBuf> {
    if let Ok(exe) = std::env::current_exe() {
        if let Some(root) = root_above(&exe) {
            return Some(root);
        }
    }
    if let Some(root) = root_above(Path::new(env!("CARGO_MANIFEST_DIR"))) {
        return Some(root);
    }
    std::env::current_dir().ok().and_then(|cwd| root_above(&cwd))
}

/// The nearest ancestor of `start` (inclusive) containing a `Cargo.lock`.
fn root_above(start: &Path) -> Option<PathBuf> {
    start.ancestors().find(|dir| dir.join("Cargo.lock").is_file()).map(Path::to_path_buf)
}

/// Reports a cache probe to telemetry (event stream + hit/miss counters).
fn emit_cache_event(hit: bool, key: &str) {
    if rumba_obs::enabled() {
        rumba_obs::global_sink().emit(&rumba_obs::Event::Cache { hit, key: key.to_owned() });
        rumba_obs::metrics().inc(if hit { "cache.hits" } else { "cache.misses" });
    }
}

/// FNV-1a over every ingredient that affects the training result.
fn cache_key(
    kernel_name: &str,
    topologies: (&[usize], &[usize]),
    cfg: &OfflineConfig,
    nn_params: &TrainParams,
) -> u64 {
    // Debug formatting covers every field of both config structs; any new
    // field automatically invalidates old entries.
    let ingredients =
        format!("{kernel_name}|{:?}|{:?}|{cfg:?}|{nn_params:?}", topologies.0, topologies.1);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in ingredients.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_section(out: &mut String, name: &str, words: &[f64]) {
    let _ = writeln!(out, "section {name} {}", words.len());
    for chunk in words.chunks(16) {
        let line: Vec<String> = chunk.iter().map(|w| format!("{:016x}", w.to_bits())).collect();
        let _ = writeln!(out, "{}", line.join(" "));
    }
}

fn write_entry(path: &Path, kernel_name: &str, models: &CachedModels) -> std::io::Result<()> {
    let mut text = String::new();
    let _ = writeln!(text, "{FORMAT_HEADER}");
    let _ = writeln!(text, "kernel {kernel_name}");
    push_section(&mut text, "rumba_model", &encode_model(&models.rumba_model));
    push_section(&mut text, "baseline_model", &encode_model(&models.baseline_model));
    push_section(&mut text, "linear", &encode_linear(&models.linear));
    push_section(&mut text, "tree", &encode_tree(&models.tree));
    push_section(&mut text, "evp", &encode_evp(&models.evp));
    push_section(&mut text, "train_errors", &models.train_errors);

    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    // Write-then-rename so a concurrently reading binary never sees a
    // half-written entry; the counter keeps concurrent writers within one
    // process (test threads) off each other's temp files.
    static WRITE_SERIAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = WRITE_SERIAL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{serial}", std::process::id()));
    fs::write(&tmp, &text)?;
    fs::rename(&tmp, path)
}

/// Parses the shared envelope — format header, `kernel <name>` line, and
/// the counted hex-word sections — that both the per-app entry and the
/// zoo entry use. Returns `None` for any malformed line or count.
fn parse_sections(text: &str) -> Option<Vec<(String, Vec<f64>)>> {
    let mut lines = text.lines();
    if lines.next()? != FORMAT_HEADER {
        return None;
    }
    let _kernel = lines.next()?.strip_prefix("kernel ")?;

    let mut sections: Vec<(String, Vec<f64>)> = Vec::new();
    let mut current: Option<(String, usize, Vec<f64>)> = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("section ") {
            if let Some((name, expected, words)) = current.take() {
                if words.len() != expected {
                    return None;
                }
                sections.push((name, words));
            }
            let (name, count) = rest.split_once(' ')?;
            current = Some((name.to_owned(), count.parse().ok()?, Vec::new()));
        } else if let Some((_, _, words)) = current.as_mut() {
            for tok in line.split_whitespace() {
                words.push(f64::from_bits(u64::from_str_radix(tok, 16).ok()?));
            }
        } else if !line.trim().is_empty() {
            return None;
        }
    }
    if let Some((name, expected, words)) = current.take() {
        if words.len() != expected {
            return None;
        }
        sections.push((name, words));
    }
    Some(sections)
}

fn parse_entry(text: &str) -> Option<CachedModels> {
    let sections = parse_sections(text)?;
    let find = |name: &str| sections.iter().find(|(n, _)| n == name).map(|(_, w)| w.as_slice());
    Some(CachedModels {
        rumba_model: decode_model(find("rumba_model")?).ok()?,
        baseline_model: decode_model(find("baseline_model")?).ok()?,
        linear: decode_linear(find("linear")?).ok()?,
        tree: decode_tree(find("tree")?).ok()?,
        evp: decode_evp(find("evp")?).ok()?,
        train_errors: find("train_errors")?.to_vec(),
    })
}

/// The zoo entry reuses the v1 envelope with a `zoo_spec` section — the
/// stored tier count followed by `[precision_bits (-1 for none),
/// fixed_point flag, train_error]` per tier — plus per-tier `zoo_model_i`
/// (accelerator config-words) and `zoo_router_i`
/// (`[n_weights, weights..., bias]`) sections. Per-tier datapath settings
/// live in the spec; everything else in `NpuParams` comes from the
/// caller's [`OfflineConfig`], matching how the tier was built.
fn write_zoo_entry(path: &Path, kernel_name: &str, zoo: &ModelZoo) -> std::io::Result<()> {
    let mut text = String::new();
    let _ = writeln!(text, "{FORMAT_HEADER}");
    let _ = writeln!(text, "kernel {kernel_name}");
    let mut spec: Vec<f64> = vec![zoo.len() as f64];
    for tier in zoo.tiers() {
        let params = tier.npu.params();
        spec.push(params.precision_bits.map_or(-1.0, f64::from));
        spec.push(f64::from(u8::from(params.fixed_point)));
        spec.push(tier.train_error);
    }
    push_section(&mut text, "zoo_spec", &spec);
    for (i, tier) in zoo.tiers().iter().enumerate() {
        push_section(&mut text, &format!("zoo_model_{i}"), &encode_model(tier.npu.model()));
        let mut router: Vec<f64> = vec![tier.router.weights().len() as f64];
        router.extend_from_slice(tier.router.weights());
        router.push(tier.router.bias());
        push_section(&mut text, &format!("zoo_router_{i}"), &router);
    }

    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    static WRITE_SERIAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = WRITE_SERIAL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{serial}", std::process::id()));
    fs::write(&tmp, &text)?;
    fs::rename(&tmp, path)
}

fn parse_zoo_entry(text: &str, base_params: &NpuParams) -> Option<ModelZoo> {
    let sections = parse_sections(text)?;
    let find = |name: &str| sections.iter().find(|(n, _)| n == name).map(|(_, w)| w.as_slice());
    let spec = find("zoo_spec")?;
    let n = to_count(*spec.first()?)?;
    if spec.len() != 1 + 3 * n || n == 0 {
        return None;
    }
    let mut tiers = Vec::with_capacity(n);
    for i in 0..n {
        let (precision, fixed, train_error) = (spec[1 + 3 * i], spec[2 + 3 * i], spec[3 + 3 * i]);
        let params = NpuParams {
            precision_bits: if precision < 0.0 {
                None
            } else {
                Some(u32::try_from(to_count(precision)?).ok()?)
            },
            fixed_point: fixed != 0.0,
            ..*base_params
        };
        let model = decode_model(find(&format!("zoo_model_{i}"))?).ok()?;
        let router_words = find(&format!("zoo_router_{i}"))?;
        let n_weights = to_count(*router_words.first()?)?;
        if router_words.len() != n_weights + 2 {
            return None;
        }
        let router = LinearModel::from_parts(
            router_words[1..=n_weights].to_vec(),
            router_words[n_weights + 1],
        );
        tiers.push(ZooTier { npu: Npu::new(model, params), router, train_error });
    }
    ModelZoo::from_tiers(tiers).ok()
}

/// A stored count word back as a `usize`, rejecting non-integral or
/// out-of-range values (a corrupt file must read as a miss, not a panic).
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn to_count(word: f64) -> Option<usize> {
    if word.fract() != 0.0 || !(0.0..=1e9).contains(&word) {
        return None;
    }
    Some(word as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{nn_params_for, train_app_with_cache};
    use rumba_apps::kernel_by_name;

    fn temp_cache(tag: &str) -> TrainedModelCache {
        let dir =
            std::env::temp_dir().join(format!("rumba-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TrainedModelCache::with_dir(dir)
    }

    #[test]
    fn round_trip_is_bit_exact_and_invalidates_on_seed_change() {
        let kernel = kernel_by_name("gaussian").unwrap();
        let cache = temp_cache("roundtrip");
        let cfg = OfflineConfig::default();
        let rumba_topo = kernel.rumba_topology();
        let npu_topo = kernel.npu_topology();
        let topologies = (rumba_topo.as_slice(), npu_topo.as_slice());
        let nn_params = nn_params_for(kernel.as_ref());

        let trained = train_app_with_cache(kernel.as_ref(), &cfg, &cache).unwrap();
        let loaded =
            cache.load(kernel.name(), topologies, &cfg, &nn_params).expect("entry was just stored");

        // Bit-exact: the persisted config-words decode to models whose
        // encodings (and error lists) match the fresh ones word for word.
        let bits = |words: &[f64]| words.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&encode_model(&loaded.rumba_model)),
            bits(&encode_model(trained.rumba_npu.model())),
        );
        assert_eq!(
            bits(&encode_model(&loaded.baseline_model)),
            bits(&encode_model(trained.baseline_npu.model())),
        );
        assert_eq!(bits(&encode_linear(&loaded.linear)), bits(&encode_linear(&trained.linear)));
        assert_eq!(bits(&encode_tree(&loaded.tree)), bits(&encode_tree(&trained.tree)));
        assert_eq!(bits(&encode_evp(&loaded.evp)), bits(&encode_evp(&trained.evp)));
        assert_eq!(bits(&loaded.train_errors), bits(&trained.train_errors));

        // A different seed must miss.
        let other = OfflineConfig { seed: cfg.seed + 1, ..cfg };
        assert!(cache.load(kernel.name(), topologies, &other, &nn_params).is_none());
        let _ = fs::remove_dir_all(cache.dir);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = TrainedModelCache::disabled();
        let kernel = kernel_by_name("gaussian").unwrap();
        let cfg = OfflineConfig::default();
        let _ = train_app_with_cache(kernel.as_ref(), &cfg, &cache).unwrap();
        assert!(!cache.is_enabled());
    }

    #[test]
    fn stray_files_are_skipped_not_collided_onto_the_empty_key() {
        // Regression: `file_stem().unwrap_or_default()` keyed every
        // stemless stray as "" — two unrelated files were one phantom
        // entry. `entry_key` must reject everything that isn't a keyed
        // `.words` file.
        assert_eq!(
            entry_key(Path::new("gaussian-s42-0123.words")).as_deref(),
            Some("gaussian-s42-0123")
        );
        assert_eq!(entry_key(Path::new(".words")), None, "stemless dotfile");
        assert_eq!(entry_key(Path::new("README.txt")), None, "wrong extension");
        assert_eq!(entry_key(Path::new("noext")), None, "no extension");
        assert_eq!(entry_key(Path::new("entry.tmp.123.4")), None, "in-flight temp file");

        let cache = temp_cache("scan");
        fs::create_dir_all(&cache.dir).unwrap();
        fs::write(cache.dir.join("fft-s7-abcd.words"), "x").unwrap();
        fs::write(cache.dir.join("gaussian-s42-1234.words"), "x").unwrap();
        fs::write(cache.dir.join(".words"), "stray one").unwrap();
        fs::write(cache.dir.join("README.txt"), "stray two").unwrap();
        let scan = cache.scan();
        assert_eq!(scan.entries, vec!["fft-s7-abcd".to_owned(), "gaussian-s42-1234".to_owned()]);
        assert_eq!(scan.skipped, 2, "both strays counted, neither keyed");
        let _ = fs::remove_dir_all(cache.dir);
    }

    #[test]
    fn scan_of_missing_or_disabled_cache_is_empty() {
        assert_eq!(TrainedModelCache::disabled().scan(), CacheScan::default());
        assert_eq!(temp_cache("scan-missing").scan(), CacheScan::default());
    }

    #[test]
    fn root_above_finds_the_nearest_lockfile_ancestor() {
        let base = std::env::temp_dir().join(format!("rumba-root-test-{}", std::process::id()));
        let nested = base.join("a").join("b").join("c");
        fs::create_dir_all(&nested).unwrap();
        fs::write(base.join("Cargo.lock"), "").unwrap();
        // An inner lockfile shadows the outer one (nearest wins).
        fs::write(base.join("a").join("Cargo.lock"), "").unwrap();
        assert_eq!(root_above(&nested), Some(base.join("a")));
        assert_eq!(root_above(&base), Some(base.clone()));
        // Files walk up through their parent directory.
        let file = nested.join("rumba");
        fs::write(&file, "").unwrap();
        assert_eq!(root_above(&file), Some(base.join("a")));
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn default_cache_dir_is_anchored_under_a_workspace_root() {
        let dir = default_cache_dir();
        assert!(dir.ends_with(Path::new("target").join("rumba-cache")), "{}", dir.display());
        // Running under cargo, some anchor (manifest dir at minimum) must
        // resolve, so the path is absolute rather than cwd-relative.
        assert!(dir.is_absolute(), "{}", dir.display());
    }
}
