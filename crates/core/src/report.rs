//! Human-readable summaries of online runs — what a deployment would log
//! per accelerated region.

use std::fmt;

use rumba_energy::{EnergyParams, RunCost, SystemModel, WorkloadProfile};

use crate::runtime::RunOutcome;

/// A formatted summary of one [`RunOutcome`] against its CPU baseline.
///
/// # Examples
///
/// ```no_run
/// use rumba_core::report::RunReport;
/// # fn demo(outcome: rumba_core::runtime::RunOutcome,
/// #         workload: rumba_energy::WorkloadProfile) {
/// let report = RunReport::new("inversek2j", &outcome, &workload);
/// println!("{report}");
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    name: String,
    invocations: usize,
    fixes: usize,
    output_error: f64,
    cpu_kept_up: bool,
    cpu_utilization: f64,
    final_threshold: f64,
    baseline: RunCost,
    accelerated: RunCost,
}

impl RunReport {
    /// Builds a report with the default energy constants.
    #[must_use]
    pub fn new(name: &str, outcome: &RunOutcome, workload: &WorkloadProfile) -> Self {
        Self::with_params(name, outcome, workload, EnergyParams::default())
    }

    /// Builds a report with explicit energy constants.
    #[must_use]
    pub fn with_params(
        name: &str,
        outcome: &RunOutcome,
        workload: &WorkloadProfile,
        params: EnergyParams,
    ) -> Self {
        let model = SystemModel::new(params);
        Self {
            name: name.to_owned(),
            invocations: outcome.fired.len(),
            fixes: outcome.fixes,
            output_error: outcome.output_error,
            cpu_kept_up: outcome.pipeline.cpu_kept_up(),
            cpu_utilization: outcome.pipeline.cpu_utilization,
            final_threshold: outcome.threshold_history.last().copied().unwrap_or(f64::NAN),
            baseline: model.cpu_baseline(workload),
            accelerated: model.accelerated(workload, &outcome.activity),
        }
    }

    /// Whole-application speedup vs the exact CPU baseline.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.accelerated.speedup_vs(&self.baseline)
    }

    /// Whole-application energy-reduction factor vs the baseline.
    #[must_use]
    pub fn energy_reduction(&self) -> f64 {
        self.accelerated.energy_reduction_vs(&self.baseline)
    }

    /// Fraction of invocations re-executed.
    #[must_use]
    pub fn fix_rate(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.fixes as f64 / self.invocations as f64
        }
    }

    /// Measured output error of the merged stream.
    #[must_use]
    pub fn output_error(&self) -> f64 {
        self.output_error
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rumba run: {}", self.name)?;
        writeln!(f, "  invocations      {}", self.invocations)?;
        writeln!(f, "  re-executed      {} ({:.1}%)", self.fixes, self.fix_rate() * 100.0)?;
        writeln!(f, "  output error     {:.2}%", self.output_error * 100.0)?;
        writeln!(f, "  final threshold  {:.4}", self.final_threshold)?;
        writeln!(
            f,
            "  recovery overlap {} (CPU utilization {:.0}%)",
            if self.cpu_kept_up { "hidden" } else { "overran" },
            self.cpu_utilization * 100.0
        )?;
        writeln!(f, "  speedup          {:.2}x vs exact CPU", self.speedup())?;
        write!(f, "  energy reduction {:.2}x vs exact CPU", self.energy_reduction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{RumbaSystem, RuntimeConfig};
    use crate::trainer::{train_app, OfflineConfig};
    use crate::tuner::{Tuner, TuningMode};
    use rumba_accel::CheckerUnit;
    use rumba_apps::{kernel_by_name, Split};

    fn sample_report() -> RunReport {
        let kernel = kernel_by_name("gaussian").unwrap();
        let app = train_app(kernel.as_ref(), &OfflineConfig::default()).unwrap();
        let mut system = RumbaSystem::new(
            app.rumba_npu.clone(),
            CheckerUnit::new(Box::new(app.tree)),
            Tuner::new(TuningMode::TargetQuality { toq: 0.95 }, 0.05).unwrap(),
            RuntimeConfig::default(),
        )
        .unwrap();
        let test = kernel.generate(Split::Test, 42);
        let outcome = system.run(kernel.as_ref(), &test).unwrap();
        let workload = WorkloadProfile {
            invocations: test.len(),
            cpu_cycles_per_invocation: kernel.cpu_cycles(),
            kernel_fraction: kernel.kernel_fraction(),
        };
        RunReport::new("gaussian", &outcome, &workload)
    }

    #[test]
    fn report_fields_are_consistent() {
        let r = sample_report();
        assert!(r.fix_rate() >= 0.0 && r.fix_rate() <= 1.0);
        assert!(r.speedup() > 0.0);
        assert!(r.energy_reduction() > 0.0);
    }

    #[test]
    fn display_mentions_all_headline_numbers() {
        let r = sample_report();
        let text = r.to_string();
        assert!(text.contains("rumba run: gaussian"));
        assert!(text.contains("output error"));
        assert!(text.contains("speedup"));
        assert!(text.contains("energy reduction"));
    }
}
