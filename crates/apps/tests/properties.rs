//! Property-based tests over the benchmark kernels and metrics.

use proptest::prelude::*;
use rumba_apps::kernels::{
    call_price, codec_block, forward_kinematics, gradient_magnitude, inverse_kinematics,
    rgb_distance, tri_tri_intersect,
};
use rumba_apps::{all_kernels, dataset_from_inputs, ErrorMetric};

proptest! {
    #[test]
    fn metric_identity_is_zero(values in proptest::collection::vec(-10.0f64..10.0, 1..8)) {
        for metric in [
            ErrorMetric::MeanRelativeError { eps: 0.05 },
            ErrorMetric::MeanAbsoluteError { scale: 1.0 },
        ] {
            prop_assert_eq!(metric.invocation_error(&values, &values), 0.0);
        }
    }

    #[test]
    fn metric_is_nonnegative_and_symmetric_in_absolute_form(
        a in proptest::collection::vec(-10.0f64..10.0, 4),
        b in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let m = ErrorMetric::MeanAbsoluteError { scale: 2.0 };
        let e_ab = m.invocation_error(&a, &b);
        let e_ba = m.invocation_error(&b, &a);
        prop_assert!(e_ab >= 0.0);
        prop_assert!((e_ab - e_ba).abs() < 1e-12, "absolute error is symmetric");
    }

    #[test]
    fn miss_rate_is_binary(a in -5.0f64..5.0, b in -5.0f64..5.0, c in -5.0f64..5.0, d in -5.0f64..5.0) {
        let e = ErrorMetric::MissRate.invocation_error(&[a, b], &[c, d]);
        prop_assert!(e == 0.0 || e == 1.0);
    }

    #[test]
    fn blackscholes_price_within_no_arbitrage_bounds(
        m in 0.6f64..1.4,
        t in 0.05f64..1.0,
        v in 0.1f64..0.6,
    ) {
        let c = call_price(m, t, v);
        prop_assert!(c.is_finite());
        prop_assert!(c >= (m - 1.0f64).max(0.0) - 0.05, "above intrinsic-ish floor: {c}");
        prop_assert!(c <= m + 1e-9, "below the underlying: {c}");
    }

    #[test]
    fn inverse_kinematics_round_trips_inside_workspace(
        t1 in 0.15f64..1.5,
        t2 in 0.1f64..3.0,
    ) {
        let (x, y) = forward_kinematics(t1, t2);
        let (r1, r2) = inverse_kinematics(x, y);
        let (fx, fy) = forward_kinematics(r1, r2);
        prop_assert!((fx - x).abs() < 1e-6 && (fy - y).abs() < 1e-6);
    }

    #[test]
    fn sobel_magnitude_bounded(window in proptest::array::uniform9(0.0f64..1.0)) {
        let g = gradient_magnitude(&window);
        prop_assert!((0.0..=1.0).contains(&g));
    }

    #[test]
    fn rgb_distance_is_a_metric(
        p in proptest::array::uniform3(0.0f64..1.0),
        q in proptest::array::uniform3(0.0f64..1.0),
        r in proptest::array::uniform3(0.0f64..1.0),
    ) {
        prop_assert_eq!(rgb_distance(p, p), 0.0);
        prop_assert!((rgb_distance(p, q) - rgb_distance(q, p)).abs() < 1e-15);
        prop_assert!(rgb_distance(p, r) <= rgb_distance(p, q) + rgb_distance(q, r) + 1e-12);
    }

    #[test]
    fn triangle_intersection_invariant_under_vertex_rotation(
        t1 in proptest::array::uniform9(0.0f64..1.0),
        t2 in proptest::array::uniform9(0.0f64..1.0),
    ) {
        // Rotating the vertex order of a triangle must not change the verdict.
        let rotated: [f64; 9] = [t1[3], t1[4], t1[5], t1[6], t1[7], t1[8], t1[0], t1[1], t1[2]];
        prop_assert_eq!(tri_tri_intersect(&t1, &t2), tri_tri_intersect(&rotated, &t2));
    }

    #[test]
    fn jpeg_codec_outputs_valid_pixels(block in proptest::collection::vec(0.0f64..1.0, 64)) {
        let arr: [f64; 64] = block.try_into().expect("64 entries");
        let out = codec_block(&arr);
        prop_assert!(out.iter().all(|p| (0.0..=1.0).contains(p)));
    }
}

#[test]
fn kernels_produce_finite_outputs_on_their_domains() {
    for kernel in all_kernels() {
        let data = kernel.generate(rumba_apps::Split::Test, 5);
        for (x, y) in data.iter() {
            assert!(x.iter().all(|v| v.is_finite()), "{} input", kernel.name());
            assert!(y.iter().all(|v| v.is_finite()), "{} output", kernel.name());
        }
    }
}

#[test]
fn dataset_from_inputs_reproduces_compute() {
    for kernel in all_kernels() {
        let data = kernel.generate(rumba_apps::Split::Train, 11);
        let i = data.len() - 1;
        let rebuilt = dataset_from_inputs(kernel.as_ref(), data.input(i));
        assert_eq!(rebuilt.target(0), data.target(i), "{}", kernel.name());
    }
}
