//! Procedural grayscale images and image-quality helpers.
//!
//! The paper evaluates `jpeg`, `kmeans`, and `sobel` on photographs and
//! demonstrates error noticeability (Figure 2) on a real image. Neither is
//! redistributable here, so this module synthesizes deterministic images
//! with photograph-like structure: multi-octave value noise (smooth regions
//! plus texture) overlaid with elliptical blobs (objects with edges). Every
//! generator is seeded and reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A grayscale image with pixel intensities in `[0, 1]`, row-major.
///
/// # Examples
///
/// ```
/// use rumba_apps::image::Image;
///
/// let img = Image::synthetic(64, 64, 7);
/// assert_eq!(img.pixels().len(), 64 * 64);
/// assert!(img.pixels().iter().all(|p| (0.0..=1.0).contains(p)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        Self { width, height, pixels: vec![0.0; width * height] }
    }

    /// Generates a photograph-like image: multi-octave value noise plus a
    /// few smooth elliptical blobs, normalized into `[0, 1]`.
    ///
    /// The fine-texture strength varies per image (drawn from the seed):
    /// different photographs have different statistics, which is exactly
    /// the input-dependence the paper's Challenge II is about.
    #[must_use]
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let fine_amp: f64 = rng.gen_range(0.15..0.55);
        Self::synthetic_with_texture(width, height, seed, fine_amp)
    }

    /// [`Image::synthetic`] with an explicit fine-texture amplitude.
    ///
    /// Benchmarks that reproduce the paper's "profiling data is not
    /// representative of all inputs" setting train on mild texture and test
    /// on strong texture via this knob.
    #[must_use]
    pub fn synthetic_with_texture(width: usize, height: usize, seed: u64, fine_amp: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut img = Self::new(width, height);

        // Octaves of value noise: coarse illumination down to pixel-level
        // texture (the fine octaves are what make the image kernels
        // genuinely hard to approximate, as photographs are).
        let octaves =
            [(4usize, 0.5f64), (8, 0.25), (16, 0.15), (32, 0.10), ((width / 2).max(2), fine_amp)];
        let mut grids: Vec<(usize, f64, Vec<f64>)> = Vec::new();
        for &(cells, amp) in &octaves {
            let grid: Vec<f64> = (0..(cells + 1) * (cells + 1)).map(|_| rng.gen()).collect();
            grids.push((cells, amp, grid));
        }
        for y in 0..height {
            for x in 0..width {
                let mut v = 0.0;
                for (cells, amp, grid) in &grids {
                    let fx = x as f64 / width as f64 * *cells as f64;
                    let fy = y as f64 / height as f64 * *cells as f64;
                    v += amp * bilinear(grid, *cells + 1, fx, fy);
                }
                img.pixels[y * width + x] = v;
            }
        }

        // Elliptical blobs: objects with clear edges for Sobel/JPEG to see.
        let blobs = 3 + (rng.gen::<u64>() % 3) as usize;
        for _ in 0..blobs {
            let cx = rng.gen_range(0.0..width as f64);
            let cy = rng.gen_range(0.0..height as f64);
            let rx = rng.gen_range(width as f64 * 0.05..width as f64 * 0.25);
            let ry = rng.gen_range(height as f64 * 0.05..height as f64 * 0.25);
            let level: f64 = rng.gen_range(-0.5..0.5);
            for y in 0..height {
                for x in 0..width {
                    let dx = (x as f64 - cx) / rx;
                    let dy = (y as f64 - cy) / ry;
                    let d = dx * dx + dy * dy;
                    if d < 1.0 {
                        // Smooth falloff toward the rim keeps edges crisp
                        // but not aliased.
                        let w = (1.0 - d).powi(2);
                        img.pixels[y * width + x] += level * w;
                    }
                }
            }
        }

        img.normalize();
        img
    }

    /// Width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major pixel intensities in `[0, 1]`.
    #[must_use]
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// Mutable access to the pixel buffer.
    pub fn pixels_mut(&mut self) -> &mut [f64] {
        &mut self.pixels
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "pixel ({x}, {y}) out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: f64) {
        assert!(x < self.width && y < self.height, "pixel ({x}, {y}) out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// Mean intensity.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.pixels.iter().sum::<f64>() / self.pixels.len() as f64
    }

    /// Rescales intensities into `[0, 1]` (no-op for constant images, which
    /// are set to 0.5).
    pub fn normalize(&mut self) {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &p in &self.pixels {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        let span = hi - lo;
        for p in &mut self.pixels {
            *p = if span < f64::EPSILON { 0.5 } else { (*p - lo) / span };
        }
    }

    /// Iterates over all interior 3×3 windows as flat 9-element rows
    /// (row-major within the window), with the window's center coordinates.
    pub fn windows3(&self) -> impl Iterator<Item = ([f64; 9], usize, usize)> + '_ {
        (1..self.height - 1).flat_map(move |y| {
            (1..self.width - 1).map(move |x| {
                let mut w = [0.0; 9];
                for dy in 0..3 {
                    for dx in 0..3 {
                        w[dy * 3 + dx] = self.get(x + dx - 1, y + dy - 1);
                    }
                }
                (w, x, y)
            })
        })
    }

    /// Iterates over non-overlapping 8×8 blocks as flat 64-element rows.
    /// Trailing pixels that do not fill a block are skipped.
    pub fn blocks8(&self) -> impl Iterator<Item = [f64; 64]> + '_ {
        let bw = self.width / 8;
        let bh = self.height / 8;
        (0..bh).flat_map(move |by| {
            (0..bw).map(move |bx| {
                let mut b = [0.0; 64];
                for dy in 0..8 {
                    for dx in 0..8 {
                        b[dy * 8 + dx] = self.get(bx * 8 + dx, by * 8 + dy);
                    }
                }
                b
            })
        })
    }
}

fn bilinear(grid: &[f64], stride: usize, fx: f64, fy: f64) -> f64 {
    let x0 = (fx as usize).min(stride - 2);
    let y0 = (fy as usize).min(stride - 2);
    let tx = (fx - x0 as f64).clamp(0.0, 1.0);
    let ty = (fy - y0 as f64).clamp(0.0, 1.0);
    // Smoothstep interpolation avoids visible grid lines.
    let sx = tx * tx * (3.0 - 2.0 * tx);
    let sy = ty * ty * (3.0 - 2.0 * ty);
    let g = |x: usize, y: usize| grid[y * stride + x];
    let top = g(x0, y0) * (1.0 - sx) + g(x0 + 1, y0) * sx;
    let bot = g(x0, y0 + 1) * (1.0 - sx) + g(x0 + 1, y0 + 1) * sx;
    top * (1.0 - sy) + bot * sy
}

/// How Figure 2's corruptions distribute a fixed mean relative error over an
/// image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// A `fraction` of randomly chosen pixels get 100 % relative error
    /// (forced to zero); the rest stay exact. Figure 2(b).
    SparseLarge {
        /// Fraction of pixels corrupted.
        fraction: f64,
    },
    /// Every pixel gets the same small relative error, alternating sign.
    /// Figure 2(c).
    UniformSmall {
        /// Per-pixel relative error.
        relative: f64,
    },
}

/// Applies a corruption, returning the corrupted copy.
///
/// # Examples
///
/// ```
/// use rumba_apps::image::{corrupt, Corruption, Image};
///
/// let img = Image::synthetic(32, 32, 1);
/// let bad = corrupt(&img, Corruption::UniformSmall { relative: 0.1 }, 2);
/// assert_eq!(bad.width(), img.width());
/// ```
#[must_use]
pub fn corrupt(image: &Image, corruption: Corruption, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = image.clone();
    match corruption {
        Corruption::SparseLarge { fraction } => {
            for p in out.pixels_mut() {
                if rng.gen::<f64>() < fraction {
                    *p = 0.0; // 100 % relative error
                }
            }
        }
        Corruption::UniformSmall { relative } => {
            for (i, p) in out.pixels_mut().iter_mut().enumerate() {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                *p *= 1.0 + sign * relative;
            }
        }
    }
    out
}

/// Per-pixel quality statistics between a reference and a degraded image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageQuality {
    /// Mean relative per-pixel error (the "average output error" both
    /// Figure 2 corruptions share).
    pub mean_relative_error: f64,
    /// Fraction of pixels whose relative error exceeds 30 % — a proxy for
    /// errors a viewer notices as speckle.
    pub large_error_fraction: f64,
    /// Mean absolute difference between each error and its 3×3 local mean:
    /// high values mean errors are spatially *isolated*, which is what makes
    /// them visually conspicuous.
    pub error_contrast: f64,
}

/// Computes [`ImageQuality`] between two images of identical dimensions.
///
/// # Panics
///
/// Panics if the dimensions differ.
#[must_use]
pub fn image_quality(reference: &Image, degraded: &Image) -> ImageQuality {
    assert_eq!(reference.width(), degraded.width(), "width mismatch");
    assert_eq!(reference.height(), degraded.height(), "height mismatch");
    let w = reference.width();
    let h = reference.height();
    let eps = 0.05;
    let errors: Vec<f64> = reference
        .pixels()
        .iter()
        .zip(degraded.pixels())
        .map(|(&r, &d)| (d - r).abs() / r.abs().max(eps))
        .collect();

    let mean_relative_error = errors.iter().sum::<f64>() / errors.len() as f64;
    let large_error_fraction =
        errors.iter().filter(|&&e| e > 0.3).count() as f64 / errors.len() as f64;

    let mut contrast = 0.0;
    let mut count = 0usize;
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let mut local = 0.0;
            for dy in 0..3 {
                for dx in 0..3 {
                    local += errors[(y + dy - 1) * w + (x + dx - 1)];
                }
            }
            local /= 9.0;
            contrast += (errors[y * w + x] - local).abs();
            count += 1;
        }
    }
    let error_contrast = if count == 0 { 0.0 } else { contrast / count as f64 };

    ImageQuality { mean_relative_error, large_error_fraction, error_contrast }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        assert_eq!(Image::synthetic(32, 24, 5), Image::synthetic(32, 24, 5));
        assert_ne!(Image::synthetic(32, 24, 5), Image::synthetic(32, 24, 6));
    }

    #[test]
    fn synthetic_pixels_in_unit_range() {
        let img = Image::synthetic(48, 48, 11);
        assert!(img.pixels().iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_size_rejected() {
        let _ = Image::new(0, 4);
    }

    #[test]
    fn windows3_count_and_content() {
        let mut img = Image::new(4, 3);
        for (i, p) in img.pixels_mut().iter_mut().enumerate() {
            *p = i as f64;
        }
        let windows: Vec<_> = img.windows3().collect();
        assert_eq!(windows.len(), 2); // (4-2) * (3-2)
        let (w, x, y) = windows[0];
        assert_eq!((x, y), (1, 1));
        assert_eq!(w[0], 0.0);
        assert_eq!(w[8], 10.0);
    }

    #[test]
    fn blocks8_counts() {
        let img = Image::new(24, 17);
        assert_eq!(img.blocks8().count(), 3 * 2);
    }

    #[test]
    fn normalize_constant_image() {
        let mut img = Image::new(4, 4);
        for p in img.pixels_mut() {
            *p = 3.0;
        }
        img.normalize();
        assert!(img.pixels().iter().all(|&p| p == 0.5));
    }

    #[test]
    fn figure2_property_same_mean_error_different_noticeability() {
        // The crux of Figure 2: equal mean error, very different tails.
        let img = Image::synthetic(64, 64, 3);
        let sparse = corrupt(&img, Corruption::SparseLarge { fraction: 0.1 }, 1);
        let uniform = corrupt(&img, Corruption::UniformSmall { relative: 0.1 }, 1);
        let qs = image_quality(&img, &sparse);
        let qu = image_quality(&img, &uniform);
        // Comparable mean error (both ≈ 10 %)...
        assert!((qs.mean_relative_error - qu.mean_relative_error).abs() < 0.05);
        // ...but the sparse corruption has far more large errors and far
        // higher local error contrast.
        assert!(qs.large_error_fraction > 5.0 * qu.large_error_fraction.max(1e-9));
        assert!(qs.error_contrast > 2.0 * qu.error_contrast.max(1e-9));
    }

    #[test]
    fn image_quality_identity_is_zero() {
        let img = Image::synthetic(32, 32, 9);
        let q = image_quality(&img, &img);
        assert_eq!(q.mean_relative_error, 0.0);
        assert_eq!(q.large_error_fraction, 0.0);
        assert_eq!(q.error_contrast, 0.0);
    }

    #[test]
    fn sparse_corruption_hits_roughly_the_requested_fraction() {
        let img = Image::synthetic(64, 64, 2);
        let bad = corrupt(&img, Corruption::SparseLarge { fraction: 0.1 }, 7);
        let changed = img.pixels().iter().zip(bad.pixels()).filter(|(a, b)| a != b).count() as f64
            / img.pixels().len() as f64;
        assert!((changed - 0.1).abs() < 0.03, "changed {changed}");
    }
}
