//! Re-execution safety verification (§2.2).
//!
//! Rumba's recovery relies on the approximated region being *pure*: it
//! reads its inputs, writes its outputs, and touches nothing else, so any
//! iteration can be re-executed freely. The paper identifies such regions
//! with compiler analyses over the Rodinia suite (finding >70 % of its
//! data-parallel regions pure); for the kernels built here, purity can be
//! checked dynamically instead — the substitute this module provides.
//!
//! [`verify_purity`] probes a kernel with repeated and interleaved
//! evaluations and fails loudly on any observable impurity: nondeterminism
//! (hidden state or RNG use), output-buffer sensitivity (reads of stale
//! output contents), or input mutation (which the `&[f64]` signature
//! already rules out at compile time — the check documents it).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Kernel, Split};

/// How a kernel violated purity.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PurityViolation {
    /// Two evaluations of the same input disagreed — the kernel carries
    /// hidden state.
    Nondeterministic {
        /// Index of the probed invocation.
        invocation: usize,
    },
    /// The result depended on the prior contents of the output buffer —
    /// the kernel reads memory it should only write.
    OutputBufferSensitive {
        /// Index of the probed invocation.
        invocation: usize,
    },
    /// Evaluating other inputs in between changed a result — cross-
    /// invocation leakage.
    CrossInvocationLeak {
        /// Index of the probed invocation.
        invocation: usize,
    },
}

impl std::fmt::Display for PurityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PurityViolation::Nondeterministic { invocation } => {
                write!(f, "invocation {invocation} is nondeterministic across re-executions")
            }
            PurityViolation::OutputBufferSensitive { invocation } => {
                write!(f, "invocation {invocation} reads stale output-buffer contents")
            }
            PurityViolation::CrossInvocationLeak { invocation } => {
                write!(f, "invocation {invocation} is affected by interleaved invocations")
            }
        }
    }
}

impl std::error::Error for PurityViolation {}

/// Dynamically verifies that `kernel` is safely re-executable over
/// `samples` probe invocations drawn from its own test distribution.
///
/// This is a falsification check: passing it does not *prove* purity (no
/// dynamic check can), but every impure kernel pattern Rumba cares about —
/// hidden state, stale-buffer reads, cross-iteration coupling — is probed
/// directly.
///
/// # Errors
///
/// Returns the first [`PurityViolation`] found.
pub fn verify_purity(
    kernel: &dyn Kernel,
    samples: usize,
    seed: u64,
) -> Result<(), PurityViolation> {
    let data = kernel.generate(Split::Test, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let out_dim = kernel.output_dim();
    let n = data.len();

    for probe in 0..samples.min(n) {
        let i = rng.gen_range(0..n);
        let input = data.input(i);

        // Reference evaluation into a zeroed buffer.
        let mut reference = vec![0.0; out_dim];
        kernel.compute(input, &mut reference);

        // 1. Re-execution must be bit-identical.
        let mut again = vec![0.0; out_dim];
        kernel.compute(input, &mut again);
        if again != reference {
            return Err(PurityViolation::Nondeterministic { invocation: probe });
        }

        // 2. Pre-filled garbage in the output buffer must not leak in.
        let mut dirty: Vec<f64> = (0..out_dim).map(|_| rng.gen_range(-1e6..1e6)).collect();
        kernel.compute(input, &mut dirty);
        if dirty != reference {
            return Err(PurityViolation::OutputBufferSensitive { invocation: probe });
        }

        // 3. Interleaving other invocations must not change the result.
        let mut scratch = vec![0.0; out_dim];
        for _ in 0..3 {
            let j = rng.gen_range(0..n);
            kernel.compute(data.input(j), &mut scratch);
        }
        let mut after = vec![0.0; out_dim];
        kernel.compute(input, &mut after);
        if after != reference {
            return Err(PurityViolation::CrossInvocationLeak { invocation: probe });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_kernels;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn every_shipped_kernel_is_pure() {
        for kernel in all_kernels() {
            verify_purity(kernel.as_ref(), 25, 7)
                .unwrap_or_else(|v| panic!("{}: {v}", kernel.name()));
        }
    }

    /// A deliberately impure kernel: accumulates hidden state.
    #[derive(Debug, Default)]
    struct StatefulKernel {
        calls: AtomicU64,
    }

    impl Kernel for StatefulKernel {
        fn name(&self) -> &'static str {
            "stateful"
        }
        fn domain(&self) -> &'static str {
            "test"
        }
        fn input_dim(&self) -> usize {
            1
        }
        fn output_dim(&self) -> usize {
            1
        }
        fn compute(&self, input: &[f64], output: &mut [f64]) {
            let c = self.calls.fetch_add(1, Ordering::Relaxed);
            output[0] = input[0] + c as f64;
        }
        fn metric(&self) -> crate::ErrorMetric {
            crate::ErrorMetric::MeanAbsoluteError { scale: 1.0 }
        }
        fn rumba_topology(&self) -> Vec<usize> {
            vec![1, 1]
        }
        fn npu_topology(&self) -> Vec<usize> {
            vec![1, 1]
        }
        fn generate(&self, _split: Split, _seed: u64) -> rumba_nn::NnDataset {
            rumba_nn::NnDataset::from_fn(1, 1, 16, |i, x, y| {
                x[0] = i as f64;
                y[0] = i as f64;
            })
            .expect("valid dims")
        }
        fn cpu_cycles(&self) -> f64 {
            1.0
        }
        fn kernel_fraction(&self) -> f64 {
            0.5
        }
        fn train_data_desc(&self) -> &'static str {
            "n/a"
        }
        fn test_data_desc(&self) -> &'static str {
            "n/a"
        }
    }

    /// A kernel that illegally accumulates into its output buffer.
    #[derive(Debug, Default)]
    struct BufferReadingKernel;

    impl Kernel for BufferReadingKernel {
        fn name(&self) -> &'static str {
            "buffer-reader"
        }
        fn domain(&self) -> &'static str {
            "test"
        }
        fn input_dim(&self) -> usize {
            1
        }
        fn output_dim(&self) -> usize {
            1
        }
        fn compute(&self, input: &[f64], output: &mut [f64]) {
            output[0] += input[0]; // += instead of =: reads stale contents
        }
        fn metric(&self) -> crate::ErrorMetric {
            crate::ErrorMetric::MeanAbsoluteError { scale: 1.0 }
        }
        fn rumba_topology(&self) -> Vec<usize> {
            vec![1, 1]
        }
        fn npu_topology(&self) -> Vec<usize> {
            vec![1, 1]
        }
        fn generate(&self, _split: Split, _seed: u64) -> rumba_nn::NnDataset {
            rumba_nn::NnDataset::from_fn(1, 1, 16, |i, x, y| {
                x[0] = i as f64 + 1.0;
                y[0] = 0.0;
            })
            .expect("valid dims")
        }
        fn cpu_cycles(&self) -> f64 {
            1.0
        }
        fn kernel_fraction(&self) -> f64 {
            0.5
        }
        fn train_data_desc(&self) -> &'static str {
            "n/a"
        }
        fn test_data_desc(&self) -> &'static str {
            "n/a"
        }
    }

    #[test]
    fn detects_hidden_state() {
        let bad = StatefulKernel::default();
        let v = verify_purity(&bad, 10, 1).unwrap_err();
        assert!(matches!(v, PurityViolation::Nondeterministic { .. }), "{v}");
    }

    #[test]
    fn detects_output_buffer_reads() {
        let bad = BufferReadingKernel;
        let v = verify_purity(&bad, 10, 1).unwrap_err();
        // += on a dirty buffer shows up either as buffer sensitivity or as
        // nondeterminism depending on probe order; both are violations.
        assert!(
            matches!(
                v,
                PurityViolation::OutputBufferSensitive { .. }
                    | PurityViolation::Nondeterministic { .. }
            ),
            "{v}"
        );
    }

    #[test]
    fn violations_display_meaningfully() {
        let v = PurityViolation::CrossInvocationLeak { invocation: 3 };
        assert!(v.to_string().contains("invocation 3"));
    }
}
